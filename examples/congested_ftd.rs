//! Section 5 of the paper: during *congested periods* the extended
//! fractional-traffic-dispatch (FTD) algorithm introduces no relative
//! queuing delay — and the traffic that sustains congestion is provably
//! not leaky-bucket (Proposition 15).
//!
//! ```text
//! cargo run --release --example congested_ftd
//! ```

use pps_analysis::Table;
use pps_experiments::e08_ftd_congestion;
use pps_traffic::adversary::congestion_traffic;
use pps_traffic::min_burstiness;

fn main() {
    let (n, k, r_prime) = (16, 8, 2); // S = 4

    println!("-- Theorem 14: work conservation under congestion --\n");
    let mut t14 = Table::new(
        format!("extended FTD at N={n}, K={k}, r'={r_prime}, overload S+1 cells/slot on output 0"),
        &[
            "h (block = h*r')",
            "warm-up",
            "idle slots in congestion",
            "max rank delta",
        ],
    );
    for h in [2usize, 3, 4] {
        let out = e08_ftd_congestion::point(n, k, r_prime, h, 1_000);
        t14.row_display(&[
            h.to_string(),
            out.congestion_start
                .map_or("never".into(), |w| w.to_string()),
            out.wc_violations.to_string(),
            out.max_rank_delta.to_string(),
        ]);
    }
    println!("{}", t14.render());

    println!("-- Proposition 15: that traffic cannot be (R, B) leaky-bucket --\n");
    let mut t15 = Table::new(
        "minimal burstiness of the congestion traffic grows with its duration",
        &["duration", "B_min"],
    );
    for duration in [100u64, 400, 1600] {
        let c = congestion_traffic(n, 0, k / r_prime + 1, duration);
        t15.row_display(&[
            duration.to_string(),
            min_burstiness(&c.trace, n).overall().to_string(),
        ]);
    }
    println!("{}", t15.render());
    println!(
        "no fixed B covers every duration, so the zero-delay congested regime never \
         contradicts the leaky-bucket lower bounds of Theorems 6-13."
    );
}
