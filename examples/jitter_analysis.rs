//! Relative delay jitter across algorithms and loads.
//!
//! QoS traffic (voice, video) cares about *cell delay variation* at least
//! as much as delay; every lower bound in the paper binds the jitter too.
//! This example measures per-flow jitter distributions for three
//! demultiplexing algorithms under bursty admissible traffic and under
//! the adversarial concentration traffic.
//!
//! ```text
//! cargo run --release --example jitter_analysis
//! ```

use pps_analysis::{compare_bufferless, metrics::flow_jitters, Table};
use pps_core::prelude::*;
use pps_switch::demux::{CpaDemux, PerFlowRoundRobinDemux, RoundRobinDemux};
use pps_traffic::adversary::concentration_attack;
use pps_traffic::gen::OnOffGen;

fn jitter_stats(cmp: &pps_analysis::lockstep::Comparison) -> (u64, f64, i64) {
    let j = flow_jitters(&cmp.pps.log);
    let max = j.values().copied().max().unwrap_or(0);
    let mean = if j.is_empty() {
        0.0
    } else {
        j.values().sum::<u64>() as f64 / j.len() as f64
    };
    (max, mean, cmp.relative_jitter())
}

fn main() {
    let (n, k, r_prime) = (16, 8, 4); // S = 2
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    let bursty = OnOffGen::uniform(12.0, 0.8, 99).trace(n, 5_000);
    let attack = concentration_attack(
        &RoundRobinDemux::new(n, k),
        &cfg,
        &(0..n as u32).collect::<Vec<_>>(),
        4 * k,
    )
    .trace;

    let mut table = Table::new(
        format!("per-flow jitter at N={n}, K={k}, r'={r_prime}, S=2"),
        &[
            "algorithm",
            "workload",
            "max flow jitter",
            "mean flow jitter",
            "relative jitter",
        ],
    );
    for (wname, trace) in [("onoff-0.8", &bursty), ("rr-attack", &attack)] {
        let rr = compare_bufferless(cfg, RoundRobinDemux::new(n, k), trace).expect("run");
        let (mx, mn, rel) = jitter_stats(&rr);
        table.row_display(&[
            "round-robin".into(),
            wname.to_string(),
            mx.to_string(),
            format!("{mn:.2}"),
            rel.to_string(),
        ]);
        let pf = compare_bufferless(cfg, PerFlowRoundRobinDemux::new(n, k), trace).expect("run");
        let (mx, mn, rel) = jitter_stats(&pf);
        table.row_display(&[
            "per-flow-rr".into(),
            wname.to_string(),
            mx.to_string(),
            format!("{mn:.2}"),
            rel.to_string(),
        ]);
        let cpa = compare_bufferless(
            cfg.with_discipline(OutputDiscipline::GlobalFcfs),
            CpaDemux::new(n, k, r_prime),
            trace,
        )
        .expect("run");
        let (mx, mn, rel) = jitter_stats(&cpa);
        table.row_display(&[
            "cpa".into(),
            wname.to_string(),
            mx.to_string(),
            format!("{mn:.2}"),
            rel.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "distributed algorithms pay Theta(N) jitter in the worst case; CPA's jitter \
         never exceeds the reference switch's (relative jitter <= 0)."
    );
}
