//! The Corollary 7 lower bound, step by step: the adversary probes the
//! round-robin demultiplexor's state machines, aligns them, lets the
//! switch drain, and fires N back-to-back cells at one output — all of
//! which land on the same plane (Figure 2 of the paper).
//!
//! ```text
//! cargo run --release --example adversarial_concentration
//! ```

use pps_analysis::compare_bufferless;
use pps_core::prelude::*;
use pps_switch::demux::RoundRobinDemux;
use pps_traffic::adversary::concentration_attack;
use pps_traffic::min_burstiness;

fn main() {
    let (n, k, r_prime) = (32, 8, 4); // S = 2
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    let demux = RoundRobinDemux::new(n, k);

    // The adversary works on a clone of the real automaton.
    let inputs: Vec<u32> = (0..n as u32).collect();
    let atk = concentration_attack(&demux, &cfg, &inputs, 4 * k);

    println!("-- the Figure 2 storyboard --");
    for line in &atk.phase_log {
        println!("  {line}");
    }
    let b = min_burstiness(&atk.trace, n);
    println!(
        "\ntraffic: {} cells, minimal burstiness B = {} (Theorem 6 premise: burst-free)",
        atk.trace.len(),
        b.overall()
    );
    println!(
        "paper bound (R/r - 1)*N   = {} slots; model-exact (R/r - 1)*(N - 1) = {}",
        atk.predicted_bound, atk.model_exact_bound
    );

    let cmp = compare_bufferless(cfg, demux, &atk.trace).expect("run");
    let rd = cmp.relative_delay();
    println!("\n-- measured --");
    println!(
        "concentration            : {} cells on plane {}",
        cmp.max_concentration(),
        atk.plan.plane
    );
    println!("relative queuing delay   : {} slots", rd.max);
    println!("relative delay jitter    : {} slots", cmp.relative_jitter());
    assert!(rd.max as u64 >= atk.model_exact_bound);
    println!(
        "\nthe same switch under the same *rate* of benign traffic shows near-zero \
         relative delay — worst case and typical case differ by Theta(N)."
    );
}
