//! Architecture shootout: the PPS against the designs it competes with —
//! the ideal output-queued switch and the single-fabric input-queued
//! crossbar (VOQ + iSLIP) — under escalating load, plus the hotspot
//! stress where the differences between them open up.
//!
//! ```text
//! cargo run --release --example architecture_shootout
//! ```

use pps_analysis::Table;
use pps_core::prelude::*;
use pps_crossbar::run_crossbar;
use pps_reference::oq::run_oq;
use pps_switch::demux::{CpaDemux, RoundRobinDemux};
use pps_switch::engine::run_bufferless;
use pps_traffic::gen::{BernoulliGen, TrafficPattern};

fn row(trace: &Trace, n: usize, k: usize, r_prime: usize) -> [String; 4] {
    let fmt = |log: &RunLog| {
        format!(
            "{:.2}/{}",
            log.mean_delay().unwrap_or(0.0),
            log.max_delay().unwrap_or(0)
        )
    };
    let oq = run_oq(trace, n);
    let xb = run_crossbar(trace, n, 2);
    let cpa = run_bufferless(
        PpsConfig::bufferless(n, k, r_prime).with_discipline(OutputDiscipline::GlobalFcfs),
        CpaDemux::new(n, k, r_prime),
        trace,
    )
    .expect("run")
    .log;
    let rr = run_bufferless(
        PpsConfig::bufferless(n, k, r_prime),
        RoundRobinDemux::new(n, k),
        trace,
    )
    .expect("run")
    .log;
    [fmt(&oq), fmt(&xb), fmt(&cpa), fmt(&rr)]
}

fn main() {
    let (n, k, r_prime) = (16, 8, 4); // PPS at S = 2
    let mut table = Table::new(
        format!("mean/max queuing delay, N={n} (PPS: K={k}, r'={r_prime}, S=2)"),
        &[
            "workload",
            "ideal OQ",
            "iSLIP crossbar",
            "PPS + CPA",
            "PPS + RR",
        ],
    );
    for load in [0.5f64, 0.8, 0.95] {
        let t = BernoulliGen::uniform(load, 7).trace(n, 4_000);
        let [oq, xb, cpa, rr] = row(&t, n, k, r_prime);
        table.row_display(&[format!("uniform {load}"), oq, xb, cpa, rr]);
    }
    for hot in [0.3f64, 0.6] {
        let t = BernoulliGen {
            load: 0.6,
            pattern: TrafficPattern::Hotspot { target: 0, hot },
            seed: 9,
        }
        .trace(n, 4_000);
        let [oq, xb, cpa, rr] = row(&t, n, k, r_prime);
        table.row_display(&[format!("hotspot {hot}"), oq, xb, cpa, rr]);
    }
    println!("{}", table.render());
    println!(
        "PPS+CPA tracks the ideal OQ exactly (it mimics it) while running its \
         internals at r = R/{r_prime}; the crossbar needs its whole fabric at rate R — \
         the engineering trade the paper's bounds price out: without central \
         coordination (PPS+RR) the worst case costs Theta(N), see the \
         adversarial_concentration example."
    );
}
