//! Quickstart: build a PPS (the paper's Figure 1 architecture), offer it
//! admissible traffic, and measure its relative queuing delay against the
//! optimal work-conserving shadow switch.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pps_analysis::{compare_bufferless, distribution};
use pps_core::prelude::*;
use pps_core::topology;
use pps_switch::demux::RoundRobinDemux;
use pps_traffic::gen::BernoulliGen;
use pps_traffic::min_burstiness;

fn main() {
    // An 8x8 PPS with 8 half-rate planes: speedup S = K/r' = 4.
    let cfg = PpsConfig::bufferless(8, 8, 2);
    println!("{}", topology::render(&cfg));

    // Admissible i.i.d. traffic at 85% load, uniform destinations.
    let trace = BernoulliGen::uniform(0.85, 7).trace(cfg.n, 5_000);
    let report = min_burstiness(&trace, cfg.n);
    println!(
        "offered {} cells over 5000 slots (minimal leaky-bucket burstiness B = {})\n",
        trace.len(),
        report.overall()
    );

    // Run the PPS (round-robin demultiplexing) and the shadow OQ switch on
    // the identical trace.
    let demux = RoundRobinDemux::new(cfg.n, cfg.k);
    let cmp = compare_bufferless(cfg, demux, &trace).expect("admissible run");

    let rd = cmp.relative_delay();
    println!(
        "PPS max queuing delay      : {:?} slots",
        cmp.pps.log.max_delay().unwrap()
    );
    println!(
        "shadow OQ max queuing delay: {:?} slots",
        cmp.oq.max_delay().unwrap()
    );
    println!(
        "relative queuing delay     : {} slots (max over cells)",
        rd.max
    );
    println!("relative delay (mean)      : {:.3} slots", rd.mean);
    println!(
        "relative delay jitter      : {} slots (max over flows)",
        cmp.relative_jitter()
    );
    println!(
        "plane concentration        : {} cells via one (plane, output) pair",
        cmp.max_concentration()
    );
    println!(
        "plane buffer high-water    : {} cells",
        cmp.pps_stats().max_plane_queue
    );
    let delays = distribution::relative_delays(&cmp.pps.log, &cmp.oq);
    if let Some(p) = distribution::Percentiles::from(&delays) {
        println!("\nper-cell relative delay distribution: {}", p.summary());
    }
    if let Some(h) = distribution::Histogram::build(&delays, 6) {
        println!("{}", h.render(30));
    }
    println!(
        "Typical loads are gentle; run the adversarial_concentration example \
         to see the paper's Omega((R/r - 1) * N) worst case."
    );
}
