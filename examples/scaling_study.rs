//! The paper's scaling message: relative queuing delay of a bufferless
//! fully-distributed PPS grows linearly in the port count, measured up to
//! the N = 512 / N = 1024 sizes the paper's introduction calls out.
//!
//! Also contrasts the three information classes at each size: the
//! fully-distributed round robin (Theta(N) delay), the 1-RT stale
//! least-loaded algorithm (Theta(N/S)), and centralized CPA (zero).
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use pps_analysis::{compare_bufferless, AsciiChart, Table};
use pps_core::prelude::*;
use pps_switch::demux::StaleLeastLoadedDemux;
use pps_switch::demux::{CpaDemux, RoundRobinDemux};
use pps_traffic::adversary::{concentration_attack, urt_burst_attack};

fn main() {
    let (k, r_prime) = (8, 4); // S = 2
    let mut chart = AsciiChart::new(
        "relative delay vs N (fully distributed, worst case)",
        56,
        12,
    );
    let mut table = Table::new(
        "worst-case relative queuing delay by information class (K=8, r'=4, S=2)",
        &[
            "N",
            "fully-distributed (RR)",
            "1-RT (stale least-loaded)",
            "centralized (CPA)",
        ],
    );
    for n in [64usize, 128, 256, 512, 1024] {
        let cfg = PpsConfig::bufferless(n, k, r_prime);

        // Fully distributed under its concentration attack.
        let rr = RoundRobinDemux::new(n, k);
        let atk = concentration_attack(&rr, &cfg, &(0..n as u32).collect::<Vec<_>>(), 4 * k);
        let fd = compare_bufferless(cfg, rr, &atk.trace)
            .expect("run")
            .relative_delay()
            .max;

        // 1-RT under its hidden-window burst.
        let urt_atk = urt_burst_attack(&cfg, 1);
        let urt = compare_bufferless(cfg, StaleLeastLoadedDemux::new(n, k, 1), &urt_atk.trace)
            .expect("run")
            .relative_delay()
            .max;

        // Centralized CPA under the *fully-distributed* attack traffic
        // (the worst we have): zero.
        let cpa_cfg = cfg.with_discipline(OutputDiscipline::GlobalFcfs);
        let cpa = compare_bufferless(cpa_cfg, CpaDemux::new(n, k, r_prime), &atk.trace)
            .expect("run")
            .relative_delay()
            .max;

        chart.point(n as f64, fd as f64);
        table.row_display(&[
            n.to_string(),
            fd.to_string(),
            urt.to_string(),
            cpa.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("{}", chart.render());
    println!(
        "fully-distributed grows with slope R/r - 1 = {}; 1-RT with ~(1 - r/R)/K per \
         port; centralized stays flat at zero — the paper's information hierarchy, measured.",
        r_prime - 1
    );
}
