//! Reproducibility workflow: build an adversarial trace, archive it as
//! CSV, reload it, and verify the replayed run is bit-identical — the
//! property every golden number in this repository rests on.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use pps_analysis::compare_bufferless;
use pps_core::prelude::*;
use pps_core::trace_io;
use pps_switch::demux::RoundRobinDemux;
use pps_traffic::adversary::concentration_attack;
use pps_traffic::TraceStats;

fn main() {
    let (n, k, r_prime) = (16, 8, 4);
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    let demux = RoundRobinDemux::new(n, k);

    // 1. Build the Corollary 7 attack and archive it.
    let atk = concentration_attack(&demux, &cfg, &(0..n as u32).collect::<Vec<_>>(), 4 * k);
    let dir = std::env::temp_dir().join("pps_trace_replay_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("corollary7_attack.csv");
    trace_io::save(&atk.trace, &path).expect("archive trace");
    println!(
        "archived {} -> {}",
        TraceStats::of(&atk.trace, n).summary(),
        path.display()
    );

    // 2. Reload and verify the round trip is exact.
    let reloaded = trace_io::load(&path, n).expect("reload trace");
    assert_eq!(reloaded, atk.trace, "CSV round trip must be lossless");
    println!("round trip: lossless");

    // 3. Replay: two fresh runs over the reloaded trace must agree on
    //    every per-cell record.
    let run_a = compare_bufferless(cfg, RoundRobinDemux::new(n, k), &reloaded).expect("run A");
    let run_b = compare_bufferless(cfg, RoundRobinDemux::new(n, k), &reloaded).expect("run B");
    assert_eq!(
        run_a.pps.log.records(),
        run_b.pps.log.records(),
        "replay must be deterministic"
    );
    println!(
        "replay: deterministic ({} cells, relative delay {} slots = the Corollary 7 bound)",
        run_a.pps.log.len(),
        run_a.relative_delay().max
    );
    assert_eq!(run_a.relative_delay().max as u64, atk.model_exact_bound);

    let _ = std::fs::remove_file(&path);
    println!(
        "\nany trace in this workspace — adversarial or stochastic — can be shipped \
         as a three-column CSV and replayed anywhere to the same slot-exact numbers."
    );
}
