//! Offline stand-in for `crossbeam` 0.8: only `crossbeam::thread::scope`,
//! delegated to `std::thread::scope` (stable since Rust 1.63).
//!
//! Behavioural difference: if a spawned thread panics and is never
//! joined, std's scope re-raises the panic instead of returning `Err` —
//! callers in this workspace `.expect()` the result either way.

pub mod thread {
    /// Scope handle passed to `scope`'s closure and to spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; crossbeam's closure receives the scope
        /// again so threads can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a thread scope; all spawned threads are joined before
    /// this returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().expect("join")).sum()
        })
        .expect("scope");
        assert_eq!(total, 100);
    }
}
