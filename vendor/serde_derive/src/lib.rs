//! No-op stand-ins for serde's derive macros.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize`; nothing
//! serializes through serde at runtime (persistence is hand-written CSV
//! in `pps-core::trace_io` and `pps-core::fault`). The blanket marker
//! impls live in the `serde` stub, so these derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
