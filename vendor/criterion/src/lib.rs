//! Offline stand-in for `criterion` 0.5: compiles the bench targets and,
//! when run, times each closure over a few iterations with
//! `std::time::Instant`. No statistics, warm-up, plots, or baselines.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const ITERS: u32 = 3;

#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed_ns: 0, iters: 0 };
    f(&mut b);
    let per_iter = b.elapsed_ns.checked_div(b.iters as u128).unwrap_or(0);
    println!("bench {name:<60} {per_iter:>12} ns/iter (stub, {} iters)", b.iters);
}

pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(f());
            self.elapsed_ns += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{param}") }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId { id: param.to_string() }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
