//! Offline stand-in for `criterion` 0.5: compiles the bench targets and,
//! when run, times each closure with `std::time::Instant` over a few
//! batched samples (batches sized so each sample spans a minimum wall
//! time — single microsecond iterations are preemption lottery on a
//! shared runner). No warm-up, plots, or saved baselines — but it
//! reports the **median** per-iteration time (robust against a single cold
//! or preempted sample, which is what the CI regression gate compares),
//! and it honours criterion's positional name filter: `cargo bench --
//! slot_throughput` runs only benches whose full name contains the
//! substring.

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::Instant;

pub use std::hint::black_box;

/// Samples per bench. Each sample is one *batch* of iterations sized so
/// the batch lasts at least [`MIN_SAMPLE_NS`]: microsecond-scale benches
/// would otherwise report the median of three single preemption-prone
/// timings, which on a shared 1-CPU runner swings by 2x run to run.
const SAMPLES: u32 = 5;
const MIN_SAMPLE_NS: u128 = 10_000_000;

/// The positional name filter from the command line (first argument not
/// starting with `-`), as real criterion interprets it. Flags the libtest
/// harness passes (`--bench`, `--exact`, …) are ignored.
fn name_filter() -> Option<&'static str> {
    static FILTER: OnceLock<Option<String>> = OnceLock::new();
    FILTER
        .get_or_init(|| std::env::args().skip(1).find(|a| !a.starts_with('-')))
        .as_deref()
}

#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    if let Some(filter) = name_filter() {
        if !name.contains(filter) {
            return;
        }
    }
    let mut b = Bencher { samples_ns: Vec::new() };
    f(&mut b);
    b.samples_ns.sort_unstable();
    let median = b.samples_ns.get(b.samples_ns.len() / 2).copied().unwrap_or(0);
    println!(
        "bench {name:<60} {median:>12} ns/iter (stub median of {})",
        b.samples_ns.len()
    );
}

pub struct Bencher {
    /// Per-iteration wall time; the report takes the median.
    samples_ns: Vec<u128>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: time one iteration to size the batch so each
        // sample spans at least MIN_SAMPLE_NS of wall time.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_nanos().max(1);
        let batch = (MIN_SAMPLE_NS / once).clamp(1, 100_000) as u32;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() / u128::from(batch));
        }
    }
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{param}") }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId { id: param.to_string() }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
