//! Offline stand-in for `proptest` 1.x — generation without shrinking.
//!
//! Supports the surface this workspace uses: the `proptest!` macro
//! (including `#![proptest_config(...)]`), integer range strategies,
//! tuple strategies, `collection::vec`, `Just`, `prop_map`,
//! `prop_flat_map`, and the `prop_assert*`/`prop_assume!` macros.
//! Each test's case stream is deterministic (seeded from the test name),
//! so failures reproduce; there is no shrinking of failing cases.

pub mod strategy;

pub mod test_runner {
    /// Runner configuration; only `cases` is interpreted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; keep it so coverage matches.
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*` failed; the test fails.
        Fail(String),
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// FNV-1a, used to derive a per-test seed from the test name.
    pub fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Deterministic per-case generator (xoshiro256++ over SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn deterministic(seed: u64, case: u64) -> Self {
            let mut state = seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut s = [0u64; 4];
            for w in &mut s {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *w = z ^ (z >> 31);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            TestRng { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw below `span` (multiply-shift).
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// `prop_assume!(cond)` — skip the case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The test harness macro. Each `#[test] fn name(bindings in strategies)`
/// becomes a zero-argument test that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(__seed, __case as u64);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            __case,
                            __msg
                        );
                    }
                }
            }
        }
    )*};
}
