//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategies behind references generate what the referent generates —
/// lets `proptest!` take strategies by value or by reference alike.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Integer types drawable from range strategies.
pub trait UniformInt: Copy {
    fn from_u64(v: u64) -> Self;
    fn to_u64(self) -> u64;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn from_u64(v: u64) -> Self {
                v as $t
            }
            fn to_u64(self) -> u64 {
                self as u64
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "empty range strategy");
        T::from_u64(lo + rng.below(hi - lo))
    }
}

impl<T: UniformInt> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "empty range strategy");
        if lo == 0 && hi == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.below(hi - lo + 1))
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A/0);
impl_tuple_strategy!(A/0, B/1);
impl_tuple_strategy!(A/0, B/1, C/2);
impl_tuple_strategy!(A/0, B/1, C/2, D/3);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_combinators_generate_in_bounds() {
        let mut rng = TestRng::deterministic(1, 0);
        let strat = (2usize..=9, 1usize..4)
            .prop_flat_map(|(n, r)| (r..r * 4 + 1).prop_map(move |k| (n, k, r)));
        for _ in 0..1000 {
            let (n, k, r) = strat.generate(&mut rng);
            assert!((2..=9).contains(&n));
            assert!((1..4).contains(&r));
            assert!(k >= r && k <= r * 4);
        }
        let v = crate::collection::vec(0u64..10, 3..6).generate(&mut rng);
        assert!((3..6).contains(&v.len()));
        assert!(v.iter().all(|&x| x < 10));
        assert_eq!(Just(41).generate(&mut rng), 41);
    }

    #[test]
    fn generation_is_deterministic_per_seed_and_case() {
        let strat = crate::collection::vec((0u64..50, 0u32..6), 0..40);
        let a = strat.generate(&mut TestRng::deterministic(9, 3));
        let b = strat.generate(&mut TestRng::deterministic(9, 3));
        let c = strat.generate(&mut TestRng::deterministic(9, 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
