//! Offline stand-in for `parking_lot` 0.12: `Mutex`/`RwLock` as thin
//! wrappers over `std::sync` with parking_lot's no-poisoning API shape.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = super::Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
        let rw = super::RwLock::new(vec![1]);
        rw.write().push(2);
        assert_eq!(rw.read().len(), 2);
    }
}
