//! Offline stand-in for `serde`.
//!
//! `Serialize` and `Deserialize` are blanket-implemented marker traits:
//! every type satisfies a `T: Serialize` bound, and the derive macros
//! (re-exported from the stub `serde_derive`) expand to nothing. This is
//! sound here because the workspace never serializes through serde — it
//! only carries the derives so the real crate can be dropped back in.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub mod de {
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}

pub mod ser {
    pub use crate::Serialize;
}
