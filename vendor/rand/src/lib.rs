//! Offline stand-in for `rand` 0.9.
//!
//! Implements the exact API surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random_range` over integer
//! ranges, and `Rng::random_bool` — on top of xoshiro256++ seeded with
//! SplitMix64. The stream is *not* the real `StdRng`'s (ChaCha12), so
//! seeded golden numbers are pinned against this generator; statistical
//! quality (equidistribution, long period) is far beyond what the
//! distribution-level assertions in the test suite need.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Integer types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_below(rng: &mut dyn FnMut() -> u64, span: u64) -> u64;
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below(rng: &mut dyn FnMut() -> u64, span: u64) -> u64 {
                // Multiply-shift: maps a uniform u64 onto [0, span) with
                // bias < 2^-64 * span — negligible for simulation use.
                ((rng() as u128 * span as u128) >> 64) as u64
            }
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Range-like arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "random_range called with an empty range");
        T::from_u64(lo + T::sample_below(rng, hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "random_range called with an empty range");
        if lo == 0 && hi == u64::MAX {
            return T::from_u64(rng());
        }
        T::from_u64(lo + T::sample_below(rng, hi - lo + 1))
    }
}

/// High-level sampling methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool p out of [0, 1]: {p}");
        // 53 uniform mantissa bits; max value is (2^53 - 1) / 2^53 < 1.0,
        // so p == 1.0 always accepts and p == 0.0 always rejects.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // An all-zero state is the one fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but keep the guard local.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0u64..1 << 60)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0u64..1 << 60)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random_range(0u64..1 << 60)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.random_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn bool_probability_is_roughly_honoured() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "p=0.3 gave {hits}/100000");
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
        assert!(!(0..1000).any(|_| rng.random_bool(0.0)));
    }
}
