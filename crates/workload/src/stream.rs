//! The [`ArrivalStream`] abstraction and the skip-ahead materializer.
//!
//! A stream is a *lazy* arrival process: it always knows a slot before
//! which nothing will be emitted ([`ArrivalStream::next_activity`])
//! because every generator pre-draws its next event (geometric gap
//! inversion instead of per-slot coin flips). Generation therefore costs `O(cells + state
//! transitions)` however long the horizon — the same event-driven contract
//! the engines' skip-ahead stepping lives by (DESIGN.md §15), which is what
//! lets a 10⁸-slot sparse soak materialize and simulate in seconds.
//!
//! Determinism contract: a stream is a pure function of its parameters and
//! seed. [`materialize`] produces the identical [`Trace`] whether the
//! stream is walked densely (every slot) or by jumping between
//! `next_activity` slots — pinned by the property suite — and the trace
//! feeds both the PPS under test and the shadow OQ switch, so sweeps stay
//! byte-identical at any `--jobs`/`--intra-jobs`.

use pps_core::prelude::*;
use pps_core::rate::Ratio;

/// A leaky-bucket contract a stream claims for its emissions: for every
/// output `j` and every window of `τ` slots, the cells destined to `j`
/// number at most `rate·τ + burst` (Cruz `(σ, ρ)` with `σ = burst`,
/// `ρ = rate`; the paper's Definition 3 is the `rate = 1` case). Checked
/// exactly — in integer arithmetic over [`Ratio`] — by the shaper that
/// enforces it and by the admissibility property suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LbContract {
    /// Sustained per-output rate `ρ ≤ 1`, kept exact.
    pub rate: Ratio,
    /// Burst allowance `σ`, in cells.
    pub burst: u64,
}

impl LbContract {
    /// A contract at `num/den` cells per slot with `burst` slack.
    pub fn new(num: u64, den: u64, burst: u64) -> Self {
        LbContract {
            rate: Ratio::new(num, den),
            burst,
        }
    }

    /// Verify `trace` against this contract with the virtual-queue
    /// recurrence `q(t) = max(0, q(t−1) − num·Δt) + den·a(t)`: the trace
    /// conforms iff `q` never exceeds `burst·den + num` on any output
    /// (the `+num` is the arrival slot's own rate credit — the same
    /// convention as `pps_traffic::min_burstiness`, whose per-slot
    /// recurrence is `q(t) = max(0, q(t−1) + a(t) − 1)`, so for `rate = 1`
    /// the two agree exactly). This is the window condition
    /// `A_j(t, t+τ] ≤ ρ·τ + σ` in integer arithmetic — no float fuzz, as
    /// [`pps_core::rate`] demands of admissibility predicates.
    pub fn admits(&self, trace: &Trace, n: usize) -> bool {
        let (num, den) = (self.rate.num(), self.rate.den());
        let cap = self.burst.saturating_mul(den).saturating_add(num);
        let mut q = vec![0u64; n];
        let mut last = vec![0 as Slot; n];
        for (slot, group) in trace.by_slot() {
            for a in group {
                let j = a.output.idx();
                let decay = (slot - last[j]).saturating_mul(num);
                q[j] = q[j].saturating_sub(decay) + den;
                last[j] = slot;
                if q[j] > cap {
                    return false;
                }
            }
        }
        true
    }
}

/// A deterministic, seeded arrival process that can be materialized into a
/// validated [`Trace`] in time proportional to the cells it emits.
pub trait ArrivalStream {
    /// Ports of the switch this stream feeds (`N`).
    fn ports(&self) -> usize;

    /// A slot `≥ from` such that no slot in `[from, slot)` emits anything,
    /// or `None` when the stream is exhausted. Usually this is the exact
    /// slot of the next emission; a stream that post-filters another (the
    /// leaky-bucket shaper) may conservatively report a candidate slot
    /// whose cells all get dropped — `emit` there is then empty and the
    /// materializer simply asks again. What it must never do is skip past
    /// a real emission: that is what the dense-walk equivalence property
    /// pins.
    fn next_activity(&self, from: Slot) -> Option<Slot>;

    /// Append every arrival of exactly `slot` to `out` (sorted by input)
    /// and advance the internal cursors past `slot`. Calling `emit` on a
    /// slot before `next_activity(from)` is a no-op; slots must be
    /// visited in non-decreasing order.
    fn emit(&mut self, slot: Slot, out: &mut Vec<Arrival>);

    /// The leaky-bucket contract this stream *guarantees* per output, if
    /// it shapes its emissions. `None` means only the structural per-input
    /// limit (one cell per slot per input) is promised.
    fn contract(&self) -> Option<LbContract> {
        None
    }
}

/// Materialize `horizon` slots of `stream` into a validated [`Trace`],
/// jumping between activity slots — `O(cells)` for any horizon.
pub fn materialize<S: ArrivalStream + ?Sized>(stream: &mut S, horizon: Slot) -> Trace {
    let n = stream.ports();
    let mut arrivals = Vec::new();
    let mut now = 0;
    while let Some(next) = stream.next_activity(now) {
        if next >= horizon {
            break;
        }
        stream.emit(next, &mut arrivals);
        now = next + 1;
    }
    Trace::build(arrivals, n).expect("ArrivalStream emits at most one cell per (slot, input)")
}

/// Materialize `stream` by visiting *every* slot of the horizon — the
/// O(horizon) reference walk. Exists for the equivalence property: for any
/// stream, [`materialize`] and `materialize_dense` must produce identical
/// traces (a generator whose `next_activity` lies would diverge here).
pub fn materialize_dense<S: ArrivalStream + ?Sized>(stream: &mut S, horizon: Slot) -> Trace {
    let n = stream.ports();
    let mut arrivals = Vec::new();
    for slot in 0..horizon {
        stream.emit(slot, &mut arrivals);
    }
    Trace::build(arrivals, n).expect("ArrivalStream emits at most one cell per (slot, input)")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal stream: one cell on input 0 every `period` slots.
    struct Pulse {
        period: Slot,
        next: Slot,
    }

    impl ArrivalStream for Pulse {
        fn ports(&self) -> usize {
            2
        }
        fn next_activity(&self, from: Slot) -> Option<Slot> {
            Some(self.next.max(from.div_ceil(self.period) * self.period))
        }
        fn emit(&mut self, slot: Slot, out: &mut Vec<Arrival>) {
            if slot == self.next {
                out.push(Arrival::new(slot, 0, 1));
                self.next += self.period;
            }
        }
    }

    #[test]
    fn skip_and_dense_materialization_agree() {
        let a = materialize(&mut Pulse { period: 7, next: 0 }, 100);
        let b = materialize_dense(&mut Pulse { period: 7, next: 0 }, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 15); // slots 0, 7, …, 98
    }

    #[test]
    fn contract_admits_exact_boundary() {
        // rate 1/2, burst 1: one cell per slot-0 window is fine
        // (A = 1 ≤ ρ·1 + σ = 1.5); two same-slot cells exceed it
        // (A = 2 > 1.5); the same two cells two slots apart conform.
        let c = LbContract::new(1, 2, 1);
        let ok = Trace::build(vec![Arrival::new(0, 0, 0)], 2).unwrap();
        assert!(c.admits(&ok, 2));
        let burst = Trace::build(vec![Arrival::new(0, 0, 0), Arrival::new(0, 1, 0)], 2).unwrap();
        assert!(!c.admits(&burst, 2));
        let spaced = Trace::build(vec![Arrival::new(0, 0, 0), Arrival::new(2, 1, 0)], 2).unwrap();
        assert!(c.admits(&spaced, 2));
    }

    #[test]
    fn contract_rate_one_matches_min_burstiness() {
        // For R = 1 the recurrence is the paper's Definition 3; compare
        // with pps_traffic::min_burstiness on a bursty hand trace.
        let t = Trace::build(
            vec![
                Arrival::new(0, 0, 0),
                Arrival::new(0, 1, 0),
                Arrival::new(0, 2, 0),
                Arrival::new(5, 0, 0),
            ],
            3,
        )
        .unwrap();
        let b = pps_traffic::min_burstiness(&t, 3).overall();
        assert!(LbContract::new(1, 1, b).admits(&t, 3));
        assert!(!LbContract::new(1, 1, b - 1).admits(&t, 3));
    }
}
