//! Burst-modulated arrival processes: MMPP and per-input on-off sources.
//!
//! [`MmppGen`] is the discrete-time Markov-modulated Poisson process (here
//! Markov-modulated Bernoulli): one *global* two-state environment chain —
//! geometric dwell times — switches every input between a calm and a burst
//! per-slot arrival probability simultaneously. The shared modulator is
//! the point: bursts are *correlated across inputs*, the regime where
//! heavy-traffic queueing effects concentrate (Jhunjhunwala & Maguluri,
//! arXiv:2004.12271) and where a PPS's load-balancing assumptions are
//! stressed hardest.
//!
//! [`OnOffBurstGen`] is the classic independent on-off source per input:
//! geometric ON periods emitting every slot at full line rate toward one
//! per-burst destination, geometric OFF silences. Same-destination
//! full-rate ON trains are the stochastic cousin of the paper's
//! concentration adversary.
//!
//! Both pre-draw every event (dwell boundaries, arrival gaps) by geometric
//! inversion, so generation is `O(cells + state transitions)` and
//! `next_activity` lets the materializer jump over silence.

use crate::rng::SplitMix64;
use crate::stream::ArrivalStream;
use pps_core::prelude::*;

/// Parameters of one modulation state: per-slot arrival probability while
/// in the state, and per-slot probability of leaving it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Phase {
    /// Per-input, per-slot arrival probability in this state.
    pub arrival_p: f64,
    /// Per-slot exit probability (dwell is `1 + Geometric(exit_p)` slots).
    pub exit_p: f64,
}

/// Markov-modulated Bernoulli arrivals with a shared two-state environment.
pub struct MmppGen {
    n: usize,
    phases: [Phase; 2],
    /// Environment chain: segment list `(start_slot, state)`, extended
    /// lazily; `seg_starts[k]` begins segment `k`.
    modulator: SplitMix64,
    seg_starts: Vec<Slot>,
    seg_states: Vec<u8>,
    /// Per-input draw streams and pre-computed next arrival slots.
    inputs: Vec<MmppInput>,
}

struct MmppInput {
    gaps: SplitMix64,
    dests: SplitMix64,
    next: Option<Slot>,
}

impl MmppGen {
    /// A generator over `n` inputs alternating `calm` and `burst` phases,
    /// starting calm at slot 0.
    pub fn new(seed: u64, n: usize, calm: Phase, burst: Phase) -> Self {
        for ph in [calm, burst] {
            assert!(
                (0.0..=1.0).contains(&ph.arrival_p),
                "arrival_p out of range"
            );
            assert!(
                ph.exit_p > 0.0 && ph.exit_p <= 1.0,
                "exit_p must be in (0, 1]"
            );
        }
        let master = SplitMix64::new(seed);
        let mut g = MmppGen {
            n,
            phases: [calm, burst],
            modulator: master.derive(0x40D0),
            seg_starts: vec![0],
            seg_states: vec![0],
            inputs: (0..n)
                .map(|i| MmppInput {
                    gaps: master.derive(0x6A92).derive(i as u64),
                    dests: master.derive(0xDE57).derive(i as u64),
                    next: None,
                })
                .collect(),
        };
        for i in 0..n {
            let first = g.draw_next(i, 0);
            g.inputs[i].next = first;
        }
        g
    }

    /// Extend the environment segment list until it covers `slot`.
    fn cover(&mut self, slot: Slot) {
        while *self.seg_starts.last().unwrap() <= slot {
            let state = *self.seg_states.last().unwrap();
            let dwell = 1 + self
                .modulator
                .geometric(self.phases[state as usize].exit_p)
                .min(Slot::MAX / 4);
            let start = self.seg_starts.last().unwrap().saturating_add(dwell);
            self.seg_starts.push(start);
            self.seg_states.push(1 - state);
        }
    }

    /// Index of the segment containing `slot` (must already be covered).
    fn seg_at(&self, slot: Slot) -> usize {
        self.seg_starts.partition_point(|&s| s <= slot) - 1
    }

    /// Next arrival slot `≥ from` for input `i`, consuming gap draws: walk
    /// segments, draw a geometric gap under the segment's rate, keep the
    /// candidate iff it lands inside the segment, else restart at the next
    /// boundary. The rejected draw *is* consumed — that is deterministic,
    /// since the segment layout is a pure function of the seed.
    fn draw_next(&mut self, i: usize, from: Slot) -> Option<Slot> {
        let mut cursor = from;
        // A zero-arrival phase with a long dwell can push the search far
        // out; bound the walk so a (mis)configured all-silent stream
        // terminates instead of spinning.
        for _ in 0..1_000_000 {
            self.cover(cursor);
            let seg = self.seg_at(cursor);
            let p = self.phases[self.seg_states[seg] as usize].arrival_p;
            let seg_end = self.seg_starts.get(seg + 1).copied().unwrap_or(Slot::MAX);
            if p <= 0.0 {
                cursor = seg_end;
                continue;
            }
            let gap = self.inputs[i].gaps.geometric(p);
            let cand = cursor.saturating_add(gap);
            if cand < seg_end {
                return Some(cand);
            }
            cursor = seg_end;
        }
        None
    }
}

impl ArrivalStream for MmppGen {
    fn ports(&self) -> usize {
        self.n
    }

    fn next_activity(&self, from: Slot) -> Option<Slot> {
        self.inputs
            .iter()
            .filter_map(|st| st.next)
            .map(|s| s.max(from))
            .min()
    }

    fn emit(&mut self, slot: Slot, out: &mut Vec<Arrival>) {
        for i in 0..self.n {
            if self.inputs[i].next != Some(slot) {
                continue;
            }
            let output = self.inputs[i].dests.below(self.n as u64) as u32;
            out.push(Arrival::new(slot, i as u32, output));
            self.inputs[i].next = self.draw_next(i, slot + 1);
        }
    }
}

/// Independent on-off sources: each input alternates geometric ON trains
/// (a cell every slot, all to one freshly drawn destination) and geometric
/// OFF silences.
pub struct OnOffBurstGen {
    n: usize,
    /// Per-slot probability an ON period ends (mean train `1/off_p`).
    off_p: f64,
    /// Per-slot probability an OFF period ends (mean silence `1/on_p`).
    on_p: f64,
    inputs: Vec<OnOffInput>,
}

struct OnOffInput {
    rng: SplitMix64,
    /// Current ON train: emits every slot in `[start, end)` toward `dest`.
    start: Slot,
    end: Slot,
    dest: u32,
}

impl OnOffBurstGen {
    /// A generator over `n` inputs; inputs begin OFF with staggered
    /// (seeded) first trains.
    pub fn new(seed: u64, n: usize, on_p: f64, off_p: f64) -> Self {
        assert!(on_p > 0.0 && on_p <= 1.0, "on_p must be in (0, 1]");
        assert!(off_p > 0.0 && off_p <= 1.0, "off_p must be in (0, 1]");
        let master = SplitMix64::new(seed);
        let inputs = (0..n)
            .map(|i| {
                let mut input = OnOffInput {
                    rng: master.derive(0x0F0F).derive(i as u64),
                    start: 0,
                    end: 0,
                    dest: 0,
                };
                let silence = input.rng.geometric(on_p).min(Slot::MAX / 4);
                input.begin_train(silence, off_p, n);
                input
            })
            .collect();
        OnOffBurstGen {
            n,
            off_p,
            on_p,
            inputs,
        }
    }
}

impl OnOffInput {
    /// Start a train at `start`: draw its destination and length.
    fn begin_train(&mut self, start: Slot, off_p: f64, n: usize) {
        self.start = start;
        self.dest = self.rng.below(n as u64) as u32;
        let len = 1 + self.rng.geometric(off_p).min(Slot::MAX / 4);
        self.end = start.saturating_add(len);
    }
}

impl ArrivalStream for OnOffBurstGen {
    fn ports(&self) -> usize {
        self.n
    }

    fn next_activity(&self, from: Slot) -> Option<Slot> {
        self.inputs.iter().map(|st| st.start.max(from)).min()
    }

    fn emit(&mut self, slot: Slot, out: &mut Vec<Arrival>) {
        let (n, on_p, off_p) = (self.n, self.on_p, self.off_p);
        for (i, st) in self.inputs.iter_mut().enumerate() {
            if slot < st.start || slot >= st.end {
                continue;
            }
            out.push(Arrival::new(slot, i as u32, st.dest));
            if slot + 1 >= st.end {
                // Train over: draw the following silence and next train.
                let silence = st.rng.geometric(on_p).min(Slot::MAX / 4);
                let next_start = st.end.saturating_add(silence);
                st.begin_train(next_start, off_p, n);
            } else {
                // Mid-train: emission resumes next slot; `start` tracks
                // the next emitting slot so `next_activity` stays exact.
                st.start = slot + 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{materialize, materialize_dense};

    fn phases() -> (Phase, Phase) {
        (
            Phase {
                arrival_p: 0.02,
                exit_p: 0.01,
            },
            Phase {
                arrival_p: 0.9,
                exit_p: 0.05,
            },
        )
    }

    #[test]
    fn mmpp_skip_and_dense_walks_agree() {
        let (calm, burst) = phases();
        let a = materialize(&mut MmppGen::new(11, 4, calm, burst), 4_000);
        let b = materialize_dense(&mut MmppGen::new(11, 4, calm, burst), 4_000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn mmpp_burst_phase_is_denser() {
        // Mean load must sit strictly between the two phase rates.
        let (calm, burst) = phases();
        let t = materialize(&mut MmppGen::new(3, 4, calm, burst), 50_000);
        let per_input_slot = t.len() as f64 / (4.0 * 50_000.0);
        assert!(
            per_input_slot > calm.arrival_p * 1.5 && per_input_slot < burst.arrival_p,
            "mean load {per_input_slot} outside ({}, {})",
            calm.arrival_p,
            burst.arrival_p
        );
    }

    #[test]
    fn onoff_skip_and_dense_walks_agree() {
        let a = materialize(&mut OnOffBurstGen::new(21, 4, 0.02, 0.2), 4_000);
        let b = materialize_dense(&mut OnOffBurstGen::new(21, 4, 0.02, 0.2), 4_000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn onoff_trains_share_one_destination() {
        let t = materialize(&mut OnOffBurstGen::new(8, 2, 0.05, 0.1), 2_000);
        // Within any run of consecutive slots on one input, the output is
        // constant; count destination changes vs gaps on input 0.
        let cells: Vec<_> = t.arrivals().iter().filter(|a| a.input.idx() == 0).collect();
        assert!(cells.len() > 10);
        for w in cells.windows(2) {
            if w[1].slot == w[0].slot + 1 {
                assert_eq!(w[0].output, w[1].output, "destination changed mid-train");
            }
        }
    }

    #[test]
    fn sparse_streams_jump_far() {
        // Nearly-always-off stream: next_activity from 0 lands at the
        // first train, which the materializer reaches without slot loops.
        let g = OnOffBurstGen::new(5, 2, 0.0005, 0.5);
        let first = g.next_activity(0).unwrap();
        let t = materialize(&mut OnOffBurstGen::new(5, 2, 0.0005, 0.5), first + 10);
        assert!(t.arrivals().iter().any(|a| a.slot == first));
    }
}
