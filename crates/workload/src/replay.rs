//! Trace replay as an [`ArrivalStream`].
//!
//! Replays a recorded [`Trace`] (typically loaded from the CSV format of
//! `pps_core::trace_io`, as written by `ppslab --trace-out`) through the
//! same streaming interface the stochastic generators use, so captured or
//! externally produced workloads run through exactly the same
//! materialize → lockstep → distribution pipeline. `next_activity` is an
//! O(log cells) cursor lookup, so replaying a sparse capture skips its
//! silences like any other stream.

use crate::stream::ArrivalStream;
use pps_core::prelude::*;

/// Replays the arrivals of a recorded trace, optionally tiled end-to-end
/// `repeat` times (each repetition shifted past the previous horizon).
pub struct ReplayStream {
    n: usize,
    arrivals: Vec<Arrival>,
    cursor: usize,
}

impl ReplayStream {
    /// Replay `trace` for an `n`-port switch once.
    pub fn new(trace: &Trace, n: usize) -> Self {
        Self::repeated(trace, n, 1)
    }

    /// Replay `trace` tiled `repeat` times: repetition `k` is shifted by
    /// `k · (horizon + 1)` so repetitions never collide on `(slot, input)`.
    pub fn repeated(trace: &Trace, n: usize, repeat: u64) -> Self {
        let period = trace.horizon() + 1;
        let mut arrivals = Vec::with_capacity(trace.len() * repeat as usize);
        for k in 0..repeat {
            let base = k * period;
            arrivals.extend(trace.arrivals().iter().map(|a| Arrival {
                slot: a.slot + base,
                ..*a
            }));
        }
        ReplayStream {
            n,
            arrivals,
            cursor: 0,
        }
    }
}

impl ArrivalStream for ReplayStream {
    fn ports(&self) -> usize {
        self.n
    }

    fn next_activity(&self, from: Slot) -> Option<Slot> {
        let rest = &self.arrivals[self.cursor..];
        let i = rest.partition_point(|a| a.slot < from);
        rest.get(i).map(|a| a.slot)
    }

    fn emit(&mut self, slot: Slot, out: &mut Vec<Arrival>) {
        while self.cursor < self.arrivals.len() && self.arrivals[self.cursor].slot == slot {
            out.push(self.arrivals[self.cursor]);
            self.cursor += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{materialize, materialize_dense};

    fn sample() -> Trace {
        Trace::build(
            vec![
                Arrival::new(0, 0, 1),
                Arrival::new(0, 1, 1),
                Arrival::new(7, 0, 0),
                Arrival::new(100, 1, 0),
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn replay_round_trips_the_trace() {
        let t = sample();
        let out = materialize(&mut ReplayStream::new(&t, 2), t.horizon() + 1);
        assert_eq!(out, t);
    }

    #[test]
    fn skip_and_dense_walks_agree() {
        let t = sample();
        let a = materialize(&mut ReplayStream::new(&t, 2), 50);
        let b = materialize_dense(&mut ReplayStream::new(&t, 2), 50);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3, "horizon 50 truncates the slot-100 cell");
    }

    #[test]
    fn repeat_tiles_without_collisions() {
        let t = sample();
        let out = materialize(&mut ReplayStream::repeated(&t, 2, 3), 10_000);
        assert_eq!(out.len(), 3 * t.len());
        // Second repetition starts at horizon+1 = 101.
        assert!(out.arrivals().iter().any(|a| a.slot == 101));
    }

    #[test]
    fn csv_round_trip_feeds_replay() {
        let t = sample();
        let mut buf = Vec::new();
        pps_core::trace_io::write_csv(&t, &mut buf).unwrap();
        let back = pps_core::trace_io::read_csv(&buf[..], 2).unwrap();
        let out = materialize(&mut ReplayStream::new(&back, 2), 200);
        assert_eq!(out, t);
    }
}
