//! Zipf-distributed flow populations.
//!
//! Internet traffic is famously flow-skewed: a handful of elephant flows
//! carry most cells while millions of mice appear once. [`ZipfSampler`]
//! draws flow *ranks* from `P(k) ∝ 1/k^s` over populations of millions of
//! flow ids in O(1) expected time per draw — rejection-inversion after
//! Hörmann & Derflinger ("Rejection-inversion to generate variates from
//! monotone discrete distributions", 1996), the same scheme behind
//! `rand_distr::Zipf` and Apache Commons — no per-rank tables, so a
//! 10⁷-flow population costs five floats of state.
//!
//! [`ZipfGen`] turns the sampler into an [`ArrivalStream`]: each input
//! fires Bernoulli(`load`) slots (pre-drawn geometric gaps, so
//! `next_activity` is exact), each firing picks a flow rank, and the
//! destination output is a pure hash of the flow id — all cells of a flow
//! share one output, which is what makes flow skew *visible* to the
//! switch: hot flows become hot outputs, and per-flow demultiplexors see
//! realistic flow-table churn.

use crate::rng::{mix64, SplitMix64};
use crate::stream::ArrivalStream;
use pps_core::prelude::*;

/// O(1) sampler for `P(k) ∝ 1/k^s`, `k ∈ 1..=n`, by rejection-inversion.
#[derive(Clone, Copy, Debug)]
pub struct ZipfSampler {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    threshold: f64,
}

/// `log(1+x)/x`, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x / 2.0 + x * x / 3.0
    }
}

/// `(exp(x)-1)/x`, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x / 2.0 + x * x / 6.0
    }
}

impl ZipfSampler {
    /// Sampler over ranks `1..=n` with exponent `s > 0` (any `s`,
    /// including the harmonic point `s = 1`, via the `expm1`/`log1p`
    /// helpers).
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "Zipf population must be non-empty");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let mut z = ZipfSampler {
            n,
            s,
            h_x1: 0.0,
            h_n: 0.0,
            threshold: 0.0,
        };
        z.h_x1 = z.h_integral(1.5) - 1.0;
        z.h_n = z.h_integral(n as f64 + 0.5);
        z.threshold = 2.0 - z.h_integral_inverse(z.h_integral(2.5) - z.h(2.0));
        z
    }

    /// `H(x) = ∫ x^-s dx = (x^(1-s) − 1)/(1 − s)` (→ `ln x` at `s = 1`).
    fn h_integral(&self, x: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - self.s) * log_x) * log_x
    }

    /// The density hull `h(x) = x^-s`.
    fn h(&self, x: f64) -> f64 {
        (-self.s * x.ln()).exp()
    }

    /// `H⁻¹(x)`.
    fn h_integral_inverse(&self, x: f64) -> f64 {
        let t = (x * (1.0 - self.s)).max(-1.0);
        (helper1(t) * x).exp()
    }

    /// Population size `n`.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Draw a rank in `1..=n`; expected iterations < 2 for any `s`.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        loop {
            let u = self.h_n + rng.next_f64() * (self.h_x1 - self.h_n);
            let x = self.h_integral_inverse(u);
            let k = (x + 0.5) as u64;
            let k = k.clamp(1, self.n);
            if k as f64 - x <= self.threshold
                || u >= self.h_integral(k as f64 + 0.5) - self.h(k as f64)
            {
                return k;
            }
        }
    }
}

/// Zipf-flow [`ArrivalStream`]: per-input Bernoulli slot occupancy over a
/// shared rank-skewed flow population, destinations hashed from flow ids.
pub struct ZipfGen {
    n: usize,
    load: f64,
    sampler: ZipfSampler,
    /// Salt mixed into the flow→output hash so different seeds shuffle
    /// which outputs are hot.
    flow_salt: u64,
    /// Per-input `(gap stream, flow stream, next arrival slot)`.
    inputs: Vec<InputState>,
}

struct InputState {
    gaps: SplitMix64,
    flows: SplitMix64,
    next: Slot,
}

impl ZipfGen {
    /// A generator for an `n`-port switch: each input fires a cell per
    /// slot with probability `load`, flow ranks drawn Zipf(`s`) over
    /// `flows` ids.
    pub fn new(seed: u64, n: usize, load: f64, s: f64, flows: u64) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be in [0, 1]");
        let master = SplitMix64::new(seed);
        let sampler = ZipfSampler::new(flows, s);
        let inputs = (0..n)
            .map(|i| {
                let mut gaps = master.derive(0x5A1F).derive(i as u64);
                let flows = master.derive(0xF10E).derive(i as u64);
                let first = gaps.geometric(load);
                InputState {
                    gaps,
                    flows,
                    next: first.min(Slot::MAX - 1),
                }
            })
            .collect();
        ZipfGen {
            n,
            load,
            sampler,
            flow_salt: mix64(seed ^ 0x0F10_3A17),
            inputs,
        }
    }

    /// The output all cells of `flow` are destined to — a pure function
    /// of `(flow, seed)`, shared across inputs and across chaos cases so
    /// flow-id reuse really does revisit the same output rings.
    pub fn output_of(&self, flow: u64) -> u32 {
        (mix64(flow ^ self.flow_salt) % self.n as u64) as u32
    }

    /// Pin the flow→output hash salt instead of deriving it from the
    /// seed. Two generators sharing a salt map every flow id to the same
    /// output even when their arrival processes differ — the chaos
    /// harness pins one campaign-wide salt so consecutive cases replay
    /// the same flow universe and keep hammering the same per-output
    /// resequencer rings.
    pub fn with_flow_salt(mut self, salt: u64) -> Self {
        self.flow_salt = salt;
        self
    }
}

impl ArrivalStream for ZipfGen {
    fn ports(&self) -> usize {
        self.n
    }

    fn next_activity(&self, from: Slot) -> Option<Slot> {
        self.inputs.iter().map(|st| st.next.max(from)).min()
    }

    fn emit(&mut self, slot: Slot, out: &mut Vec<Arrival>) {
        for (i, st) in self.inputs.iter_mut().enumerate() {
            if st.next != slot {
                continue;
            }
            let flow = self.sampler.sample(&mut st.flows);
            let output = (mix64(flow ^ self.flow_salt) % self.n as u64) as u32;
            out.push(Arrival::new(slot, i as u32, output));
            let gap = st.gaps.geometric(self.load);
            st.next = slot.saturating_add(1).saturating_add(gap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{materialize, materialize_dense};

    #[test]
    fn sampler_is_in_range_and_skewed() {
        let z = ZipfSampler::new(1_000_000, 1.1);
        let mut rng = SplitMix64::new(3);
        let mut ones = 0usize;
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!((1..=1_000_000).contains(&k));
            if k == 1 {
                ones += 1;
            }
        }
        // P(1) ≈ 1/ζ(1.1, truncated) — comfortably above 5% for s=1.1,
        // while uniform would give 0.0001%.
        assert!(ones > 1_000, "rank 1 drawn only {ones}/20000 times");
    }

    #[test]
    fn sampler_harmonic_exponent_matches_theory() {
        // s = 1 exercises the log-limit branches of the helpers.
        let n = 1000u64;
        let z = ZipfSampler::new(n, 1.0);
        let mut rng = SplitMix64::new(7);
        let draws = 50_000;
        let ones = (0..draws).filter(|_| z.sample(&mut rng) == 1).count();
        let hn: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
        let expect = draws as f64 / hn;
        let got = ones as f64;
        assert!(
            (got - expect).abs() < expect * 0.15,
            "P(rank 1) off: {got} vs {expect}"
        );
    }

    #[test]
    fn skip_and_dense_walks_agree() {
        let mk = || ZipfGen::new(99, 4, 0.05, 1.2, 1 << 20);
        let a = materialize(&mut mk(), 5_000);
        let b = materialize_dense(&mut mk(), 5_000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn load_is_respected() {
        let mut g = ZipfGen::new(5, 8, 0.3, 1.2, 1 << 20);
        let t = materialize(&mut g, 20_000);
        let cells_per_input_slot = t.len() as f64 / (8.0 * 20_000.0);
        assert!(
            (cells_per_input_slot - 0.3).abs() < 0.02,
            "measured load {cells_per_input_slot}"
        );
    }

    #[test]
    fn pinned_salt_overrides_the_seed() {
        // Different seeds, same salt: identical flow→output maps, while
        // the default (seed-derived) maps differ somewhere.
        let a = ZipfGen::new(1, 8, 0.5, 1.2, 1000).with_flow_salt(77);
        let b = ZipfGen::new(2, 8, 0.5, 1.2, 1000).with_flow_salt(77);
        let c = ZipfGen::new(1, 8, 0.5, 1.2, 1000);
        let d = ZipfGen::new(2, 8, 0.5, 1.2, 1000);
        assert!((1..200).all(|f| a.output_of(f) == b.output_of(f)));
        assert!((1..200).any(|f| c.output_of(f) != d.output_of(f)));
    }

    #[test]
    fn flow_destinations_are_stable() {
        let g = ZipfGen::new(42, 8, 0.5, 1.2, 1000);
        let h = ZipfGen::new(42, 8, 0.5, 1.2, 1000);
        for flow in 1..100 {
            assert_eq!(g.output_of(flow), h.output_of(flow));
        }
    }
}
