//! Multi-class cells and the priority-aware output mux path.
//!
//! The engines treat every cell as best-effort FCFS; real egress
//! schedulers differentiate. This module adds the *workload half* of that
//! story without touching the switch fabric: [`ClassedTrace`] tags each
//! arrival with a service class (a pure hash of its `(input, output)` flow
//! — all cells of a flow share a class, as DiffServ marking would), and
//! [`priority_oq_delays`] runs the tagged trace through a strict-priority
//! output-queued mux at rate `R`, one departure per output per slot,
//! always serving the lowest class with backlog.
//!
//! Comparing the per-class delay distributions against the plain FCFS
//! shadow ([`pps_reference::fcfs_departure_times`]) reproduces the
//! qualitative shape of the egress priority-queueing bounds in Kogan
//! et al. (arXiv:1207.5959): high classes buy near-zero tails, low
//! classes absorb the queueing the high classes shed — while total work
//! is conserved, so the *aggregate* delay matches FCFS slot for slot.

use crate::rng::mix64;
use pps_core::prelude::*;
use std::collections::VecDeque;

/// A trace whose cells carry service classes `0..n_classes`, class 0
/// highest priority.
pub struct ClassedTrace {
    /// The underlying arrival sequence (shared with the classless path).
    pub trace: Trace,
    /// `classes[i]` tags `trace.arrivals()[i]`.
    pub classes: Vec<u8>,
    /// Number of distinct classes.
    pub n_classes: u8,
}

impl ClassedTrace {
    /// Tag `trace` with per-flow classes: cells of flow `(input, output)`
    /// all get class `mix64(flow ^ salt) % n_classes`.
    pub fn per_flow(trace: Trace, n_classes: u8, seed: u64) -> Self {
        assert!(n_classes >= 1, "need at least one class");
        let salt = mix64(seed ^ 0x0C1A_55E5);
        let classes = trace
            .arrivals()
            .iter()
            .map(|a| {
                let flow = ((a.input.idx() as u64) << 32) | a.output.idx() as u64;
                (mix64(flow ^ salt) % n_classes as u64) as u8
            })
            .collect();
        ClassedTrace {
            trace,
            classes,
            n_classes,
        }
    }
}

/// Departure slot of every cell under a strict-priority output-queued mux
/// (same arrival model and zero minimum transit as
/// [`pps_reference::oq::ShadowOq`]; within a class, FCFS by arrival
/// order). Returned in `trace.arrivals()` order.
pub fn priority_departure_times(classed: &ClassedTrace, n: usize) -> Vec<Slot> {
    let arrivals = classed.trace.arrivals();
    let nc = classed.n_classes as usize;
    // queues[output][class] holds indices into `arrivals`.
    let mut queues: Vec<Vec<VecDeque<usize>>> = vec![vec![VecDeque::new(); nc]; n];
    let mut backlog = 0usize;
    let mut departs = vec![0 as Slot; arrivals.len()];
    let mut now: Slot = 0;

    let depart_one_slot = |queues: &mut Vec<Vec<VecDeque<usize>>>,
                           backlog: &mut usize,
                           departs: &mut Vec<Slot>,
                           slot: Slot| {
        for output_queues in queues.iter_mut() {
            if let Some(q) = output_queues.iter_mut().find(|q| !q.is_empty()) {
                let idx = q.pop_front().unwrap();
                departs[idx] = slot;
                *backlog -= 1;
            }
        }
    };

    let mut next_idx = 0usize;
    for (slot, group) in classed.trace.by_slot() {
        // Drain the backlog up to this arrival slot; once idle, jump.
        while now < slot && backlog > 0 {
            depart_one_slot(&mut queues, &mut backlog, &mut departs, now);
            now += 1;
        }
        now = slot;
        // by_slot yields consecutive slices of `arrivals`, so the running
        // index identifies each cell.
        for a in group {
            let idx = next_idx;
            next_idx += 1;
            let class = classed.classes[idx] as usize;
            queues[a.output.idx()][class].push_back(idx);
            backlog += 1;
        }
        // Cut-through: a cell may depart in its arrival slot.
        depart_one_slot(&mut queues, &mut backlog, &mut departs, now);
        now += 1;
    }
    while backlog > 0 {
        depart_one_slot(&mut queues, &mut backlog, &mut departs, now);
        now += 1;
    }
    departs
}

/// Per-class queueing-delay samples (`depart − arrival`) under the
/// strict-priority mux: `result[c]` lists every class-`c` cell's delay in
/// arrival order.
pub fn priority_oq_delays(classed: &ClassedTrace, n: usize) -> Vec<Vec<u64>> {
    let departs = priority_departure_times(classed, n);
    let mut per_class = vec![Vec::new(); classed.n_classes as usize];
    for (i, a) in classed.trace.arrivals().iter().enumerate() {
        per_class[classed.classes[i] as usize].push(departs[i] - a.slot);
    }
    per_class
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst_to_one_output(n: usize, cells: usize) -> Trace {
        // `cells` arrivals in slot 0, all to output 0, one per input
        // round-robin over later slots as needed.
        let arrivals = (0..cells)
            .map(|i| Arrival::new((i / n) as Slot, (i % n) as u32, 0))
            .collect();
        Trace::build(arrivals, n).unwrap()
    }

    #[test]
    fn single_class_matches_fcfs_shadow() {
        let t = burst_to_one_output(4, 16);
        let classed = ClassedTrace::per_flow(t.clone(), 1, 9);
        let got = priority_departure_times(&classed, 4);
        let want = pps_reference::fcfs_departure_times(&t, 4);
        assert_eq!(got, want);
    }

    #[test]
    fn work_conservation_holds_across_classes() {
        // The multiset of departure slots per output is schedule-
        // independent for work-conserving muxes: priority vs FCFS differ
        // only in *which* cell takes each slot.
        let t = burst_to_one_output(4, 20);
        let classed = ClassedTrace::per_flow(t.clone(), 3, 5);
        let mut a = priority_departure_times(&classed, 4);
        let mut b = pps_reference::fcfs_departure_times(&t, 4);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn high_class_waits_less() {
        // Saturating burst into one output: class-0 cells must finish no
        // later on average than class-(nc-1) cells.
        let t = burst_to_one_output(8, 64);
        let classed = ClassedTrace::per_flow(t, 2, 17);
        let delays = priority_oq_delays(&classed, 8);
        let mean = |v: &Vec<u64>| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
        assert!(
            !delays[0].is_empty() && !delays[1].is_empty(),
            "hash degenerated to one class"
        );
        assert!(
            mean(&delays[0]) < mean(&delays[1]),
            "priority inversion: {:?} vs {:?}",
            mean(&delays[0]),
            mean(&delays[1])
        );
    }

    #[test]
    fn classes_are_per_flow_stable() {
        let t = Trace::build(
            vec![
                Arrival::new(0, 0, 1),
                Arrival::new(3, 0, 1),
                Arrival::new(9, 0, 1),
            ],
            2,
        )
        .unwrap();
        let classed = ClassedTrace::per_flow(t, 4, 77);
        assert!(classed.classes.windows(2).all(|w| w[0] == w[1]));
    }
}
