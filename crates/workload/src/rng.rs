//! Seeded SplitMix64 — the workload subsystem's one source of randomness.
//!
//! Every generator in this crate draws from [`SplitMix64`] substreams
//! derived from a single master seed through [`SplitMix64::derive`], the
//! same finalizer mix the chaos harness uses for its per-case seeds
//! (`pps_chaos::case_seed`). The primitive itself lives in
//! [`pps_core::rng`] — the sampling crossbar schedulers (`pps-crossbar`)
//! and the power-of-`d` demultiplexor (`pps-switch`) share it — and this
//! module re-exports it so workload call sites and the crate's public API
//! are unchanged. The seed discipline the re-export carries over:
//!
//! * **replayability** — a `(seed, parameters)` pair regenerates the exact
//!   cell stream, byte for byte, on any machine;
//! * **schedule independence** — substreams are derived per input (and per
//!   concern: gaps, flows, destinations), so the stream an input emits
//!   never depends on how many other inputs exist, which slots they fire
//!   in, or how a sweep schedules points across workers;
//! * **allocation-free draws** — the generator state is one `u64`; the hot
//!   path is three multiplies and some xors, with no heap in sight.

pub use pps_core::rng::{mix64, SplitMix64};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chance_extremes_are_exact() {
        let mut r = SplitMix64::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn geometric_matches_its_mean() {
        // Mean of Geometric(p) on {0,1,...} is (1-p)/p.
        let mut r = SplitMix64::new(99);
        for p in [0.5, 0.1, 0.02] {
            let n = 20_000u64;
            let sum: f64 = (0..n).map(|_| r.geometric(p) as f64).sum();
            let mean = sum / n as f64;
            let expect = (1.0 - p) / p;
            assert!(
                (mean - expect).abs() < expect * 0.1 + 0.05,
                "p={p}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn geometric_extremes() {
        let mut r = SplitMix64::new(5);
        assert_eq!(r.geometric(1.0), 0);
        assert_eq!(r.geometric(0.0), u64::MAX);
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
