//! Leaky-bucket shaping: admissible-by-construction stochastic traffic.
//!
//! The paper's delay theorems hold for *admissible* traffic — per-output
//! leaky-bucket conformance (Definition 3) — but a raw stochastic source
//! has no such promise: a Bernoulli stream at load 0.9 will eventually
//! aim `N` cells at one output in one slot. [`Shaped`] closes the gap by
//! policing any inner [`ArrivalStream`] through exact per-output token
//! buckets, dropping non-conforming cells at the source, so the emitted
//! trace provably satisfies the [`LbContract`] it advertises and every
//! envelope/ordering oracle downstream stays valid. The bucket arithmetic
//! is integer-exact over [`pps_core::rate::Ratio`] — the same recurrence
//! `pps_traffic::min_burstiness` measures, so shape-then-measure
//! round-trips exactly.
//!
//! [`UniformGen`] is the plain memoryless source (Bernoulli slots, uniform
//! destinations) used both standalone and as the default shaping inner.

use crate::rng::SplitMix64;
use crate::stream::{ArrivalStream, LbContract};
use pps_core::prelude::*;

/// Memoryless source: each input fires with probability `load` per slot
/// (pre-drawn geometric gaps), destination uniform per cell.
pub struct UniformGen {
    n: usize,
    load: f64,
    inputs: Vec<UniformInput>,
}

struct UniformInput {
    gaps: SplitMix64,
    dests: SplitMix64,
    next: Slot,
}

impl UniformGen {
    /// A uniform Bernoulli generator over `n` inputs at per-input `load`.
    pub fn new(seed: u64, n: usize, load: f64) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be in [0, 1]");
        let master = SplitMix64::new(seed);
        let inputs = (0..n)
            .map(|i| {
                let mut gaps = master.derive(0xBE2A).derive(i as u64);
                let dests = master.derive(0xD0D0).derive(i as u64);
                let first = gaps.geometric(load).min(Slot::MAX - 1);
                UniformInput {
                    gaps,
                    dests,
                    next: first,
                }
            })
            .collect();
        UniformGen { n, load, inputs }
    }
}

impl ArrivalStream for UniformGen {
    fn ports(&self) -> usize {
        self.n
    }

    fn next_activity(&self, from: Slot) -> Option<Slot> {
        self.inputs.iter().map(|st| st.next.max(from)).min()
    }

    fn emit(&mut self, slot: Slot, out: &mut Vec<Arrival>) {
        for (i, st) in self.inputs.iter_mut().enumerate() {
            if st.next != slot {
                continue;
            }
            let output = st.dests.below(self.n as u64) as u32;
            out.push(Arrival::new(slot, i as u32, output));
            let gap = st.gaps.geometric(self.load);
            st.next = slot.saturating_add(1).saturating_add(gap);
        }
    }
}

/// Per-output token-bucket state in `den`-scaled integer units.
struct Lane {
    q: u64,
    last: Slot,
}

/// Polices an inner stream through per-output `(σ, ρ)` buckets; cells that
/// would breach the bucket are dropped before they reach the trace.
pub struct Shaped<S> {
    inner: S,
    contract: LbContract,
    lanes: Vec<Lane>,
    scratch: Vec<Arrival>,
}

impl<S: ArrivalStream> Shaped<S> {
    /// Shape `inner` to `contract` (burst must admit at least one cell).
    pub fn new(inner: S, contract: LbContract) -> Self {
        assert!(contract.burst >= 1, "burst 0 admits no cells at all");
        let lanes = (0..inner.ports()).map(|_| Lane { q: 0, last: 0 }).collect();
        Shaped {
            inner,
            contract,
            lanes,
            scratch: Vec::new(),
        }
    }

    /// The shaping contract (also exposed through
    /// [`ArrivalStream::contract`]).
    pub fn lb(&self) -> LbContract {
        self.contract
    }
}

impl<S: ArrivalStream> ArrivalStream for Shaped<S> {
    fn ports(&self) -> usize {
        self.inner.ports()
    }

    /// Conservative: the inner stream's next candidate. Every cell there
    /// may be dropped, in which case the slot emits nothing and the
    /// materializer just asks again — allowed by the trait contract.
    fn next_activity(&self, from: Slot) -> Option<Slot> {
        self.inner.next_activity(from)
    }

    fn emit(&mut self, slot: Slot, out: &mut Vec<Arrival>) {
        self.scratch.clear();
        self.inner.emit(slot, &mut self.scratch);
        // Same `+num` arrival-slot credit as `LbContract::admits`, so the
        // policer admits exactly what the checker accepts.
        let (num, den) = (self.contract.rate.num(), self.contract.rate.den());
        let cap = self.contract.burst.saturating_mul(den).saturating_add(num);
        for a in &self.scratch {
            let lane = &mut self.lanes[a.output.idx()];
            let decay = (slot - lane.last).saturating_mul(num);
            lane.q = lane.q.saturating_sub(decay);
            lane.last = slot;
            if lane.q + den <= cap {
                lane.q += den;
                out.push(*a);
            }
        }
    }

    fn contract(&self) -> Option<LbContract> {
        Some(self.contract)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{materialize, materialize_dense};

    fn shaped(seed: u64) -> Shaped<UniformGen> {
        Shaped::new(UniformGen::new(seed, 4, 0.9), LbContract::new(3, 4, 4))
    }

    #[test]
    fn emitted_trace_satisfies_its_own_contract() {
        for seed in 0..20 {
            let mut g = shaped(seed);
            let c = g.lb();
            let t = materialize(&mut g, 3_000);
            assert!(
                c.admits(&t, 4),
                "seed {seed}: shaped trace breaches contract"
            );
        }
    }

    #[test]
    fn unshaped_high_load_breaches_where_shaped_does_not() {
        // Sanity that the test above is non-vacuous: the raw inner stream
        // at load 0.9 violates a 3/4-rate bucket.
        let mut raw = UniformGen::new(7, 4, 0.9);
        let t = materialize(&mut raw, 3_000);
        assert!(!LbContract::new(3, 4, 4).admits(&t, 4));
    }

    #[test]
    fn skip_and_dense_walks_agree() {
        let a = materialize(&mut shaped(13), 2_000);
        let b = materialize_dense(&mut shaped(13), 2_000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn uniform_load_is_respected() {
        let mut g = UniformGen::new(2, 8, 0.5);
        let t = materialize(&mut g, 20_000);
        let rho = t.len() as f64 / (8.0 * 20_000.0);
        assert!((rho - 0.5).abs() < 0.02, "measured load {rho}");
    }

    #[test]
    fn shaping_drops_rather_than_delays() {
        // Shaped output is a subset of the raw output: same (slot, input)
        // cells, never re-timed.
        let raw = materialize(&mut UniformGen::new(9, 4, 0.9), 1_000);
        let mut g = Shaped::new(UniformGen::new(9, 4, 0.9), LbContract::new(1, 2, 2));
        let cut = materialize(&mut g, 1_000);
        assert!(cut.len() < raw.len());
        let set: std::collections::HashSet<_> = raw
            .arrivals()
            .iter()
            .map(|a| (a.slot, a.input, a.output))
            .collect();
        for a in cut.arrivals() {
            assert!(set.contains(&(a.slot, a.input, a.output)));
        }
    }
}
