//! # pps-workload — stochastic heavy-traffic workload engine
//!
//! Every trace the simulator switched before this crate came from a
//! scripted worst-case adversary (`pps-traffic`): ideal for confirming the
//! paper's inherent-delay *lower bounds*, silent about the average case a
//! PPS actually serves. This crate supplies the stochastic half — seeded,
//! allocation-lean generators behind one trait:
//!
//! * [`ArrivalStream`] — a lazy arrival process that answers
//!   [`next_activity`](ArrivalStream::next_activity) so materialization
//!   (and everything downstream) skips silence; [`materialize`] turns a
//!   stream into a validated [`pps_core::Trace`] in `O(cells)` for any
//!   horizon — a 10⁸-slot sparse soak is seconds, not hours.
//! * [`ZipfGen`] — Zipf-skewed flow populations over millions of flow ids
//!   (O(1) rejection-inversion sampling), destinations hashed per flow so
//!   elephant flows make hot outputs.
//! * [`MmppGen`] / [`OnOffBurstGen`] — Markov-modulated bursts correlated
//!   across inputs, and independent full-rate on-off trains.
//! * [`UniformGen`] / [`Shaped`] — memoryless baseline, and leaky-bucket
//!   policing that makes any stream *admissible by construction*
//!   ([`LbContract`], integer-exact over [`pps_core::rate::Ratio`]).
//! * [`ReplayStream`] — recorded/CSV traces through the same pipe.
//! * [`classes`] — multi-class tagging and the strict-priority output mux
//!   for per-class tail comparisons.
//!
//! Determinism is the design axis: every generator draws from per-input
//! [`SplitMix64`] substreams derived from one master seed
//! ([`SplitMix64::derive`]), so a `(spec, seed)` pair is a replayable
//! name for a trace — byte-identical across machines, `--jobs` widths,
//! and dense vs skip-ahead walks (property-tested in
//! `tests/property.rs`).
//!
//! [`WorkloadSpec`] is the textual surface: `ppslab --workload
//! "zipf:n=8,load=0.85,s=1.1,flows=1048576,seed=7"` parses here, as do
//! the chaos harness's stochastic corpus draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classes;
pub mod mmpp;
pub mod replay;
pub mod rng;
pub mod shaped;
pub mod spec;
pub mod stream;
pub mod zipf;

pub use classes::{priority_departure_times, priority_oq_delays, ClassedTrace};
pub use mmpp::{MmppGen, OnOffBurstGen, Phase};
pub use replay::ReplayStream;
pub use rng::{mix64, SplitMix64};
pub use shaped::{Shaped, UniformGen};
pub use spec::WorkloadSpec;
pub use stream::{materialize, materialize_dense, ArrivalStream, LbContract};
pub use zipf::{ZipfGen, ZipfSampler};
