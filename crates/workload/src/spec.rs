//! Textual workload specifications — the `--workload` surface.
//!
//! A spec is `family:key=value,key=value,…`; unknown keys are errors (a
//! typoed `laod=` must not silently fall back to a default). Families:
//!
//! | family   | keys (defaults)                                                        |
//! |----------|------------------------------------------------------------------------|
//! | `zipf`   | `n=8` `load=0.8` `s=1.1` `flows=1048576` `seed=1` `horizon=20000`      |
//! | `mmpp`   | `n=8` `calm=0.05` `burst=0.9` `calm_exit=0.01` `burst_exit=0.05` `seed=1` `horizon=20000` |
//! | `onoff`  | `n=8` `on=0.02` `off=0.2` `seed=1` `horizon=20000`                     |
//! | `uniform`| `n=8` `load=0.8` `seed=1` `horizon=20000`                              |
//! | `shaped` | `n=8` `load=0.9` `num=3` `den=4` `burst=8` `seed=1` `horizon=20000`    |
//! | `replay` | `path=<csv>` `n=8` `repeat=1`                                          |
//!
//! The spec string is the unit of reproducibility: report it, and anyone
//! can regenerate the identical trace.

use crate::mmpp::{MmppGen, OnOffBurstGen, Phase};
use crate::replay::ReplayStream;
use crate::shaped::{Shaped, UniformGen};
use crate::stream::{materialize, ArrivalStream, LbContract};
use crate::zipf::ZipfGen;
use pps_core::prelude::*;

/// A parsed `--workload` specification; build streams with
/// [`WorkloadSpec::stream`] or go straight to a trace with
/// [`WorkloadSpec::trace`].
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// Zipf-flow traffic (`zipf:`).
    Zipf {
        /// Switch ports.
        n: usize,
        /// Per-input offered load.
        load: f64,
        /// Zipf exponent.
        s: f64,
        /// Flow-population size.
        flows: u64,
        /// Master seed.
        seed: u64,
        /// Slots to generate.
        horizon: Slot,
    },
    /// Markov-modulated bursts (`mmpp:`).
    Mmpp {
        /// Switch ports.
        n: usize,
        /// Calm and burst phase parameters.
        calm: Phase,
        /// Burst phase.
        burst: Phase,
        /// Master seed.
        seed: u64,
        /// Slots to generate.
        horizon: Slot,
    },
    /// Independent on-off trains (`onoff:`).
    OnOff {
        /// Switch ports.
        n: usize,
        /// Per-slot probability an OFF silence ends.
        on_p: f64,
        /// Per-slot probability an ON train ends.
        off_p: f64,
        /// Master seed.
        seed: u64,
        /// Slots to generate.
        horizon: Slot,
    },
    /// Memoryless uniform traffic (`uniform:`).
    Uniform {
        /// Switch ports.
        n: usize,
        /// Per-input offered load.
        load: f64,
        /// Master seed.
        seed: u64,
        /// Slots to generate.
        horizon: Slot,
    },
    /// Leaky-bucket-policed uniform traffic (`shaped:`).
    Shaped {
        /// Switch ports.
        n: usize,
        /// Per-input offered load of the inner uniform source.
        load: f64,
        /// Bucket contract enforced per output.
        contract: LbContract,
        /// Master seed.
        seed: u64,
        /// Slots to generate.
        horizon: Slot,
    },
    /// CSV trace replay (`replay:`).
    Replay {
        /// Path to a `slot,input,output` CSV.
        path: String,
        /// Switch ports.
        n: usize,
        /// Times to tile the trace end-to-end.
        repeat: u64,
    },
}

fn parse_kvs(body: &str) -> Result<Vec<(&str, &str)>, String> {
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split(',')
        .map(|kv| {
            kv.split_once('=')
                .ok_or_else(|| format!("expected key=value, got {kv:?}"))
        })
        .collect()
}

struct Fields<'a> {
    kvs: Vec<(&'a str, &'a str)>,
    family: &'a str,
}

impl<'a> Fields<'a> {
    fn take(&mut self, key: &str) -> Option<&'a str> {
        let i = self.kvs.iter().position(|(k, _)| *k == key)?;
        Some(self.kvs.remove(i).1)
    }

    fn num<T: std::str::FromStr>(&mut self, key: &str, default: T) -> Result<T, String> {
        match self.take(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{}: bad value for {key}: {v:?}", self.family)),
        }
    }

    fn finish(self) -> Result<(), String> {
        if let Some((k, _)) = self.kvs.first() {
            return Err(format!("{}: unknown key {k:?}", self.family));
        }
        Ok(())
    }
}

impl WorkloadSpec {
    /// Parse `family:key=value,…`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (family, body) = spec.split_once(':').unwrap_or((spec, ""));
        let mut f = Fields {
            kvs: parse_kvs(body)?,
            family,
        };
        let parsed = match family {
            "zipf" => WorkloadSpec::Zipf {
                n: f.num("n", 8)?,
                load: f.num("load", 0.8)?,
                s: f.num("s", 1.1)?,
                flows: f.num("flows", 1 << 20)?,
                seed: f.num("seed", 1)?,
                horizon: f.num("horizon", 20_000)?,
            },
            "mmpp" => WorkloadSpec::Mmpp {
                n: f.num("n", 8)?,
                calm: Phase {
                    arrival_p: f.num("calm", 0.05)?,
                    exit_p: f.num("calm_exit", 0.01)?,
                },
                burst: Phase {
                    arrival_p: f.num("burst", 0.9)?,
                    exit_p: f.num("burst_exit", 0.05)?,
                },
                seed: f.num("seed", 1)?,
                horizon: f.num("horizon", 20_000)?,
            },
            "onoff" => WorkloadSpec::OnOff {
                n: f.num("n", 8)?,
                on_p: f.num("on", 0.02)?,
                off_p: f.num("off", 0.2)?,
                seed: f.num("seed", 1)?,
                horizon: f.num("horizon", 20_000)?,
            },
            "uniform" => WorkloadSpec::Uniform {
                n: f.num("n", 8)?,
                load: f.num("load", 0.8)?,
                seed: f.num("seed", 1)?,
                horizon: f.num("horizon", 20_000)?,
            },
            "shaped" => WorkloadSpec::Shaped {
                n: f.num("n", 8)?,
                load: f.num("load", 0.9)?,
                contract: LbContract::new(
                    f.num("num", 3)?,
                    f.num("den", 4)?,
                    f.num("burst", 8)?,
                ),
                seed: f.num("seed", 1)?,
                horizon: f.num("horizon", 20_000)?,
            },
            "replay" => {
                let path = f
                    .take("path")
                    .ok_or_else(|| "replay: missing required key path=".to_string())?
                    .to_string();
                WorkloadSpec::Replay {
                    path,
                    n: f.num("n", 8)?,
                    repeat: f.num("repeat", 1)?,
                }
            }
            other => {
                return Err(format!(
                    "unknown workload family {other:?} (expected zipf|mmpp|onoff|uniform|shaped|replay)"
                ))
            }
        };
        f.finish()?;
        Ok(parsed)
    }

    /// Switch ports the spec targets.
    pub fn ports(&self) -> usize {
        match *self {
            WorkloadSpec::Zipf { n, .. }
            | WorkloadSpec::Mmpp { n, .. }
            | WorkloadSpec::OnOff { n, .. }
            | WorkloadSpec::Uniform { n, .. }
            | WorkloadSpec::Shaped { n, .. }
            | WorkloadSpec::Replay { n, .. } => n,
        }
    }

    /// The family keyword (for labeling outputs).
    pub fn family(&self) -> &'static str {
        match self {
            WorkloadSpec::Zipf { .. } => "zipf",
            WorkloadSpec::Mmpp { .. } => "mmpp",
            WorkloadSpec::OnOff { .. } => "onoff",
            WorkloadSpec::Uniform { .. } => "uniform",
            WorkloadSpec::Shaped { .. } => "shaped",
            WorkloadSpec::Replay { .. } => "replay",
        }
    }

    /// Build the stream. `Replay` reads its CSV here — the one fallible
    /// constructor.
    pub fn stream(&self) -> Result<Box<dyn ArrivalStream>, String> {
        Ok(match self {
            &WorkloadSpec::Zipf {
                n,
                load,
                s,
                flows,
                seed,
                ..
            } => Box::new(ZipfGen::new(seed, n, load, s, flows)),
            &WorkloadSpec::Mmpp {
                n,
                calm,
                burst,
                seed,
                ..
            } => Box::new(MmppGen::new(seed, n, calm, burst)),
            &WorkloadSpec::OnOff {
                n,
                on_p,
                off_p,
                seed,
                ..
            } => Box::new(OnOffBurstGen::new(seed, n, on_p, off_p)),
            &WorkloadSpec::Uniform { n, load, seed, .. } => {
                Box::new(UniformGen::new(seed, n, load))
            }
            &WorkloadSpec::Shaped {
                n,
                load,
                contract,
                seed,
                ..
            } => Box::new(Shaped::new(UniformGen::new(seed, n, load), contract)),
            WorkloadSpec::Replay { path, n, repeat } => {
                let trace = pps_core::trace_io::load(std::path::Path::new(path), *n)
                    .map_err(|e| format!("replay: {e}"))?;
                Box::new(ReplayStream::repeated(&trace, *n, *repeat))
            }
        })
    }

    /// Materialize the spec into a trace (replay replays to its own
    /// horizon; generators run to their `horizon` key).
    pub fn trace(&self) -> Result<Trace, String> {
        let mut stream = self.stream()?;
        let horizon = match *self {
            WorkloadSpec::Zipf { horizon, .. }
            | WorkloadSpec::Mmpp { horizon, .. }
            | WorkloadSpec::OnOff { horizon, .. }
            | WorkloadSpec::Uniform { horizon, .. }
            | WorkloadSpec::Shaped { horizon, .. } => horizon,
            // Replay everything: the stream knows its own end.
            WorkloadSpec::Replay { .. } => Slot::MAX,
        };
        Ok(materialize(stream.as_mut(), horizon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_defaults_and_overrides() {
        let s = WorkloadSpec::parse("zipf:n=16,load=0.5").unwrap();
        match s {
            WorkloadSpec::Zipf { n, load, s, .. } => {
                assert_eq!(n, 16);
                assert_eq!(load, 0.5);
                assert_eq!(s, 1.1);
            }
            _ => panic!("wrong family"),
        }
        assert!(
            WorkloadSpec::parse("uniform").is_ok(),
            "bare family = all defaults"
        );
    }

    #[test]
    fn rejects_unknown_family_and_keys() {
        assert!(WorkloadSpec::parse("poisson:n=8").is_err());
        assert!(WorkloadSpec::parse("zipf:laod=0.5").is_err());
        assert!(WorkloadSpec::parse("zipf:n").is_err());
        assert!(
            WorkloadSpec::parse("replay:n=4").is_err(),
            "replay needs path"
        );
    }

    #[test]
    fn spec_trace_is_deterministic() {
        let a = WorkloadSpec::parse("mmpp:n=4,seed=9,horizon=3000").unwrap();
        let b = WorkloadSpec::parse("mmpp:n=4,seed=9,horizon=3000").unwrap();
        assert_eq!(a.trace().unwrap(), b.trace().unwrap());
        let c = WorkloadSpec::parse("mmpp:n=4,seed=10,horizon=3000").unwrap();
        assert_ne!(a.trace().unwrap(), c.trace().unwrap());
    }

    #[test]
    fn shaped_spec_traces_are_admissible() {
        let s =
            WorkloadSpec::parse("shaped:n=4,load=0.95,num=1,den=2,burst=4,horizon=4000").unwrap();
        let t = s.trace().unwrap();
        assert!(LbContract::new(1, 2, 4).admits(&t, 4));
    }
}
