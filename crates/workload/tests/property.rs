//! Property tests over the whole generator family: every stream is
//! deterministic under its seed, skip-ahead materialization is exactly
//! the dense walk, the structural one-cell-per-(slot, input) limit holds,
//! and a shaped stream's emitted trace satisfies the leaky-bucket
//! contract it advertises — across randomized parameters, not just the
//! hand-picked ones in the unit tests.

use proptest::prelude::*;

use pps_core::prelude::*;
use pps_workload::{
    materialize, materialize_dense, ArrivalStream, LbContract, Shaped, UniformGen, WorkloadSpec,
};

const HORIZON: Slot = 1_200;

/// A random spec string for one of the five generator families (replay is
/// exercised separately in `replay.rs` unit tests — it needs a file).
fn spec_string(family: usize, n: usize, seed: u64, pct: u32) -> String {
    match family {
        0 => format!("uniform:n={n},seed={seed},load=0.{pct:02}"),
        1 => format!("zipf:n={n},seed={seed},load=0.{pct:02},s=1.15,flows=65536"),
        2 => format!("mmpp:n={n},seed={seed},calm=0.{pct:02},burst=0.9"),
        3 => format!("onoff:n={n},seed={seed},on=0.{pct:02},off=0.25"),
        _ => format!("shaped:n={n},seed={seed},load=0.{pct:02},num=2,den=3,burst=5"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn skip_walk_is_exactly_the_dense_walk(
        family in 0usize..5,
        n in 2usize..9,
        seed in 0u64..100_000,
        pct in 5u32..60,
    ) {
        let spec = WorkloadSpec::parse(&spec_string(family, n, seed, pct)).unwrap();
        let skip = materialize(spec.stream().unwrap().as_mut(), HORIZON);
        let dense = materialize_dense(spec.stream().unwrap().as_mut(), HORIZON);
        prop_assert_eq!(&skip, &dense, "skip/dense diverge for {}", spec.family());
        // Two independently built streams from one spec: the same cells —
        // the seed is the whole story, construction order is not.
        let again = materialize(spec.stream().unwrap().as_mut(), HORIZON);
        prop_assert_eq!(&skip, &again);
    }

    #[test]
    fn streams_respect_the_structural_per_input_limit(
        family in 0usize..5,
        n in 2usize..9,
        seed in 0u64..100_000,
        pct in 30u32..95,
    ) {
        // At most one cell per (slot, input) — every input is a single
        // line at rate 1 — and outputs stay in range. `Trace::build`
        // asserts the former too, but through this trait-level walk the
        // raw emissions are what is being promised.
        let spec = WorkloadSpec::parse(&spec_string(family, n, seed, pct)).unwrap();
        let trace = materialize(spec.stream().unwrap().as_mut(), HORIZON);
        let mut seen = std::collections::HashSet::new();
        for a in trace.arrivals() {
            prop_assert!(a.slot < HORIZON);
            prop_assert!(a.input.idx() < n && a.output.idx() < n);
            prop_assert!(seen.insert((a.slot, a.input)), "two cells on one line");
        }
    }

    #[test]
    fn shaped_streams_admit_their_own_contract(
        n in 2usize..9,
        seed in 0u64..100_000,
        load_pct in 50u32..100,
        num in 1u64..4,
        extra_den in 0u64..3,
        burst in 1u64..8,
    ) {
        // Whatever (σ, ρ) bucket the policer advertises, the emitted
        // trace must pass the *independent* checker — rate below, at, and
        // above the offered load all occur in this range.
        let den = num + extra_den;
        let contract = LbContract::new(num, den, burst);
        let load = f64::from(load_pct.min(99)) / 100.0;
        let mut g = Shaped::new(UniformGen::new(seed, n, load), contract);
        let advertised = g.contract().unwrap();
        let trace = materialize(&mut g, HORIZON);
        prop_assert!(
            advertised.admits(&trace, n),
            "shaped trace breaches its advertised bucket"
        );
    }

    #[test]
    fn spec_parse_round_trips_the_trace(
        family in 0usize..5,
        n in 2usize..6,
        seed in 0u64..1_000,
        pct in 10u32..50,
    ) {
        // The spec string is the unit of reproducibility: parsing the
        // same string twice yields byte-identical traces.
        let s = spec_string(family, n, seed, pct);
        let a = WorkloadSpec::parse(&s).unwrap();
        let b = WorkloadSpec::parse(&s).unwrap();
        prop_assert_eq!(
            materialize(a.stream().unwrap().as_mut(), HORIZON),
            materialize(b.stream().unwrap().as_mut(), HORIZON)
        );
    }
}
