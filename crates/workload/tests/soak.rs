//! 10⁸-slot stochastic soak — the acceptance check that the workload
//! engine plus skip-ahead stepping make horizon effectively free.
//!
//! A sparse on-off stream (mean silence 40 000 slots per input) is
//! materialized over a hundred million slots — O(cells), not O(horizon) —
//! and run through the full bufferless-PPS-vs-shadow-OQ lockstep with
//! skip-ahead stepping. Dense, the same run would execute 10⁸ slot loops
//! per engine; event-driven, it finishes in seconds. The relative-delay
//! envelope is checked at the end, so this is a real experiment at a
//! horizon no dense walk could reach, not just a throughput stunt.

use pps_analysis::{compare_bufferless, relative_delays, TailQuantiles};
use pps_core::prelude::*;
use pps_core::stepping::set_process_default;
use pps_switch::demux::RoundRobinDemux;
use pps_traffic::min_burstiness;
use pps_workload::{materialize, OnOffBurstGen};

#[test]
fn hundred_million_slot_soak_stays_inside_the_envelope() {
    // This binary owns the process, so pinning the stepping default is
    // safe — it is the point of the test.
    set_process_default(Stepping::SkipAhead);

    const N: usize = 4;
    const K: usize = 8;
    const R_PRIME: usize = 2;
    const HORIZON: Slot = 100_000_000;

    let start = std::time::Instant::now();
    let mut gen = OnOffBurstGen::new(20_240_607, N, 2.5e-5, 0.2);
    let trace = materialize(&mut gen, HORIZON);
    assert!(
        trace.len() > 10_000,
        "soak trace too thin to mean anything: {} cells",
        trace.len()
    );
    assert!(
        trace.horizon() > HORIZON / 2,
        "arrivals never reached the far half of the horizon"
    );

    let cfg = PpsConfig::bufferless(N, K, R_PRIME);
    let cmp = compare_bufferless(cfg, RoundRobinDemux::new(N, K), &trace).expect("soak run failed");
    let rel = cmp.relative_delay();
    assert_eq!(rel.pps_undelivered, 0, "cells lost in a fault-free run");

    let b = min_burstiness(&trace, N).overall();
    let envelope = ((R_PRIME as u64) * (N as u64 + K as u64 + b) + 64) as i64;
    let tails = TailQuantiles::from(&relative_delays(&cmp.pps.log, &cmp.oq)).unwrap();
    assert!(
        tails.max <= envelope,
        "relative delay {} above the envelope {envelope}",
        tails.max
    );

    // The elapsed budget is deliberately loose (dense would need hours):
    // the assertion documents the complexity class, not a benchmark.
    let secs = start.elapsed().as_secs();
    assert!(secs < 120, "soak took {secs}s — skip-ahead regressed?");
}
