//! The PPS engines.
//!
//! [`BufferlessPps`] implements the base architecture (Definition 1: an
//! arriving cell is demultiplexed to a plane in its arrival slot);
//! [`BufferedPps`] implements the input-buffered variant of Iyer & McKeown
//! (Definition 2: the demultiplexor may hold arriving cells in a finite
//! input buffer and release any number of buffered cells per slot, subject
//! to the line-rate constraints).
//!
//! Both engines enforce the formal model: per-slot arrival/departure
//! cardinality, the input and output constraints, no cell drops (outside
//! fault-injection), and the information classification — a
//! fully-distributed demultiplexor is handed *no* global view, a `u`-RT one
//! only the snapshot from `u` slots ago, a centralized one the current
//! state.

use crate::fabric::{Fabric, FabricStats};
use pps_core::prelude::*;
use pps_core::stepping::{self, earliest};
use pps_core::telemetry::{self, Engine, EventKind, FaultKind};

/// Outcome of a complete PPS run.
#[derive(Clone, Debug)]
pub struct PpsRun {
    /// Per-cell record (join against the shadow switch's log by cell id).
    pub log: RunLog,
    /// Fabric statistics.
    pub stats: FabricStats,
    /// Slot after the last processed slot (the run's horizon).
    pub end_slot: Slot,
}

/// Shared slot-stepping logic: snapshot bus management.
#[derive(Clone, Debug)]
struct InfoBus {
    ring: Option<SnapshotRing>,
    centralized: bool,
    /// Scratch current snapshot for the centralized class.
    current: Option<GlobalSnapshot>,
}

impl InfoBus {
    fn new(class: InfoClass) -> Self {
        match class {
            InfoClass::FullyDistributed => InfoBus {
                ring: None,
                centralized: false,
                current: None,
            },
            InfoClass::RealTimeDistributed { u } => InfoBus {
                ring: Some(SnapshotRing::new(u.max(1))),
                centralized: false,
                current: None,
            },
            InfoClass::Centralized => InfoBus {
                ring: None,
                centralized: true,
                current: None,
            },
        }
    }

    /// Prepare the view for slot `now`. For the centralized class this is
    /// the state at the start of the slot; for `u`-RT the end-of-slot state
    /// of slot `now − u` (or nothing while `now < u`).
    fn begin_slot(&mut self, now: Slot, fabric: &Fabric, buffers: &[u32]) {
        if self.centralized {
            // Overwrite last slot's snapshot in place: the centralized
            // class allocates once per run, not once per slot.
            match &mut self.current {
                Some(cur) => fabric.snapshot_into(now, buffers, cur),
                None => self.current = Some(fabric.snapshot(now, buffers)),
            }
        }
        let _ = now;
    }

    fn view(&self, now: Slot) -> Option<&GlobalSnapshot> {
        if self.centralized {
            self.current.as_ref()
        } else {
            self.ring.as_ref().and_then(|r| r.view(now))
        }
    }

    /// Record the end-of-slot state, stamped with the slot it covers: the
    /// snapshot tagged `t` reflects all events through slot `t`, so a
    /// `u`-RT demultiplexor deciding at `t` sees exactly the paper's
    /// `[0, t − u]` information window.
    fn end_slot(&mut self, now: Slot, fabric: &Fabric, buffers: &[u32]) {
        if let Some(ring) = &mut self.ring {
            // Once the ring is full (after the first u + 1 slots) every
            // push reuses the buffers of the snapshot it would evict.
            let snap = match ring.recycle_slot() {
                Some(mut old) => {
                    fabric.snapshot_into(now, buffers, &mut old);
                    old
                }
                None => fabric.snapshot(now, buffers),
            };
            ring.push(snap);
        }
    }

    /// Replay the per-slot snapshot pushes of the skipped interval
    /// `[from, to]`. The fabric is frozen across the gap (nothing arrives,
    /// serves, or emits in a skipped slot), so dense stepping would push
    /// the same snapshot contents under each gap slot's tag; only the last
    /// `delay + 1` tags can survive the ring's eviction, so only those are
    /// pushed — tag contiguity among retained entries is preserved either
    /// way, which is what [`SnapshotRing::view`]'s index arithmetic needs.
    fn skip_gap(&mut self, from: Slot, to: Slot, fabric: &Fabric, buffers: &[u32]) {
        let Some(ring) = &mut self.ring else {
            return;
        };
        let start = from.max(to.saturating_sub(ring.delay()));
        for t in start..=to {
            let snap = match ring.recycle_slot() {
                Some(mut old) => {
                    fabric.snapshot_into(t, buffers, &mut old);
                    old
                }
                None => fabric.snapshot(t, buffers),
            };
            ring.push(snap);
        }
    }
}

/// A scripted [`FaultPlan`] being replayed against a run: a cursor over the
/// slot-ordered events. Applied at the very start of each slot, *before*
/// the information bus snapshots, so a centralized demultiplexor observes a
/// mask change in the same slot, a `u`-RT one `u` slots later, and a
/// fully-distributed one never.
#[derive(Clone, Debug, Default)]
struct FaultSchedule {
    /// The plan being replayed, shared rather than copied: replaying one
    /// plan against many runs (the fault experiments' inner loops) clones
    /// a pointer, not the event vec.
    plan: Option<std::sync::Arc<FaultPlan>>,
    next: usize,
}

impl FaultSchedule {
    fn set(&mut self, plan: std::sync::Arc<FaultPlan>) {
        self.plan = Some(plan);
        self.next = 0;
    }

    fn events(&self) -> &[FaultEvent] {
        self.plan.as_deref().map_or(&[], FaultPlan::events)
    }

    /// Activation slot of the next unapplied scripted event, if any.
    /// Always strictly after the last slot [`apply_due`](Self::apply_due)
    /// ran for, since that consumed everything due.
    fn next_activity(&self) -> Option<Slot> {
        self.events().get(self.next).map(|e| e.activates_at())
    }

    fn apply_due(&mut self, now: Slot, fabric: &mut Fabric) -> Result<(), ModelError> {
        while let Some(&ev) = self.events().get(self.next) {
            if ev.activates_at() > now {
                break;
            }
            let (plane, kind) = match ev {
                FaultEvent::PlaneDown { plane, .. } => {
                    fabric.fail_plane(plane.idx())?;
                    (plane, FaultKind::PlaneDown)
                }
                FaultEvent::PlaneUp { plane, .. } => {
                    fabric.recover_plane(plane.idx())?;
                    (plane, FaultKind::PlaneUp)
                }
                FaultEvent::LinkDegraded {
                    input,
                    plane,
                    until,
                    ..
                } => {
                    fabric.degrade_link(input.idx(), plane.idx(), until)?;
                    (plane, FaultKind::LinkDegraded)
                }
            };
            if telemetry::on() {
                telemetry::record(Engine::Pps, now, EventKind::FaultApplied { plane, kind });
            }
            self.next += 1;
        }
        Ok(())
    }
}

const NO_BUFFERS: [u32; 0] = [];

/// A bufferless PPS driven by a [`Demultiplexor`].
pub struct BufferlessPps<D: Demultiplexor> {
    fabric: Fabric,
    demux: D,
    bus: InfoBus,
    faults: FaultSchedule,
    stepping: Stepping,
}

impl<D: Demultiplexor> BufferlessPps<D> {
    /// Build the switch; validates the configuration (which must be
    /// bufferless).
    pub fn new(cfg: PpsConfig, demux: D) -> Result<Self, ModelError> {
        cfg.validate()?;
        if !matches!(cfg.buffer, BufferSpec::Bufferless) {
            return Err(ModelError::InvalidConfig {
                reason: "BufferlessPps requires BufferSpec::Bufferless".into(),
            });
        }
        let bus = InfoBus::new(demux.info_class());
        Ok(BufferlessPps {
            fabric: Fabric::new(cfg),
            demux,
            bus,
            faults: FaultSchedule::default(),
            stepping: stepping::process_default(),
        })
    }

    /// Override the slot-stepping mode (the default is the process-wide
    /// setting at construction time; see [`pps_core::stepping`]). Both
    /// modes produce byte-identical runs.
    pub fn set_stepping(&mut self, mode: Stepping) {
        self.stepping = mode;
    }

    /// Override the intra-run shard count (the default is the process-wide
    /// [`pps_core::workers::set_intra_jobs`] at construction time). Any
    /// value produces byte-identical runs; see DESIGN.md §16.
    pub fn set_intra_jobs(&mut self, n: usize) {
        self.fabric.set_intra_shards(n);
    }

    /// The demultiplexor (e.g. to read algorithm-specific statistics).
    pub fn demux(&self) -> &D {
        &self.demux
    }

    /// The fabric (for congestion probes and statistics mid-run).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Fault-injection: fail plane `plane` from now on. Out-of-range plane
    /// indices are rejected, not a panic.
    pub fn fail_plane(&mut self, plane: usize) -> Result<(), ModelError> {
        self.fabric.fail_plane(plane)
    }

    /// Fault-injection: bring a failed plane back into service.
    pub fn recover_plane(&mut self, plane: usize) -> Result<(), ModelError> {
        self.fabric.recover_plane(plane)
    }

    /// Test-only chaos hook; see `Fabric::inject_conservation_leak`.
    #[doc(hidden)]
    pub fn inject_conservation_leak(&mut self) {
        self.fabric.inject_conservation_leak();
    }

    /// Replay `plan` during the next [`run`](Self::run): each event takes
    /// effect at the start of its slot. Validates the plan against the
    /// switch geometry.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), ModelError> {
        self.set_fault_plan_shared(std::sync::Arc::new(plan.clone()))
    }

    /// Like [`set_fault_plan`](Self::set_fault_plan), but shares the plan
    /// instead of copying it — the cheap path when one plan is replayed
    /// against many runs.
    pub fn set_fault_plan_shared(
        &mut self,
        plan: std::sync::Arc<FaultPlan>,
    ) -> Result<(), ModelError> {
        plan.validate(self.fabric.cfg())?;
        self.faults.set(plan);
        Ok(())
    }

    /// Advance one slot: dispatch this slot's arrivals, serve the planes,
    /// emit at the outputs.
    pub fn slot(
        &mut self,
        now: Slot,
        arrivals: &[Cell],
        log: &mut RunLog,
    ) -> Result<(), ModelError> {
        self.faults.apply_due(now, &mut self.fabric)?;
        self.bus.begin_slot(now, &self.fabric, &NO_BUFFERS);
        self.demux.on_slot(now, self.bus.view(now));
        for cell in arrivals {
            debug_assert_eq!(cell.arrival, now);
            if telemetry::on() {
                telemetry::record(
                    Engine::Pps,
                    now,
                    EventKind::Arrival {
                        cell: cell.id,
                        input: cell.input,
                        output: cell.output,
                    },
                );
            }
            self.fabric.register_arrival(cell);
            // Under link degradation an input can find *every* line busy —
            // the K >= r' guarantee only covers ordinary occupancy. A
            // bufferless input has nowhere to hold the cell: it is lost at
            // the first stage rather than reported as an algorithm bug.
            let any_free = self
                .fabric
                .local_view(cell.input, now)
                .free_planes()
                .next()
                .is_some();
            if !any_free {
                self.fabric.drop_at_input(cell);
                continue;
            }
            let plane = {
                let ctx = DispatchCtx {
                    local: self.fabric.local_view(cell.input, now),
                    global: self.bus.view(now),
                };
                self.demux.dispatch(cell, &ctx)
            };
            if telemetry::on() {
                telemetry::record(
                    Engine::Pps,
                    now,
                    EventKind::DemuxDecision {
                        cell: cell.id,
                        input: cell.input,
                        plane,
                    },
                );
            }
            self.fabric.dispatch(*cell, plane, now, log)?;
        }
        self.fabric.service(now)?;
        self.fabric.emit(now, log);
        self.bus.end_slot(now, &self.fabric, &NO_BUFFERS);
        Ok(())
    }

    /// Cells still inside the switch.
    pub fn backlog(&self) -> usize {
        self.fabric.backlog()
    }

    /// The next slot strictly after `now` at which the switch does
    /// anything beyond per-slot stall accounting, ignoring future arrivals
    /// (the caller owns the arrival stream): the next scripted fault, any
    /// fabric service/emit/watchdog activity, or a demux wake-up. `None`
    /// means the switch is quiescent until the next arrival.
    pub fn next_activity(&self, now: Slot) -> Option<Slot> {
        let mut t = self.faults.next_activity();
        t = earliest(t, self.fabric.next_activity(now));
        t = earliest(t, self.demux.next_activity(now));
        t.map(|s| s.max(now + 1))
    }

    /// Replay the dense loop's per-slot effects over the idle interval
    /// `[from, to]` in closed form: output-stall accounting, information-
    /// bus snapshot pushes, skipped-slot metering. Sound only when no cell
    /// arrives in the interval and [`next_activity`](Self::next_activity)
    /// reported nothing due before `to + 1`.
    pub fn skip_idle(&mut self, from: Slot, to: Slot) {
        self.fabric.skip_idle_slots(from, to);
        self.bus.skip_gap(from, to, &self.fabric, &NO_BUFFERS);
    }

    /// Run a whole trace to completion (arrivals plus drain).
    pub fn run(&mut self, trace: &Trace) -> Result<PpsRun, ModelError> {
        let cells = trace.cells(self.fabric.cfg().n);
        self.fabric.reserve_cells(cells.len());
        let mut log = RunLog::with_cells(&cells);
        let mut next = 0usize;
        let mut now: Slot = 0;
        let cap = drain_cap(trace, self.fabric.cfg());
        let mut scratch: Vec<Cell> = Vec::new();
        while next < cells.len() || self.backlog() > 0 {
            scratch.clear();
            while next < cells.len() && cells[next].arrival == now {
                scratch.push(cells[next]);
                next += 1;
            }
            self.slot(now, &scratch, &mut log)?;
            now += 1;
            if now > cap {
                break; // livelock guard; remaining cells stay undelivered
            }
            if self.stepping == Stepping::SkipAhead && (next < cells.len() || self.backlog() > 0) {
                let next_arrival = cells.get(next).map(|c| c.arrival);
                if next_arrival != Some(now) {
                    let mut target = next_arrival.unwrap_or(Slot::MAX);
                    if let Some(t) = self.next_activity(now - 1) {
                        target = target.min(t);
                    }
                    // Dense walks idle slots through the cap before giving
                    // up, so the jump may go one past it at most.
                    let stop = target.min(cap + 1);
                    if stop > now {
                        self.skip_idle(now, stop - 1);
                        now = stop;
                        if now > cap {
                            break;
                        }
                    }
                }
            }
        }
        Ok(PpsRun {
            log,
            stats: self.fabric.stats(),
            end_slot: now,
        })
    }
}

/// An input-buffered PPS driven by a [`BufferedDemultiplexor`].
pub struct BufferedPps<D: BufferedDemultiplexor> {
    fabric: Fabric,
    demux: D,
    bus: InfoBus,
    faults: FaultSchedule,
    buffers: Vec<std::collections::VecDeque<Cell>>,
    buffer_live: Vec<u32>,
    /// Running total of `buffer_live` — lets the skip logic test "any
    /// buffered cell anywhere" without an O(N) sweep.
    buffered_cells: usize,
    capacity: usize,
    max_buffer_occupancy: usize,
    stepping: Stepping,
    /// Per-slot decision scratch, cleared and refilled for every input so
    /// deciding allocates nothing in the steady state.
    decision: BufferedDecision,
}

impl<D: BufferedDemultiplexor> BufferedPps<D> {
    /// Build the switch; the configuration must specify input buffers.
    pub fn new(cfg: PpsConfig, demux: D) -> Result<Self, ModelError> {
        cfg.validate()?;
        let capacity = match cfg.buffer {
            BufferSpec::Buffered { size } => size,
            BufferSpec::Bufferless => {
                return Err(ModelError::InvalidConfig {
                    reason: "BufferedPps requires BufferSpec::Buffered".into(),
                })
            }
        };
        let bus = InfoBus::new(demux.info_class());
        Ok(BufferedPps {
            fabric: Fabric::new(cfg),
            demux,
            bus,
            faults: FaultSchedule::default(),
            buffers: (0..cfg.n)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            buffer_live: vec![0; cfg.n],
            buffered_cells: 0,
            capacity,
            max_buffer_occupancy: 0,
            stepping: stepping::process_default(),
            decision: BufferedDecision::default(),
        })
    }

    /// Override the slot-stepping mode; see [`BufferlessPps::set_stepping`].
    pub fn set_stepping(&mut self, mode: Stepping) {
        self.stepping = mode;
    }

    /// Override the intra-run shard count; see
    /// [`BufferlessPps::set_intra_jobs`].
    pub fn set_intra_jobs(&mut self, n: usize) {
        self.fabric.set_intra_shards(n);
    }

    /// The demultiplexor.
    pub fn demux(&self) -> &D {
        &self.demux
    }

    /// The fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Highest input-buffer occupancy reached.
    pub fn max_buffer_occupancy(&self) -> usize {
        self.max_buffer_occupancy
    }

    /// Fault-injection: fail plane `plane` from now on. Out-of-range plane
    /// indices are rejected, not a panic.
    pub fn fail_plane(&mut self, plane: usize) -> Result<(), ModelError> {
        self.fabric.fail_plane(plane)
    }

    /// Fault-injection: bring a failed plane back into service.
    pub fn recover_plane(&mut self, plane: usize) -> Result<(), ModelError> {
        self.fabric.recover_plane(plane)
    }

    /// Test-only chaos hook; see `Fabric::inject_conservation_leak`.
    #[doc(hidden)]
    pub fn inject_conservation_leak(&mut self) {
        self.fabric.inject_conservation_leak();
    }

    /// Replay `plan` during the next [`run`](Self::run); see
    /// [`BufferlessPps::set_fault_plan`].
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), ModelError> {
        self.set_fault_plan_shared(std::sync::Arc::new(plan.clone()))
    }

    /// Like [`set_fault_plan`](Self::set_fault_plan), but shares the plan
    /// instead of copying it; see [`BufferlessPps::set_fault_plan_shared`].
    pub fn set_fault_plan_shared(
        &mut self,
        plan: std::sync::Arc<FaultPlan>,
    ) -> Result<(), ModelError> {
        plan.validate(self.fabric.cfg())?;
        self.faults.set(plan);
        Ok(())
    }

    /// Advance one slot. `arrivals` must be sorted by input port (as
    /// produced by [`Trace::cells`]); the demultiplexor is consulted per
    /// input in port order, matching the global-FCFS tie-break.
    pub fn slot(
        &mut self,
        now: Slot,
        arrivals: &[Cell],
        log: &mut RunLog,
    ) -> Result<(), ModelError> {
        self.faults.apply_due(now, &mut self.fabric)?;
        self.bus.begin_slot(now, &self.fabric, &self.buffer_live);
        let mut arr_iter = arrivals.iter().peekable();
        for input in 0..self.fabric.cfg().n {
            let arrival = arr_iter.next_if(|c| c.input.idx() == input).copied();
            if arrival.is_none() && self.buffers[input].is_empty() {
                continue;
            }
            if let Some(c) = arrival {
                debug_assert_eq!(c.arrival, now);
                if telemetry::on() {
                    telemetry::record(
                        Engine::Pps,
                        now,
                        EventKind::Arrival {
                            cell: c.id,
                            input: c.input,
                            output: c.output,
                        },
                    );
                }
                self.fabric.register_arrival(&c);
            }
            let mut decision = std::mem::take(&mut self.decision);
            decision.clear();
            {
                let buf = self.buffers[input].make_contiguous();
                let ctx = DispatchCtx {
                    local: self.fabric.local_view(PortId(input as u32), now),
                    global: self.bus.view(now),
                };
                self.demux.slot_decision(
                    PortId(input as u32),
                    arrival.as_ref(),
                    buf,
                    &ctx,
                    &mut decision,
                );
            }
            let applied = self.apply_decision(input, now, arrival, &mut decision, log);
            // Hand the scratch (and its allocation) back before surfacing
            // any model error.
            self.decision = decision;
            applied?;
        }
        self.fabric.service(now)?;
        self.fabric.emit(now, log);
        self.bus.end_slot(now, &self.fabric, &self.buffer_live);
        Ok(())
    }

    fn apply_decision(
        &mut self,
        input: usize,
        now: Slot,
        arrival: Option<Cell>,
        decision: &mut BufferedDecision,
        log: &mut RunLog,
    ) -> Result<(), ModelError> {
        // Validate and perform releases, highest index first so earlier
        // indices stay valid during removal.
        let releases = &mut decision.releases;
        releases.sort_by_key(|r| std::cmp::Reverse(r.0));
        for w in releases.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(ModelError::BadBufferIndex {
                    input: PortId(input as u32),
                    index: w[0].0,
                });
            }
        }
        for &(idx, plane) in releases.iter() {
            let cell = self.buffers[input]
                .remove(idx)
                .ok_or(ModelError::BadBufferIndex {
                    input: PortId(input as u32),
                    index: idx,
                })?;
            self.buffer_live[input] -= 1;
            self.buffered_cells -= 1;
            if telemetry::on() {
                telemetry::record(
                    Engine::Pps,
                    now,
                    EventKind::DemuxDecision {
                        cell: cell.id,
                        input: cell.input,
                        plane,
                    },
                );
            }
            self.fabric.dispatch(cell, plane, now, log)?;
        }
        match (arrival, decision.arrival) {
            (Some(cell), Some(ArrivalAction::Dispatch(plane))) => {
                if telemetry::on() {
                    telemetry::record(
                        Engine::Pps,
                        now,
                        EventKind::DemuxDecision {
                            cell: cell.id,
                            input: cell.input,
                            plane,
                        },
                    );
                }
                self.fabric.dispatch(cell, plane, now, log)?;
            }
            (Some(cell), Some(ArrivalAction::Enqueue)) | (Some(cell), None) => {
                // A missing action defaults to buffering: the model forbids
                // dropping, so the engine never discards an arrival.
                if self.buffers[input].len() >= self.capacity {
                    return Err(ModelError::BufferOverflow {
                        input: PortId(input as u32),
                        capacity: self.capacity,
                        cell: cell.id,
                    });
                }
                self.buffers[input].push_back(cell);
                self.buffer_live[input] += 1;
                self.buffered_cells += 1;
                self.max_buffer_occupancy =
                    self.max_buffer_occupancy.max(self.buffers[input].len());
            }
            (None, _) => {}
        }
        Ok(())
    }

    /// Cells still inside the switch (buffers + fabric).
    pub fn backlog(&self) -> usize {
        self.fabric.backlog() + self.buffered_cells
    }

    /// Next-activity lookahead; see [`BufferlessPps::next_activity`].
    ///
    /// While input buffers hold cells, each occupied input's wake-up comes
    /// from the demultiplexor's
    /// [`buffered_next_activity`](BufferedDemultiplexor::buffered_next_activity)
    /// for its head cell (conservative default: the very next slot, the
    /// pre-PR-8 dense behavior) — so hold-for-`u` style algorithms let
    /// buffered runs skip idle gaps too. Waking early is always safe (the
    /// dense walk would have decided "hold" and mutated nothing).
    pub fn next_activity(&self, now: Slot) -> Option<Slot> {
        let mut t = self.faults.next_activity();
        t = earliest(t, self.fabric.next_activity(now));
        t = earliest(t, self.demux.next_activity(now));
        if self.buffered_cells > 0 {
            for (input, buf) in self.buffers.iter().enumerate() {
                if t == Some(now + 1) {
                    break; // cannot get earlier than the next slot
                }
                let Some(head) = buf.front() else { continue };
                let view = self.fabric.local_view(PortId(input as u32), now);
                t = earliest(
                    t,
                    self.demux
                        .buffered_next_activity(PortId(input as u32), head, &view),
                );
            }
        }
        t.map(|s| s.max(now + 1))
    }

    /// Closed-form idle-interval replay; see [`BufferlessPps::skip_idle`].
    pub fn skip_idle(&mut self, from: Slot, to: Slot) {
        self.fabric.skip_idle_slots(from, to);
        self.bus.skip_gap(from, to, &self.fabric, &self.buffer_live);
    }

    /// Run a whole trace to completion (arrivals plus drain).
    pub fn run(&mut self, trace: &Trace) -> Result<PpsRun, ModelError> {
        let cells = trace.cells(self.fabric.cfg().n);
        self.fabric.reserve_cells(cells.len());
        let mut log = RunLog::with_cells(&cells);
        let mut next = 0usize;
        let mut now: Slot = 0;
        let cap = drain_cap(trace, self.fabric.cfg());
        let mut scratch: Vec<Cell> = Vec::new();
        while next < cells.len() || self.backlog() > 0 {
            scratch.clear();
            while next < cells.len() && cells[next].arrival == now {
                scratch.push(cells[next]);
                next += 1;
            }
            self.slot(now, &scratch, &mut log)?;
            now += 1;
            if now > cap {
                break;
            }
            if self.stepping == Stepping::SkipAhead && (next < cells.len() || self.backlog() > 0) {
                let next_arrival = cells.get(next).map(|c| c.arrival);
                if next_arrival != Some(now) {
                    let mut target = next_arrival.unwrap_or(Slot::MAX);
                    if let Some(t) = self.next_activity(now - 1) {
                        target = target.min(t);
                    }
                    let stop = target.min(cap + 1);
                    if stop > now {
                        self.skip_idle(now, stop - 1);
                        now = stop;
                        if now > cap {
                            break;
                        }
                    }
                }
            }
        }
        Ok(PpsRun {
            log,
            stats: self.fabric.stats(),
            end_slot: now,
        })
    }
}

/// Generous upper bound on how long draining a trace can take: every cell
/// serialized through one line plus slack. Runs hitting the cap report the
/// leftovers as undelivered instead of spinning forever.
fn drain_cap(trace: &Trace, cfg: &PpsConfig) -> Slot {
    trace.horizon()
        + (trace.len() as Slot + 1) * (cfg.r_prime as Slot + 1)
        + cfg.buffer.capacity() as Slot
        + 64
}

/// Convenience: run `trace` through a fresh bufferless PPS.
pub fn run_bufferless<D: Demultiplexor>(
    cfg: PpsConfig,
    demux: D,
    trace: &Trace,
) -> Result<PpsRun, ModelError> {
    BufferlessPps::new(cfg, demux)?.run(trace)
}

/// Convenience: run `trace` through a fresh input-buffered PPS.
pub fn run_buffered<D: BufferedDemultiplexor>(
    cfg: PpsConfig,
    demux: D,
    trace: &Trace,
) -> Result<PpsRun, ModelError> {
    BufferedPps::new(cfg, demux)?.run(trace)
}

/// Convenience: run `trace` through a fresh bufferless PPS while replaying
/// the scripted `faults`.
pub fn run_bufferless_with_faults<D: Demultiplexor>(
    cfg: PpsConfig,
    demux: D,
    trace: &Trace,
    faults: &FaultPlan,
) -> Result<PpsRun, ModelError> {
    let mut pps = BufferlessPps::new(cfg, demux)?;
    pps.set_fault_plan(faults)?;
    pps.run(trace)
}

/// Convenience: run `trace` through a fresh input-buffered PPS while
/// replaying the scripted `faults`.
pub fn run_buffered_with_faults<D: BufferedDemultiplexor>(
    cfg: PpsConfig,
    demux: D,
    trace: &Trace,
    faults: &FaultPlan,
) -> Result<PpsRun, ModelError> {
    let mut pps = BufferedPps::new(cfg, demux)?;
    pps.set_fault_plan(faults)?;
    pps.run(trace)
}
