//! Output multiplexors.
//!
//! The third stage of the PPS: each output port gathers cells delivered by
//! up to `K` planes and emits at most one cell per slot on the external
//! line. Because a flow's cells may ride different planes with different
//! queuing, the multiplexor is where order is re-established. Three
//! emission disciplines are supported (see
//! [`pps_core::OutputDiscipline`]): flow-FIFO resequencing (default),
//! global FCFS (exact mimicking of a FCFS output-queued switch, footnote 3
//! of the paper), and unordered greedy (ablation only).
//!
//! The mux holds bare [`CellId`]s — metadata lives in the fabric's
//! [`CellPool`] — and FlowFifo deliveries are *batched per slot*: each
//! [`deliver`](OutputMux::deliver) classifies its cell (so per-cell
//! telemetry keeps the exact delivery order) but defers the heap push and
//! the gap-timer refresh to [`flush_batch`](OutputMux::flush_batch), which
//! pushes every newly-eligible cell in one heap extend and refreshes each
//! touched input's gap timer once. Deferral is sound because all of a
//! slot's refreshes share the same `now`: the timer's end-of-slot state
//! depends only on the final blocked/eligible state, which the batch and
//! the per-delivery sequence agree on.

use pps_core::prelude::*;
use pps_core::telemetry::{self, Engine, EventKind};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Key ordering eligible cells: earliest switch arrival first, then global
/// id (which encodes input order within a slot).
type EmitKey = (Slot, CellId);

/// Sparse sequence-indexed ring holding one flow's gap-blocked cell ids.
///
/// Cells wait here keyed by their per-flow sequence number; at any moment
/// the pending seqs live in a window no wider than the flow's in-switch
/// reordering span, so a power-of-two ring addressed by `seq & (cap − 1)`
/// holds them collision-free (capacity grows to cover the live span; the
/// occupancy check compares the stored seq, so a stale slot can never
/// masquerade as a hit). Insert, remove-min, and min queries are O(1)
/// amortized — the resequencer's whole hot path, which previously walked a
/// `BTreeMap` per delivery and per emission. Slots store `(seq, id)` — two
/// words — instead of a whole `Cell`.
#[derive(Clone, Debug, Default)]
struct SeqRing {
    /// Power-of-two slot array (empty until the first insert).
    slots: Vec<Option<(u32, CellId)>>,
    /// Pending-cell count.
    len: usize,
    /// Exact smallest pending seq (meaningful while `len > 0`).
    min_seq: u32,
    /// Exact largest pending seq (meaningful while `len > 0`).
    max_seq: u32,
}

impl SeqRing {
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Smallest pending seq, if any.
    fn min_seq(&self) -> Option<u32> {
        (self.len > 0).then_some(self.min_seq)
    }

    /// Grow (rehash) until `span` consecutive seqs fit collision-free.
    fn ensure_span(&mut self, span: usize) {
        if span <= self.slots.len() {
            return;
        }
        let new_cap = span.next_power_of_two().max(8);
        let mut new_slots = vec![None; new_cap];
        for (seq, id) in self.slots.drain(..).flatten() {
            new_slots[seq as usize & (new_cap - 1)] = Some((seq, id));
        }
        self.slots = new_slots;
    }

    /// Park cell `id` under its sequence number `seq`.
    fn insert(&mut self, seq: u32, id: CellId) {
        let (lo, hi) = if self.len == 0 {
            (seq, seq)
        } else {
            (self.min_seq.min(seq), self.max_seq.max(seq))
        };
        self.ensure_span((hi - lo) as usize + 1);
        let mask = self.slots.len() - 1;
        let slot = &mut self.slots[seq as usize & mask];
        debug_assert!(slot.is_none(), "duplicate seq {seq} delivered");
        *slot = Some((seq, id));
        self.len += 1;
        self.min_seq = lo;
        self.max_seq = hi;
    }

    /// Take the cell parked under `seq`, if present. Callers only ever
    /// remove the current minimum (the head the flow is waiting on), so
    /// the min is maintained by scanning forward from the vacated slot.
    fn remove(&mut self, seq: u32) -> Option<CellId> {
        if self.len == 0 {
            return None;
        }
        let cap = self.slots.len();
        let slot = &mut self.slots[seq as usize & (cap - 1)];
        match slot {
            Some((s, _)) if *s == seq => {}
            _ => return None,
        }
        let (_, id) = slot.take().expect("matched above");
        self.len -= 1;
        if self.len > 0 && seq == self.min_seq {
            let mut s = seq + 1;
            self.min_seq = loop {
                if matches!(&self.slots[s as usize & (cap - 1)], Some((q, _)) if *q == s) {
                    break s;
                }
                s += 1;
            };
        }
        Some(id)
    }
}

/// One output port's multiplexor.
#[derive(Clone, Debug)]
pub struct OutputMux {
    discipline: OutputDiscipline,
    /// Which output port this mux serves (telemetry track id; defaults to
    /// port 0 for muxes built outside a fabric, e.g. unit tests).
    port: PortId,
    /// Cells eligible for emission right now, min-ordered by [`EmitKey`].
    /// (A binary heap, not a BTreeMap: insert/pop-min dominate the hot
    /// path and keys are never removed out of order.)
    eligible: BinaryHeap<Reverse<EmitKey>>,
    /// FlowFifo: emit keys classified eligible this slot but not yet pushed
    /// — flushed into `eligible` in one extend by `flush_batch`.
    pending: Vec<EmitKey>,
    /// FlowFifo: inputs that received a delivery this slot and need one
    /// gap-timer refresh at flush (deduplicated; at most K entries).
    touched: Vec<u32>,
    /// FlowFifo: cells waiting for earlier cells of their flow, per input
    /// (seq-indexed rings — O(1) park/unpark, see [`SeqRing`]).
    reorder: Vec<SeqRing>,
    /// FlowFifo: next expected sequence number per input.
    next_seq: Vec<u32>,
    /// FlowFifo: cells of each input currently in `eligible` or `pending`
    /// (a flow with an eligible cell is progressing, not gap-blocked).
    eligible_count: Vec<u32>,
    /// FlowFifo: slot since which each input's flow has been gap-blocked
    /// (cells in reorder, none eligible) — the watchdog's per-flow timer.
    blocked_since: Vec<Option<Slot>>,
    /// GlobalFcfs: ids of cells bound for this output that are inside the
    /// switch but have not yet been emitted (registered at dispatch time).
    /// Kept sorted; the bufferless engine registers in increasing id order
    /// so insertion is an O(1) push, and the buffered engine's occasional
    /// out-of-order dispatch falls back to a binary-search insert.
    in_flight: VecDeque<CellId>,
    /// GlobalFcfs: cells parked at the mux, min-heap by id (emission only
    /// ever takes the oldest; ids are globally unique and encode FCFS
    /// order).
    present: BinaryHeap<Reverse<CellId>>,
    /// Number of cells currently held (all disciplines).
    held: usize,
    /// High-water mark of `held`.
    max_held: usize,
    /// Total emitted.
    emitted: u64,
    /// Resequencer watchdog: skip ahead after this many consecutive
    /// stalled slots (`None` disables).
    watchdog: Option<Slot>,
    /// First slot of the current stall (held cells but nothing emitted).
    stalled_since: Option<Slot>,
    /// Cells the watchdog declared lost (skipped past).
    skipped: u64,
    /// Slots in which the mux held cells but emitted nothing.
    stalled_slots: u64,
    /// Cells that arrived after the watchdog had skipped past them and
    /// were discarded to preserve the already-emitted order.
    late_dropped: u64,
}

impl OutputMux {
    /// An empty multiplexor for an `n`-input switch.
    pub fn new(n: usize, discipline: OutputDiscipline) -> Self {
        OutputMux {
            discipline,
            port: PortId(0),
            eligible: BinaryHeap::new(),
            pending: Vec::new(),
            touched: Vec::new(),
            reorder: (0..n).map(|_| SeqRing::default()).collect(),
            next_seq: vec![0; n],
            eligible_count: vec![0; n],
            blocked_since: vec![None; n],
            in_flight: VecDeque::new(),
            present: BinaryHeap::new(),
            held: 0,
            max_held: 0,
            emitted: 0,
            watchdog: None,
            stalled_since: None,
            skipped: 0,
            stalled_slots: 0,
            late_dropped: 0,
        }
    }

    /// Configure the resequencer watchdog (see [`PpsConfig::watchdog`]):
    /// after `timeout` consecutive slots in which cells are held but none
    /// can be emitted, the mux skips past the missing cell(s). The timeout
    /// fires *during* the `timeout`-th consecutive blocked slot — a limit
    /// of 1 skips in the very slot the stall is first observed.
    pub fn set_watchdog(&mut self, timeout: Option<Slot>) {
        self.watchdog = timeout;
    }

    /// Tell the mux which output port it serves, so its telemetry events
    /// land on the right track.
    pub fn set_port(&mut self, port: PortId) {
        self.port = port;
    }

    /// GlobalFcfs only: register that `id` has entered the switch bound for
    /// this output (called by the engine at dispatch time, so the mux knows
    /// whether an earlier cell is still in transit).
    pub fn register_in_flight(&mut self, id: CellId) {
        if self.discipline == OutputDiscipline::GlobalFcfs {
            match self.in_flight.back() {
                Some(&last) if last >= id => {
                    // Buffered engine releasing an older buffered cell
                    // after a younger immediate dispatch: keep sorted.
                    if let Err(pos) = self.in_flight.binary_search(&id) {
                        self.in_flight.insert(pos, id);
                    }
                }
                _ => self.in_flight.push_back(id),
            }
        }
    }

    /// GlobalFcfs only: remove a registration made by
    /// [`register_in_flight`](Self::register_in_flight) for a cell that
    /// will never arrive (lost to a failed plane), so the mux does not wait
    /// for it forever.
    pub fn unregister_in_flight(&mut self, id: CellId) {
        if let Ok(pos) = self.in_flight.binary_search(&id) {
            self.in_flight.remove(pos);
        }
    }

    /// A plane delivered cell `id` to this output in slot `now`. Returns
    /// `false` if the cell was discarded as *late*: the watchdog had
    /// already skipped past it, so emitting it now would reorder cells
    /// already sent on the external line. (Without a watchdog every
    /// delivery is accepted.)
    ///
    /// FlowFifo heap pushes and gap-timer refreshes are deferred to
    /// [`flush_batch`](Self::flush_batch); [`emit`](Self::emit) flushes
    /// implicitly, so deliver/emit sequences need no explicit flush.
    pub fn deliver(&mut self, pool: &CellPool, id: CellId, now: Slot) -> bool {
        match self.discipline {
            OutputDiscipline::FlowFifo => {
                let i = pool.input(id).idx();
                let seq = pool.seq(id);
                if seq < self.next_seq[i] {
                    self.late_dropped += 1;
                    return false;
                }
                self.held += 1;
                self.max_held = self.max_held.max(self.held);
                if seq == self.next_seq[i] {
                    self.eligible_count[i] += 1;
                    self.pending.push((pool.arrival(id), id));
                } else {
                    if telemetry::on() {
                        telemetry::record(
                            Engine::Pps,
                            now,
                            EventKind::ReseqHold {
                                cell: id,
                                output: self.port,
                            },
                        );
                    }
                    self.reorder[i].insert(seq, id);
                }
                let i = i as u32;
                if !self.touched.contains(&i) {
                    self.touched.push(i);
                }
            }
            OutputDiscipline::GlobalFcfs => {
                if self.in_flight.binary_search(&id).is_err() {
                    self.late_dropped += 1;
                    return false;
                }
                self.held += 1;
                self.max_held = self.max_held.max(self.held);
                if telemetry::on() && self.in_flight.front() != Some(&id) {
                    // Parked behind a straggler still in transit.
                    telemetry::record(
                        Engine::Pps,
                        now,
                        EventKind::ReseqHold {
                            cell: id,
                            output: self.port,
                        },
                    );
                }
                self.present.push(Reverse(id));
            }
            OutputDiscipline::Greedy => {
                self.held += 1;
                self.max_held = self.max_held.max(self.held);
                self.eligible.push(Reverse((pool.arrival(id), id)));
            }
        }
        true
    }

    /// Deliver a whole slot's arrivals for this output in one call. Cells
    /// are classified in order — the per-cell telemetry
    /// (`ReseqHold`, late drops) is identical to calling
    /// [`deliver`](Self::deliver) per cell — and then the batch is flushed:
    /// every newly-eligible cell lands in the heap via one extend and each
    /// touched input's gap timer is refreshed once. Returns how many cells
    /// were accepted (not late-dropped).
    pub fn deliver_batch(&mut self, pool: &CellPool, ids: &[CellId], now: Slot) -> usize {
        let mut accepted = 0usize;
        for &id in ids {
            if self.deliver(pool, id, now) {
                accepted += 1;
            }
        }
        self.flush_batch(now);
        accepted
    }

    /// Flush deliveries deferred by [`deliver`](Self::deliver): one heap
    /// extend for all pending eligible cells, one gap-timer refresh per
    /// touched input. Idempotent; called automatically at the start of
    /// [`emit`](Self::emit).
    pub fn flush_batch(&mut self, now: Slot) {
        if !self.pending.is_empty() {
            self.eligible.extend(self.pending.drain(..).map(Reverse));
        }
        for k in 0..self.touched.len() {
            let i = self.touched[k] as usize;
            self.refresh_gap(i, now);
        }
        self.touched.clear();
    }

    fn push_eligible(&mut self, pool: &CellPool, id: CellId) {
        self.eligible_count[pool.input(id).idx()] += 1;
        self.eligible.push(Reverse((pool.arrival(id), id)));
    }

    /// Restart or clear input `i`'s gap timer: the flow is gap-blocked iff
    /// it has cells waiting in reorder and none eligible (an eligible cell
    /// means the flow is progressing — it will emit and advance `next_seq`).
    fn refresh_gap(&mut self, i: usize, now: Slot) {
        if self.reorder[i].is_empty() || self.eligible_count[i] > 0 {
            self.blocked_since[i] = None;
        } else if self.blocked_since[i].is_none() {
            self.blocked_since[i] = Some(now);
        }
    }

    /// Emit at most one cell in slot `now`, per the discipline. Tracks
    /// stalls (held cells, nothing emittable) and, when the watchdog is
    /// armed, skips past missing cells after the configured timeout —
    /// per-flow for FlowFifo (a gap must not wait behind other flows'
    /// emissions), whole-mux for GlobalFcfs (where a straggler blocks
    /// everything by definition).
    pub fn emit(&mut self, pool: &CellPool, now: Slot) -> Option<CellId> {
        self.flush_batch(now);
        if self.watchdog.is_some() && self.discipline == OutputDiscipline::FlowFifo {
            self.expire_gaps(pool, now);
        }
        if let Some(id) = self.try_emit(pool, now) {
            self.stalled_since = None;
            return Some(id);
        }
        if self.held == 0 {
            self.stalled_since = None;
            return None;
        }
        let since = *self.stalled_since.get_or_insert(now);
        if let Some(limit) = self.watchdog {
            if self.discipline == OutputDiscipline::GlobalFcfs && now - since + 1 >= limit {
                self.skip_stragglers(now);
                self.stalled_since = None;
                if let Some(id) = self.try_emit(pool, now) {
                    // The skip unblocked an emission, so by definition
                    // ("held cells but emitted nothing") this slot is not
                    // stalled — it must not be counted below.
                    return Some(id);
                }
            }
        }
        self.stalled_slots += 1;
        None
    }

    /// FlowFifo watchdog: skip past the gap of every flow that has been
    /// blocked for the timeout, making its waiting head eligible.
    fn expire_gaps(&mut self, pool: &CellPool, now: Slot) {
        let limit = self.watchdog.expect("caller checked");
        for i in 0..self.blocked_since.len() {
            let Some(since) = self.blocked_since[i] else {
                continue;
            };
            if now - since + 1 < limit {
                continue;
            }
            let seq = self.reorder[i]
                .min_seq()
                .expect("blocked flows have waiting cells");
            // The gap [next_seq, seq) is declared lost.
            let lost = seq - self.next_seq[i];
            self.skipped += u64::from(lost);
            self.next_seq[i] = seq;
            let head = self.reorder[i].remove(seq).expect("min seq is present");
            if telemetry::on() {
                telemetry::record(
                    Engine::Pps,
                    now,
                    EventKind::WatchdogDrop {
                        output: self.port,
                        cells: lost,
                    },
                );
                telemetry::record(
                    Engine::Pps,
                    now,
                    EventKind::ReseqRelease {
                        cell: head,
                        output: self.port,
                    },
                );
            }
            self.push_eligible(pool, head);
            self.refresh_gap(i, now);
        }
    }

    fn try_emit(&mut self, pool: &CellPool, now: Slot) -> Option<CellId> {
        let id = match self.discipline {
            OutputDiscipline::FlowFifo => {
                let Reverse((_, id)) = self.eligible.pop()?;
                let i = pool.input(id).idx();
                self.eligible_count[i] -= 1;
                self.next_seq[i] = pool.seq(id) + 1;
                // The successor may now be eligible.
                if let Some(next) = self.reorder[i].remove(self.next_seq[i]) {
                    if telemetry::on() {
                        telemetry::record(
                            Engine::Pps,
                            now,
                            EventKind::ReseqRelease {
                                cell: next,
                                output: self.port,
                            },
                        );
                    }
                    self.push_eligible(pool, next);
                }
                self.refresh_gap(i, now);
                id
            }
            OutputDiscipline::GlobalFcfs => {
                // Emit the oldest present cell only if nothing older is
                // still in transit inside the switch.
                let &Reverse(oldest_present) = self.present.peek()?;
                let &oldest_in_flight = self
                    .in_flight
                    .front()
                    .expect("present cells are always registered in flight");
                if oldest_present != oldest_in_flight {
                    return None; // wait for the straggler
                }
                self.in_flight.pop_front();
                self.present.pop().expect("peeked above").0
            }
            OutputDiscipline::Greedy => {
                let Reverse((_, id)) = self.eligible.pop()?;
                id
            }
        };
        self.held -= 1;
        self.emitted += 1;
        Some(id)
    }

    /// GlobalFcfs watchdog: abandon in-flight registrations older than the
    /// oldest present cell — they are the stragglers blocking emission.
    /// Called by [`emit`](Self::emit) once a whole-mux stall outlives the
    /// watchdog timeout.
    fn skip_stragglers(&mut self, now: Slot) {
        let Some(&Reverse(oldest_present)) = self.present.peek() else {
            return;
        };
        let mut abandoned = 0u32;
        while let Some(&oldest) = self.in_flight.front() {
            if oldest >= oldest_present {
                break;
            }
            self.in_flight.pop_front();
            self.skipped += 1;
            abandoned += 1;
        }
        if abandoned > 0 && telemetry::on() {
            telemetry::record(
                Engine::Pps,
                now,
                EventKind::WatchdogDrop {
                    output: self.port,
                    cells: abandoned,
                },
            );
        }
    }

    /// Whether a dense [`emit`](Self::emit) call right now would emit a
    /// cell without watchdog help: FlowFifo/Greedy need an eligible (or
    /// batch-pending) cell, GlobalFcfs needs the oldest present cell to be
    /// the oldest still registered in flight.
    pub fn can_emit(&self) -> bool {
        match self.discipline {
            OutputDiscipline::FlowFifo | OutputDiscipline::Greedy => {
                !self.eligible.is_empty() || !self.pending.is_empty()
            }
            OutputDiscipline::GlobalFcfs => match self.present.peek() {
                Some(&Reverse(oldest)) => self.in_flight.front() == Some(&oldest),
                None => false,
            },
        }
    }

    /// The next slot strictly after `now` at which this mux does something
    /// beyond stall accounting: emits a cell, or fires a watchdog. `None`
    /// means the mux is inert until its next delivery (which the fabric's
    /// agenda tracks) — an unarmed watchdog stalls indefinitely.
    ///
    /// Used by skip-ahead stepping: slots in between are replayed in
    /// closed form by [`skip_idle`](Self::skip_idle).
    pub fn next_activity(&self, now: Slot) -> Option<Slot> {
        if self.held == 0 {
            return None;
        }
        if self.can_emit() {
            return Some(now + 1);
        }
        let limit = self.watchdog?;
        match self.discipline {
            // A blocked flow's gap expires during its limit-th consecutive
            // blocked slot: `since + limit - 1`.
            OutputDiscipline::FlowFifo => self
                .blocked_since
                .iter()
                .flatten()
                .map(|&since| (since + limit - 1).max(now + 1))
                .min(),
            // Whole-mux stall clock; if it has not started yet, dense would
            // start it at the next stalled slot (`now + 1`).
            OutputDiscipline::GlobalFcfs => {
                Some((self.stalled_since.unwrap_or(now + 1) + limit - 1).max(now + 1))
            }
            // Greedy with held cells always has an eligible cell, so
            // `can_emit` above already returned.
            OutputDiscipline::Greedy => None,
        }
    }

    /// Replay the stall accounting of the dense loop over the skipped
    /// interval `[from, to]` in closed form. Every slot in the interval
    /// must be one where a dense [`emit`](Self::emit) would have held cells
    /// but emitted nothing and fired no watchdog — which is exactly what
    /// [`next_activity`](Self::next_activity) guarantees for slots before
    /// the one it reports.
    pub fn skip_idle(&mut self, from: Slot, to: Slot) {
        debug_assert!(self.held > 0 && !self.can_emit(), "skipped a live slot");
        self.stalled_slots += to - from + 1;
        // Dense `emit` starts the whole-mux stall clock at the first
        // stalled slot of the gap.
        if self.stalled_since.is_none() {
            self.stalled_since = Some(from);
        }
    }

    /// Cells currently held at the mux.
    pub fn held(&self) -> usize {
        self.held
    }

    /// Whether the mux could possibly emit this slot (cheap pre-check used
    /// by the engine's active-output tracking).
    pub fn has_work(&self) -> bool {
        self.held > 0
    }

    /// High-water mark of held cells — the output-side buffer requirement.
    pub fn max_held(&self) -> usize {
        self.max_held
    }

    /// Total cells emitted.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Cells the watchdog skipped past (declared lost).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Slots in which cells were held but nothing could be emitted.
    pub fn stalled_slots(&self) -> u64 {
        self.stalled_slots
    }

    /// Cells discarded on delivery because the watchdog had already skipped
    /// past them.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, input: u32, seq: u32, arrival: Slot) -> Cell {
        Cell {
            id: CellId(id),
            input: PortId(input),
            output: PortId(0),
            seq,
            arrival,
        }
    }

    /// Pool-backed test harness: mirrors the fabric's pool bookkeeping so
    /// test bodies read like the pre-pool API.
    struct Rig {
        pool: CellPool,
        m: OutputMux,
    }

    impl Rig {
        fn new(n: usize, discipline: OutputDiscipline) -> Self {
            Rig {
                pool: CellPool::new(),
                m: OutputMux::new(n, discipline),
            }
        }

        fn deliver(&mut self, c: Cell, now: Slot) -> bool {
            self.pool.ensure(&c);
            self.m.deliver(&self.pool, c.id, now)
        }

        fn emit(&mut self, now: Slot) -> Option<CellId> {
            self.m.emit(&self.pool, now)
        }

        fn emit_seq(&mut self, now: Slot) -> Option<u32> {
            self.emit(now).map(|id| self.pool.seq(id))
        }
    }

    #[test]
    fn flow_fifo_resequences_within_flow() {
        let mut m = Rig::new(2, OutputDiscipline::FlowFifo);
        // Flow from input 0 delivered out of order: seq 1 first.
        assert!(m.deliver(cell(1, 0, 1, 1), 0));
        assert_eq!(m.emit(0), None); // seq 0 missing — blocked
        assert!(m.deliver(cell(0, 0, 0, 0), 1));
        assert_eq!(m.emit(1), Some(CellId(0)));
        assert_eq!(m.emit(2), Some(CellId(1)));
        assert_eq!(m.emit(3), None);
    }

    #[test]
    fn flow_fifo_does_not_block_other_flows() {
        let mut m = Rig::new(2, OutputDiscipline::FlowFifo);
        m.deliver(cell(5, 0, 1, 5), 0); // blocked: waits for seq 0 of input 0
        m.deliver(cell(7, 1, 0, 7), 0); // eligible
        assert_eq!(m.emit(0), Some(CellId(7)));
        assert_eq!(m.emit(1), None);
        assert_eq!(m.m.held(), 1);
    }

    #[test]
    fn flow_fifo_prefers_earliest_arrival() {
        let mut m = Rig::new(2, OutputDiscipline::FlowFifo);
        m.deliver(cell(9, 1, 0, 9), 9);
        m.deliver(cell(3, 0, 0, 3), 9);
        assert_eq!(m.emit(9), Some(CellId(3)));
    }

    #[test]
    fn global_fcfs_waits_for_stragglers() {
        let mut m = Rig::new(2, OutputDiscipline::GlobalFcfs);
        m.m.register_in_flight(CellId(1));
        m.m.register_in_flight(CellId(2));
        m.deliver(cell(2, 1, 0, 0), 0);
        // Cell 1 is still in a plane: the mux must idle.
        assert_eq!(m.emit(0), None);
        m.deliver(cell(1, 0, 0, 0), 1);
        assert_eq!(m.emit(1), Some(CellId(1)));
        assert_eq!(m.emit(2), Some(CellId(2)));
    }

    #[test]
    fn greedy_emits_anything_earliest_first() {
        let mut m = Rig::new(2, OutputDiscipline::Greedy);
        m.deliver(cell(5, 0, 1, 5), 0); // out of order within its flow — greedy does not care
        m.deliver(cell(8, 0, 0, 8), 0);
        assert_eq!(m.emit(0), Some(CellId(5)));
        assert_eq!(m.emit(1), Some(CellId(8)));
    }

    #[test]
    fn high_water_mark() {
        let mut m = Rig::new(1, OutputDiscipline::FlowFifo);
        m.deliver(cell(0, 0, 0, 0), 0);
        m.deliver(cell(1, 0, 1, 0), 0);
        m.emit(0);
        m.deliver(cell(2, 0, 2, 0), 1);
        assert_eq!(m.m.max_held(), 2);
        assert_eq!(m.m.emitted(), 1);
    }

    #[test]
    fn deliver_batch_matches_per_cell_delivery() {
        // Same cells, same slot: one batched call vs. per-cell calls with
        // the implicit flush at emit. Emission order and counters agree.
        let cells = [
            cell(4, 0, 1, 4), // blocked behind seq 0 of input 0
            cell(2, 1, 0, 2), // eligible
            cell(3, 0, 0, 3), // fills input 0's gap
        ];
        let mut batched = Rig::new(2, OutputDiscipline::FlowFifo);
        for c in &cells {
            batched.pool.ensure(c);
        }
        let ids: Vec<CellId> = cells.iter().map(|c| c.id).collect();
        assert_eq!(batched.m.deliver_batch(&batched.pool, &ids, 5), 3);
        let mut single = Rig::new(2, OutputDiscipline::FlowFifo);
        for c in &cells {
            assert!(single.deliver(*c, 5));
        }
        for now in 5..9 {
            assert_eq!(batched.emit(now), single.emit(now));
        }
        assert_eq!(batched.m.held(), 0);
        assert_eq!(single.m.held(), 0);
    }

    #[test]
    fn watchdog_skips_past_a_lost_cell() {
        let mut m = Rig::new(1, OutputDiscipline::FlowFifo);
        m.m.set_watchdog(Some(3));
        // seq 0 was lost to a failed plane; seq 1 and 2 arrive in slot 10.
        m.deliver(cell(1, 0, 1, 1), 10);
        m.deliver(cell(2, 0, 2, 2), 10);
        assert_eq!(m.emit(10), None); // gap blocked 1 slot
        assert_eq!(m.emit(11), None); // gap blocked 2 slots
                                      // Third blocked slot hits the 3-slot timeout: skip past seq 0 and
                                      // emit seq 1 in the same slot.
        assert_eq!(m.emit_seq(12), Some(1));
        assert_eq!(m.emit_seq(13), Some(2));
        assert_eq!(m.m.skipped(), 1);
        assert_eq!(m.m.stalled_slots(), 2);
    }

    #[test]
    fn watchdog_fires_during_limit_th_blocked_slot_exactly() {
        // Slot-exact pin of the boundary: with limit L, a gap first
        // observed blocked in slot s fires in slot s + L − 1 (the L-th
        // consecutive blocked slot), not one slot later. Counters pin the
        // DESIGN.md definitions: the firing slot emits, so only the L − 1
        // preceding slots count as stalled; the gap counts as skipped.
        for limit in 1..=4u64 {
            let mut m = Rig::new(1, OutputDiscipline::FlowFifo);
            m.m.set_watchdog(Some(limit));
            m.deliver(cell(1, 0, 1, 1), 20);
            for offset in 0..limit - 1 {
                assert_eq!(m.emit(20 + offset), None, "limit {limit}: blocked");
            }
            assert_eq!(
                m.emit_seq(20 + limit - 1),
                Some(1),
                "limit {limit}: must fire in the {limit}-th blocked slot"
            );
            assert_eq!(m.m.skipped(), 1);
            assert_eq!(m.m.stalled_slots(), limit - 1);
            assert_eq!(m.m.late_dropped(), 0);
        }
    }

    #[test]
    fn watchdog_gap_timer_ignores_other_flow_progress() {
        let mut m = Rig::new(2, OutputDiscipline::FlowFifo);
        m.m.set_watchdog(Some(4));
        m.deliver(cell(9, 0, 1, 0), 0); // waits for seq 0 of input 0
        assert_eq!(m.emit(0), None);
        assert_eq!(m.emit(1), None);
        // Another flow emits in slot 2 — but the gap timer is per flow, so
        // input 0's countdown keeps running instead of resetting (a busy mux
        // must not let gap-blocked flows rot behind other flows' progress).
        m.deliver(cell(4, 1, 0, 1), 2);
        assert_eq!(m.emit(2), Some(CellId(4)));
        // Slot 3 is the 4th slot input 0 has been blocked: timeout fires.
        assert_eq!(m.emit(3), Some(CellId(9)));
        assert_eq!(m.m.skipped(), 1);
    }

    #[test]
    fn late_cell_is_dropped_not_reordered() {
        let mut m = Rig::new(1, OutputDiscipline::FlowFifo);
        m.m.set_watchdog(Some(1));
        m.deliver(cell(1, 0, 1, 1), 5);
        // Immediate skip past missing seq 0.
        assert_eq!(m.emit_seq(5), Some(1));
        // seq 0 shows up late (straggler from a slow plane): emitting it now
        // would reorder the flow, so it must be discarded.
        assert!(!m.deliver(cell(0, 0, 0, 0), 6));
        assert_eq!(m.emit(6), None);
        assert_eq!(m.m.late_dropped(), 1);
        assert_eq!(m.m.held(), 0);
    }

    #[test]
    fn expired_gaps_emit_in_emit_key_order() {
        let mut m = Rig::new(2, OutputDiscipline::FlowFifo);
        m.m.set_watchdog(Some(1));
        // Both inputs are gap-blocked and both timeouts expire in slot 0,
        // so both gaps are declared lost at once; emission then follows the
        // emit key — input 1's waiting cell arrived earlier and goes first.
        m.deliver(cell(10, 0, 3, 7), 0);
        m.deliver(cell(11, 1, 2, 4), 0);
        assert_eq!(m.emit(0), Some(CellId(11)));
        assert_eq!(m.m.skipped(), 5); // seqs 0–1 of input 1 and 0–2 of input 0
        assert_eq!(m.emit(1), Some(CellId(10)));
    }

    #[test]
    fn global_fcfs_watchdog_abandons_stragglers() {
        let mut m = Rig::new(2, OutputDiscipline::GlobalFcfs);
        m.m.set_watchdog(Some(2));
        m.m.register_in_flight(CellId(1));
        m.m.register_in_flight(CellId(2));
        m.deliver(cell(2, 1, 0, 0), 0);
        assert_eq!(m.emit(0), None); // waiting for cell 1
                                     // Second stalled slot: give up on cell 1 and emit cell 2.
        assert_eq!(m.emit(1), Some(CellId(2)));
        assert_eq!(m.m.skipped(), 1);
        // If cell 1 then limps in, it is late: accepted order already went out.
        assert!(!m.deliver(cell(1, 0, 0, 0), 2));
        assert_eq!(m.m.late_dropped(), 1);
    }

    #[test]
    fn global_fcfs_firing_slot_that_emits_is_not_stalled() {
        // Regression for the stall counter: the slot in which the watchdog
        // fires *and* an emission goes out must not be counted stalled —
        // DESIGN.md defines stalled_slots as "held cells but emitted
        // nothing". Before the fix the counter was bumped before the
        // watchdog check, over-counting every firing slot by one.
        let mut m = Rig::new(2, OutputDiscipline::GlobalFcfs);
        m.m.set_watchdog(Some(3));
        m.m.register_in_flight(CellId(1));
        m.m.register_in_flight(CellId(2));
        m.deliver(cell(2, 1, 0, 0), 0);
        assert_eq!(m.emit(0), None); // stall slot 1
        assert_eq!(m.emit(1), None); // stall slot 2
        assert_eq!(m.emit(2), Some(CellId(2))); // fires and emits
        assert_eq!(m.m.stalled_slots(), 2);
        assert_eq!(m.m.skipped(), 1);
    }

    #[test]
    fn next_activity_names_flow_fifo_fire_slot_and_skip_idle_matches_dense() {
        // Skip-ahead boundary audit: for every watchdog limit, the fire
        // slot predicted by next_activity must equal the slot a dense
        // emit walk actually fires in, and replaying the gap via
        // skip_idle must leave stalled_slots (and everything else the
        // SeqRing path tracks) identical to the dense walk.
        for limit in 2..=6u64 {
            let mk = || {
                let mut r = Rig::new(1, OutputDiscipline::FlowFifo);
                r.m.set_watchdog(Some(limit));
                // seq 0 lost; seq 1 waits behind the gap from slot 20 on.
                r.deliver(cell(1, 0, 1, 1), 20);
                r
            };
            let mut dense = mk();
            let mut fire_slot = None;
            for now in 20..20 + limit + 2 {
                if dense.emit(now).is_some() {
                    fire_slot = Some(now);
                    break;
                }
            }
            let fire_slot = fire_slot.expect("watchdog must fire");
            assert_eq!(fire_slot, 20 + limit - 1);

            let mut skip = mk();
            assert_eq!(skip.emit(20), None); // the slot the stall is observed
            assert_eq!(
                skip.m.next_activity(20),
                Some(fire_slot),
                "limit {limit}: predicted wake-up is off"
            );
            if fire_slot > 21 {
                skip.m.skip_idle(21, fire_slot - 1);
            }
            assert_eq!(skip.emit_seq(fire_slot), Some(1));
            assert_eq!(skip.m.stalled_slots(), dense.m.stalled_slots());
            assert_eq!(skip.m.skipped(), dense.m.skipped());
            assert_eq!(skip.m.emitted(), dense.m.emitted());
            assert_eq!(skip.m.held(), dense.m.held());
        }
    }

    #[test]
    fn next_activity_names_global_fcfs_fire_slot_and_skip_idle_matches_dense() {
        // Same audit for the whole-mux stall: stalled_since is only
        // materialized by the first idle emit, and next_activity must
        // predict the fire slot from it (or conservatively from now + 1
        // when no idle emit has run yet — covered by the engine-level
        // equivalence suite).
        for limit in 2..=6u64 {
            let mk = || {
                let mut r = Rig::new(2, OutputDiscipline::GlobalFcfs);
                r.m.set_watchdog(Some(limit));
                r.m.register_in_flight(CellId(1));
                r.m.register_in_flight(CellId(2));
                r.deliver(cell(2, 1, 0, 0), 0); // cell 1 never arrives
                r
            };
            let mut dense = mk();
            let mut fire_slot = None;
            for now in 0..limit + 2 {
                if dense.emit(now).is_some() {
                    fire_slot = Some(now);
                    break;
                }
            }
            let fire_slot = fire_slot.expect("watchdog must fire");
            assert_eq!(fire_slot, limit - 1);

            let mut skip = mk();
            assert_eq!(skip.emit(0), None);
            assert_eq!(
                skip.m.next_activity(0),
                Some(fire_slot),
                "limit {limit}: predicted wake-up is off"
            );
            if fire_slot > 1 {
                skip.m.skip_idle(1, fire_slot - 1);
            }
            assert_eq!(skip.emit(fire_slot), Some(CellId(2)));
            assert_eq!(skip.m.stalled_slots(), dense.m.stalled_slots());
            assert_eq!(skip.m.skipped(), dense.m.skipped());
            assert_eq!(skip.m.late_dropped(), dense.m.late_dropped());
        }
    }

    #[test]
    fn next_activity_without_watchdog_is_quiescent_while_blocked() {
        // A gap-blocked mux with no watchdog can do nothing until the
        // next delivery: next_activity must report None (the engine then
        // waits on arrivals/faults alone) and a multi-slot skip must
        // account exactly the jumped span as stalled.
        let mut m = Rig::new(1, OutputDiscipline::FlowFifo);
        m.deliver(cell(1, 0, 1, 1), 10);
        assert_eq!(m.emit(10), None);
        assert_eq!(m.m.next_activity(10), None);
        m.m.skip_idle(11, 10_010);
        assert_eq!(m.m.stalled_slots(), 1 + 10_000);
        // The straggler finally arrives: the flow unblocks as in dense.
        assert!(m.deliver(cell(0, 0, 0, 0), 10_011));
        assert_eq!(m.emit_seq(10_011), Some(0));
        assert_eq!(m.emit_seq(10_012), Some(1));
        assert_eq!(m.m.skipped(), 0);
    }

    #[test]
    fn next_activity_is_immediate_when_emittable_or_empty() {
        // Emittable backlog → next activity is the very next slot; empty
        // mux → quiescent regardless of discipline or watchdog.
        for d in [
            OutputDiscipline::FlowFifo,
            OutputDiscipline::GlobalFcfs,
            OutputDiscipline::Greedy,
        ] {
            let mut m = Rig::new(1, d);
            m.m.set_watchdog(Some(4));
            assert_eq!(m.m.next_activity(7), None, "{d:?}: empty mux");
            m.m.register_in_flight(CellId(0));
            m.deliver(cell(0, 0, 0, 0), 7);
            m.m.flush_batch(7);
            assert_eq!(m.m.next_activity(7), Some(8), "{d:?}: emittable");
        }
    }
}
