//! Output multiplexors.
//!
//! The third stage of the PPS: each output port gathers cells delivered by
//! up to `K` planes and emits at most one cell per slot on the external
//! line. Because a flow's cells may ride different planes with different
//! queuing, the multiplexor is where order is re-established. Three
//! emission disciplines are supported (see
//! [`pps_core::OutputDiscipline`]): flow-FIFO resequencing (default),
//! global FCFS (exact mimicking of a FCFS output-queued switch, footnote 3
//! of the paper), and unordered greedy (ablation only).

use pps_core::prelude::*;
use pps_core::telemetry::{self, Engine, EventKind};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Key ordering eligible cells: earliest switch arrival first, then global
/// id (which encodes input order within a slot).
type EmitKey = (Slot, CellId);

/// Heap entry ordered by [`EmitKey`] alone (cell ids are unique, so the
/// key equality is consistent with `Eq`).
#[derive(Clone, Debug)]
struct Eligible(EmitKey, Cell);

impl PartialEq for Eligible {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Eligible {}
impl PartialOrd for Eligible {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Eligible {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

/// Heap entry for GlobalFcfs cells parked at the mux, min-ordered by cell
/// id (ids are globally unique and encode FCFS order).
#[derive(Clone, Debug)]
struct ById(Cell);

impl PartialEq for ById {
    fn eq(&self, other: &Self) -> bool {
        self.0.id == other.0.id
    }
}
impl Eq for ById {}
impl PartialOrd for ById {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ById {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.id.cmp(&other.0.id)
    }
}

/// Sparse sequence-indexed ring holding one flow's gap-blocked cells.
///
/// Cells wait here keyed by their per-flow sequence number; at any moment
/// the pending seqs live in a window no wider than the flow's in-switch
/// reordering span, so a power-of-two ring addressed by `seq & (cap − 1)`
/// holds them collision-free (capacity grows to cover the live span; the
/// occupancy check compares the stored seq, so a stale slot can never
/// masquerade as a hit). Insert, remove-min, and min queries are O(1)
/// amortized — the resequencer's whole hot path, which previously walked a
/// `BTreeMap` per delivery and per emission.
#[derive(Clone, Debug, Default)]
struct SeqRing {
    /// Power-of-two slot array (empty until the first insert).
    slots: Vec<Option<Cell>>,
    /// Pending-cell count.
    len: usize,
    /// Exact smallest pending seq (meaningful while `len > 0`).
    min_seq: u32,
    /// Exact largest pending seq (meaningful while `len > 0`).
    max_seq: u32,
}

impl SeqRing {
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Smallest pending seq, if any.
    fn min_seq(&self) -> Option<u32> {
        (self.len > 0).then_some(self.min_seq)
    }

    /// Grow (rehash) until `span` consecutive seqs fit collision-free.
    fn ensure_span(&mut self, span: usize) {
        if span <= self.slots.len() {
            return;
        }
        let new_cap = span.next_power_of_two().max(8);
        let mut new_slots = vec![None; new_cap];
        for cell in self.slots.drain(..).flatten() {
            new_slots[cell.seq as usize & (new_cap - 1)] = Some(cell);
        }
        self.slots = new_slots;
    }

    /// Park `cell` under its sequence number.
    fn insert(&mut self, cell: Cell) {
        let seq = cell.seq;
        let (lo, hi) = if self.len == 0 {
            (seq, seq)
        } else {
            (self.min_seq.min(seq), self.max_seq.max(seq))
        };
        self.ensure_span((hi - lo) as usize + 1);
        let mask = self.slots.len() - 1;
        let slot = &mut self.slots[seq as usize & mask];
        debug_assert!(slot.is_none(), "duplicate seq {seq} delivered");
        *slot = Some(cell);
        self.len += 1;
        self.min_seq = lo;
        self.max_seq = hi;
    }

    /// Take the cell parked under `seq`, if present. Callers only ever
    /// remove the current minimum (the head the flow is waiting on), so
    /// the min is maintained by scanning forward from the vacated slot.
    fn remove(&mut self, seq: u32) -> Option<Cell> {
        if self.len == 0 {
            return None;
        }
        let cap = self.slots.len();
        let slot = &mut self.slots[seq as usize & (cap - 1)];
        match slot {
            Some(c) if c.seq == seq => {}
            _ => return None,
        }
        let cell = slot.take();
        self.len -= 1;
        if self.len > 0 && seq == self.min_seq {
            let mut s = seq + 1;
            self.min_seq = loop {
                if matches!(&self.slots[s as usize & (cap - 1)], Some(c) if c.seq == s) {
                    break s;
                }
                s += 1;
            };
        }
        cell
    }
}

/// One output port's multiplexor.
#[derive(Clone, Debug)]
pub struct OutputMux {
    discipline: OutputDiscipline,
    /// Which output port this mux serves (telemetry track id; defaults to
    /// port 0 for muxes built outside a fabric, e.g. unit tests).
    port: PortId,
    /// Cells eligible for emission right now, min-ordered by [`EmitKey`].
    /// (A binary heap, not a BTreeMap: insert/pop-min dominate the hot
    /// path and keys are never removed out of order.)
    eligible: BinaryHeap<Reverse<Eligible>>,
    /// FlowFifo: cells waiting for earlier cells of their flow, per input
    /// (seq-indexed rings — O(1) park/unpark, see [`SeqRing`]).
    reorder: Vec<SeqRing>,
    /// FlowFifo: next expected sequence number per input.
    next_seq: Vec<u32>,
    /// FlowFifo: cells of each input currently in `eligible` (a flow with
    /// an eligible cell is progressing, not gap-blocked).
    eligible_count: Vec<u32>,
    /// FlowFifo: slot since which each input's flow has been gap-blocked
    /// (cells in reorder, none eligible) — the watchdog's per-flow timer.
    blocked_since: Vec<Option<Slot>>,
    /// GlobalFcfs: ids of cells bound for this output that are inside the
    /// switch but have not yet been emitted (registered at dispatch time).
    /// Kept sorted; the bufferless engine registers in increasing id order
    /// so insertion is an O(1) push, and the buffered engine's occasional
    /// out-of-order dispatch falls back to a binary-search insert.
    in_flight: VecDeque<CellId>,
    /// GlobalFcfs: cells parked at the mux, min-heap by id (emission only
    /// ever takes the oldest).
    present: BinaryHeap<Reverse<ById>>,
    /// Number of cells currently held (all disciplines).
    held: usize,
    /// High-water mark of `held`.
    max_held: usize,
    /// Total emitted.
    emitted: u64,
    /// Resequencer watchdog: skip ahead after this many consecutive
    /// stalled slots (`None` disables).
    watchdog: Option<Slot>,
    /// First slot of the current stall (held cells but nothing emitted).
    stalled_since: Option<Slot>,
    /// Cells the watchdog declared lost (skipped past).
    skipped: u64,
    /// Slots in which the mux held cells but emitted nothing.
    stalled_slots: u64,
    /// Cells that arrived after the watchdog had skipped past them and
    /// were discarded to preserve the already-emitted order.
    late_dropped: u64,
}

impl OutputMux {
    /// An empty multiplexor for an `n`-input switch.
    pub fn new(n: usize, discipline: OutputDiscipline) -> Self {
        OutputMux {
            discipline,
            port: PortId(0),
            eligible: BinaryHeap::new(),
            reorder: (0..n).map(|_| SeqRing::default()).collect(),
            next_seq: vec![0; n],
            eligible_count: vec![0; n],
            blocked_since: vec![None; n],
            in_flight: VecDeque::new(),
            present: BinaryHeap::new(),
            held: 0,
            max_held: 0,
            emitted: 0,
            watchdog: None,
            stalled_since: None,
            skipped: 0,
            stalled_slots: 0,
            late_dropped: 0,
        }
    }

    /// Configure the resequencer watchdog (see [`PpsConfig::watchdog`]):
    /// after `timeout` consecutive slots in which cells are held but none
    /// can be emitted, the mux skips past the missing cell(s).
    pub fn set_watchdog(&mut self, timeout: Option<Slot>) {
        self.watchdog = timeout;
    }

    /// Tell the mux which output port it serves, so its telemetry events
    /// land on the right track.
    pub fn set_port(&mut self, port: PortId) {
        self.port = port;
    }

    /// GlobalFcfs only: register that `id` has entered the switch bound for
    /// this output (called by the engine at dispatch time, so the mux knows
    /// whether an earlier cell is still in transit).
    pub fn register_in_flight(&mut self, id: CellId) {
        if self.discipline == OutputDiscipline::GlobalFcfs {
            match self.in_flight.back() {
                Some(&last) if last >= id => {
                    // Buffered engine releasing an older buffered cell
                    // after a younger immediate dispatch: keep sorted.
                    if let Err(pos) = self.in_flight.binary_search(&id) {
                        self.in_flight.insert(pos, id);
                    }
                }
                _ => self.in_flight.push_back(id),
            }
        }
    }

    /// GlobalFcfs only: remove a registration made by
    /// [`register_in_flight`](Self::register_in_flight) for a cell that
    /// will never arrive (lost to a failed plane), so the mux does not wait
    /// for it forever.
    pub fn unregister_in_flight(&mut self, id: CellId) {
        if let Ok(pos) = self.in_flight.binary_search(&id) {
            self.in_flight.remove(pos);
        }
    }

    /// A plane delivered `cell` to this output in slot `now`. Returns
    /// `false` if the cell was discarded as *late*: the watchdog had
    /// already skipped past it, so emitting it now would reorder cells
    /// already sent on the external line. (Without a watchdog every
    /// delivery is accepted.)
    pub fn deliver(&mut self, cell: Cell, now: Slot) -> bool {
        match self.discipline {
            OutputDiscipline::FlowFifo => {
                let i = cell.input.idx();
                if cell.seq < self.next_seq[i] {
                    self.late_dropped += 1;
                    return false;
                }
                self.held += 1;
                self.max_held = self.max_held.max(self.held);
                if cell.seq == self.next_seq[i] {
                    self.push_eligible(cell);
                } else {
                    if telemetry::on() {
                        telemetry::record(
                            Engine::Pps,
                            now,
                            EventKind::ReseqHold {
                                cell: cell.id,
                                output: self.port,
                            },
                        );
                    }
                    self.reorder[i].insert(cell);
                }
                self.refresh_gap(i, now);
            }
            OutputDiscipline::GlobalFcfs => {
                if self.in_flight.binary_search(&cell.id).is_err() {
                    self.late_dropped += 1;
                    return false;
                }
                self.held += 1;
                self.max_held = self.max_held.max(self.held);
                if telemetry::on() && self.in_flight.front() != Some(&cell.id) {
                    // Parked behind a straggler still in transit.
                    telemetry::record(
                        Engine::Pps,
                        now,
                        EventKind::ReseqHold {
                            cell: cell.id,
                            output: self.port,
                        },
                    );
                }
                self.present.push(Reverse(ById(cell)));
            }
            OutputDiscipline::Greedy => {
                self.held += 1;
                self.max_held = self.max_held.max(self.held);
                self.eligible
                    .push(Reverse(Eligible((cell.arrival, cell.id), cell)));
            }
        }
        true
    }

    fn push_eligible(&mut self, cell: Cell) {
        if self.discipline == OutputDiscipline::FlowFifo {
            self.eligible_count[cell.input.idx()] += 1;
        }
        self.eligible
            .push(Reverse(Eligible((cell.arrival, cell.id), cell)));
    }

    /// Restart or clear input `i`'s gap timer: the flow is gap-blocked iff
    /// it has cells waiting in reorder and none eligible (an eligible cell
    /// means the flow is progressing — it will emit and advance `next_seq`).
    fn refresh_gap(&mut self, i: usize, now: Slot) {
        if self.reorder[i].is_empty() || self.eligible_count[i] > 0 {
            self.blocked_since[i] = None;
        } else if self.blocked_since[i].is_none() {
            self.blocked_since[i] = Some(now);
        }
    }

    /// Emit at most one cell in slot `now`, per the discipline. Tracks
    /// stalls (held cells, nothing emittable) and, when the watchdog is
    /// armed, skips past missing cells after the configured timeout —
    /// per-flow for FlowFifo (a gap must not wait behind other flows'
    /// emissions), whole-mux for GlobalFcfs (where a straggler blocks
    /// everything by definition).
    pub fn emit(&mut self, now: Slot) -> Option<Cell> {
        if self.watchdog.is_some() && self.discipline == OutputDiscipline::FlowFifo {
            self.expire_gaps(now);
        }
        if let Some(cell) = self.try_emit(now) {
            self.stalled_since = None;
            return Some(cell);
        }
        if self.held == 0 {
            self.stalled_since = None;
            return None;
        }
        self.stalled_slots += 1;
        let since = *self.stalled_since.get_or_insert(now);
        if let Some(limit) = self.watchdog {
            if self.discipline == OutputDiscipline::GlobalFcfs && now - since + 1 >= limit {
                self.skip_stragglers(now);
                self.stalled_since = None;
                return self.try_emit(now);
            }
        }
        None
    }

    /// FlowFifo watchdog: skip past the gap of every flow that has been
    /// blocked for the timeout, making its waiting head eligible.
    fn expire_gaps(&mut self, now: Slot) {
        let limit = self.watchdog.expect("caller checked");
        for i in 0..self.blocked_since.len() {
            let Some(since) = self.blocked_since[i] else {
                continue;
            };
            if now - since + 1 < limit {
                continue;
            }
            let seq = self.reorder[i]
                .min_seq()
                .expect("blocked flows have waiting cells");
            // The gap [next_seq, seq) is declared lost.
            let lost = seq - self.next_seq[i];
            self.skipped += u64::from(lost);
            self.next_seq[i] = seq;
            let head = self.reorder[i].remove(seq).unwrap();
            if telemetry::on() {
                telemetry::record(
                    Engine::Pps,
                    now,
                    EventKind::WatchdogDrop {
                        output: self.port,
                        cells: lost,
                    },
                );
                telemetry::record(
                    Engine::Pps,
                    now,
                    EventKind::ReseqRelease {
                        cell: head.id,
                        output: self.port,
                    },
                );
            }
            self.push_eligible(head);
            self.refresh_gap(i, now);
        }
    }

    fn try_emit(&mut self, now: Slot) -> Option<Cell> {
        let cell = match self.discipline {
            OutputDiscipline::FlowFifo => {
                let Reverse(Eligible(_, cell)) = self.eligible.pop()?;
                let i = cell.input.idx();
                self.eligible_count[i] -= 1;
                self.next_seq[i] = cell.seq + 1;
                // The successor may now be eligible.
                if let Some(next) = self.reorder[i].remove(self.next_seq[i]) {
                    if telemetry::on() {
                        telemetry::record(
                            Engine::Pps,
                            now,
                            EventKind::ReseqRelease {
                                cell: next.id,
                                output: self.port,
                            },
                        );
                    }
                    self.push_eligible(next);
                }
                self.refresh_gap(i, now);
                cell
            }
            OutputDiscipline::GlobalFcfs => {
                // Emit the oldest present cell only if nothing older is
                // still in transit inside the switch.
                let oldest_present = self.present.peek()?.0 .0.id;
                let &oldest_in_flight = self
                    .in_flight
                    .front()
                    .expect("present cells are always registered in flight");
                if oldest_present != oldest_in_flight {
                    return None; // wait for the straggler
                }
                self.in_flight.pop_front();
                self.present.pop().expect("peeked above").0 .0
            }
            OutputDiscipline::Greedy => {
                let Reverse(Eligible(_, cell)) = self.eligible.pop()?;
                cell
            }
        };
        self.held -= 1;
        self.emitted += 1;
        Some(cell)
    }

    /// GlobalFcfs watchdog: abandon in-flight registrations older than the
    /// oldest present cell — they are the stragglers blocking emission.
    /// Called by [`emit`](Self::emit) once a whole-mux stall outlives the
    /// watchdog timeout.
    fn skip_stragglers(&mut self, now: Slot) {
        let Some(Reverse(ById(oldest_present))) = self.present.peek() else {
            return;
        };
        let oldest_present = oldest_present.id;
        let mut abandoned = 0u32;
        while let Some(&oldest) = self.in_flight.front() {
            if oldest >= oldest_present {
                break;
            }
            self.in_flight.pop_front();
            self.skipped += 1;
            abandoned += 1;
        }
        if abandoned > 0 && telemetry::on() {
            telemetry::record(
                Engine::Pps,
                now,
                EventKind::WatchdogDrop {
                    output: self.port,
                    cells: abandoned,
                },
            );
        }
    }

    /// Cells currently held at the mux.
    pub fn held(&self) -> usize {
        self.held
    }

    /// Whether the mux could possibly emit this slot (cheap pre-check used
    /// by the engine's active-output tracking).
    pub fn has_work(&self) -> bool {
        self.held > 0
    }

    /// High-water mark of held cells — the output-side buffer requirement.
    pub fn max_held(&self) -> usize {
        self.max_held
    }

    /// Total cells emitted.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Cells the watchdog skipped past (declared lost).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Slots in which cells were held but nothing could be emitted.
    pub fn stalled_slots(&self) -> u64 {
        self.stalled_slots
    }

    /// Cells discarded on delivery because the watchdog had already skipped
    /// past them.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, input: u32, seq: u32, arrival: Slot) -> Cell {
        Cell {
            id: CellId(id),
            input: PortId(input),
            output: PortId(0),
            seq,
            arrival,
        }
    }

    #[test]
    fn flow_fifo_resequences_within_flow() {
        let mut m = OutputMux::new(2, OutputDiscipline::FlowFifo);
        // Flow from input 0 delivered out of order: seq 1 first.
        assert!(m.deliver(cell(1, 0, 1, 1), 0));
        assert_eq!(m.emit(0), None); // seq 0 missing — blocked
        assert!(m.deliver(cell(0, 0, 0, 0), 1));
        assert_eq!(m.emit(1).unwrap().id, CellId(0));
        assert_eq!(m.emit(2).unwrap().id, CellId(1));
        assert_eq!(m.emit(3), None);
    }

    #[test]
    fn flow_fifo_does_not_block_other_flows() {
        let mut m = OutputMux::new(2, OutputDiscipline::FlowFifo);
        m.deliver(cell(5, 0, 1, 5), 0); // blocked: waits for seq 0 of input 0
        m.deliver(cell(7, 1, 0, 7), 0); // eligible
        assert_eq!(m.emit(0).unwrap().id, CellId(7));
        assert_eq!(m.emit(1), None);
        assert_eq!(m.held(), 1);
    }

    #[test]
    fn flow_fifo_prefers_earliest_arrival() {
        let mut m = OutputMux::new(2, OutputDiscipline::FlowFifo);
        m.deliver(cell(9, 1, 0, 9), 9);
        m.deliver(cell(3, 0, 0, 3), 9);
        assert_eq!(m.emit(9).unwrap().id, CellId(3));
    }

    #[test]
    fn global_fcfs_waits_for_stragglers() {
        let mut m = OutputMux::new(2, OutputDiscipline::GlobalFcfs);
        m.register_in_flight(CellId(1));
        m.register_in_flight(CellId(2));
        m.deliver(cell(2, 1, 0, 0), 0);
        // Cell 1 is still in a plane: the mux must idle.
        assert_eq!(m.emit(0), None);
        m.deliver(cell(1, 0, 0, 0), 1);
        assert_eq!(m.emit(1).unwrap().id, CellId(1));
        assert_eq!(m.emit(2).unwrap().id, CellId(2));
    }

    #[test]
    fn greedy_emits_anything_earliest_first() {
        let mut m = OutputMux::new(2, OutputDiscipline::Greedy);
        m.deliver(cell(5, 0, 1, 5), 0); // out of order within its flow — greedy does not care
        m.deliver(cell(8, 0, 0, 8), 0);
        assert_eq!(m.emit(0).unwrap().id, CellId(5));
        assert_eq!(m.emit(1).unwrap().id, CellId(8));
    }

    #[test]
    fn high_water_mark() {
        let mut m = OutputMux::new(1, OutputDiscipline::FlowFifo);
        m.deliver(cell(0, 0, 0, 0), 0);
        m.deliver(cell(1, 0, 1, 0), 0);
        m.emit(0);
        m.deliver(cell(2, 0, 2, 0), 1);
        assert_eq!(m.max_held(), 2);
        assert_eq!(m.emitted(), 1);
    }

    #[test]
    fn watchdog_skips_past_a_lost_cell() {
        let mut m = OutputMux::new(1, OutputDiscipline::FlowFifo);
        m.set_watchdog(Some(3));
        // seq 0 was lost to a failed plane; seq 1 and 2 arrive in slot 10.
        m.deliver(cell(1, 0, 1, 1), 10);
        m.deliver(cell(2, 0, 2, 2), 10);
        assert_eq!(m.emit(10), None); // gap blocked 1 slot
        assert_eq!(m.emit(11), None); // gap blocked 2 slots
                                      // Third blocked slot hits the 3-slot timeout: skip past seq 0 and
                                      // emit seq 1 in the same slot.
        assert_eq!(m.emit(12).unwrap().seq, 1);
        assert_eq!(m.emit(13).unwrap().seq, 2);
        assert_eq!(m.skipped(), 1);
        assert_eq!(m.stalled_slots(), 2);
    }

    #[test]
    fn watchdog_gap_timer_ignores_other_flow_progress() {
        let mut m = OutputMux::new(2, OutputDiscipline::FlowFifo);
        m.set_watchdog(Some(4));
        m.deliver(cell(9, 0, 1, 0), 0); // waits for seq 0 of input 0
        assert_eq!(m.emit(0), None);
        assert_eq!(m.emit(1), None);
        // Another flow emits in slot 2 — but the gap timer is per flow, so
        // input 0's countdown keeps running instead of resetting (a busy mux
        // must not let gap-blocked flows rot behind other flows' progress).
        m.deliver(cell(4, 1, 0, 1), 2);
        assert_eq!(m.emit(2).unwrap().id, CellId(4));
        // Slot 3 is the 4th slot input 0 has been blocked: timeout fires.
        assert_eq!(m.emit(3).unwrap().id, CellId(9));
        assert_eq!(m.skipped(), 1);
    }

    #[test]
    fn late_cell_is_dropped_not_reordered() {
        let mut m = OutputMux::new(1, OutputDiscipline::FlowFifo);
        m.set_watchdog(Some(1));
        m.deliver(cell(1, 0, 1, 1), 5);
        // Immediate skip past missing seq 0.
        assert_eq!(m.emit(5).unwrap().seq, 1);
        // seq 0 shows up late (straggler from a slow plane): emitting it now
        // would reorder the flow, so it must be discarded.
        assert!(!m.deliver(cell(0, 0, 0, 0), 6));
        assert_eq!(m.emit(6), None);
        assert_eq!(m.late_dropped(), 1);
        assert_eq!(m.held(), 0);
    }

    #[test]
    fn expired_gaps_emit_in_emit_key_order() {
        let mut m = OutputMux::new(2, OutputDiscipline::FlowFifo);
        m.set_watchdog(Some(1));
        // Both inputs are gap-blocked and both timeouts expire in slot 0,
        // so both gaps are declared lost at once; emission then follows the
        // emit key — input 1's waiting cell arrived earlier and goes first.
        m.deliver(cell(10, 0, 3, 7), 0);
        m.deliver(cell(11, 1, 2, 4), 0);
        let first = m.emit(0).unwrap();
        assert_eq!(first.id, CellId(11));
        assert_eq!(m.skipped(), 5); // seqs 0–1 of input 1 and 0–2 of input 0
        let second = m.emit(1).unwrap();
        assert_eq!(second.id, CellId(10));
    }

    #[test]
    fn global_fcfs_watchdog_abandons_stragglers() {
        let mut m = OutputMux::new(2, OutputDiscipline::GlobalFcfs);
        m.set_watchdog(Some(2));
        m.register_in_flight(CellId(1));
        m.register_in_flight(CellId(2));
        m.deliver(cell(2, 1, 0, 0), 0);
        assert_eq!(m.emit(0), None); // waiting for cell 1
                                     // Second stalled slot: give up on cell 1 and emit cell 2.
        assert_eq!(m.emit(1).unwrap().id, CellId(2));
        assert_eq!(m.skipped(), 1);
        // If cell 1 then limps in, it is late: accepted order already went out.
        assert!(!m.deliver(cell(1, 0, 0, 0), 2));
        assert_eq!(m.late_dropped(), 1);
    }
}
