//! Output multiplexors.
//!
//! The third stage of the PPS: each output port gathers cells delivered by
//! up to `K` planes and emits at most one cell per slot on the external
//! line. Because a flow's cells may ride different planes with different
//! queuing, the multiplexor is where order is re-established. Three
//! emission disciplines are supported (see
//! [`pps_core::OutputDiscipline`]): flow-FIFO resequencing (default),
//! global FCFS (exact mimicking of a FCFS output-queued switch, footnote 3
//! of the paper), and unordered greedy (ablation only).

use pps_core::prelude::*;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Key ordering eligible cells: earliest switch arrival first, then global
/// id (which encodes input order within a slot).
type EmitKey = (Slot, CellId);

/// Heap entry ordered by [`EmitKey`] alone (cell ids are unique, so the
/// key equality is consistent with `Eq`).
#[derive(Clone, Debug)]
struct Eligible(EmitKey, Cell);

impl PartialEq for Eligible {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Eligible {}
impl PartialOrd for Eligible {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Eligible {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

/// One output port's multiplexor.
#[derive(Clone, Debug)]
pub struct OutputMux {
    discipline: OutputDiscipline,
    /// Cells eligible for emission right now, min-ordered by [`EmitKey`].
    /// (A binary heap, not a BTreeMap: insert/pop-min dominate the hot
    /// path and keys are never removed out of order.)
    eligible: BinaryHeap<Reverse<Eligible>>,
    /// FlowFifo: cells waiting for earlier cells of their flow, per input.
    reorder: Vec<BTreeMap<u32, Cell>>,
    /// FlowFifo: next expected sequence number per input.
    next_seq: Vec<u32>,
    /// GlobalFcfs: ids of cells bound for this output that are inside the
    /// switch but have not yet been emitted (registered at dispatch time).
    in_flight: BTreeSet<CellId>,
    /// GlobalFcfs: cells present at the mux, by id.
    present: BTreeMap<CellId, Cell>,
    /// Number of cells currently held (all disciplines).
    held: usize,
    /// High-water mark of `held`.
    max_held: usize,
    /// Total emitted.
    emitted: u64,
}

impl OutputMux {
    /// An empty multiplexor for an `n`-input switch.
    pub fn new(n: usize, discipline: OutputDiscipline) -> Self {
        OutputMux {
            discipline,
            eligible: BinaryHeap::new(),
            reorder: (0..n).map(|_| BTreeMap::new()).collect(),
            next_seq: vec![0; n],
            in_flight: BTreeSet::new(),
            present: BTreeMap::new(),
            held: 0,
            max_held: 0,
            emitted: 0,
        }
    }

    /// GlobalFcfs only: register that `id` has entered the switch bound for
    /// this output (called by the engine at dispatch time, so the mux knows
    /// whether an earlier cell is still in transit).
    pub fn register_in_flight(&mut self, id: CellId) {
        if self.discipline == OutputDiscipline::GlobalFcfs {
            self.in_flight.insert(id);
        }
    }

    /// GlobalFcfs only: remove a registration made by
    /// [`register_in_flight`](Self::register_in_flight) for a cell that
    /// will never arrive (lost to a failed plane), so the mux does not wait
    /// for it forever.
    pub fn unregister_in_flight(&mut self, id: CellId) {
        self.in_flight.remove(&id);
    }

    /// A plane delivered `cell` to this output.
    pub fn deliver(&mut self, cell: Cell) {
        self.held += 1;
        self.max_held = self.max_held.max(self.held);
        match self.discipline {
            OutputDiscipline::FlowFifo => {
                let i = cell.input.idx();
                if cell.seq == self.next_seq[i] {
                    self.eligible.push(Reverse(Eligible((cell.arrival, cell.id), cell)));
                } else {
                    self.reorder[i].insert(cell.seq, cell);
                }
            }
            OutputDiscipline::GlobalFcfs => {
                self.present.insert(cell.id, cell);
            }
            OutputDiscipline::Greedy => {
                self.eligible.push(Reverse(Eligible((cell.arrival, cell.id), cell)));
            }
        }
    }

    /// Emit at most one cell this slot, per the discipline.
    pub fn emit(&mut self) -> Option<Cell> {
        let cell = match self.discipline {
            OutputDiscipline::FlowFifo => {
                let Reverse(Eligible(_, cell)) = self.eligible.pop()?;
                let i = cell.input.idx();
                self.next_seq[i] = cell.seq + 1;
                // The successor may now be eligible.
                if let Some(next) = self.reorder[i].remove(&self.next_seq[i]) {
                    self.eligible.push(Reverse(Eligible((next.arrival, next.id), next)));
                }
                cell
            }
            OutputDiscipline::GlobalFcfs => {
                // Emit the oldest present cell only if nothing older is
                // still in transit inside the switch.
                let &oldest_present = self.present.keys().next()?;
                let &oldest_in_flight = self
                    .in_flight
                    .first()
                    .expect("present cells are always registered in flight");
                if oldest_present != oldest_in_flight {
                    return None; // wait for the straggler
                }
                self.in_flight.pop_first();
                self.present.remove(&oldest_present).unwrap()
            }
            OutputDiscipline::Greedy => {
                let Reverse(Eligible(_, cell)) = self.eligible.pop()?;
                cell
            }
        };
        self.held -= 1;
        self.emitted += 1;
        Some(cell)
    }

    /// Cells currently held at the mux.
    pub fn held(&self) -> usize {
        self.held
    }

    /// Whether the mux could possibly emit this slot (cheap pre-check used
    /// by the engine's active-output tracking).
    pub fn has_work(&self) -> bool {
        self.held > 0
    }

    /// High-water mark of held cells — the output-side buffer requirement.
    pub fn max_held(&self) -> usize {
        self.max_held
    }

    /// Total cells emitted.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, input: u32, seq: u32, arrival: Slot) -> Cell {
        Cell {
            id: CellId(id),
            input: PortId(input),
            output: PortId(0),
            seq,
            arrival,
        }
    }

    #[test]
    fn flow_fifo_resequences_within_flow() {
        let mut m = OutputMux::new(2, OutputDiscipline::FlowFifo);
        // Flow from input 0 delivered out of order: seq 1 first.
        m.deliver(cell(1, 0, 1, 1));
        assert_eq!(m.emit(), None); // seq 0 missing — blocked
        m.deliver(cell(0, 0, 0, 0));
        assert_eq!(m.emit().unwrap().id, CellId(0));
        assert_eq!(m.emit().unwrap().id, CellId(1));
        assert_eq!(m.emit(), None);
    }

    #[test]
    fn flow_fifo_does_not_block_other_flows() {
        let mut m = OutputMux::new(2, OutputDiscipline::FlowFifo);
        m.deliver(cell(5, 0, 1, 5)); // blocked: waits for seq 0 of input 0
        m.deliver(cell(7, 1, 0, 7)); // eligible
        assert_eq!(m.emit().unwrap().id, CellId(7));
        assert_eq!(m.emit(), None);
        assert_eq!(m.held(), 1);
    }

    #[test]
    fn flow_fifo_prefers_earliest_arrival() {
        let mut m = OutputMux::new(2, OutputDiscipline::FlowFifo);
        m.deliver(cell(9, 1, 0, 9));
        m.deliver(cell(3, 0, 0, 3));
        assert_eq!(m.emit().unwrap().id, CellId(3));
    }

    #[test]
    fn global_fcfs_waits_for_stragglers() {
        let mut m = OutputMux::new(2, OutputDiscipline::GlobalFcfs);
        m.register_in_flight(CellId(1));
        m.register_in_flight(CellId(2));
        m.deliver(cell(2, 1, 0, 0));
        // Cell 1 is still in a plane: the mux must idle.
        assert_eq!(m.emit(), None);
        m.deliver(cell(1, 0, 0, 0));
        assert_eq!(m.emit().unwrap().id, CellId(1));
        assert_eq!(m.emit().unwrap().id, CellId(2));
    }

    #[test]
    fn greedy_emits_anything_earliest_first() {
        let mut m = OutputMux::new(2, OutputDiscipline::Greedy);
        m.deliver(cell(5, 0, 1, 5)); // out of order within its flow — greedy does not care
        m.deliver(cell(8, 0, 0, 8));
        assert_eq!(m.emit().unwrap().id, CellId(5));
        assert_eq!(m.emit().unwrap().id, CellId(8));
    }

    #[test]
    fn high_water_mark() {
        let mut m = OutputMux::new(1, OutputDiscipline::FlowFifo);
        m.deliver(cell(0, 0, 0, 0));
        m.deliver(cell(1, 0, 1, 0));
        m.emit();
        m.deliver(cell(2, 0, 2, 0));
        assert_eq!(m.max_held(), 2);
        assert_eq!(m.emitted(), 1);
    }
}
