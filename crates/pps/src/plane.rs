//! Center-stage planes.
//!
//! Each of the `K` planes is an `N × N` output-queued switch operating at
//! the internal rate `r`: it buffers cells per destination output and feeds
//! the plane→output lines, each of which carries at most one cell every
//! `r'` slots (the *output constraint* — enforced by the engine's
//! [`pps_core::LinkBank`], not here). The plane's internal scheduling is
//! greedy FIFO per destination queue, which the paper's Lemma 4 explicitly
//! allows to be *optimal*: the lower bounds do not depend on plane
//! scheduling, only on the line-rate bottleneck.
//!
//! Queues hold bare [`CellId`]s; the metadata lives in the fabric's
//! [`CellPool`], so a plane hop moves one word, not a whole `Cell`.

use pps_core::prelude::*;

/// One center-stage plane: per-output FIFO buffers plus carry statistics.
#[derive(Clone, Debug)]
pub struct Plane {
    /// Per-destination FIFO queues of cell ids.
    queues: Vec<FifoQueue<CellId>>,
    /// Cells ever accepted by this plane.
    carried: u64,
    /// Whether the plane has failed (fault-injection experiments): a failed
    /// plane black-holes cells handed to it.
    failed: bool,
}

impl Plane {
    /// An idle plane for an `n`-port switch.
    pub fn new(n: usize) -> Self {
        Plane {
            queues: (0..n).map(|_| FifoQueue::new()).collect(),
            carried: 0,
            failed: false,
        }
    }

    /// Accept cell `id` for destination queue `output`. Returns `false` if
    /// the plane has failed and the cell was lost.
    pub fn accept(&mut self, id: CellId, output: usize) -> bool {
        if self.failed {
            return false;
        }
        self.queues[output].push(id);
        self.carried += 1;
        true
    }

    /// Pop the head cell queued for `output`.
    pub fn pop_for(&mut self, output: usize) -> Option<CellId> {
        self.queues[output].pop()
    }

    /// Occupancy of the queue for `output`.
    pub fn queue_len(&self, output: usize) -> usize {
        self.queues[output].len()
    }

    /// Whether any cell is queued anywhere in the plane.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Total queued cells across outputs.
    pub fn backlog(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Cells ever accepted.
    pub fn carried(&self) -> u64 {
        self.carried
    }

    /// Highest occupancy any destination queue ever reached — the buffer
    /// provisioning the paper ties to relative queuing delay.
    pub fn max_queue_occupancy(&self) -> usize {
        self.queues
            .iter()
            .map(|q| q.max_occupancy())
            .max()
            .unwrap_or(0)
    }

    /// Mark the plane failed (fault-injection); subsequent cells are lost.
    /// Cells already queued inside the plane are lost with it — they are
    /// drained and returned so the fabric can account for them (live
    /// counters, straggler registrations, drop statistics).
    pub fn fail(&mut self) -> Vec<CellId> {
        self.failed = true;
        let mut flushed = Vec::new();
        for q in &mut self.queues {
            while let Some(id) = q.pop() {
                flushed.push(id);
            }
        }
        flushed
    }

    /// Bring a failed plane back into service (fault-injection recovery).
    /// It restarts empty — the flushed cells are gone, not restored.
    pub fn recover(&mut self) {
        self.failed = false;
    }

    /// Whether the plane is failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_output_fifo() {
        let mut p = Plane::new(2);
        assert!(p.accept(CellId(0), 1));
        assert!(p.accept(CellId(1), 0));
        assert!(p.accept(CellId(2), 1));
        assert_eq!(p.queue_len(1), 2);
        assert_eq!(p.pop_for(1), Some(CellId(0)));
        assert_eq!(p.pop_for(1), Some(CellId(2)));
        assert_eq!(p.pop_for(1), None);
        assert_eq!(p.backlog(), 1);
        assert_eq!(p.carried(), 3);
    }

    #[test]
    fn failed_plane_black_holes() {
        let mut p = Plane::new(1);
        assert!(p.fail().is_empty());
        assert!(!p.accept(CellId(0), 0));
        assert!(p.is_empty());
        assert_eq!(p.carried(), 0);
    }

    #[test]
    fn failure_flushes_queued_cells_and_recovery_restarts_empty() {
        let mut p = Plane::new(2);
        assert!(p.accept(CellId(0), 0));
        assert!(p.accept(CellId(1), 1));
        let flushed = p.fail();
        assert_eq!(flushed.len(), 2);
        assert!(p.is_empty());
        assert!(p.is_failed());
        p.recover();
        assert!(!p.is_failed());
        assert!(p.accept(CellId(2), 0));
        assert_eq!(p.queue_len(0), 1);
    }

    #[test]
    fn occupancy_high_water_mark() {
        let mut p = Plane::new(1);
        for i in 0..4 {
            p.accept(CellId(i), 0);
        }
        p.pop_for(0);
        p.pop_for(0);
        assert_eq!(p.max_queue_occupancy(), 4);
    }
}
