//! The switching fabric shared by the bufferless and input-buffered engines:
//! input→plane lines, the `K` planes, plane→output lines, and the output
//! multiplexors, advanced with an event agenda so per-slot cost scales with
//! *activity*, not with `K × N`.

use crate::output::OutputMux;
use crate::plane::Plane;
use pps_core::prelude::*;
use pps_core::telemetry::{self, Engine, EventKind, ShardCapture};
use pps_core::workers::{self, WorkerLease};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Aggregate fabric statistics for one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FabricStats {
    /// Cells carried per plane — the concentration profile (Lemma 4's `c`
    /// is the maximum entry restricted to one output).
    pub plane_carried: Vec<u64>,
    /// Highest per-destination queue occupancy in any plane.
    pub max_plane_queue: usize,
    /// Highest occupancy of any output multiplexor.
    pub max_output_held: usize,
    /// Cells lost to failed planes (fault-injection runs only).
    pub dropped: u64,
    /// Cells the resequencer watchdogs skipped past (declared lost).
    pub skipped: u64,
    /// Slots in which an output mux held cells but emitted nothing, summed
    /// over outputs — the head-of-line-blocking exposure of the run.
    pub stalled_slots: u64,
    /// Cells that arrived at an output after the watchdog had skipped past
    /// them and were discarded to preserve emission order.
    pub late_dropped: u64,
    /// Total transmissions on input→plane lines.
    pub input_line_uses: u64,
    /// Total transmissions on plane→output lines.
    pub output_line_uses: u64,
}

/// The three-stage fabric.
#[derive(Clone, Debug)]
pub struct Fabric {
    cfg: PpsConfig,
    in_links: LinkBank,
    out_links: LinkBank,
    planes: Vec<Plane>,
    outputs: Vec<OutputMux>,
    /// Structure-of-arrays metadata for every cell that entered the switch
    /// this run; plane queues and output muxes park bare ids against it.
    pool: CellPool,
    /// Pending plane-service events, `(slot, plane, output)`, partitioned
    /// into one heap per intra-run shard (`agendas[p / planes_per_shard]`).
    /// With one shard this is exactly the old single agenda.
    agendas: Vec<BinaryHeap<Reverse<(Slot, u32, u32)>>>,
    /// Number of intra-run shards (DESIGN.md §16). 1 = the serial walk.
    shards: usize,
    /// Planes per shard: `ceil(k / shards)`; shard `s` owns planes
    /// `[s·planes_per_shard, (s+1)·planes_per_shard)`.
    planes_per_shard: usize,
    /// Whether `(plane, output)` currently has an agenda entry.
    scheduled: Vec<bool>,
    /// Outputs that may be able to emit (dense list + membership flags:
    /// the emit sweep compacts the list in place, no per-slot allocation).
    active_list: Vec<u32>,
    active_flag: Vec<bool>,
    /// Live per-(plane,output) queue lengths for snapshots.
    plane_len_live: Vec<u32>,
    /// Live per-output mux occupancy for snapshots.
    output_pending_live: Vec<u32>,
    dropped: u64,
    /// Test-only chaos hook: number of flushed cells to "lose" without
    /// accounting them (see [`inject_conservation_leak`]). Always 0 in
    /// real runs.
    ///
    /// [`inject_conservation_leak`]: Self::inject_conservation_leak
    leak_budget: u32,
    /// Per-shard service-delivery scratch, merged in `(at, plane, output)`
    /// order at the slot barrier: `(agenda slot, plane, output, cell)`.
    deliveries: Vec<Vec<(Slot, u32, u32, CellId)>>,
    /// Per-emit-shard outcome scratch, drained in `active_list` order.
    emit_results: Vec<Vec<EmitOutcome>>,
    /// Per-emit-shard telemetry captures, folded/replayed at the barrier.
    emit_caps: Vec<ShardCapture>,
    /// Merge-cursor scratch (one pair per shard), reused every slot.
    cur_a: Vec<usize>,
    cur_b: Vec<usize>,
}

/// What one emit shard did for one entry of the shared `active_list`:
/// recorded off-thread, applied on the merging thread in list order.
#[derive(Clone, Copy, Debug)]
struct EmitOutcome {
    /// The emitted cell, if the mux released one this slot.
    emitted: Option<CellId>,
    /// Whether the mux still holds work (drives active-list compaction).
    has_work: bool,
    /// Telemetry events this mux recorded into the shard capture.
    events: u32,
}

impl Fabric {
    /// Build an idle fabric for `cfg` (assumed validated). The intra-run
    /// shard count is read once here from the process-wide setting
    /// ([`pps_core::workers::set_intra_jobs`]); use
    /// [`set_intra_shards`](Self::set_intra_shards) to override per fabric.
    pub fn new(cfg: PpsConfig) -> Self {
        let (n, k) = (cfg.n, cfg.k);
        let mut fabric = Fabric {
            cfg,
            in_links: LinkBank::new(n, k, cfg.r_prime, LinkSide::InputToPlane),
            out_links: LinkBank::new(k, n, cfg.r_prime, LinkSide::PlaneToOutput),
            planes: (0..k).map(|_| Plane::new(n)).collect(),
            outputs: (0..n)
                .map(|j| {
                    let mut mux = OutputMux::new(n, cfg.discipline);
                    mux.set_watchdog(cfg.watchdog);
                    mux.set_port(PortId(j as u32));
                    mux
                })
                .collect(),
            pool: CellPool::new(),
            agendas: vec![BinaryHeap::new()],
            shards: 1,
            planes_per_shard: k,
            scheduled: vec![false; k * n],
            active_list: Vec::with_capacity(n),
            active_flag: vec![false; n],
            plane_len_live: vec![0; k * n],
            output_pending_live: vec![0; n],
            dropped: 0,
            leak_budget: 0,
            deliveries: vec![Vec::new()],
            emit_results: vec![Vec::new()],
            emit_caps: vec![ShardCapture::default()],
            cur_a: vec![0],
            cur_b: vec![0],
        };
        fabric.set_intra_shards(workers::intra_jobs());
        fabric
    }

    /// Re-partition the fabric into `requested` intra-run shards (clamped
    /// to `[1, K]`). Outstanding agenda entries are redistributed, so this
    /// is safe mid-run; results are byte-identical at any value because
    /// shard results merge at the slot barrier in declared shard order.
    pub fn set_intra_shards(&mut self, requested: usize) {
        let (n, k) = (self.cfg.n, self.cfg.k);
        let req = requested.clamp(1, k);
        let pps = k.div_ceil(req);
        let shards = k.div_ceil(pps);
        if shards == self.shards && pps == self.planes_per_shard {
            return;
        }
        let entries: Vec<(Slot, u32, u32)> = self
            .agendas
            .iter_mut()
            .flat_map(|a| std::mem::take(a).into_iter().map(|Reverse(t)| t))
            .collect();
        self.shards = shards;
        self.planes_per_shard = pps;
        self.agendas = (0..shards).map(|_| BinaryHeap::new()).collect();
        for (at, p, j) in entries {
            self.agendas[p as usize / pps].push(Reverse((at, p, j)));
        }
        let chunk = n.div_ceil(shards);
        let eshards = n.div_ceil(chunk);
        self.deliveries = vec![Vec::new(); shards];
        self.emit_results = vec![Vec::new(); eshards];
        self.emit_caps = vec![ShardCapture::default(); eshards];
        self.cur_a = vec![0; shards.max(eshards)];
        self.cur_b = vec![0; shards.max(eshards)];
    }

    /// The current intra-run shard count (1 = serial walk).
    pub fn intra_shards(&self) -> usize {
        self.shards
    }

    /// The switch configuration.
    pub fn cfg(&self) -> &PpsConfig {
        &self.cfg
    }

    /// This input's local view of its lines (the *only* information a
    /// fully-distributed demultiplexor is entitled to).
    pub fn local_view(&self, input: PortId, now: Slot) -> LocalView<'_> {
        LocalView {
            now,
            input,
            link_busy_until: self.in_links.row(input.idx()),
        }
    }

    /// The fabric's cell-metadata pool (read-only; populated by
    /// [`register_arrival`](Self::register_arrival) and
    /// [`dispatch`](Self::dispatch)).
    pub fn pool(&self) -> &CellPool {
        &self.pool
    }

    /// Pre-size the cell pool for a run of `cells` cells, so the metadata
    /// arrays are allocated once instead of growing along the run.
    pub fn reserve_cells(&mut self, cells: usize) {
        self.pool.reserve(cells);
    }

    /// Register a cell as inside the switch, bound for its output: its
    /// metadata enters the pool, and the GlobalFcfs discipline records it
    /// for straggler detection. Engines call this at *switch arrival* so
    /// buffered cells count too.
    pub fn register_arrival(&mut self, cell: &Cell) {
        self.pool.ensure(cell);
        self.outputs[cell.output.idx()].register_in_flight(cell.id);
    }

    /// Dispatch `cell` onto plane `plane` at `now`, acquiring the input
    /// line. Fails if the line is busy or the plane index is out of range —
    /// both are demultiplexor bugs under the model.
    pub fn dispatch(
        &mut self,
        cell: Cell,
        plane: PlaneId,
        now: Slot,
        log: &mut RunLog,
    ) -> Result<(), ModelError> {
        let (i, p, j) = (cell.input.idx(), plane.idx(), cell.output.idx());
        if p >= self.cfg.k {
            return Err(ModelError::PlaneOutOfRange {
                plane,
                k: self.cfg.k,
            });
        }
        self.in_links.acquire(i, p, now)?;
        log.set_plane(cell.id, plane);
        let id = cell.id;
        self.pool.ensure(&cell);
        if self.planes[p].accept(id, j) {
            if telemetry::on() {
                telemetry::record(
                    Engine::Pps,
                    now,
                    EventKind::PlaneEnqueue {
                        cell: id,
                        plane,
                        output: PortId(j as u32),
                    },
                );
            }
            self.plane_len_live[p * self.cfg.n + j] += 1;
            // The queue may have become serviceable.
            let at = now.max(self.out_links.free_at(p, j));
            self.schedule(p, j, at);
        } else {
            // Failed plane: the cell is lost. Un-register it so GlobalFcfs
            // does not wait forever.
            self.dropped += 1;
            if self.cfg.discipline == OutputDiscipline::GlobalFcfs {
                self.outputs[j].unregister_in_flight(cell.id);
            }
        }
        Ok(())
    }

    fn schedule(&mut self, plane: usize, output: usize, at: Slot) {
        let idx = plane * self.cfg.n + output;
        if !self.scheduled[idx] {
            self.scheduled[idx] = true;
            self.agendas[plane / self.planes_per_shard].push(Reverse((
                at,
                plane as u32,
                output as u32,
            )));
        }
    }

    /// Serve every `(plane, output)` line whose service event is due:
    /// deliver the head cell to the output multiplexor and re-arm the line
    /// after `r'` slots.
    ///
    /// With more than one intra-run shard, each shard drains its own
    /// agenda band over disjoint plane/link state (possibly on leased
    /// worker threads), deferring output delivery; deliveries then merge
    /// on this thread in global `(slot, plane, output)` order — the exact
    /// pop order of the serial heap — so telemetry, the active list, and
    /// every counter evolve byte-identically to one shard.
    pub fn service(&mut self, now: Slot) -> Result<(), ModelError> {
        if self.shards == 1 {
            return self.service_serial(now);
        }
        self.service_sharded(now)
    }

    /// The pre-sharding service loop, used verbatim when `shards == 1`.
    fn service_serial(&mut self, now: Slot) -> Result<(), ModelError> {
        while let Some(&Reverse((at, p, j))) = self.agendas[0].peek() {
            if at > now {
                break;
            }
            self.agendas[0].pop();
            let (p, j) = (p as usize, j as usize);
            self.scheduled[p * self.cfg.n + j] = false;
            if self.planes[p].queue_len(j) == 0 {
                continue; // drained in the meantime; re-armed on next push
            }
            if !self.out_links.is_free(p, j, now) {
                // Defensive: re-arm at the line's free time.
                let at = self.out_links.free_at(p, j);
                self.schedule(p, j, at);
                continue;
            }
            let id = self.planes[p].pop_for(j).expect("non-empty checked");
            self.out_links.acquire(p, j, now)?;
            self.plane_len_live[p * self.cfg.n + j] -= 1;
            if telemetry::on() {
                telemetry::record(
                    Engine::Pps,
                    now,
                    EventKind::PlaneDeliver {
                        cell: id,
                        plane: PlaneId(p as u32),
                        output: PortId(j as u32),
                    },
                );
            }
            // Classification is per cell (telemetry order preserved); heap
            // pushes and gap refreshes are batched inside the mux and
            // flushed by its `emit` this same slot.
            if self.outputs[j].deliver(&self.pool, id, now) {
                self.output_pending_live[j] += 1;
                if !self.active_flag[j] {
                    self.active_flag[j] = true;
                    self.active_list.push(j as u32);
                }
            }
            if self.planes[p].queue_len(j) > 0 {
                self.schedule(p, j, now + self.cfg.r_prime as Slot);
            }
        }
        Ok(())
    }

    /// Sharded service: drain agenda bands in parallel, merge at the
    /// barrier. Soundness: during `service(now)` every pop is at `≤ now`
    /// and every push lands at `> now` (`r' ≥ 1`, and a busy line's
    /// `free_at > now`), so no shard can create work another shard should
    /// have seen this slot; all state a shard touches (its agenda band,
    /// its planes, its `out_links` rows, its `scheduled`/`plane_len_live`
    /// bands) is plane-indexed and disjoint by construction.
    fn service_sharded(&mut self, now: Slot) -> Result<(), ModelError> {
        let n = self.cfg.n;
        let pps = self.planes_per_shard;
        let r_prime = self.cfg.r_prime as Slot;
        let Fabric {
            out_links,
            planes,
            scheduled,
            plane_len_live,
            agendas,
            deliveries,
            ..
        } = self;
        let mut shards: Vec<ServiceShard<'_>> = out_links
            .split_rows_mut(pps)
            .into_iter()
            .zip(planes.chunks_mut(pps))
            .zip(scheduled.chunks_mut(pps * n))
            .zip(plane_len_live.chunks_mut(pps * n))
            .zip(agendas.iter_mut())
            .zip(deliveries.iter_mut())
            .enumerate()
            .map(
                |(i, (((((out, planes), scheduled), plane_len_live), agenda), deliveries))| {
                    deliveries.clear();
                    ServiceShard {
                        base: i * pps,
                        n,
                        r_prime,
                        out,
                        planes,
                        scheduled,
                        plane_len_live,
                        agenda,
                        deliveries,
                        err: None,
                    }
                },
            )
            .collect();
        run_sharded(&mut shards, |shard| shard.run(now));
        let folded_acq: u64 = shards.iter().map(|s| s.out.taken()).sum();
        let first_err = shards.iter_mut().find_map(|s| s.err.take());
        drop(shards);
        self.out_links.add_acquisitions(folded_acq);
        if let Some(err) = first_err {
            return Err(err);
        }

        // Barrier merge: apply deliveries to the output muxes in the
        // serial heap's pop order (per-shard vecs are sorted by pop, keys
        // are unique, so a cursor min-merge reconstructs it exactly).
        let merge_start = Instant::now();
        let cursors = &mut self.cur_a[..self.shards];
        cursors.fill(0);
        loop {
            let mut best: Option<(usize, (Slot, u32, u32))> = None;
            for (s, cur) in cursors.iter().enumerate() {
                if let Some(&(at, p, j, _)) = self.deliveries[s].get(*cur) {
                    let key = (at, p, j);
                    if best.is_none_or(|(_, bk)| key < bk) {
                        best = Some((s, key));
                    }
                }
            }
            let Some((s, _)) = best else { break };
            let (_, p, j, id) = self.deliveries[s][cursors[s]];
            cursors[s] += 1;
            let j = j as usize;
            if telemetry::on() {
                telemetry::record(
                    Engine::Pps,
                    now,
                    EventKind::PlaneDeliver {
                        cell: id,
                        plane: PlaneId(p),
                        output: PortId(j as u32),
                    },
                );
            }
            if self.outputs[j].deliver(&self.pool, id, now) {
                self.output_pending_live[j] += 1;
                if !self.active_flag[j] {
                    self.active_flag[j] = true;
                    self.active_list.push(j as u32);
                }
            }
        }
        pps_core::perf::record_intra_merge(merge_start.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Let every output with work emit at most one cell; record departures.
    ///
    /// With more than one intra-run shard and at least two active outputs,
    /// the outputs are banded by index: each shard walks the shared active
    /// list, emits from its own muxes with telemetry diverted into a
    /// shard-local capture, and the barrier replays outcomes in active-list
    /// order — byte-identical to the serial sweep.
    pub fn emit(&mut self, now: Slot, log: &mut RunLog) {
        pps_core::perf::record_slots(1);
        if self.shards == 1 || self.active_list.len() < 2 {
            return self.emit_serial(now, log);
        }
        self.emit_sharded(now, log);
    }

    /// The pre-sharding emit sweep, used verbatim when `shards == 1` (and
    /// for trivially small active lists).
    fn emit_serial(&mut self, now: Slot, log: &mut RunLog) {
        let mut write = 0usize;
        for read in 0..self.active_list.len() {
            let j = self.active_list[read];
            let mux = &mut self.outputs[j as usize];
            if let Some(id) = mux.emit(&self.pool, now) {
                self.output_pending_live[j as usize] -= 1;
                if telemetry::on() {
                    telemetry::record(
                        Engine::Pps,
                        now,
                        EventKind::Depart {
                            cell: id,
                            output: PortId(j),
                        },
                    );
                }
                log.set_departure(id, now);
            }
            if mux.has_work() {
                self.active_list[write] = j;
                write += 1;
            } else {
                self.active_flag[j as usize] = false;
            }
        }
        self.active_list.truncate(write);
    }

    /// Sharded emit sweep plus ordered barrier merge (see [`emit`]).
    ///
    /// [`emit`]: Self::emit
    fn emit_sharded(&mut self, now: Slot, log: &mut RunLog) {
        let n = self.cfg.n;
        let chunk = n.div_ceil(self.shards);
        let Fabric {
            outputs,
            active_list,
            emit_results,
            emit_caps,
            pool,
            ..
        } = self;
        let active: &[u32] = active_list;
        let pool: &CellPool = pool;
        let mut shards: Vec<EmitShard<'_>> = outputs
            .chunks_mut(chunk)
            .zip(emit_results.iter_mut())
            .zip(emit_caps.iter_mut())
            .enumerate()
            .map(|(i, ((outputs, results), cap))| {
                results.clear();
                EmitShard {
                    base: i * chunk,
                    outputs,
                    active,
                    results,
                    cap,
                }
            })
            .collect();
        run_sharded(&mut shards, |shard| shard.run(pool, now));
        let eshards = shards.len();
        drop(shards);

        // Barrier merge: counters fold once per shard; outcomes and event
        // runs replay in active-list order, interleaving shard captures
        // exactly as the serial sweep would have recorded them.
        let merge_start = Instant::now();
        for cap in &self.emit_caps[..eshards] {
            telemetry::fold_shard_counts(cap);
        }
        let (rcur, ecur) = (&mut self.cur_a, &mut self.cur_b);
        rcur[..eshards].fill(0);
        ecur[..eshards].fill(0);
        let mut write = 0usize;
        for read in 0..self.active_list.len() {
            let j = self.active_list[read];
            let s = j as usize / chunk;
            let outcome = self.emit_results[s][rcur[s]];
            rcur[s] += 1;
            let events = outcome.events as usize;
            telemetry::replay_shard_events(&self.emit_caps[s].events[ecur[s]..ecur[s] + events]);
            ecur[s] += events;
            if let Some(id) = outcome.emitted {
                self.output_pending_live[j as usize] -= 1;
                log.set_departure(id, now);
            }
            if outcome.has_work {
                self.active_list[write] = j;
                write += 1;
            } else {
                self.active_flag[j as usize] = false;
            }
        }
        self.active_list.truncate(write);
        pps_core::perf::record_intra_merge(merge_start.elapsed().as_nanos() as u64);
    }

    /// The next slot strictly after `now` at which the fabric does
    /// something beyond per-slot stall accounting: a plane-service event
    /// comes due, an output emits, or a resequencer watchdog fires. `None`
    /// means the fabric is inert until new cells are dispatched into it.
    ///
    /// Skip-ahead stepping jumps `now` to the minimum of this and the
    /// other components' activity, replaying the gap through
    /// [`skip_idle_slots`](Self::skip_idle_slots).
    pub fn next_activity(&self, now: Slot) -> Option<Slot> {
        // Stale agenda entries (drained queues, busy lines) are legitimate
        // activity: the dense loop pops them at exactly this slot, so the
        // skip must stop there too to keep the heap evolution identical.
        // With shards, the joint jump window is the min over the per-shard
        // agenda peeks — every shard must agree to sleep through the gap.
        let mut min = pps_core::stepping::earliest_of(
            self.agendas
                .iter()
                .map(|a| a.peek().map(|&Reverse((at, _, _))| at.max(now + 1))),
        );
        if min == Some(now + 1) {
            return min;
        }
        for idx in 0..self.active_list.len() {
            let mux = &self.outputs[self.active_list[idx] as usize];
            if let Some(at) = mux.next_activity(now) {
                min = Some(min.map_or(at, |m| m.min(at)));
                if min == Some(now + 1) {
                    break;
                }
            }
        }
        min
    }

    /// Replay the dense loop's effects over the skipped interval
    /// `[from, to]` in closed form: meter the slots as skipped and account
    /// the stall exposure of every active output. Valid only for intervals
    /// in which [`next_activity`](Self::next_activity) reported nothing due.
    pub fn skip_idle_slots(&mut self, from: Slot, to: Slot) {
        pps_core::perf::record_skipped(to - from + 1);
        for idx in 0..self.active_list.len() {
            let j = self.active_list[idx] as usize;
            self.outputs[j].skip_idle(from, to);
        }
    }

    /// Total cells emitted by the output multiplexors so far — the
    /// departure side of the conservation ledger.
    pub fn departed(&self) -> u64 {
        self.outputs.iter().map(|o| o.emitted()).sum()
    }

    /// Cells currently inside the fabric destined for `output` (its plane
    /// queues plus its multiplexor) — the occupancy the congestion-shape
    /// oracle samples per slot.
    pub fn queued_for(&self, output: usize) -> usize {
        self.planes
            .iter()
            .map(|p| p.queue_len(output))
            .sum::<usize>()
            + self.outputs[output].held()
    }

    /// Test-only chaos hook: arm the fabric to silently lose the next
    /// flushed cell on a plane failure *without* counting it dropped —
    /// an intentional conservation bug the chaos harness must catch and
    /// shrink. Never called outside the oracle-validation tests.
    #[doc(hidden)]
    pub fn inject_conservation_leak(&mut self) {
        self.leak_budget += 1;
    }

    /// Total cells inside the fabric (plane queues + output muxes).
    pub fn backlog(&self) -> usize {
        self.planes.iter().map(|p| p.backlog()).sum::<usize>()
            + self.outputs.iter().map(|o| o.held()).sum::<usize>()
    }

    /// Whether every plane buffer for `output` is currently non-empty — the
    /// paper's *congestion* predicate (Section 5) at one instant.
    pub fn all_planes_backlogged_for(&self, output: usize) -> bool {
        self.planes.iter().all(|p| p.queue_len(output) > 0)
    }

    /// Mark plane `plane` failed (fault-injection). Cells already queued
    /// inside the plane are lost with it: they are counted dropped and
    /// unregistered from the GlobalFcfs straggler tracking so outputs do
    /// not wait for them forever.
    pub fn fail_plane(&mut self, plane: usize) -> Result<(), ModelError> {
        self.check_plane(plane)?;
        for id in self.planes[plane].fail() {
            let j = self.pool.output(id).idx();
            self.plane_len_live[plane * self.cfg.n + j] -= 1;
            if self.leak_budget > 0 {
                // Injected bug (test-only, see `inject_conservation_leak`):
                // the cell vanishes without being counted dropped or
                // unregistered — exactly the accounting slip the chaos
                // conservation oracle exists to catch.
                self.leak_budget -= 1;
                continue;
            }
            self.dropped += 1;
            if self.cfg.discipline == OutputDiscipline::GlobalFcfs {
                self.outputs[j].unregister_in_flight(id);
            }
        }
        Ok(())
    }

    /// Bring a failed plane back into service. It restarts empty; cells
    /// lost to the failure are not restored.
    pub fn recover_plane(&mut self, plane: usize) -> Result<(), ModelError> {
        self.check_plane(plane)?;
        self.planes[plane].recover();
        Ok(())
    }

    /// Degrade the `input → plane` line: it presents as busy through slot
    /// `until` (exclusive) to the input's local view and rejects dispatch.
    pub fn degrade_link(
        &mut self,
        input: usize,
        plane: usize,
        until: Slot,
    ) -> Result<(), ModelError> {
        self.check_plane(plane)?;
        if input >= self.cfg.n {
            return Err(ModelError::InvalidConfig {
                reason: format!("input {input} out of range for N = {}", self.cfg.n),
            });
        }
        self.in_links.degrade(input, plane, until);
        Ok(())
    }

    fn check_plane(&self, plane: usize) -> Result<(), ModelError> {
        if plane >= self.cfg.k {
            return Err(ModelError::InvalidConfig {
                reason: format!("plane {plane} out of range for K = {}", self.cfg.k),
            });
        }
        Ok(())
    }

    /// Record a cell lost at the first stage: a bufferless input with no
    /// usable line (possible only under link degradation) has nowhere to
    /// hold it.
    pub fn drop_at_input(&mut self, cell: &Cell) {
        self.dropped += 1;
        if self.cfg.discipline == OutputDiscipline::GlobalFcfs {
            self.outputs[cell.output.idx()].unregister_in_flight(cell.id);
        }
    }

    /// Current up/down state of the planes, as observable by the
    /// information bus.
    pub fn plane_mask(&self) -> PlaneMask {
        let mut mask = PlaneMask::all_up(self.cfg.k);
        for (p, plane) in self.planes.iter().enumerate() {
            if plane.is_failed() {
                mask.set_up(p, false);
            }
        }
        mask
    }

    /// Build the observable global snapshot at `taken_at`.
    ///
    /// Thin allocating wrapper over [`snapshot_into`](Self::snapshot_into)
    /// for external callers; the engines' per-slot paths reuse buffers
    /// through `snapshot_into` instead.
    pub fn snapshot(&self, taken_at: Slot, input_buffer_len: &[u32]) -> GlobalSnapshot {
        let mut out = GlobalSnapshot::empty(self.cfg.n, self.cfg.k, taken_at);
        self.snapshot_into(taken_at, input_buffer_len, &mut out);
        out
    }

    /// Fill `out` with the observable global snapshot at `taken_at`,
    /// reusing its buffers when the geometry matches (the per-slot case)
    /// and reallocating only on a geometry change.
    pub fn snapshot_into(
        &self,
        taken_at: Slot,
        input_buffer_len: &[u32],
        out: &mut GlobalSnapshot,
    ) {
        out.taken_at = taken_at;
        out.k = self.cfg.k;
        out.n = self.cfg.n;
        if out.plane_queue_len.len() != self.plane_len_live.len() {
            out.plane_queue_len = vec![0; self.plane_len_live.len()].into_boxed_slice();
        }
        out.plane_queue_len.copy_from_slice(&self.plane_len_live);
        if out.input_buffer_len.len() != input_buffer_len.len() {
            out.input_buffer_len = vec![0; input_buffer_len.len()].into_boxed_slice();
        }
        out.input_buffer_len.copy_from_slice(input_buffer_len);
        if out.output_pending.len() != self.output_pending_live.len() {
            out.output_pending = vec![0; self.output_pending_live.len()].into_boxed_slice();
        }
        out.output_pending
            .copy_from_slice(&self.output_pending_live);
        if out.plane_mask.k() != self.cfg.k {
            out.plane_mask = PlaneMask::all_up(self.cfg.k);
        }
        for (p, plane) in self.planes.iter().enumerate() {
            out.plane_mask.set_up(p, !plane.is_failed());
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            plane_carried: self.planes.iter().map(|p| p.carried()).collect(),
            max_plane_queue: self
                .planes
                .iter()
                .map(|p| p.max_queue_occupancy())
                .max()
                .unwrap_or(0),
            max_output_held: self.outputs.iter().map(|o| o.max_held()).max().unwrap_or(0),
            dropped: self.dropped,
            skipped: self.outputs.iter().map(|o| o.skipped()).sum(),
            stalled_slots: self.outputs.iter().map(|o| o.stalled_slots()).sum(),
            late_dropped: self.outputs.iter().map(|o| o.late_dropped()).sum(),
            input_line_uses: self.in_links.acquisitions(),
            output_line_uses: self.out_links.acquisitions(),
        }
    }
}

/// One plane band of a sharded [`Fabric::service`] pass: owns its agenda
/// heap, planes, `out_links` rows, and `scheduled`/`plane_len_live` bands
/// (all at global indices), and defers output delivery into a sorted vec.
struct ServiceShard<'a> {
    base: usize,
    n: usize,
    r_prime: Slot,
    out: LinkBankPart<'a>,
    planes: &'a mut [Plane],
    scheduled: &'a mut [bool],
    plane_len_live: &'a mut [u32],
    agenda: &'a mut BinaryHeap<Reverse<(Slot, u32, u32)>>,
    deliveries: &'a mut Vec<(Slot, u32, u32, CellId)>,
    err: Option<ModelError>,
}

impl ServiceShard<'_> {
    /// The serial service body over this shard's band. Telemetry and
    /// output delivery are deferred to the barrier merge; acquisitions
    /// tally in the [`LinkBankPart`]. An error stops this shard and is
    /// surfaced after the barrier (lowest shard wins, deterministically).
    fn run(&mut self, now: Slot) {
        while let Some(&Reverse((at, p, j))) = self.agenda.peek() {
            if at > now {
                break;
            }
            self.agenda.pop();
            let (pu, ju) = (p as usize, j as usize);
            let local = (pu - self.base) * self.n + ju;
            self.scheduled[local] = false;
            if self.planes[pu - self.base].queue_len(ju) == 0 {
                continue;
            }
            if !self.out.is_free(pu, ju, now) {
                let at = self.out.free_at(pu, ju);
                if !self.scheduled[local] {
                    self.scheduled[local] = true;
                    self.agenda.push(Reverse((at, p, j)));
                }
                continue;
            }
            let id = self.planes[pu - self.base]
                .pop_for(ju)
                .expect("non-empty checked");
            if let Err(e) = self.out.acquire(pu, ju, now) {
                self.err = Some(e);
                return;
            }
            self.plane_len_live[local] -= 1;
            // Keyed by the agenda slot `at` (the serial heap's pop key),
            // not `now`: the barrier merge min-reduces on it.
            self.deliveries.push((at, p, j, id));
            if self.planes[pu - self.base].queue_len(ju) > 0 {
                let at = now + self.r_prime;
                if !self.scheduled[local] {
                    self.scheduled[local] = true;
                    self.agenda.push(Reverse((at, p, j)));
                }
            }
        }
    }
}

/// One output band of a sharded [`Fabric::emit`] sweep: walks the shared
/// active list, emits from its own muxes with telemetry diverted into the
/// shard capture, and records one [`EmitOutcome`] per owned entry.
struct EmitShard<'a> {
    base: usize,
    outputs: &'a mut [OutputMux],
    active: &'a [u32],
    results: &'a mut Vec<EmitOutcome>,
    cap: &'a mut ShardCapture,
}

impl EmitShard<'_> {
    fn run(&mut self, pool: &CellPool, now: Slot) {
        let (base, outputs, active, results) = (
            self.base,
            &mut *self.outputs,
            self.active,
            &mut *self.results,
        );
        telemetry::shard_capture_into(self.cap, || {
            for &j in active {
                let ju = j as usize;
                if ju < base || ju >= base + outputs.len() {
                    continue;
                }
                let mark = telemetry::shard_mark();
                let mux = &mut outputs[ju - base];
                let emitted = mux.emit(pool, now);
                if let Some(id) = emitted {
                    if telemetry::on() {
                        telemetry::record(
                            Engine::Pps,
                            now,
                            EventKind::Depart {
                                cell: id,
                                output: PortId(j),
                            },
                        );
                    }
                }
                results.push(EmitOutcome {
                    emitted,
                    has_work: mux.has_work(),
                    events: (telemetry::shard_mark() - mark) as u32,
                });
            }
        });
    }
}

/// Run `work` over every shard, leasing up to `shards.len() - 1` workers
/// from the shared budget for the extra bands and always keeping the
/// calling thread working. With no leasable workers (1-CPU, exhausted
/// budget) everything runs inline — same results, same order, because
/// shard outputs are merged by index afterwards, never by completion.
fn run_sharded<S: Send, F: Fn(&mut S) + Sync>(shards: &mut [S], work: F) {
    let mut leases: Vec<WorkerLease> = Vec::new();
    while leases.len() + 1 < shards.len() {
        match WorkerLease::try_new() {
            Some(lease) => leases.push(lease),
            None => break,
        }
    }
    let threads = leases.len() + 1;
    if threads == 1 {
        for shard in shards.iter_mut() {
            work(&mut *shard);
        }
        return;
    }
    let per = shards.len().div_ceil(threads);
    let mut bands = shards.chunks_mut(per);
    let mine = bands.next().expect("at least one band");
    let work = &work;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = bands
            .map(|band| {
                scope.spawn(move |_| {
                    for shard in band.iter_mut() {
                        work(&mut *shard);
                    }
                })
            })
            .collect();
        for shard in mine.iter_mut() {
            work(&mut *shard);
        }
        for handle in handles {
            handle.join().expect("shard worker panicked");
        }
    })
    .expect("shard scope");
    drop(leases);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, input: u32, output: u32, arrival: Slot) -> Cell {
        Cell {
            id: CellId(id),
            input: PortId(input),
            output: PortId(output),
            seq: 0,
            arrival,
        }
    }

    fn setup(n: usize, k: usize, rp: usize) -> (Fabric, RunLog) {
        let cfg = PpsConfig::bufferless(n, k, rp);
        let fabric = Fabric::new(cfg);
        let cells: Vec<Cell> = (0..16).map(|i| cell(i, 0, 0, 0)).collect();
        let log = RunLog::with_cells(&cells);
        (fabric, log)
    }

    #[test]
    fn same_slot_passthrough() {
        let (mut f, mut log) = setup(2, 2, 2);
        f.dispatch(cell(0, 0, 0, 0), PlaneId(0), 0, &mut log)
            .unwrap();
        f.service(0).unwrap();
        f.emit(0, &mut log);
        assert_eq!(log.get(CellId(0)).departure, Some(0));
        assert_eq!(log.get(CellId(0)).plane, Some(PlaneId(0)));
        assert_eq!(f.backlog(), 0);
    }

    #[test]
    fn plane_drains_one_cell_per_r_prime_slots() {
        // Two cells to the same output through the same plane: second
        // delivery waits r' slots — the concentration bottleneck of Lemma 4.
        let (mut f, mut log) = setup(2, 2, 3);
        f.dispatch(cell(0, 0, 0, 0), PlaneId(0), 0, &mut log)
            .unwrap();
        f.dispatch(cell(1, 1, 0, 0), PlaneId(0), 0, &mut log)
            .unwrap();
        for now in 0..=3 {
            f.service(now).unwrap();
            f.emit(now, &mut log);
        }
        assert_eq!(log.get(CellId(0)).departure, Some(0));
        assert_eq!(log.get(CellId(1)).departure, Some(3));
    }

    #[test]
    fn input_constraint_is_enforced() {
        let (mut f, mut log) = setup(2, 2, 2);
        f.dispatch(cell(0, 0, 0, 0), PlaneId(0), 0, &mut log)
            .unwrap();
        let err = f
            .dispatch(cell(1, 0, 1, 1), PlaneId(0), 1, &mut log)
            .unwrap_err();
        assert!(matches!(err, ModelError::InputConstraintViolation { .. }));
        // A different plane is fine.
        f.dispatch(cell(2, 0, 1, 1), PlaneId(1), 1, &mut log)
            .unwrap();
    }

    #[test]
    fn plane_out_of_range_is_reported() {
        let (mut f, mut log) = setup(2, 2, 2);
        let err = f
            .dispatch(cell(0, 0, 0, 0), PlaneId(5), 0, &mut log)
            .unwrap_err();
        assert!(matches!(err, ModelError::PlaneOutOfRange { k: 2, .. }));
    }

    #[test]
    fn two_planes_drain_in_parallel() {
        let (mut f, mut log) = setup(2, 2, 2);
        f.dispatch(cell(0, 0, 0, 0), PlaneId(0), 0, &mut log)
            .unwrap();
        f.dispatch(cell(1, 1, 0, 0), PlaneId(1), 0, &mut log)
            .unwrap();
        f.service(0).unwrap();
        f.emit(0, &mut log);
        f.service(1).unwrap();
        f.emit(1, &mut log);
        // Both delivered in slot 0 (different planes), emitted 0 and 1.
        assert_eq!(log.get(CellId(0)).departure, Some(0));
        assert_eq!(log.get(CellId(1)).departure, Some(1));
        assert_eq!(f.stats().max_output_held, 2);
    }

    #[test]
    fn failed_plane_drops_and_counts() {
        let (mut f, mut log) = setup(2, 2, 2);
        f.fail_plane(1).unwrap();
        f.dispatch(cell(0, 0, 0, 0), PlaneId(1), 0, &mut log)
            .unwrap();
        f.service(0).unwrap();
        f.emit(0, &mut log);
        assert_eq!(log.get(CellId(0)).departure, None);
        assert_eq!(f.stats().dropped, 1);
        assert_eq!(f.backlog(), 0);
    }

    #[test]
    fn fail_plane_out_of_range_is_an_error_not_a_panic() {
        let (mut f, _) = setup(2, 2, 2);
        assert!(matches!(
            f.fail_plane(2),
            Err(ModelError::InvalidConfig { .. })
        ));
        assert!(matches!(
            f.recover_plane(7),
            Err(ModelError::InvalidConfig { .. })
        ));
        assert_eq!(f.stats().dropped, 0);
    }

    #[test]
    fn mid_run_failure_flushes_queued_cells() {
        // Two cells queued behind each other in plane 0 for output 0; fail
        // the plane after the first has been delivered but before the
        // second can be (r' = 3 holds the line).
        let (mut f, mut log) = setup(2, 2, 3);
        f.dispatch(cell(0, 0, 0, 0), PlaneId(0), 0, &mut log)
            .unwrap();
        f.dispatch(cell(1, 1, 0, 0), PlaneId(0), 0, &mut log)
            .unwrap();
        f.service(0).unwrap();
        f.emit(0, &mut log);
        assert_eq!(log.get(CellId(0)).departure, Some(0));
        f.fail_plane(0).unwrap();
        for now in 1..=6 {
            f.service(now).unwrap();
            f.emit(now, &mut log);
        }
        assert_eq!(log.get(CellId(1)).departure, None);
        assert_eq!(f.stats().dropped, 1);
        assert_eq!(f.backlog(), 0);
    }

    #[test]
    fn recovered_plane_carries_again() {
        let (mut f, mut log) = setup(2, 2, 2);
        f.fail_plane(0).unwrap();
        f.dispatch(cell(0, 0, 0, 0), PlaneId(0), 0, &mut log)
            .unwrap();
        f.recover_plane(0).unwrap();
        // The input line is still occupied by the (lost) slot-0 dispatch.
        f.dispatch(cell(1, 0, 0, 2), PlaneId(0), 2, &mut log)
            .unwrap();
        f.service(2).unwrap();
        f.emit(2, &mut log);
        assert_eq!(log.get(CellId(0)).departure, None);
        assert_eq!(log.get(CellId(1)).departure, Some(2));
        assert_eq!(f.stats().dropped, 1);
    }

    #[test]
    fn degraded_link_rejects_dispatch_and_shows_busy() {
        let (mut f, mut log) = setup(2, 2, 2);
        f.degrade_link(0, 1, 10).unwrap();
        assert!(!f.local_view(PortId(0), 5).is_free(1));
        assert!(f
            .dispatch(cell(0, 0, 0, 5), PlaneId(1), 5, &mut log)
            .is_err());
        assert!(f.degrade_link(0, 9, 10).is_err());
        assert!(f.degrade_link(9, 0, 10).is_err());
    }

    #[test]
    fn snapshot_reports_plane_mask() {
        let (mut f, _) = setup(2, 2, 2);
        assert!(!f.snapshot(0, &[0, 0]).plane_mask.any_down());
        f.fail_plane(1).unwrap();
        let snap = f.snapshot(1, &[0, 0]);
        assert!(snap.plane_mask.is_up(0));
        assert!(!snap.plane_mask.is_up(1));
        f.recover_plane(1).unwrap();
        assert!(!f.snapshot(2, &[0, 0]).plane_mask.any_down());
    }

    #[test]
    fn snapshot_into_matches_allocating_snapshot() {
        let (mut f, mut log) = setup(2, 2, 2);
        f.dispatch(cell(0, 0, 0, 0), PlaneId(0), 0, &mut log)
            .unwrap();
        f.fail_plane(1).unwrap();
        let fresh = f.snapshot(3, &[1, 2]);
        // Filling a snapshot of the wrong geometry must rebuild it; a
        // matching one must be overwritten in place. Both end identical to
        // the allocating wrapper.
        let mut wrong = GlobalSnapshot::empty(5, 7, 0);
        f.snapshot_into(3, &[1, 2], &mut wrong);
        assert_eq!(fresh, wrong);
        let mut reused = f.snapshot(0, &[9, 9]);
        f.snapshot_into(3, &[1, 2], &mut reused);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn congestion_predicate() {
        let (mut f, mut log) = setup(2, 2, 2);
        assert!(!f.all_planes_backlogged_for(0));
        f.dispatch(cell(0, 0, 0, 0), PlaneId(0), 0, &mut log)
            .unwrap();
        f.dispatch(cell(1, 1, 0, 0), PlaneId(1), 0, &mut log)
            .unwrap();
        assert!(f.all_planes_backlogged_for(0));
    }
}
