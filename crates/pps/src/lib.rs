//! # pps-switch — cycle-accurate Parallel Packet Switch simulator
//!
//! The subject of the reproduction: a three-stage Clos packet switch with
//! `K` center-stage planes running at internal rate `r = R/r'` (paper,
//! Section 2 and Figure 1).
//!
//! * [`engine::BufferlessPps`] / [`engine::BufferedPps`] — the two switch
//!   variants, enforcing the input/output line constraints, per-slot
//!   arrival/departure cardinality, flow-order preservation, and the
//!   information classification of the demultiplexing algorithm.
//! * [`demux`] — one implementation per algorithm class the paper
//!   discusses: fully-distributed (round robin, per-flow round robin,
//!   randomized, static partition, FTD), `u`-RT (stale least-loaded,
//!   arbitrated crossbar), centralized (CPA), and the Theorem 12 delayed
//!   CPA.
//! * [`plane`], [`output`], [`fabric`] — the switching fabric internals.
//!
//! ## Quick example
//!
//! ```
//! use pps_core::prelude::*;
//! use pps_switch::demux::RoundRobinDemux;
//! use pps_switch::engine::run_bufferless;
//!
//! // A 4x4 PPS with 4 planes at half the external rate (S = 2).
//! let cfg = PpsConfig::bufferless(4, 4, 2);
//! let trace = Trace::build(
//!     (0..16).map(|t| Arrival::new(t, (t % 4) as u32, ((t + 1) % 4) as u32)).collect(),
//!     4,
//! ).unwrap();
//! let run = run_bufferless(cfg, RoundRobinDemux::new(4, 4), &trace).unwrap();
//! assert_eq!(run.log.undelivered(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demux;
pub mod engine;
pub mod fabric;
pub mod output;
pub mod perf;
pub mod plane;

pub use engine::{run_buffered, run_bufferless, BufferedPps, BufferlessPps, PpsRun};
pub use fabric::{Fabric, FabricStats};
