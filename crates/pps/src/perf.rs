//! Process-wide simulation throughput accounting.
//!
//! The fabric bumps [`SLOTS_SIMULATED`] once per simulated slot (one
//! relaxed atomic add — negligible next to the slot's own work), so any
//! driver can meter slots/sec across whole experiments without threading a
//! counter through every engine: read [`slots_simulated`] before and after
//! a workload and take the difference. The counter is cumulative and
//! monotonic; it is never reset.

use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) static SLOTS_SIMULATED: AtomicU64 = AtomicU64::new(0);

/// Total slots simulated by this process so far, across every fabric (both
/// engines, hand-rolled `slot()` loops included).
pub fn slots_simulated() -> u64 {
    SLOTS_SIMULATED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let before = slots_simulated();
        SLOTS_SIMULATED.fetch_add(3, Ordering::Relaxed);
        assert!(slots_simulated() >= before + 3);
    }
}
