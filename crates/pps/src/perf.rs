//! Process-wide simulation throughput accounting (re-export).
//!
//! The counter itself lives in [`pps_core::perf`] so that engines outside
//! this crate — the crossbar/CIOQ baselines, trace validators — can
//! account the slots they process through the same meter. The fabric
//! bumps it once per simulated slot (one relaxed atomic add — negligible
//! next to the slot's own work); drivers read [`slots_simulated`] before
//! and after a workload and take the difference. The counter is
//! cumulative and monotonic; it is never reset.

pub use pps_core::perf::{slots_simulated, slots_skipped};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let before = slots_simulated();
        pps_core::perf::record_slots(3);
        assert!(slots_simulated() >= before + 3);
    }
}
