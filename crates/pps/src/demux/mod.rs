//! The demultiplexing-algorithm zoo.
//!
//! One implementation per algorithm class the paper discusses:
//!
//! | Module | Algorithm | Class | Paper role |
//! |---|---|---|---|
//! | [`round_robin`] | per-input round robin | fully distributed, unpartitioned | Corollary 7 victim; the flavour of Iyer–McKeown's practical algorithm |
//! | [`per_flow_rr`] | per-flow round robin | fully distributed, unpartitioned | Iyer–McKeown \[15\] mimicking algorithm (upper bound N·R/r) |
//! | [`random`] | uniform over free planes | fully distributed, randomized | shows the lower bound's reach onto randomized algorithms (Section 6) |
//! | [`static_partition`] | fixed plane subsets | fully distributed, d-partitioned | Theorem 6 / Theorem 8 victim; fault-tolerance ablation |
//! | [`ftd`] | fractional traffic dispatch | fully distributed | Khotimsky–Krishnan \[17\] + the Section 5 extension (Theorem 14) |
//! | [`stale_least_loaded`] | least-loaded by `u`-old info | `u`-RT | Theorem 10 / Corollary 11 victim |
//! | [`cpa`] | centralized plane assignment | centralized | Iyer et al. \[14\] zero-delay upper bound (S ≥ 2) |
//! | [`buffered`] | buffered RR, delayed CPA, arbitrated crossbar | input-buffered | Section 4: Theorems 12 & 13 |
//! | [`local_heuristics`] | per-flow hashing, local least-loaded | fully distributed | ablation victims for Theorem 8's universality |
//! | [`load_balanced`] | two-stage LB rotation, power-of-`d` sampling | fully distributed | literature transplants (Chang–Lee; Mitzenmacher) still bound by Theorem 8 |
//! | [`fault_aware`] | mask-aware round robin & least-loaded | centralized / `u`-RT | fail→recover ablation: reroute around planes believed down |

pub mod buffered;
pub mod cpa;
pub mod fault_aware;
pub mod ftd;
pub mod load_balanced;
pub mod local_heuristics;
pub mod per_flow_rr;
pub mod random;
pub mod round_robin;
pub mod stale_least_loaded;
pub mod static_partition;

pub use buffered::{
    ArbitratedCrossbarDemux, BufferedRoundRobinDemux, BufferedStaleDemux, DelayedCpaDemux,
};
pub use cpa::CpaDemux;
pub use fault_aware::{FaultAwareLeastLoadedDemux, FaultAwareRoundRobinDemux};
pub use ftd::FtdDemux;
pub use load_balanced::{LeastLoadedOfDDemux, TwoStageLbDemux};
pub use local_heuristics::{HashFlowDemux, LeastLoadedLocalDemux};
pub use per_flow_rr::PerFlowRoundRobinDemux;
pub use random::RandomDemux;
pub use round_robin::RoundRobinDemux;
pub use stale_least_loaded::StaleLeastLoadedDemux;
pub use static_partition::StaticPartitionDemux;
