//! Fractional traffic dispatch (FTD) and its Section 5 extension.
//!
//! Khotimsky & Krishnan's FTD family \[17\] segments each flow `(i, j)` into
//! blocks and never sends two cells of one block through the same plane.
//! Section 5 of the paper parameterizes the block size as `h·R/r = h·r'`
//! with `h > 1` and proves (Theorem 14) that the resulting fully-distributed
//! algorithm introduces **zero relative queuing delay during congested
//! periods** — once every plane's queue for the hot output is continuously
//! backlogged, the `K` plane→output lines jointly deliver `K/r' = S ≥ h >
//! 1` cells per slot, so the output never idles — after a warm-up period
//! that shrinks as `h` grows.
//!
//! Correct operation requires speedup `S ≥ h` (so a block of `h·r'` cells
//! can find `h·r' ≤ K` distinct planes).

use pps_core::prelude::*;

/// Per-flow block-spreading state.
#[derive(Clone, Copy, Debug, Default)]
struct FlowBlock {
    /// Bitmask of planes already used in the current block.
    used: u128,
    /// Cells dispatched in the current block.
    count: u32,
    /// Last plane used (round-robin origin for the next pick).
    last: u32,
}

/// Fractional-traffic-dispatch demultiplexor with block size `h·r'`.
#[derive(Clone, Debug)]
pub struct FtdDemux {
    flows: Vec<FlowBlock>,
    n: usize,
    k: usize,
    block_size: u32,
    /// Dispatches that could not honour block-distinctness (all unused
    /// planes busy); counted, then dispatched to any free plane.
    violations: u64,
}

impl FtdDemux {
    /// FTD for an `n × n` switch over `k ≤ 128` planes with slowdown
    /// `r_prime` and block parameter `h ≥ 2`.
    ///
    /// # Panics
    /// Panics if `k > 128` (plane sets are u128 bitmasks) or if the block
    /// `h·r'` exceeds `k` (i.e. the speedup requirement `S ≥ h` fails).
    pub fn new(n: usize, k: usize, r_prime: usize, h: usize) -> Self {
        assert!(k <= 128, "FtdDemux supports at most 128 planes");
        assert!(h >= 2, "Section 5 requires h > 1");
        let block_size = (h * r_prime) as u32;
        assert!(
            block_size as usize <= k,
            "FTD requires S >= h, i.e. h*r' <= K (got h*r' = {block_size}, K = {k})"
        );
        FtdDemux {
            flows: vec![FlowBlock::default(); n * n],
            n,
            k,
            block_size,
            violations: 0,
        }
    }

    /// The configured block size `h·r'`.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// Block-distinctness violations forced by busy lines (0 in legal
    /// operation).
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

impl Demultiplexor for FtdDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        let f = cell.input.idx() * self.n + cell.output.idx();
        let state = &mut self.flows[f];
        if state.count >= self.block_size {
            state.used = 0;
            state.count = 0;
        }
        // Round-robin scan from the successor of the last plane, skipping
        // planes already used in this block and busy lines.
        let start = (state.last as usize + 1) % self.k;
        let mut choice = None;
        for off in 0..self.k {
            let p = (start + off) % self.k;
            if state.used & (1u128 << p) == 0 && ctx.local.is_free(p) {
                choice = Some(p);
                break;
            }
        }
        let p = match choice {
            Some(p) => p,
            None => {
                // All unused planes busy: a bufferless input must still
                // dispatch; break distinctness and record it.
                self.violations += 1;
                ctx.local
                    .next_free_from(start)
                    .expect("valid bufferless config guarantees a free plane")
            }
        };
        state.used |= 1u128 << p;
        state.count += 1;
        state.last = p as u32;
        PlaneId(p as u32)
    }

    fn reset(&mut self) {
        self.flows.fill(FlowBlock::default());
        self.violations = 0;
    }

    fn name(&self) -> &'static str {
        "ftd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_core::demux::probe_dispatch;

    fn cell(input: u32, output: u32) -> Cell {
        Cell {
            id: CellId(0),
            input: PortId(input),
            output: PortId(output),
            seq: 0,
            arrival: 0,
        }
    }

    #[test]
    fn block_cells_ride_distinct_planes() {
        // k = 8, r' = 2, h = 2 => block = 4.
        let mut d = FtdDemux::new(1, 8, 2, 2);
        let free = vec![0u64; 8];
        let picks: Vec<u32> = (0..4)
            .map(|_| probe_dispatch(&mut d, &cell(0, 0), 0, &free).0)
            .collect();
        let set: std::collections::BTreeSet<u32> = picks.iter().copied().collect();
        assert_eq!(set.len(), 4, "block must use distinct planes: {picks:?}");
    }

    #[test]
    fn new_block_may_reuse_planes() {
        let mut d = FtdDemux::new(1, 4, 2, 2); // block = 4 = k
        let free = vec![0u64; 4];
        let picks: Vec<u32> = (0..8)
            .map(|_| probe_dispatch(&mut d, &cell(0, 0), 0, &free).0)
            .collect();
        // First block uses all 4 planes; second block starts over.
        let first: std::collections::BTreeSet<u32> = picks[..4].iter().copied().collect();
        let second: std::collections::BTreeSet<u32> = picks[4..].iter().copied().collect();
        assert_eq!(first.len(), 4);
        assert_eq!(second.len(), 4);
        assert_eq!(d.violations(), 0);
    }

    #[test]
    fn flows_have_independent_blocks() {
        let mut d = FtdDemux::new(2, 8, 2, 2);
        let free = vec![0u64; 8];
        // Interleave two flows; each must still keep distinctness.
        let mut per_flow: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
        for t in 0..8 {
            let j = t % 2;
            per_flow[j as usize].push(probe_dispatch(&mut d, &cell(0, j), t as u64, &free).0);
        }
        for picks in &per_flow {
            let set: std::collections::BTreeSet<u32> = picks.iter().copied().collect();
            assert_eq!(set.len(), 4, "{picks:?}");
        }
    }

    #[test]
    #[should_panic(expected = "S >= h")]
    fn speedup_requirement_checked() {
        let _ = FtdDemux::new(1, 4, 4, 2); // h*r' = 8 > K = 4
    }

    #[test]
    fn busy_lines_force_counted_violation() {
        let mut d = FtdDemux::new(1, 4, 2, 2);
        // Planes 0..3; all free initially. Use 0,1,2 in the block, then make
        // plane 3 busy: the 4th cell of the block must violate.
        let free = vec![0u64; 4];
        for _ in 0..3 {
            probe_dispatch(&mut d, &cell(0, 0), 0, &free);
        }
        let unused = (0..4).find(|&p| d.flows[0].used & (1 << p) == 0).unwrap();
        let mut b = vec![0u64; 4];
        b[unused] = 100;
        let ctx = DispatchCtx {
            local: LocalView {
                now: 0,
                input: PortId(0),
                link_busy_until: &b,
            },
            global: None,
        };
        let _ = d.dispatch(&cell(0, 0), &ctx);
        assert_eq!(d.violations(), 1);
    }
}
