//! `u` real-time distributed (u-RT) dispatch by stale least-loaded plane.
//!
//! A natural member of the paper's Definition 9 class: the demultiplexor
//! ranks planes by their queue length for the cell's destination **as of
//! the global snapshot from `u` slots ago**, corrected by the input's own
//! dispatches since then (which are local information and therefore usable
//! in real time), and picks the least-loaded free plane.
//!
//! This is the class Theorem 10 lower-bounds: during the last `u` slots,
//! the demultiplexors of different inputs cannot see one another's
//! dispatches, so symmetric inputs make *identical* plane choices and a
//! burst of `u'·N/K` coordinated flows concentrates `u'·N/K` cells on one
//! plane — the `(1 − u'·r/R)·u'·N/S` bound. Arbitrated crossbars
//! (request/grant with a `u`-slot round trip) are the paper's practical
//! example of this class.

use pps_core::prelude::*;
use std::collections::VecDeque;

/// Stale-information least-loaded demultiplexor.
#[derive(Clone, Debug)]
pub struct StaleLeastLoadedDemux {
    u: Slot,
    k: usize,
    /// Per input: recent own dispatches `(slot, plane, output)` not yet
    /// reflected in the stale snapshot.
    recent: Vec<VecDeque<(Slot, u32, u32)>>,
}

impl StaleLeastLoadedDemux {
    /// A `u`-RT least-loaded demultiplexor for `n` inputs over `k` planes.
    ///
    /// # Panics
    /// Panics if `u == 0` (that would be a centralized algorithm; use
    /// [`crate::demux::CpaDemux`]).
    pub fn new(n: usize, k: usize, u: Slot) -> Self {
        assert!(u >= 1, "u-RT requires u >= 1");
        StaleLeastLoadedDemux {
            u,
            k,
            recent: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    /// The configured information delay `u`.
    pub fn u(&self) -> Slot {
        self.u
    }

    /// Estimated queue length of `plane` for `output` from `input`'s
    /// standpoint: stale global value plus own unseen dispatches.
    fn estimate(
        &self,
        input: usize,
        plane: usize,
        output: u32,
        snap: Option<&GlobalSnapshot>,
    ) -> u64 {
        let base = snap.map_or(0, |s| s.queue_len(plane, output as usize) as u64);
        let horizon = snap.map_or(0, |s| s.taken_at);
        let own = self.recent[input]
            .iter()
            .filter(|&&(slot, p, j)| slot > horizon && p as usize == plane && j == output)
            .count() as u64;
        base + own
    }
}

impl Demultiplexor for StaleLeastLoadedDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::RealTimeDistributed { u: self.u }
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        let i = cell.input.idx();
        let j = cell.output.0;
        // Prune own history that the snapshot has caught up with.
        let horizon = ctx.global.map_or(0, |s| s.taken_at);
        while let Some(&(slot, _, _)) = self.recent[i].front() {
            if slot <= horizon {
                self.recent[i].pop_front();
            } else {
                break;
            }
        }
        let p = (0..self.k)
            .filter(|&p| ctx.local.is_free(p))
            .min_by_key(|&p| (self.estimate(i, p, j, ctx.global), p))
            .expect("valid bufferless config guarantees a free plane");
        self.recent[i].push_back((ctx.local.now, p as u32, j));
        PlaneId(p as u32)
    }

    fn reset(&mut self) {
        for q in &mut self.recent {
            q.clear();
        }
    }

    fn name(&self) -> &'static str {
        "stale-least-loaded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(input: u32, output: u32) -> Cell {
        Cell {
            id: CellId(0),
            input: PortId(input),
            output: PortId(output),
            seq: 0,
            arrival: 0,
        }
    }

    fn snap(n: usize, k: usize, taken_at: Slot, lens: &[u32]) -> GlobalSnapshot {
        let mut s = GlobalSnapshot::empty(n, k, taken_at);
        s.plane_queue_len.copy_from_slice(lens);
        s
    }

    fn ctx<'a>(now: Slot, busy: &'a [Slot], snap: Option<&'a GlobalSnapshot>) -> DispatchCtx<'a> {
        DispatchCtx {
            local: LocalView {
                now,
                input: PortId(0),
                link_busy_until: busy,
            },
            global: snap,
        }
    }

    #[test]
    fn follows_the_stale_ranking() {
        let mut d = StaleLeastLoadedDemux::new(1, 3, 2);
        // n=2 snapshot, k=3: queue lens for output 0: plane0=5, plane1=1, plane2=3.
        let s = snap(2, 3, 0, &[5, 0, 1, 0, 3, 0]);
        let free = vec![0u64; 3];
        let p = d.dispatch(&cell(0, 0), &ctx(2, &free, Some(&s)));
        assert_eq!(p, PlaneId(1));
    }

    #[test]
    fn accounts_for_own_recent_sends() {
        let mut d = StaleLeastLoadedDemux::new(1, 2, 4);
        // Both planes look empty in the stale view.
        let s = snap(1, 2, 0, &[0, 0]);
        let free = vec![0u64; 2];
        // Two dispatches at slots 1 and 2: the demux should alternate,
        // because it remembers its own (locally known) sends.
        let a = d.dispatch(&cell(0, 0), &ctx(1, &free, Some(&s)));
        let b = d.dispatch(&cell(0, 0), &ctx(2, &free, Some(&s)));
        assert_eq!(a, PlaneId(0));
        assert_eq!(b, PlaneId(1));
    }

    #[test]
    fn history_is_pruned_once_snapshot_catches_up() {
        let mut d = StaleLeastLoadedDemux::new(1, 2, 2);
        let s0 = snap(1, 2, 0, &[0, 0]);
        let free = vec![0u64; 2];
        d.dispatch(&cell(0, 0), &ctx(1, &free, Some(&s0)));
        assert_eq!(d.recent[0].len(), 1);
        // A snapshot from slot 3 includes the slot-1 dispatch.
        let s3 = snap(1, 2, 3, &[1, 0]);
        d.dispatch(&cell(0, 0), &ctx(5, &free, Some(&s3)));
        // The old entry was pruned; only the new dispatch remains.
        assert_eq!(d.recent[0].len(), 1);
        assert_eq!(d.recent[0][0].0, 5);
    }

    #[test]
    fn symmetric_inputs_choose_identically() {
        // The heart of the Theorem 10 attack: two inputs with the same
        // stale view and no knowledge of each other pick the same plane.
        let mut d = StaleLeastLoadedDemux::new(2, 4, 8);
        let s = snap(2, 4, 0, &[3, 0, 1, 0, 2, 0, 7, 0]);
        let free = vec![0u64; 4];
        let p0 = d.dispatch(&cell(0, 0), &ctx(3, &free, Some(&s)));
        let p1 = d.dispatch(&cell(1, 0), &ctx(3, &free, Some(&s)));
        assert_eq!(p0, p1);
        assert_eq!(p0, PlaneId(1));
    }

    #[test]
    fn without_global_view_falls_back_deterministically() {
        let mut d = StaleLeastLoadedDemux::new(2, 3, 5);
        let free = vec![0u64; 3];
        // No snapshot yet (now < u): both inputs pick plane 0.
        assert_eq!(d.dispatch(&cell(0, 0), &ctx(1, &free, None)), PlaneId(0));
        assert_eq!(d.dispatch(&cell(1, 0), &ctx(1, &free, None)), PlaneId(0));
    }
}
