//! Additional fully-distributed heuristics.
//!
//! Theorem 8 binds *every* fully-distributed algorithm, however clever its
//! use of local information. These two round out the zoo on opposite ends
//! of the sophistication scale and feed the ablation experiments:
//!
//! * [`HashFlowDemux`] — each flow is statically hashed to one plane
//!   (deviating to the next free line only when forced). The distributed
//!   analogue of ECMP-style spreading: trivially order-preserving per
//!   flow, but d-partitioned with enormous `d` (all flows hashing to one
//!   plane share it), and at full per-flow rate it thrashes against the
//!   input constraint.
//! * [`LeastLoadedLocalDemux`] — tracks, per input, a decaying estimate of
//!   how much *it itself* has recently sent to each plane, and picks the
//!   free plane with the smallest estimate. The best one can do with
//!   purely local knowledge — and still Ω((R/r − 1)·N/S), because other
//!   inputs' contributions are invisible.

use pps_core::prelude::*;

/// Static per-flow hashing demultiplexor.
#[derive(Clone, Debug)]
pub struct HashFlowDemux {
    n: usize,
    k: usize,
    /// Dispatches forced off the flow's home plane by a busy line.
    deviations: u64,
}

impl HashFlowDemux {
    /// Hash-based dispatch for an `n × n` switch over `k` planes.
    pub fn new(n: usize, k: usize) -> Self {
        HashFlowDemux {
            n,
            k,
            deviations: 0,
        }
    }

    /// The home plane of flow `(input, output)`.
    pub fn home_plane(&self, input: usize, output: usize) -> usize {
        // Fibonacci-style mixing of the dense flow index; deterministic
        // and spread across planes.
        let f = (input * self.n + output) as u64;
        ((f.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % self.k as u64) as usize
    }

    /// Dispatches that could not use the home plane.
    pub fn deviations(&self) -> u64 {
        self.deviations
    }
}

impl Demultiplexor for HashFlowDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        let home = self.home_plane(cell.input.idx(), cell.output.idx());
        if ctx.local.is_free(home) {
            return PlaneId(home as u32);
        }
        self.deviations += 1;
        let p = ctx
            .local
            .next_free_from(home)
            .expect("valid bufferless config guarantees a free plane");
        PlaneId(p as u32)
    }

    fn reset(&mut self) {
        self.deviations = 0;
    }

    fn name(&self) -> &'static str {
        "hash-flow"
    }
}

/// Locally-estimated least-loaded dispatch.
#[derive(Clone, Debug)]
pub struct LeastLoadedLocalDemux {
    k: usize,
    r_prime: u64,
    /// Per input × plane: `(estimate, last_update_slot)`. The estimate
    /// charges `r'` per own dispatch (the slots the cell occupies a
    /// plane→output line) and decays one unit per elapsed slot.
    est: Vec<(u64, Slot)>,
}

impl LeastLoadedLocalDemux {
    /// Local least-loaded dispatch for `n` inputs over `k` planes with
    /// slowdown `r_prime`.
    pub fn new(n: usize, k: usize, r_prime: usize) -> Self {
        LeastLoadedLocalDemux {
            k,
            r_prime: r_prime as u64,
            est: vec![(0, 0); n * k],
        }
    }

    fn current(&self, input: usize, plane: usize, now: Slot) -> u64 {
        let (e, t) = self.est[input * self.k + plane];
        e.saturating_sub(now.saturating_sub(t))
    }
}

impl Demultiplexor for LeastLoadedLocalDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        let i = cell.input.idx();
        let now = ctx.local.now;
        let p = (0..self.k)
            .filter(|&p| ctx.local.is_free(p))
            .min_by_key(|&p| (self.current(i, p, now), p))
            .expect("valid bufferless config guarantees a free plane");
        let cur = self.current(i, p, now);
        self.est[i * self.k + p] = (cur + self.r_prime, now);
        PlaneId(p as u32)
    }

    fn reset(&mut self) {
        self.est.fill((0, 0));
    }

    fn name(&self) -> &'static str {
        "least-loaded-local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_core::demux::probe_dispatch;

    fn cell(input: u32, output: u32) -> Cell {
        Cell {
            id: CellId(0),
            input: PortId(input),
            output: PortId(output),
            seq: 0,
            arrival: 0,
        }
    }

    #[test]
    fn hash_is_stable_per_flow() {
        let mut d = HashFlowDemux::new(4, 8);
        let free = vec![0u64; 8];
        let p1 = probe_dispatch(&mut d, &cell(1, 2), 0, &free);
        let p2 = probe_dispatch(&mut d, &cell(1, 2), 100, &free);
        assert_eq!(p1, p2, "a flow always hashes to the same plane");
        assert_eq!(d.deviations(), 0);
    }

    #[test]
    fn hash_spreads_flows() {
        let d = HashFlowDemux::new(16, 8);
        let planes: std::collections::BTreeSet<usize> = (0..16)
            .flat_map(|i| (0..16).map(move |j| (i, j)))
            .map(|(i, j)| d.home_plane(i, j))
            .collect();
        assert!(
            planes.len() >= 6,
            "hash should cover most planes: {planes:?}"
        );
    }

    #[test]
    fn hash_deviates_when_home_is_busy() {
        let mut d = HashFlowDemux::new(2, 2);
        let home = d.home_plane(0, 0);
        let mut busy = vec![0u64; 2];
        busy[home] = 100;
        let ctx = DispatchCtx {
            local: LocalView {
                now: 0,
                input: PortId(0),
                link_busy_until: &busy,
            },
            global: None,
        };
        let p = d.dispatch(&cell(0, 0), &ctx);
        assert_ne!(p.idx(), home);
        assert_eq!(d.deviations(), 1);
    }

    #[test]
    fn least_loaded_local_spreads_own_traffic() {
        let mut d = LeastLoadedLocalDemux::new(1, 4, 4);
        let free = vec![0u64; 4];
        // Back-to-back dispatches in one slot-window spread over planes
        // because the local estimates charge r' per dispatch.
        let picks: std::collections::BTreeSet<u32> = (0..4)
            .map(|t| probe_dispatch(&mut d, &cell(0, 0), t, &free).0)
            .collect();
        assert_eq!(picks.len(), 4, "estimates must force spreading");
    }

    #[test]
    fn least_loaded_local_estimates_decay() {
        let mut d = LeastLoadedLocalDemux::new(1, 2, 4);
        let free = vec![0u64; 2];
        assert_eq!(probe_dispatch(&mut d, &cell(0, 0), 0, &free), PlaneId(0));
        // Long quiet period: estimates decay to zero, plane 0 is first
        // again by index tie-break.
        assert_eq!(probe_dispatch(&mut d, &cell(0, 0), 100, &free), PlaneId(0));
    }

    #[test]
    fn inputs_are_independent() {
        let mut d = LeastLoadedLocalDemux::new(2, 4, 4);
        let free = vec![0u64; 4];
        probe_dispatch(&mut d, &cell(0, 0), 0, &free);
        probe_dispatch(&mut d, &cell(0, 0), 0, &free);
        // Input 1's estimates are untouched: it starts at plane 0.
        assert_eq!(probe_dispatch(&mut d, &cell(1, 0), 0, &free), PlaneId(0));
    }
}
