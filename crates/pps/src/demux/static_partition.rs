//! Statically partitioned dispatch.
//!
//! Each input port is restricted to a fixed subset of the planes and
//! round-robins within it. The paper uses this family twice:
//!
//! * Theorem 6 lower-bounds any *d-partitioned* algorithm — one where some
//!   plane/output pair is shared by at least `d` demultiplexors — by
//!   `(R/r − 1)·d`;
//! * Theorem 8 observes that even with static partitioning, the input
//!   constraint forces each input to use at least `r'` planes, so some
//!   plane is shared by at least `r'·N/K = N/S` inputs, yielding
//!   `(R/r − 1)·N/S` for *every* fully-distributed algorithm.
//!
//! The paper also notes static partitioning is *failure-prone*: losing one
//! plane severs the inputs whose subset contained it. The fault-injection
//! experiment quantifies this against the unpartitioned round robin.

use pps_core::prelude::*;

/// Statically partitioned round-robin demultiplexor.
#[derive(Clone, Debug)]
pub struct StaticPartitionDemux {
    /// Plane subset per input.
    partition: Vec<Vec<u32>>,
    /// Round-robin position per input (index into its subset).
    next: Vec<u32>,
    /// Dispatches forced outside the partition (all subset lines busy —
    /// cannot happen when every subset has at least `r'` planes).
    escapes: u64,
}

impl StaticPartitionDemux {
    /// Build from an explicit partition: `partition[i]` is the plane subset
    /// of input `i`. Subsets must be non-empty.
    pub fn new(partition: Vec<Vec<u32>>) -> Self {
        assert!(
            partition.iter().all(|s| !s.is_empty()),
            "every input needs a non-empty plane subset"
        );
        let n = partition.len();
        StaticPartitionDemux {
            partition,
            next: vec![0; n],
            escapes: 0,
        }
    }

    /// The *minimal* legal partition of Theorem 8: each input uses exactly
    /// `r'` planes, subsets assigned contiguously so that the `K/r'` groups
    /// share the load. With `g = K/r'` groups, each plane/output pair is
    /// used by `⌈N/g⌉ = ⌈N·r'/K⌉ = ⌈N/S⌉` inputs — the concentration the
    /// theorem exploits.
    pub fn minimal(n: usize, k: usize, r_prime: usize) -> Self {
        assert!(
            k >= r_prime,
            "need K >= r' for a legal bufferless partition"
        );
        let groups = k / r_prime; // leftover planes stay unused — worst legal case
        let partition = (0..n)
            .map(|i| {
                let g = i % groups;
                ((g * r_prime) as u32..((g + 1) * r_prime) as u32).collect()
            })
            .collect();
        StaticPartitionDemux::new(partition)
    }

    /// Partition where every input uses the same `d`-plane subset
    /// (`planes 0..d`) — the maximally concentrated d-partitioned case used
    /// to sweep Theorem 6's bound in `d`.
    pub fn shared(n: usize, d: usize) -> Self {
        StaticPartitionDemux::new(vec![(0..d as u32).collect(); n])
    }

    /// The subset of input `i`.
    pub fn planes_of(&self, input: usize) -> &[u32] {
        &self.partition[input]
    }

    /// Maximum number of inputs sharing any single plane — the `d` for
    /// which this instance is d-partitioned.
    pub fn concentration(&self, k: usize) -> usize {
        let mut users = vec![0usize; k];
        for subset in &self.partition {
            for &p in subset {
                users[p as usize] += 1;
            }
        }
        users.into_iter().max().unwrap_or(0)
    }

    /// Dispatches that had to leave the partition (diagnostics; stays 0 for
    /// legal configurations).
    pub fn escapes(&self) -> u64 {
        self.escapes
    }
}

impl Demultiplexor for StaticPartitionDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        let i = cell.input.idx();
        let subset = &self.partition[i];
        let len = subset.len();
        let start = self.next[i] as usize;
        for off in 0..len {
            let pos = (start + off) % len;
            let p = subset[pos] as usize;
            if ctx.local.is_free(p) {
                self.next[i] = ((pos + 1) % len) as u32;
                return PlaneId(p as u32);
            }
        }
        // All subset lines busy: a bufferless input must still dispatch
        // somewhere; escape to any free plane and record the breach.
        self.escapes += 1;
        let p = ctx
            .local
            .next_free_from(0)
            .expect("valid bufferless config guarantees a free plane");
        PlaneId(p as u32)
    }

    fn reset(&mut self) {
        self.next.fill(0);
        self.escapes = 0;
    }

    fn name(&self) -> &'static str {
        "static-partition"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_core::demux::probe_dispatch;

    fn cell(input: u32) -> Cell {
        Cell {
            id: CellId(0),
            input: PortId(input),
            output: PortId(0),
            seq: 0,
            arrival: 0,
        }
    }

    #[test]
    fn stays_inside_its_subset() {
        let mut d = StaticPartitionDemux::new(vec![vec![2, 3]]);
        let free = vec![0u64; 4];
        let picks: Vec<u32> = (0..4)
            .map(|_| probe_dispatch(&mut d, &cell(0), 0, &free).0)
            .collect();
        assert_eq!(picks, vec![2, 3, 2, 3]);
        assert_eq!(d.escapes(), 0);
    }

    #[test]
    fn minimal_partition_geometry() {
        // N = 8, K = 4, r' = 2 => 2 groups of 2 planes; 4 inputs per group.
        let d = StaticPartitionDemux::minimal(8, 4, 2);
        assert_eq!(d.planes_of(0), &[0, 1]);
        assert_eq!(d.planes_of(1), &[2, 3]);
        assert_eq!(d.planes_of(2), &[0, 1]);
        assert_eq!(d.concentration(4), 4); // = N/S = 8/(4/2)
    }

    #[test]
    fn shared_partition_concentrates_everyone() {
        let d = StaticPartitionDemux::shared(6, 2);
        assert_eq!(d.concentration(4), 6);
    }

    #[test]
    fn escape_when_whole_subset_busy() {
        let mut d = StaticPartitionDemux::new(vec![vec![0]]);
        let busy = vec![10u64, 0];
        let ctx = DispatchCtx {
            local: LocalView {
                now: 0,
                input: PortId(0),
                link_busy_until: &busy,
            },
            global: None,
        };
        assert_eq!(d.dispatch(&cell(0), &ctx), PlaneId(1));
        assert_eq!(d.escapes(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_subset_is_rejected() {
        let _ = StaticPartitionDemux::new(vec![vec![]]);
    }
}
