//! Randomized dispatch.
//!
//! Each input picks uniformly at random among its currently free planes.
//! The paper's discussion (Section 6) notes that its worst-case traffics
//! apply to randomized demultiplexors too: randomization changes the
//! *distribution* of the concentration, not its possibility. The experiment
//! suite uses this algorithm to measure that distribution — under the
//! Corollary 7 attack traffic the expected concentration on the most loaded
//! plane is `Θ(N/K)` (balls into bins), so the measured relative delay
//! lands between the deterministic round-robin worst case and the CPA
//! optimum.
//!
//! Determinism: every input port owns its own seeded RNG, so a run is
//! reproducible and per-input state remains independent (the algorithm
//! stays fully distributed).

use pps_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform-over-free-planes demultiplexor.
#[derive(Clone, Debug)]
pub struct RandomDemux {
    rngs: Vec<StdRng>,
    seed: u64,
}

impl RandomDemux {
    /// A randomized demultiplexor with one RNG per input, derived from
    /// `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        RandomDemux {
            rngs: (0..n)
                .map(|i| StdRng::seed_from_u64(seed ^ ((i as u64) << 32) ^ 0x9e37_79b9))
                .collect(),
            seed,
        }
    }
}

impl Demultiplexor for RandomDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        let i = cell.input.idx();
        let free_count = ctx.local.free_planes().count();
        debug_assert!(
            free_count > 0,
            "valid bufferless config guarantees a free plane"
        );
        let pick = self.rngs[i].random_range(0..free_count);
        let p = ctx
            .local
            .free_planes()
            .nth(pick)
            .expect("pick < free_count");
        PlaneId(p as u32)
    }

    fn reset(&mut self) {
        let n = self.rngs.len();
        *self = RandomDemux::new(n, self.seed);
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_core::demux::probe_dispatch;

    fn cell(input: u32) -> Cell {
        Cell {
            id: CellId(0),
            input: PortId(input),
            output: PortId(0),
            seq: 0,
            arrival: 0,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let free = vec![0u64; 8];
        let run = |seed| -> Vec<u32> {
            let mut d = RandomDemux::new(1, seed);
            (0..32)
                .map(|_| probe_dispatch(&mut d, &cell(0), 0, &free).0)
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn only_free_planes_are_chosen() {
        let mut d = RandomDemux::new(1, 1);
        let busy = vec![10u64, 0, 10, 0]; // only planes 1 and 3 free
        let ctx = DispatchCtx {
            local: LocalView {
                now: 0,
                input: PortId(0),
                link_busy_until: &busy,
            },
            global: None,
        };
        for _ in 0..64 {
            let p = d.dispatch(&cell(0), &ctx);
            assert!(p == PlaneId(1) || p == PlaneId(3));
        }
    }

    #[test]
    fn roughly_uniform_over_planes() {
        let mut d = RandomDemux::new(1, 42);
        let free = vec![0u64; 4];
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[probe_dispatch(&mut d, &cell(0), 0, &free).idx()] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed counts: {counts:?}");
        }
    }

    #[test]
    fn reset_replays_the_same_sequence() {
        let free = vec![0u64; 4];
        let mut d = RandomDemux::new(1, 3);
        let a: Vec<u32> = (0..16)
            .map(|_| probe_dispatch(&mut d, &cell(0), 0, &free).0)
            .collect();
        d.reset();
        let b: Vec<u32> = (0..16)
            .map(|_| probe_dispatch(&mut d, &cell(0), 0, &free).0)
            .collect();
        assert_eq!(a, b);
    }
}
