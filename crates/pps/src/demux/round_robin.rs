//! Per-input round-robin dispatch.
//!
//! Each input port keeps a single rotating pointer over the `K` planes and
//! sends every arriving cell — regardless of destination — to the next free
//! plane from the pointer. This is the archetypal *unpartitioned
//! fully-distributed* algorithm (simple, stateless across ports, fault
//! tolerant: every plane is used by every input), and therefore exactly the
//! class Corollary 7 applies to: relative queuing delay and jitter at least
//! `(R/r − 1)·N` under burst-free leaky-bucket traffic.

use pps_core::prelude::*;

/// Per-input round-robin demultiplexor.
#[derive(Clone, Debug)]
pub struct RoundRobinDemux {
    next: Vec<u32>,
    k: u32,
}

impl RoundRobinDemux {
    /// A round-robin demultiplexor for `n` inputs over `k` planes, all
    /// pointers at plane 0.
    pub fn new(n: usize, k: usize) -> Self {
        RoundRobinDemux {
            next: vec![0; n],
            k: k as u32,
        }
    }

    /// The current pointer of `input`'s automaton (exposed for tests and
    /// for the adversary's state probing assertions).
    pub fn pointer(&self, input: usize) -> u32 {
        self.next[input]
    }
}

impl Demultiplexor for RoundRobinDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        let i = cell.input.idx();
        let p = ctx
            .local
            .next_free_from(self.next[i] as usize)
            .expect("valid bufferless config guarantees a free plane (K >= r')");
        self.next[i] = (p as u32 + 1) % self.k;
        PlaneId(p as u32)
    }

    fn reset(&mut self) {
        self.next.fill(0);
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_core::demux::probe_dispatch;

    fn cell(input: u32, output: u32) -> Cell {
        Cell {
            id: CellId(0),
            input: PortId(input),
            output: PortId(output),
            seq: 0,
            arrival: 0,
        }
    }

    #[test]
    fn cycles_through_planes() {
        let mut d = RoundRobinDemux::new(1, 3);
        let free = vec![0u64; 3];
        let picks: Vec<u32> = (0..6)
            .map(|_| probe_dispatch(&mut d, &cell(0, 0), 0, &free).0)
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn skips_busy_planes() {
        let mut d = RoundRobinDemux::new(1, 3);
        let busy = vec![10u64, 0, 0]; // plane 0 busy until slot 10
        let ctx = DispatchCtx {
            local: LocalView {
                now: 0,
                input: PortId(0),
                link_busy_until: &busy,
            },
            global: None,
        };
        assert_eq!(d.dispatch(&cell(0, 0), &ctx), PlaneId(1));
        assert_eq!(d.pointer(0), 2);
    }

    #[test]
    fn inputs_are_independent_automata() {
        // Fully-distributed: traffic at input 0 must not move input 1's state.
        let mut d = RoundRobinDemux::new(2, 4);
        let free = vec![0u64; 4];
        probe_dispatch(&mut d, &cell(0, 0), 0, &free);
        probe_dispatch(&mut d, &cell(0, 0), 1, &free);
        assert_eq!(d.pointer(0), 2);
        assert_eq!(d.pointer(1), 0);
    }

    #[test]
    fn destination_does_not_matter() {
        let mut d = RoundRobinDemux::new(1, 4);
        let free = vec![0u64; 4];
        assert_eq!(probe_dispatch(&mut d, &cell(0, 3), 0, &free), PlaneId(0));
        assert_eq!(probe_dispatch(&mut d, &cell(0, 1), 1, &free), PlaneId(1));
    }

    #[test]
    fn reset_restores_initial_configuration() {
        let mut d = RoundRobinDemux::new(1, 3);
        let free = vec![0u64; 3];
        probe_dispatch(&mut d, &cell(0, 0), 0, &free);
        d.reset();
        assert_eq!(d.pointer(0), 0);
    }
}
