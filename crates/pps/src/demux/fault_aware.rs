//! Fault-aware dispatch: reroute around planes believed down.
//!
//! The paper motivates unpartitioned algorithms by fault tolerance (§3),
//! but its algorithms never *see* a failure — they only survive one by
//! spreading load. These variants consume the [`PlaneMask`] the engine
//! folds into the global snapshot and steer cells away from masked
//! planes. Because the mask travels on the ordinary information bus, the
//! reaction time is class-correct by construction: a centralized variant
//! reroutes in the failure slot, a `u`-RT variant keeps feeding a dead
//! plane for `u` more slots, and a fully-distributed algorithm (which has
//! no bus) never learns at all — exactly the gradient the A1 fail→recover
//! ablation measures.
//!
//! Both variants degrade gracefully: if every believed-up plane is busy,
//! they fall back to any free plane (a bufferless input must dispatch
//! *somewhere*), and with no snapshot yet (`now < u`) they behave like
//! their fault-blind counterparts.

use pps_core::prelude::*;
use std::collections::VecDeque;

/// Whether the observer's snapshot (if any) believes `plane` is up.
fn believed_up(global: Option<&GlobalSnapshot>, plane: usize) -> bool {
    global.is_none_or(|s| s.plane_mask.is_up(plane))
}

/// Round-robin over the planes believed up.
///
/// Same rotating pointer as [`super::RoundRobinDemux`], but planes masked
/// down in the observer's snapshot are skipped. On a fault-free run the
/// dispatch sequence is identical to the fault-blind round robin.
#[derive(Clone, Debug)]
pub struct FaultAwareRoundRobinDemux {
    next: Vec<u32>,
    k: u32,
    class: InfoClass,
}

impl FaultAwareRoundRobinDemux {
    /// A centralized fault-aware round robin: sees the current mask.
    pub fn centralized(n: usize, k: usize) -> Self {
        FaultAwareRoundRobinDemux {
            next: vec![0; n],
            k: k as u32,
            class: InfoClass::Centralized,
        }
    }

    /// A `u`-RT fault-aware round robin: sees the mask `u` slots stale.
    ///
    /// # Panics
    /// Panics if `u == 0` (that would be centralized).
    pub fn urt(n: usize, k: usize, u: Slot) -> Self {
        assert!(u >= 1, "u-RT requires u >= 1");
        FaultAwareRoundRobinDemux {
            next: vec![0; n],
            k: k as u32,
            class: InfoClass::RealTimeDistributed { u },
        }
    }

    /// The current pointer of `input`'s automaton.
    pub fn pointer(&self, input: usize) -> u32 {
        self.next[input]
    }
}

impl Demultiplexor for FaultAwareRoundRobinDemux {
    fn info_class(&self) -> InfoClass {
        self.class
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        let i = cell.input.idx();
        let k = self.k as usize;
        let start = self.next[i] as usize;
        let p = (0..k)
            .map(|off| (start + off) % k)
            .find(|&p| ctx.local.is_free(p) && believed_up(ctx.global, p))
            // Every believed-up plane is busy: dispatch to any free plane
            // rather than drop — the belief may be stale anyway.
            .or_else(|| ctx.local.next_free_from(start))
            .expect("valid bufferless config guarantees a free plane (K >= r')");
        self.next[i] = (p as u32 + 1) % self.k;
        PlaneId(p as u32)
    }

    fn reset(&mut self) {
        self.next.fill(0);
    }

    fn name(&self) -> &'static str {
        "fault-aware-round-robin"
    }
}

/// Least-loaded dispatch over the planes believed up.
///
/// The ranking of [`super::StaleLeastLoadedDemux`] (stale queue length
/// corrected by own unseen sends), with believed-down planes demoted below
/// every believed-up one instead of filtered out — so the fallback when
/// all believed-up planes are busy needs no special case.
#[derive(Clone, Debug)]
pub struct FaultAwareLeastLoadedDemux {
    k: usize,
    class: InfoClass,
    /// Per input: recent own dispatches `(slot, plane, output)` not yet
    /// reflected in the observer's snapshot.
    recent: Vec<VecDeque<(Slot, u32, u32)>>,
}

impl FaultAwareLeastLoadedDemux {
    /// A centralized fault-aware least-loaded demultiplexor.
    pub fn centralized(n: usize, k: usize) -> Self {
        FaultAwareLeastLoadedDemux {
            k,
            class: InfoClass::Centralized,
            recent: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    /// A `u`-RT fault-aware least-loaded demultiplexor.
    ///
    /// # Panics
    /// Panics if `u == 0` (that would be centralized).
    pub fn urt(n: usize, k: usize, u: Slot) -> Self {
        assert!(u >= 1, "u-RT requires u >= 1");
        FaultAwareLeastLoadedDemux {
            k,
            class: InfoClass::RealTimeDistributed { u },
            recent: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Last slot whose dispatches the snapshot already reflects. A `u`-RT
    /// snapshot is taken at *end* of its slot, a centralized one at the
    /// *start* (so same-slot own sends are still unseen).
    fn reflected_through(&self, snap: &GlobalSnapshot) -> Slot {
        match self.class {
            InfoClass::Centralized => snap.taken_at.saturating_sub(1),
            _ => snap.taken_at,
        }
    }

    /// Estimated queue length of `plane` for `output` from `input`'s
    /// standpoint: snapshot value plus own unseen dispatches.
    fn estimate(
        &self,
        input: usize,
        plane: usize,
        output: u32,
        snap: Option<&GlobalSnapshot>,
    ) -> u64 {
        let base = snap.map_or(0, |s| s.queue_len(plane, output as usize) as u64);
        let horizon = snap.map_or(0, |s| self.reflected_through(s));
        let own = self.recent[input]
            .iter()
            .filter(|&&(slot, p, j)| slot > horizon && p as usize == plane && j == output)
            .count() as u64;
        base + own
    }
}

impl Demultiplexor for FaultAwareLeastLoadedDemux {
    fn info_class(&self) -> InfoClass {
        self.class
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        let i = cell.input.idx();
        let j = cell.output.0;
        let horizon = ctx.global.map_or(0, |s| self.reflected_through(s));
        while let Some(&(slot, _, _)) = self.recent[i].front() {
            if slot <= horizon {
                self.recent[i].pop_front();
            } else {
                break;
            }
        }
        let p = (0..self.k)
            .filter(|&p| ctx.local.is_free(p))
            .min_by_key(|&p| {
                (
                    !believed_up(ctx.global, p), // up planes rank first
                    self.estimate(i, p, j, ctx.global),
                    p,
                )
            })
            .expect("valid bufferless config guarantees a free plane (K >= r')");
        self.recent[i].push_back((ctx.local.now, p as u32, j));
        PlaneId(p as u32)
    }

    fn reset(&mut self) {
        for q in &mut self.recent {
            q.clear();
        }
    }

    fn name(&self) -> &'static str {
        "fault-aware-least-loaded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(input: u32, output: u32) -> Cell {
        Cell {
            id: CellId(0),
            input: PortId(input),
            output: PortId(output),
            seq: 0,
            arrival: 0,
        }
    }

    fn snap_with_down(n: usize, k: usize, taken_at: Slot, down: &[usize]) -> GlobalSnapshot {
        let mut s = GlobalSnapshot::empty(n, k, taken_at);
        for &p in down {
            s.plane_mask.set_up(p, false);
        }
        s
    }

    fn ctx<'a>(now: Slot, busy: &'a [Slot], snap: Option<&'a GlobalSnapshot>) -> DispatchCtx<'a> {
        DispatchCtx {
            local: LocalView {
                now,
                input: PortId(0),
                link_busy_until: busy,
            },
            global: snap,
        }
    }

    #[test]
    fn round_robin_skips_masked_planes() {
        let mut d = FaultAwareRoundRobinDemux::centralized(1, 3);
        let s = snap_with_down(1, 3, 0, &[1]);
        let free = vec![0u64; 3];
        let picks: Vec<PlaneId> = (0..4)
            .map(|t| d.dispatch(&cell(0, 0), &ctx(t, &free, Some(&s))))
            .collect();
        assert_eq!(picks, vec![PlaneId(0), PlaneId(2), PlaneId(0), PlaneId(2)]);
    }

    #[test]
    fn round_robin_matches_fault_blind_when_all_up() {
        let mut aware = FaultAwareRoundRobinDemux::centralized(1, 3);
        let mut blind = super::super::RoundRobinDemux::new(1, 3);
        let s = snap_with_down(1, 3, 0, &[]);
        let free = vec![0u64; 3];
        for t in 0..6 {
            assert_eq!(
                aware.dispatch(&cell(0, 0), &ctx(t, &free, Some(&s))),
                blind.dispatch(&cell(0, 0), &ctx(t, &free, None)),
            );
        }
    }

    #[test]
    fn round_robin_falls_back_when_every_up_plane_is_busy() {
        let mut d = FaultAwareRoundRobinDemux::centralized(1, 2);
        let s = snap_with_down(1, 2, 0, &[1]);
        // Plane 0 (the only believed-up one) is busy; plane 1 is free.
        let busy = vec![10u64, 0];
        assert_eq!(
            d.dispatch(&cell(0, 0), &ctx(0, &busy, Some(&s))),
            PlaneId(1)
        );
    }

    #[test]
    fn no_snapshot_means_fault_blind() {
        let mut d = FaultAwareRoundRobinDemux::urt(1, 2, 3);
        assert_eq!(d.info_class(), InfoClass::RealTimeDistributed { u: 3 });
        let free = vec![0u64; 2];
        // now < u: no view yet; behaves like plain round robin.
        assert_eq!(d.dispatch(&cell(0, 0), &ctx(0, &free, None)), PlaneId(0));
        assert_eq!(d.dispatch(&cell(0, 0), &ctx(1, &free, None)), PlaneId(1));
    }

    #[test]
    fn least_loaded_demotes_masked_planes() {
        let mut d = FaultAwareLeastLoadedDemux::centralized(1, 2);
        // Plane 0 is empty but masked down; plane 1 is loaded but up.
        let mut s = snap_with_down(1, 2, 0, &[0]);
        s.plane_queue_len.copy_from_slice(&[0, 9]);
        let free = vec![0u64; 2];
        assert_eq!(
            d.dispatch(&cell(0, 0), &ctx(0, &free, Some(&s))),
            PlaneId(1)
        );
        // If plane 1's line is busy, the masked plane is still usable.
        let busy = vec![0u64, 10];
        assert_eq!(
            d.dispatch(&cell(0, 0), &ctx(0, &busy, Some(&s))),
            PlaneId(0)
        );
    }

    #[test]
    fn centralized_least_loaded_counts_same_slot_sends() {
        let mut d = FaultAwareLeastLoadedDemux::centralized(1, 2);
        let s = snap_with_down(1, 2, 5, &[]);
        let free = vec![0u64; 2];
        // Two same-slot dispatches: the second must see the first (it is
        // not in the start-of-slot snapshot) and alternate.
        assert_eq!(
            d.dispatch(&cell(0, 0), &ctx(5, &free, Some(&s))),
            PlaneId(0)
        );
        assert_eq!(
            d.dispatch(&cell(0, 0), &ctx(5, &free, Some(&s))),
            PlaneId(1)
        );
    }

    #[test]
    fn urt_least_loaded_class_and_pruning() {
        let mut d = FaultAwareLeastLoadedDemux::urt(1, 2, 2);
        assert_eq!(d.info_class(), InfoClass::RealTimeDistributed { u: 2 });
        let s0 = snap_with_down(1, 2, 0, &[]);
        let free = vec![0u64; 2];
        d.dispatch(&cell(0, 0), &ctx(1, &free, Some(&s0)));
        assert_eq!(d.recent[0].len(), 1);
        // A snapshot covering through slot 3 prunes the slot-1 entry.
        let s3 = snap_with_down(1, 2, 3, &[]);
        d.dispatch(&cell(0, 0), &ctx(5, &free, Some(&s3)));
        assert_eq!(d.recent[0].len(), 1);
        assert_eq!(d.recent[0][0].0, 5);
    }
}
