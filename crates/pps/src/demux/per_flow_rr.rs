//! Per-flow round-robin dispatch.
//!
//! Each flow `(i, j)` keeps its own rotating pointer, so consecutive cells
//! of a flow ride consecutive planes. This is the spirit of Iyer &
//! McKeown's practical fully-distributed algorithm \[15\], which mimics a
//! FCFS output-queued switch with relative delay at most `N·R/r` when
//! `S ≥ 2` — the matching upper bound that makes Corollary 7 tight
//! (`Θ((R/r)·N)`). Spreading per flow also feeds every plane under a single
//! persistent flow, which is what keeps the relative delay bounded; it
//! remains unpartitioned and fully distributed, so the Ω((R/r − 1)·N) lower
//! bound still applies — experiment E11 measures both sides.

use pps_core::prelude::*;

/// Per-flow round-robin demultiplexor.
#[derive(Clone, Debug)]
pub struct PerFlowRoundRobinDemux {
    /// Pointer per dense flow index (`input * n + output`).
    next: Vec<u32>,
    n: usize,
    k: u32,
}

impl PerFlowRoundRobinDemux {
    /// Per-flow round robin for an `n × n` switch over `k` planes.
    pub fn new(n: usize, k: usize) -> Self {
        PerFlowRoundRobinDemux {
            next: vec![0; n * n],
            n,
            k: k as u32,
        }
    }

    /// The pointer of flow `(input, output)`.
    pub fn pointer(&self, input: usize, output: usize) -> u32 {
        self.next[input * self.n + output]
    }
}

impl Demultiplexor for PerFlowRoundRobinDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        let f = cell.input.idx() * self.n + cell.output.idx();
        let p = ctx
            .local
            .next_free_from(self.next[f] as usize)
            .expect("valid bufferless config guarantees a free plane (K >= r')");
        self.next[f] = (p as u32 + 1) % self.k;
        PlaneId(p as u32)
    }

    fn reset(&mut self) {
        self.next.fill(0);
    }

    fn name(&self) -> &'static str {
        "per-flow-round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_core::demux::probe_dispatch;

    fn cell(input: u32, output: u32) -> Cell {
        Cell {
            id: CellId(0),
            input: PortId(input),
            output: PortId(output),
            seq: 0,
            arrival: 0,
        }
    }

    #[test]
    fn flows_rotate_independently() {
        let mut d = PerFlowRoundRobinDemux::new(2, 4);
        let free = vec![0u64; 4];
        assert_eq!(probe_dispatch(&mut d, &cell(0, 0), 0, &free), PlaneId(0));
        assert_eq!(probe_dispatch(&mut d, &cell(0, 1), 1, &free), PlaneId(0));
        assert_eq!(probe_dispatch(&mut d, &cell(0, 0), 2, &free), PlaneId(1));
        assert_eq!(d.pointer(0, 0), 2);
        assert_eq!(d.pointer(0, 1), 1);
        assert_eq!(d.pointer(1, 0), 0);
    }

    #[test]
    fn consecutive_cells_of_a_flow_ride_distinct_planes() {
        let mut d = PerFlowRoundRobinDemux::new(1, 4);
        let free = vec![0u64; 4];
        let picks: Vec<u32> = (0..4)
            .map(|_| probe_dispatch(&mut d, &cell(0, 0), 0, &free).0)
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn reset_restores_initial_configuration() {
        let mut d = PerFlowRoundRobinDemux::new(1, 2);
        let free = vec![0u64; 2];
        probe_dispatch(&mut d, &cell(0, 0), 0, &free);
        d.reset();
        assert_eq!(d.pointer(0, 0), 0);
    }
}
