//! Input-buffered demultiplexing algorithms (paper, Section 4).
//!
//! * [`BufferedRoundRobinDemux`] — the natural buffered fully-distributed
//!   algorithm: hold cells while preferred lines are busy, release head
//!   cells round-robin. Theorem 13's `(1 − r/R)·N/S` lower bound applies to
//!   it for *any* buffer size (experiment E7).
//! * [`DelayedCpaDemux`] — the constructive side of Theorem 12: a `u`-RT
//!   algorithm with buffers of size `u` and speedup `S ≥ 2` that simulates
//!   CPA shifted by `u` slots, achieving relative queuing delay ≤ `u`.
//! * [`ArbitratedCrossbarDemux`] — the paper's practical `u`-RT example
//!   (Section 1.3): cells wait in the input buffer for a grant computed by
//!   an arbiter whose view of the switch is `u` slots old.

use pps_core::prelude::*;
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Buffered round robin
// ---------------------------------------------------------------------------

/// Buffered fully-distributed round robin.
///
/// Per slot each input releases buffered head cells onto distinct free
/// planes (continuing its rotating pointer) and dispatches the arriving
/// cell directly when the buffer is empty and a line is free.
#[derive(Clone, Debug)]
pub struct BufferedRoundRobinDemux {
    next: Vec<u32>,
    k: u32,
    /// Cap on releases per slot (default `k`; 1 makes the switch behave
    /// like a paced single-line dispatcher — useful in ablations).
    max_release: usize,
    /// Scratch: planes already used by this slot's releases.
    used: Vec<bool>,
}

impl BufferedRoundRobinDemux {
    /// Buffered RR for `n` inputs over `k` planes.
    pub fn new(n: usize, k: usize) -> Self {
        BufferedRoundRobinDemux {
            next: vec![0; n],
            k: k as u32,
            max_release: k,
            used: vec![false; k],
        }
    }

    /// Restrict releases to at most `m` cells per slot.
    pub fn with_max_release(mut self, m: usize) -> Self {
        self.max_release = m.max(1);
        self
    }
}

impl BufferedDemultiplexor for BufferedRoundRobinDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }

    fn slot_decision(
        &mut self,
        input: PortId,
        arrival: Option<&Cell>,
        buffer: &[Cell],
        ctx: &DispatchCtx<'_>,
        out: &mut BufferedDecision,
    ) {
        let i = input.idx();
        self.used.fill(false);
        // Release head cells while distinct free planes remain.
        for (idx, _cell) in buffer.iter().enumerate().take(self.max_release) {
            let start = self.next[i] as usize;
            let k = self.k as usize;
            let found = (0..k)
                .map(|off| (start + off) % k)
                .find(|&p| ctx.local.is_free(p) && !self.used[p]);
            match found {
                Some(p) => {
                    self.used[p] = true;
                    self.next[i] = (p as u32 + 1) % self.k;
                    out.releases.push((idx, PlaneId(p as u32)));
                }
                None => break,
            }
        }
        let released = out.releases.len();
        out.arrival = arrival.map(|_| {
            if buffer.len() == released && released < self.max_release {
                // Buffer will be empty after releases: try to send directly.
                let start = self.next[i] as usize;
                let k = self.k as usize;
                if let Some(p) = (0..k)
                    .map(|off| (start + off) % k)
                    .find(|&p| ctx.local.is_free(p) && !self.used[p])
                {
                    self.next[i] = (p as u32 + 1) % self.k;
                    return ArrivalAction::Dispatch(PlaneId(p as u32));
                }
                ArrivalAction::Enqueue
            } else {
                ArrivalAction::Enqueue
            }
        });
    }

    /// RR acts the moment any of the input's lines frees up: the earliest
    /// possibly-acting slot is the minimum line `busy_until` (clamped to
    /// the next slot). Waking then is exact — on every earlier slot all
    /// lines are busy and `slot_decision` is a state-neutral hold (`next`
    /// moves only on a successful free-line find).
    fn buffered_next_activity(
        &self,
        _input: PortId,
        _head: &Cell,
        local: &LocalView<'_>,
    ) -> Option<Slot> {
        let earliest_free = local
            .link_busy_until
            .iter()
            .copied()
            .min()
            .unwrap_or(local.now + 1);
        Some(earliest_free.max(local.now + 1))
    }

    fn reset(&mut self) {
        self.next.fill(0);
    }

    fn name(&self) -> &'static str {
        "buffered-round-robin"
    }
}

// ---------------------------------------------------------------------------
// Delayed CPA (Theorem 12)
// ---------------------------------------------------------------------------

/// The Theorem 12 algorithm: hold every cell exactly `u` slots, then run
/// CPA with all global information up to the cell's arrival slot (legally
/// available to a `u`-RT algorithm at decision time). Every deadline is the
/// cell's FCFS-OQ departure time plus `u`, so the relative queuing delay is
/// at most `u`.
///
/// Requires buffer size ≥ `u` and speedup `S ≥ 2`; run with
/// [`OutputDiscipline::GlobalFcfs`].
#[derive(Clone, Debug)]
pub struct DelayedCpaDemux {
    u: Slot,
    n: usize,
    k: usize,
    r_prime: Slot,
    dt_last: Vec<Option<Slot>>,
    last_reserved: Vec<Option<Slot>>,
    deadline_misses: u64,
}

impl DelayedCpaDemux {
    /// Delayed CPA with information delay `u ≥ 1`.
    pub fn new(n: usize, k: usize, r_prime: usize, u: Slot) -> Self {
        assert!(u >= 1, "u-RT requires u >= 1");
        DelayedCpaDemux {
            u,
            n,
            k,
            r_prime: r_prime as Slot,
            dt_last: vec![None; n],
            last_reserved: vec![None; k * n],
            deadline_misses: 0,
        }
    }

    /// The information delay `u`.
    pub fn u(&self) -> Slot {
        self.u
    }

    /// Deadline misses (stays 0 for `S ≥ 2`).
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses
    }

    /// Assign a ripe cell to a plane, or `None` when **no** input line is
    /// free this slot — possible under faults (a degraded link stretches
    /// `busy_until` past the one-release-per-slot invariant), in which
    /// case the cell is held without touching the deadline oracle.
    fn assign(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> Option<PlaneId> {
        ctx.local.free_planes().next()?;
        let j = cell.output.idx();
        // FCFS-OQ deadline from the *arrival* slot, shifted by u.
        let dt = match self.dt_last[j] {
            Some(prev) => cell.arrival.max(prev + 1),
            None => cell.arrival,
        };
        self.dt_last[j] = Some(dt);
        let target = dt + self.u; // PPS departure goal
        let feasible = (0..self.k)
            .filter(|&p| ctx.local.is_free(p))
            .filter(|&p| match self.last_reserved[p * self.n + j] {
                Some(last) => last + self.r_prime <= target,
                None => true,
            })
            .min_by_key(|&p| (self.last_reserved[p * self.n + j], p));
        Some(match feasible {
            Some(p) => {
                self.last_reserved[p * self.n + j] = Some(target);
                PlaneId(p as u32)
            }
            None => {
                self.deadline_misses += 1;
                let p = (0..self.k)
                    .filter(|&p| ctx.local.is_free(p))
                    .min_by_key(|&p| (self.last_reserved[p * self.n + j], p))
                    .expect("a free plane exists past the guard above");
                let idx = p * self.n + j;
                let at = match self.last_reserved[idx] {
                    Some(last) => target.max(last + self.r_prime),
                    None => target,
                };
                self.last_reserved[idx] = Some(at);
                PlaneId(p as u32)
            }
        })
    }
}

impl BufferedDemultiplexor for DelayedCpaDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::RealTimeDistributed { u: self.u }
    }

    fn slot_decision(
        &mut self,
        _input: PortId,
        arrival: Option<&Cell>,
        buffer: &[Cell],
        ctx: &DispatchCtx<'_>,
        out: &mut BufferedDecision,
    ) {
        let now = ctx.local.now;
        // Buffers are FIFO: ripe cells (held >= u slots) sit at the head.
        // At one arrival per slot at most one cell ripens per slot, so a
        // single release suffices (and uses a single input line). Under
        // faults every line may be busy; then the ripe head waits a slot.
        if let Some(head) = buffer.first() {
            if head.arrival + self.u <= now {
                if let Some(plane) = self.assign(head, ctx) {
                    out.releases.push((0, plane));
                }
            }
        }
        out.arrival = arrival.map(|_| ArrivalAction::Enqueue);
    }

    /// Delayed CPA touches a buffered cell only when it ripens at
    /// `arrival + u`; every earlier `slot_decision` is a state-neutral
    /// hold (`assign` runs only on release), so the engine may sleep
    /// until exactly that slot.
    fn buffered_next_activity(
        &self,
        _input: PortId,
        head: &Cell,
        local: &LocalView<'_>,
    ) -> Option<Slot> {
        Some((head.arrival + self.u).max(local.now + 1))
    }

    fn reset(&mut self) {
        self.dt_last.fill(None);
        self.last_reserved.fill(None);
        self.deadline_misses = 0;
    }

    fn name(&self) -> &'static str {
        "delayed-cpa"
    }
}

// ---------------------------------------------------------------------------
// Buffered stale least-loaded (the small-buffer regime of Section 4)
// ---------------------------------------------------------------------------

/// A `u`-RT buffered demultiplexor whose buffer lets it wait only
/// `hold ≤ u` slots before dispatching by (still `u`-stale) least-loaded
/// information.
///
/// This is the knife edge the paper draws in Section 4: with buffers of
/// size ≥ `u` a `u`-RT algorithm can wait out its information lag and
/// emulate CPA (Theorem 12, [`DelayedCpaDemux`]); *"when buffers are
/// smaller than u"* the waiting does not close the blind spot and the
/// `(1 − r/R)·N/S` lower bound persists. Sweeping `hold` from `0` to `u`
/// (experiment E16) shows the transition: for `hold < u` the decision
/// uses information from `t − u < t_arrival`, so the coordinated burst
/// still concentrates; at `hold = u` the information covers the arrival
/// and the concentration dissolves.
#[derive(Clone, Debug)]
pub struct BufferedStaleDemux {
    u: Slot,
    hold: Slot,
    k: usize,
    /// Own dispatches not yet visible in the stale view: `(slot, plane,
    /// output)`, shared bookkeeping across inputs is *not* allowed — the
    /// per-input histories live in this per-input vector.
    recent: Vec<VecDeque<(Slot, u32, u32)>>,
}

impl BufferedStaleDemux {
    /// A `u`-RT buffered demultiplexor that holds each cell `hold ≤ u`
    /// slots (`hold = 0` degenerates to the bufferless stale-least-loaded
    /// dispatcher).
    pub fn new(n: usize, k: usize, u: Slot, hold: Slot) -> Self {
        assert!(u >= 1, "u-RT requires u >= 1");
        assert!(hold <= u, "holding beyond u is DelayedCpa territory");
        BufferedStaleDemux {
            u,
            hold,
            k,
            recent: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    /// The configured hold time.
    pub fn hold(&self) -> Slot {
        self.hold
    }

    /// Pick a plane for a ripe cell, or `None` when no input line is free
    /// (possible under faults) — a state-neutral hold: the history prune
    /// and append happen only on an actual pick.
    fn pick(&mut self, input: usize, output: u32, ctx: &DispatchCtx<'_>) -> Option<PlaneId> {
        ctx.local.free_planes().next()?;
        let horizon = ctx.global.map_or(0, |s| s.taken_at);
        while let Some(&(slot, _, _)) = self.recent[input].front() {
            if slot <= horizon {
                self.recent[input].pop_front();
            } else {
                break;
            }
        }
        let estimate = |p: usize| -> u64 {
            let base = ctx
                .global
                .map_or(0, |s| s.queue_len(p, output as usize) as u64);
            let own = self.recent[input]
                .iter()
                .filter(|&&(_, gp, gj)| gp as usize == p && gj == output)
                .count() as u64;
            base + own
        };
        let p = (0..self.k)
            .filter(|&p| ctx.local.is_free(p))
            .min_by_key(|&p| (estimate(p), p))
            .expect("a free plane exists past the guard above");
        self.recent[input].push_back((ctx.local.now, p as u32, output));
        Some(PlaneId(p as u32))
    }
}

impl BufferedDemultiplexor for BufferedStaleDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::RealTimeDistributed { u: self.u }
    }

    fn slot_decision(
        &mut self,
        input: PortId,
        arrival: Option<&Cell>,
        buffer: &[Cell],
        ctx: &DispatchCtx<'_>,
        out: &mut BufferedDecision,
    ) {
        let now = ctx.local.now;
        if let Some(head) = buffer.first() {
            if head.arrival + self.hold <= now {
                if let Some(plane) = self.pick(input.idx(), head.output.0, ctx) {
                    out.releases.push((0, plane));
                }
            }
        }
        let released_none = out.releases.is_empty();
        out.arrival = arrival.map(|cell| {
            if self.hold == 0 && released_none && buffer.is_empty() {
                match self.pick(input.idx(), cell.output.0, ctx) {
                    Some(plane) => ArrivalAction::Dispatch(plane),
                    None => ArrivalAction::Enqueue,
                }
            } else {
                ArrivalAction::Enqueue
            }
        });
    }

    /// The head ripens at `arrival + hold`; until then `slot_decision`
    /// holds without touching `recent` (`pick` runs only on release).
    fn buffered_next_activity(
        &self,
        _input: PortId,
        head: &Cell,
        local: &LocalView<'_>,
    ) -> Option<Slot> {
        Some((head.arrival + self.hold).max(local.now + 1))
    }

    fn reset(&mut self) {
        for q in &mut self.recent {
            q.clear();
        }
    }

    fn name(&self) -> &'static str {
        "buffered-stale-least-loaded"
    }
}

// ---------------------------------------------------------------------------
// Arbitrated crossbar
// ---------------------------------------------------------------------------

/// Request/grant arbitrated dispatch with a `u`-slot round trip.
///
/// On arrival a cell waits in the input buffer; `u` slots later the grant
/// arrives, carrying the arbiter's plane choice computed from the global
/// state the arbiter saw when the request was issued (stale by `u`). The
/// arbiter is a least-loaded chooser over the stale snapshot, corrected by
/// the grants it has itself issued since (the arbiter knows its own
/// grants). The paper cites Tamir & Chi's arbitrated crossbars as the
/// canonical `u`-RT hardware.
#[derive(Clone, Debug)]
pub struct ArbitratedCrossbarDemux {
    u: Slot,
    k: usize,
    /// Grants issued since the snapshot horizon: `(slot, plane, output)`.
    recent_grants: VecDeque<(Slot, u32, u32)>,
}

impl ArbitratedCrossbarDemux {
    /// Arbitrated dispatch with grant latency `u ≥ 1` over `k` planes.
    pub fn new(k: usize, u: Slot) -> Self {
        assert!(u >= 1, "u-RT requires u >= 1");
        ArbitratedCrossbarDemux {
            u,
            k,
            recent_grants: VecDeque::new(),
        }
    }

    /// Compute the grant for a ripe cell, or `None` when no input line is
    /// free (possible under faults) — the grant is then retried next slot
    /// with the arbiter state untouched.
    fn grant(&mut self, output: u32, ctx: &DispatchCtx<'_>) -> Option<PlaneId> {
        ctx.local.free_planes().next()?;
        let horizon = ctx.global.map_or(0, |s| s.taken_at);
        while let Some(&(slot, _, _)) = self.recent_grants.front() {
            if slot <= horizon {
                self.recent_grants.pop_front();
            } else {
                break;
            }
        }
        let estimate = |p: usize| -> u64 {
            let base = ctx
                .global
                .map_or(0, |s| s.queue_len(p, output as usize) as u64);
            let own = self
                .recent_grants
                .iter()
                .filter(|&&(_, gp, gj)| gp as usize == p && gj == output)
                .count() as u64;
            base + own
        };
        let p = (0..self.k)
            .filter(|&p| ctx.local.is_free(p))
            .min_by_key(|&p| (estimate(p), p))
            .expect("a free plane exists past the guard above");
        self.recent_grants
            .push_back((ctx.local.now, p as u32, output));
        Some(PlaneId(p as u32))
    }
}

impl BufferedDemultiplexor for ArbitratedCrossbarDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::RealTimeDistributed { u: self.u }
    }

    fn slot_decision(
        &mut self,
        _input: PortId,
        arrival: Option<&Cell>,
        buffer: &[Cell],
        ctx: &DispatchCtx<'_>,
        out: &mut BufferedDecision,
    ) {
        let now = ctx.local.now;
        if let Some(head) = buffer.first() {
            if head.arrival + self.u <= now {
                if let Some(plane) = self.grant(head.output.0, ctx) {
                    out.releases.push((0, plane));
                }
            }
        }
        out.arrival = arrival.map(|_| ArrivalAction::Enqueue);
    }

    /// The grant for the head arrives at `arrival + u`; earlier slots are
    /// state-neutral holds (`grant` runs only on release).
    fn buffered_next_activity(
        &self,
        _input: PortId,
        head: &Cell,
        local: &LocalView<'_>,
    ) -> Option<Slot> {
        Some((head.arrival + self.u).max(local.now + 1))
    }

    fn reset(&mut self) {
        self.recent_grants.clear();
    }

    fn name(&self) -> &'static str {
        "arbitrated-crossbar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, input: u32, output: u32, arrival: Slot) -> Cell {
        Cell {
            id: CellId(id),
            input: PortId(input),
            output: PortId(output),
            seq: 0,
            arrival,
        }
    }

    fn ctx<'a>(now: Slot, busy: &'a [Slot]) -> DispatchCtx<'a> {
        DispatchCtx {
            local: LocalView {
                now,
                input: PortId(0),
                link_busy_until: busy,
            },
            global: None,
        }
    }

    fn decide<D: BufferedDemultiplexor>(
        d: &mut D,
        input: PortId,
        arrival: Option<&Cell>,
        buffer: &[Cell],
        ctx: &DispatchCtx<'_>,
    ) -> BufferedDecision {
        let mut out = BufferedDecision::default();
        d.slot_decision(input, arrival, buffer, ctx, &mut out);
        out
    }

    #[test]
    fn buffered_rr_releases_heads_on_distinct_planes() {
        let mut d = BufferedRoundRobinDemux::new(1, 4);
        let free = vec![0u64; 4];
        let buf = [cell(0, 0, 0, 0), cell(1, 0, 1, 0), cell(2, 0, 2, 0)];
        let dec = decide(&mut d, PortId(0), None, &buf, &ctx(5, &free));
        assert_eq!(dec.releases.len(), 3);
        let planes: std::collections::BTreeSet<u32> =
            dec.releases.iter().map(|&(_, p)| p.0).collect();
        assert_eq!(planes.len(), 3, "releases must use distinct lines");
        assert_eq!(dec.arrival, None);
    }

    #[test]
    fn buffered_rr_dispatches_arrival_when_possible() {
        let mut d = BufferedRoundRobinDemux::new(1, 2);
        let free = vec![0u64; 2];
        let arr = cell(0, 0, 0, 5);
        let dec = decide(&mut d, PortId(0), Some(&arr), &[], &ctx(5, &free));
        assert!(matches!(dec.arrival, Some(ArrivalAction::Dispatch(_))));
    }

    #[test]
    fn buffered_rr_enqueues_when_lines_busy() {
        let mut d = BufferedRoundRobinDemux::new(1, 2);
        let busy = vec![100u64, 100];
        let arr = cell(0, 0, 0, 5);
        let dec = decide(&mut d, PortId(0), Some(&arr), &[], &ctx(5, &busy));
        assert_eq!(dec.arrival, Some(ArrivalAction::Enqueue));
        assert!(dec.releases.is_empty());
    }

    #[test]
    fn delayed_cpa_holds_for_exactly_u() {
        let mut d = DelayedCpaDemux::new(2, 4, 2, 3);
        let free = vec![0u64; 4];
        let c = cell(0, 0, 1, 10);
        // At slot 12 the cell is not ripe (10 + 3 > 12).
        let dec = decide(&mut d, PortId(0), None, &[c], &ctx(12, &free));
        assert!(dec.releases.is_empty());
        // At slot 13 it is.
        let dec = decide(&mut d, PortId(0), None, &[c], &ctx(13, &free));
        assert_eq!(dec.releases.len(), 1);
        assert_eq!(dec.releases[0].0, 0);
    }

    #[test]
    fn delayed_cpa_always_buffers_arrivals() {
        let mut d = DelayedCpaDemux::new(2, 4, 2, 3);
        let free = vec![0u64; 4];
        let arr = cell(0, 0, 0, 5);
        let dec = decide(&mut d, PortId(0), Some(&arr), &[], &ctx(5, &free));
        assert_eq!(dec.arrival, Some(ArrivalAction::Enqueue));
    }

    #[test]
    fn buffered_stale_holds_for_exactly_hold_slots() {
        let mut d = BufferedStaleDemux::new(1, 4, 4, 2);
        let free = vec![0u64; 4];
        let c = cell(0, 0, 0, 10);
        let dec = decide(&mut d, PortId(0), None, &[c], &ctx(11, &free));
        assert!(dec.releases.is_empty(), "held until arrival + hold");
        let dec = decide(&mut d, PortId(0), None, &[c], &ctx(12, &free));
        assert_eq!(dec.releases.len(), 1);
    }

    #[test]
    fn buffered_stale_zero_hold_dispatches_directly() {
        let mut d = BufferedStaleDemux::new(1, 2, 2, 0);
        let free = vec![0u64; 2];
        let arr = cell(0, 0, 0, 5);
        let dec = decide(&mut d, PortId(0), Some(&arr), &[], &ctx(5, &free));
        assert!(matches!(dec.arrival, Some(ArrivalAction::Dispatch(_))));
    }

    #[test]
    #[should_panic(expected = "DelayedCpa territory")]
    fn buffered_stale_rejects_hold_beyond_u() {
        let _ = BufferedStaleDemux::new(1, 2, 2, 3);
    }

    #[test]
    fn buffered_stale_inputs_stay_independent() {
        // Fully symmetric inputs pick the same plane — the blind spot that
        // E16 exploits.
        let mut d = BufferedStaleDemux::new(2, 4, 4, 1);
        let free = vec![0u64; 4];
        let c0 = cell(0, 0, 0, 10);
        let c1 = cell(1, 1, 0, 10);
        let d0 = decide(&mut d, PortId(0), None, &[c0], &ctx(11, &free));
        let d1 = decide(&mut d, PortId(1), None, &[c1], &ctx(11, &free));
        assert_eq!(d0.releases[0].1, d1.releases[0].1);
    }

    #[test]
    fn hold_then_release_demuxes_survive_all_lines_busy() {
        // Under faults (a degraded link stretching busy_until) every line
        // can be busy when a head ripens. Each hold-then-release demux
        // must hold gracefully — and still release once a line frees —
        // rather than panic on the one-release-per-slot assumption.
        let busy = vec![1_000u64; 4];
        let free = vec![0u64; 4];
        let c = cell(0, 0, 1, 0);

        let mut cpa = DelayedCpaDemux::new(2, 4, 2, 2);
        let dec = decide(&mut cpa, PortId(0), None, &[c], &ctx(10, &busy));
        assert!(dec.releases.is_empty(), "delayed-cpa must hold");
        let dec = decide(&mut cpa, PortId(0), None, &[c], &ctx(1_000, &free));
        assert_eq!(dec.releases.len(), 1, "delayed-cpa must recover");

        let mut stale = BufferedStaleDemux::new(1, 4, 3, 1);
        let dec = decide(&mut stale, PortId(0), None, &[c], &ctx(10, &busy));
        assert!(dec.releases.is_empty(), "buffered-stale must hold");
        let dec = decide(&mut stale, PortId(0), None, &[c], &ctx(1_000, &free));
        assert_eq!(dec.releases.len(), 1, "buffered-stale must recover");

        // hold = 0 direct-dispatch path: a busy wall turns into Enqueue.
        let mut zero = BufferedStaleDemux::new(1, 4, 3, 0);
        let arr = cell(1, 0, 1, 10);
        let dec = decide(&mut zero, PortId(0), Some(&arr), &[], &ctx(10, &busy));
        assert_eq!(dec.arrival, Some(ArrivalAction::Enqueue));

        let mut arb = ArbitratedCrossbarDemux::new(4, 2);
        let dec = decide(&mut arb, PortId(0), None, &[c], &ctx(10, &busy));
        assert!(dec.releases.is_empty(), "arbitrated must hold");
        let dec = decide(&mut arb, PortId(0), None, &[c], &ctx(1_000, &free));
        assert_eq!(dec.releases.len(), 1, "arbitrated must recover");
    }

    #[test]
    fn arbitrated_grant_spreads_by_own_history() {
        let mut d = ArbitratedCrossbarDemux::new(2, 2);
        let free = vec![0u64; 2];
        let a = cell(0, 0, 0, 0);
        let b = cell(1, 0, 0, 1);
        let d1 = decide(&mut d, PortId(0), None, &[a], &ctx(2, &free));
        let d2 = decide(&mut d, PortId(0), None, &[b], &ctx(3, &free));
        let p1 = d1.releases[0].1;
        let p2 = d2.releases[0].1;
        assert_ne!(p1, p2, "arbiter remembers its own grants");
    }
}
