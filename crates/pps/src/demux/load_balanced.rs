//! Load-balancing dispatch heuristics from the switching literature,
//! transplanted to the PPS demultiplexor seat.
//!
//! * [`TwoStageLbDemux`] — the Chang–Lee load-balanced two-stage idea in
//!   demultiplexor form: stage 1 spreads arrivals over planes by a
//!   periodic, destination-oblivious rotation (each input walks the
//!   planes in a slot-synchronous cycle, offset by its own port id so the
//!   inputs stay desynchronized); stage 2 adds a per-destination offset so
//!   cells of one output fan out across planes instead of marching in
//!   lockstep. Both stages are pure functions of `(slot, input, output)` —
//!   no stored state at all — so the automaton is trivially
//!   fully-distributed and skip-ahead-safe.
//! * [`LeastLoadedOfDDemux`] — power-of-`d`-choices dispatch (Mitzenmacher
//!   et al.): sample `d` free planes from a seeded per-input stream and
//!   send to the least-loaded of the `d` by the input's own decaying load
//!   estimate (the same estimator as
//!   [`LeastLoadedLocalDemux`](super::LeastLoadedLocalDemux), sampled
//!   instead of scanned). Draws happen **only on dispatch**, so skipped
//!   idle slots consume no randomness and dense/skip runs stay
//!   byte-identical.
//!
//! Both remain fully distributed, so Theorem 8's `Ω((R/r − 1)·N/S)` lower
//! bound still applies — they are ablation victims like the rest of the
//! fully-distributed family, just with better constants under benign
//! traffic.

use pps_core::prelude::*;
use pps_core::rng::{mix64, SplitMix64};

/// Two-stage load-balancing dispatch (stateless).
#[derive(Clone, Debug)]
pub struct TwoStageLbDemux {
    k: usize,
    /// Dispatches forced off the two-stage plane by a busy line.
    deviations: u64,
}

impl TwoStageLbDemux {
    /// Two-stage balanced dispatch over `k` planes.
    pub fn new(k: usize) -> Self {
        TwoStageLbDemux { k, deviations: 0 }
    }

    /// The plane the two stages nominate for a cell of `(input, output)`
    /// arriving at `now`, before busy-line deviation.
    pub fn nominal_plane(&self, now: Slot, input: usize, output: usize) -> usize {
        let k = self.k as u64;
        // Stage 1: slot-synchronous rotation, desynchronized per input.
        let stage1 = (now + input as u64) % k;
        // Stage 2: fixed per-destination offset (mixed so adjacent outputs
        // do not land on adjacent planes).
        let stage2 = mix64(output as u64) % k;
        ((stage1 + stage2) % k) as usize
    }

    /// Dispatches that could not use the nominated plane.
    pub fn deviations(&self) -> u64 {
        self.deviations
    }
}

impl Demultiplexor for TwoStageLbDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        let want = self.nominal_plane(ctx.local.now, cell.input.idx(), cell.output.idx());
        if ctx.local.is_free(want) {
            return PlaneId(want as u32);
        }
        self.deviations += 1;
        let p = ctx
            .local
            .next_free_from(want)
            .expect("valid bufferless config guarantees a free plane");
        PlaneId(p as u32)
    }

    fn reset(&mut self) {
        self.deviations = 0;
    }

    fn name(&self) -> &'static str {
        "two-stage-lb"
    }
}

/// Power-of-`d`-choices dispatch over seeded per-input sample streams.
#[derive(Clone, Debug)]
pub struct LeastLoadedOfDDemux {
    k: usize,
    d: usize,
    r_prime: u64,
    /// Per-input sample stream (substreams of one master seed, so an
    /// input's draws depend only on its own arrival history).
    rngs: Vec<SplitMix64>,
    /// The master seed, kept to rebuild the streams on reset.
    seed: u64,
    /// Per input × plane decaying own-load estimate: `(estimate, slot)`.
    est: Vec<(u64, Slot)>,
    /// Scratch: the free planes visible this dispatch.
    free: Vec<usize>,
}

impl LeastLoadedOfDDemux {
    /// Power-of-`d` dispatch for `n` inputs over `k` planes with slowdown
    /// `r_prime`, sampling `d ≥ 1` candidates per cell from `seed`.
    pub fn new(n: usize, k: usize, r_prime: usize, d: usize, seed: u64) -> Self {
        let master = SplitMix64::new(seed).derive(0xD0);
        LeastLoadedOfDDemux {
            k,
            d: d.clamp(1, k),
            r_prime: r_prime as u64,
            rngs: (0..n as u64).map(|i| master.derive(i)).collect(),
            seed,
            est: vec![(0, 0); n * k],
            free: Vec::with_capacity(k),
        }
    }

    /// The number of candidate planes sampled per dispatch.
    pub fn d(&self) -> usize {
        self.d
    }

    fn current(&self, input: usize, plane: usize, now: Slot) -> u64 {
        let (e, t) = self.est[input * self.k + plane];
        e.saturating_sub(now.saturating_sub(t))
    }
}

impl Demultiplexor for LeastLoadedOfDDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        let i = cell.input.idx();
        let now = ctx.local.now;
        self.free.clear();
        self.free.extend(ctx.local.free_planes());
        debug_assert!(
            !self.free.is_empty(),
            "valid bufferless config guarantees a free plane"
        );
        // Sample min(d, |free|) distinct candidates by partial
        // Fisher–Yates over the free list — exactly that many draws, only
        // here, on an actual dispatch.
        let picks = self.d.min(self.free.len());
        for s in 0..picks {
            let j = s + self.rngs[i].below((self.free.len() - s) as u64) as usize;
            self.free.swap(s, j);
        }
        let p = self.free[..picks]
            .iter()
            .copied()
            .min_by_key(|&p| (self.current(i, p, now), p))
            .expect("picks >= 1");
        let cur = self.current(i, p, now);
        self.est[i * self.k + p] = (cur + self.r_prime, now);
        PlaneId(p as u32)
    }

    fn reset(&mut self) {
        let master = SplitMix64::new(self.seed).derive(0xD0);
        for (i, r) in self.rngs.iter_mut().enumerate() {
            *r = master.derive(i as u64);
        }
        self.est.fill((0, 0));
    }

    fn name(&self) -> &'static str {
        "least-loaded-of-d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_core::demux::probe_dispatch;

    fn cell(input: u32, output: u32, arrival: Slot) -> Cell {
        Cell {
            id: CellId(0),
            input: PortId(input),
            output: PortId(output),
            seq: 0,
            arrival,
        }
    }

    #[test]
    fn two_stage_rotates_across_slots() {
        let mut d = TwoStageLbDemux::new(4);
        let free = vec![0u64; 4];
        let picks: Vec<u32> = (0..4)
            .map(|t| probe_dispatch(&mut d, &cell(0, 0, t), t, &free).0)
            .collect();
        let distinct: std::collections::BTreeSet<u32> = picks.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            4,
            "stage 1 must cycle all planes: {picks:?}"
        );
        assert_eq!(d.deviations(), 0);
    }

    #[test]
    fn two_stage_desynchronizes_inputs() {
        // In one slot, different inputs nominate different planes — the
        // property that kills same-slot concentration on one plane.
        let d = TwoStageLbDemux::new(4);
        let picks: std::collections::BTreeSet<usize> =
            (0..4).map(|i| d.nominal_plane(7, i, 0)).collect();
        assert_eq!(picks.len(), 4);
    }

    #[test]
    fn two_stage_deviates_when_nominal_busy() {
        let mut d = TwoStageLbDemux::new(2);
        let want = d.nominal_plane(0, 0, 0);
        let mut busy = vec![0u64; 2];
        busy[want] = 100;
        let ctx = DispatchCtx {
            local: LocalView {
                now: 0,
                input: PortId(0),
                link_busy_until: &busy,
            },
            global: None,
        };
        let p = d.dispatch(&cell(0, 0, 0), &ctx);
        assert_ne!(p.idx(), want);
        assert_eq!(d.deviations(), 1);
    }

    #[test]
    fn of_d_is_deterministic_per_seed_and_input() {
        let free = vec![0u64; 8];
        let run = |seed: u64| -> Vec<u32> {
            let mut d = LeastLoadedOfDDemux::new(2, 8, 2, 2, seed);
            (0..16)
                .map(|t| probe_dispatch(&mut d, &cell(0, 0, t), t, &free).0)
                .collect()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "seed must perturb the samples");
    }

    #[test]
    fn of_d_spreads_under_pressure() {
        // Back-to-back dispatches: with d = k the sampler sees every free
        // plane and the estimator forces round-robin-ish spreading.
        let mut d = LeastLoadedOfDDemux::new(1, 4, 4, 4, 9);
        let free = vec![0u64; 4];
        let picks: std::collections::BTreeSet<u32> = (0..4)
            .map(|t| probe_dispatch(&mut d, &cell(0, 0, t), t, &free).0)
            .collect();
        assert_eq!(picks.len(), 4, "estimates must force spreading");
    }

    #[test]
    fn of_d_inputs_are_independent() {
        // Input 1's stream and estimates are untouched by input 0's
        // dispatches: its picks match a fresh instance's input-1 picks.
        let free = vec![0u64; 8];
        let mut a = LeastLoadedOfDDemux::new(2, 8, 2, 3, 11);
        for t in 0..10 {
            probe_dispatch(&mut a, &cell(0, 0, t), t, &free);
        }
        let after: Vec<u32> = (10..20)
            .map(|t| probe_dispatch(&mut a, &cell(1, 3, t), t, &free).0)
            .collect();
        let mut b = LeastLoadedOfDDemux::new(2, 8, 2, 3, 11);
        let fresh: Vec<u32> = (10..20)
            .map(|t| probe_dispatch(&mut b, &cell(1, 3, t), t, &free).0)
            .collect();
        assert_eq!(after, fresh);
    }

    #[test]
    fn of_d_reset_restores_the_streams() {
        let free = vec![0u64; 8];
        let mut d = LeastLoadedOfDDemux::new(1, 8, 2, 2, 21);
        let first: Vec<u32> = (0..8)
            .map(|t| probe_dispatch(&mut d, &cell(0, 0, t), t, &free).0)
            .collect();
        d.reset();
        let again: Vec<u32> = (0..8)
            .map(|t| probe_dispatch(&mut d, &cell(0, 0, t), t, &free).0)
            .collect();
        assert_eq!(first, again);
    }

    #[test]
    fn of_d_clamps_d_to_k() {
        let d = LeastLoadedOfDDemux::new(1, 3, 2, 100, 1);
        assert_eq!(d.d(), 3);
    }
}
