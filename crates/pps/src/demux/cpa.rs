//! Centralized plane assignment (CPA), after Iyer, Awadallah & McKeown \[14\].
//!
//! CPA is the centralized algorithm the paper contrasts its lower bounds
//! against: with speedup `S ≥ 2` it lets a bufferless PPS mimic a FCFS
//! output-queued switch with **zero relative queuing delay** — at the cost
//! of needing full, immediate global knowledge for every dispatch, which is
//! what makes it impractical at line rate.
//!
//! Mechanism. Every arriving cell is assigned its FCFS-OQ departure
//! deadline `dt = max(now, dt_last[j] + 1)`. A plane `p` is *feasible* if
//! (a) the input line `(i, p)` is free now (the input constraint), and (b)
//! the plane→output line `(p, j)` has no reserved departure within `r' − 1`
//! slots of `dt` (the output constraint). Because at most `r' − 1` planes
//! are excluded by (a) and at most `r' − 1` by (b), `K ≥ 2r'` (i.e. `S ≥
//! 2`) guarantees a feasible plane. Reserved departures per `(p, j)` line
//! are strictly increasing, so a single `last_reserved` matrix suffices.
//!
//! Run CPA with [`pps_core::OutputDiscipline::GlobalFcfs`]: greedy FIFO
//! plane service delivers every cell to its output by its deadline, and the
//! global-FCFS multiplexor emits it exactly at the reference switch's
//! departure slot.
//!
//! When `S < 2` feasibility can fail; the implementation then falls back to
//! the least-reserved free plane and counts a *deadline miss* — giving the
//! experiments a knob to show how CPA degrades below the speedup threshold
//! (ablation A2).

use pps_core::prelude::*;

/// Centralized plane-assignment demultiplexor.
#[derive(Clone, Debug)]
pub struct CpaDemux {
    n: usize,
    k: usize,
    r_prime: Slot,
    /// Last FCFS-OQ departure deadline issued per output.
    dt_last: Vec<Option<Slot>>,
    /// Last reserved departure slot per `(plane, output)` line
    /// (`None` = never reserved).
    last_reserved: Vec<Option<Slot>>,
    /// Dispatches for which no deadline-feasible plane existed.
    deadline_misses: u64,
}

impl CpaDemux {
    /// CPA for an `n × n` PPS with `k` planes and slowdown `r_prime`.
    pub fn new(n: usize, k: usize, r_prime: usize) -> Self {
        CpaDemux {
            n,
            k,
            r_prime: r_prime as Slot,
            dt_last: vec![None; n],
            last_reserved: vec![None; k * n],
            deadline_misses: 0,
        }
    }

    /// Number of dispatches that could not meet their FCFS deadline (stays
    /// 0 whenever `S ≥ 2`).
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses
    }

    fn reserve_idx(&self, plane: usize, output: usize) -> usize {
        plane * self.n + output
    }
}

impl Demultiplexor for CpaDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::Centralized
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        let j = cell.output.idx();
        let now = ctx.local.now;
        let dt = match self.dt_last[j] {
            Some(prev) => now.max(prev + 1),
            None => now,
        };
        self.dt_last[j] = Some(dt);

        // Feasible: input line free and output line reservation slack >= r'.
        let feasible = (0..self.k)
            .filter(|&p| ctx.local.is_free(p))
            .filter(|&p| match self.last_reserved[self.reserve_idx(p, j)] {
                Some(last) => last + self.r_prime <= dt,
                None => true,
            })
            // Prefer the line that has been idle towards j the longest,
            // spreading reservations evenly.
            .min_by_key(|&p| (self.last_reserved[self.reserve_idx(p, j)], p));

        let p = match feasible {
            Some(p) => {
                let idx = self.reserve_idx(p, j);
                self.last_reserved[idx] = Some(dt);
                p
            }
            None => {
                // S < 2 degradation path: take the free plane whose line to
                // j frees up soonest and push the reservation late.
                self.deadline_misses += 1;
                let p = (0..self.k)
                    .filter(|&p| ctx.local.is_free(p))
                    .min_by_key(|&p| (self.last_reserved[self.reserve_idx(p, j)], p))
                    .expect("valid bufferless config guarantees a free plane");
                let idx = self.reserve_idx(p, j);
                let at = match self.last_reserved[idx] {
                    Some(last) => dt.max(last + self.r_prime),
                    None => dt,
                };
                self.last_reserved[idx] = Some(at);
                p
            }
        };
        PlaneId(p as u32)
    }

    fn reset(&mut self) {
        self.dt_last.fill(None);
        self.last_reserved.fill(None);
        self.deadline_misses = 0;
    }

    fn name(&self) -> &'static str {
        "cpa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, input: u32, output: u32, arrival: Slot) -> Cell {
        Cell {
            id: CellId(id),
            input: PortId(input),
            output: PortId(output),
            seq: 0,
            arrival,
        }
    }

    fn ctx<'a>(now: Slot, busy: &'a [Slot], input: u32) -> DispatchCtx<'a> {
        DispatchCtx {
            local: LocalView {
                now,
                input: PortId(input),
                link_busy_until: busy,
            },
            global: None,
        }
    }

    #[test]
    fn consecutive_deadline_cells_get_distinct_planes() {
        // K = 4, r' = 2 (S = 2). Four inputs send to output 0 at slot 0:
        // deadlines 0,1,2,3 — consecutive deadlines closer than r' apart
        // must ride different planes.
        let mut d = CpaDemux::new(4, 4, 2);
        let free = vec![0u64; 4];
        let mut planes = std::collections::BTreeSet::new();
        for i in 0..4 {
            planes.insert(d.dispatch(&cell(i as u64, i, 0, 0), &ctx(0, &free, i)).0);
        }
        // Deadlines 0,1: need distinct; 2 can reuse the plane of deadline 0.
        // So at least 2 distinct planes; with the least-recently-reserved
        // preference all 4 spread.
        assert!(planes.len() >= 2);
        assert_eq!(d.deadline_misses(), 0);
    }

    #[test]
    fn reservation_spacing_is_enforced() {
        let mut d = CpaDemux::new(1, 4, 2);
        let free = vec![0u64; 4];
        // Same input cannot send twice in one slot in the real model, but
        // the reservation logic is what we probe: two cells to output 0
        // with deadlines 0 and 1 must use different planes.
        let p0 = d.dispatch(&cell(0, 0, 0, 0), &ctx(0, &free, 0));
        let p1 = d.dispatch(&cell(1, 0, 0, 0), &ctx(0, &free, 0));
        assert_ne!(p0, p1);
    }

    #[test]
    fn deadline_miss_counted_when_underspeeded() {
        // K = 2, r' = 4 => S = 1/2: deadlines arrive every slot but each
        // plane/output line serves once per 4 slots, so the burst's third
        // cell finds no feasible plane.
        let mut d = CpaDemux::new(4, 2, 4);
        let free = vec![0u64; 2];
        for i in 0..4 {
            d.dispatch(&cell(i as u64, i as u32, 0, 0), &ctx(0, &free, i as u32));
        }
        assert!(
            d.deadline_misses() > 0,
            "S=1/2 must eventually miss deadlines"
        );
    }

    #[test]
    fn deadlines_follow_fcfs_oq() {
        let mut d = CpaDemux::new(2, 4, 2);
        let free = vec![0u64; 4];
        d.dispatch(&cell(0, 0, 1, 0), &ctx(0, &free, 0));
        assert_eq!(d.dt_last[1], Some(0));
        d.dispatch(&cell(1, 1, 1, 0), &ctx(0, &free, 1));
        assert_eq!(d.dt_last[1], Some(1));
        // After a long quiet gap the deadline snaps to `now`.
        d.dispatch(&cell(2, 0, 1, 50), &ctx(50, &free, 0));
        assert_eq!(d.dt_last[1], Some(50));
    }
}
