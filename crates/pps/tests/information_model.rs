//! The information classification, verified from the inside: spy
//! demultiplexors record exactly what view the engine hands them, and the
//! tests assert it matches the paper's definitions — fully-distributed
//! algorithms see nothing global (Definition 5), `u`-RT algorithms see
//! precisely the `u`-slot-old snapshot (Definition 9), centralized ones
//! the current state.

use pps_core::prelude::*;
use pps_switch::engine::BufferlessPps;
use std::sync::{Arc, Mutex};

/// Per-dispatch observation: `(slot, Some(snapshot taken_at) | None)`.
type Seen = Arc<Mutex<Vec<(Slot, Option<Slot>)>>>;

/// Records the global views it was offered; dispatches round-robin.
#[derive(Clone)]
struct SpyDemux {
    class: InfoClass,
    next: u32,
    k: u32,
    seen: Seen,
}

impl Demultiplexor for SpyDemux {
    fn info_class(&self) -> InfoClass {
        self.class
    }
    fn dispatch(&mut self, _cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        self.seen
            .lock()
            .unwrap()
            .push((ctx.local.now, ctx.global.map(|g| g.taken_at)));
        let p = ctx.local.next_free_from(self.next as usize).unwrap();
        self.next = (p as u32 + 1) % self.k;
        PlaneId(p as u32)
    }
    fn reset(&mut self) {
        self.next = 0;
    }
    fn name(&self) -> &'static str {
        "spy"
    }
}

fn run_spy(class: InfoClass, slots: Slot) -> Vec<(Slot, Option<Slot>)> {
    let (n, k, r_prime) = (2usize, 4usize, 2usize);
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    let seen = Arc::new(Mutex::new(Vec::new()));
    let demux = SpyDemux {
        class,
        next: 0,
        k: k as u32,
        seen: seen.clone(),
    };
    let trace = Trace::build(
        (0..slots)
            .map(|s| Arrival::new(s, (s % 2) as u32, 0))
            .collect(),
        n,
    )
    .unwrap();
    let mut pps = BufferlessPps::new(cfg, demux).unwrap();
    pps.run(&trace).unwrap();
    let out = seen.lock().unwrap().clone();
    out
}

#[test]
fn fully_distributed_sees_no_global_view_ever() {
    let seen = run_spy(InfoClass::FullyDistributed, 20);
    assert_eq!(seen.len(), 20);
    assert!(
        seen.iter().all(|&(_, g)| g.is_none()),
        "Definition 5 violated: a fully-distributed demux was handed global state"
    );
}

#[test]
fn u_rt_sees_exactly_the_u_old_snapshot() {
    for u in [1u64, 3, 7] {
        let seen = run_spy(InfoClass::RealTimeDistributed { u }, 20);
        for &(now, taken_at) in &seen {
            match taken_at {
                Some(t) => assert_eq!(
                    t,
                    now - u,
                    "u = {u}: at slot {now} the view should be from slot {}",
                    now - u
                ),
                None => assert!(
                    now < u,
                    "u = {u}: missing view at slot {now} although u slots elapsed"
                ),
            }
        }
        // The view does appear once enough history exists.
        assert!(seen.iter().any(|&(_, g)| g.is_some()), "u = {u}");
    }
}

#[test]
fn centralized_sees_the_current_slot() {
    let seen = run_spy(InfoClass::Centralized, 20);
    assert!(
        seen.iter().all(|&(now, g)| g == Some(now)),
        "centralized demux must see the current state: {seen:?}"
    );
}

#[test]
fn u_rt_snapshot_contents_lag_reality() {
    // Verify the *contents* lag, not just the timestamp: a u-RT spy that
    // records the total plane backlog it can see.
    #[derive(Clone)]
    struct BacklogSpy {
        u: Slot,
        seen: Arc<Mutex<Vec<(Slot, u64)>>>,
    }
    impl Demultiplexor for BacklogSpy {
        fn info_class(&self) -> InfoClass {
            InfoClass::RealTimeDistributed { u: self.u }
        }
        fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
            if let Some(g) = ctx.global {
                let total: u64 = g.plane_queue_len.iter().map(|&x| x as u64).sum();
                self.seen.lock().unwrap().push((ctx.local.now, total));
            }
            // Concentrate everything on plane 0 when free, to build backlog.
            let p = ctx.local.next_free_from(0).unwrap();
            let _ = cell;
            PlaneId(p as u32)
        }
        fn reset(&mut self) {}
        fn name(&self) -> &'static str {
            "backlog-spy"
        }
    }
    let (n, k, r_prime) = (4usize, 4usize, 4usize);
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    let seen = Arc::new(Mutex::new(Vec::new()));
    let demux = BacklogSpy {
        u: 4,
        seen: seen.clone(),
    };
    // Heavy fan-in to one output so plane backlog builds quickly.
    let trace = Trace::build(
        (0..40)
            .flat_map(|s| (0..4u32).map(move |i| Arrival::new(s, i, 0)))
            .collect(),
        n,
    )
    .unwrap();
    BufferlessPps::new(cfg, demux).unwrap().run(&trace).unwrap();
    let seen = seen.lock().unwrap();
    // Early in the run the stale view still shows an (almost) empty switch
    // although cells have been pouring in for u slots.
    let first = seen.first().expect("some views recorded");
    assert!(
        first.1 <= 4,
        "the first stale view should predate most of the backlog: {first:?}"
    );
    // Later views do see substantial backlog — information flows, just late.
    let max_seen = seen.iter().map(|&(_, b)| b).max().unwrap();
    assert!(max_seen > 8, "stale views never caught up: {max_seen}");
}
