//! Dense-vs-skip-ahead equivalence harness (DESIGN.md §15).
//!
//! Skip-ahead stepping must be an *unobservable* optimization: for any
//! trace, fault plan, watchdog and discipline, the run log, fabric
//! statistics, end slot and full telemetry trace must be byte-identical to
//! the dense lockstep loop. The only permitted difference is wall clock
//! and the `slots_simulated` / `slots_skipped` split in the perf meters.
//!
//! Three layers:
//! * a proptest that pits the two modes against random sparse traces,
//!   fault plans and resequencer configurations, for both engines;
//! * a full-telemetry golden check on a gap-heavy fault run;
//! * a wall-clock check on a ≤1%-occupied 10⁷-slot workload (≥20× — in
//!   practice far more) and a 10⁹-slot sparse soak that is only feasible
//!   because skip-ahead makes it O(events).

use proptest::prelude::*;
use std::sync::Mutex;

use pps_core::fault::FaultPlan;
use pps_core::prelude::*;
use pps_core::Stepping;
use pps_switch::demux::{BufferedRoundRobinDemux, CpaDemux, RoundRobinDemux};
use pps_switch::engine::{BufferedPps, BufferlessPps, PpsRun};

/// Assert two runs are observably identical (log, stats, end slot).
fn assert_same(dense: &PpsRun, skip: &PpsRun, what: &str) {
    assert_eq!(
        dense.log.records(),
        skip.log.records(),
        "{what}: run logs diverge"
    );
    assert_eq!(dense.stats, skip.stats, "{what}: fabric stats diverge");
    assert_eq!(dense.end_slot, skip.end_slot, "{what}: end slots diverge");
}

/// Run one bufferless configuration under both modes.
fn bufferless_pair<D: pps_core::demux::Demultiplexor>(
    cfg: PpsConfig,
    mut mk: impl FnMut() -> D,
    trace: &Trace,
    plan: Option<&FaultPlan>,
) -> (PpsRun, PpsRun) {
    let run = |mode: Stepping, demux: D| {
        let mut pps = BufferlessPps::new(cfg, demux).expect("engine");
        if let Some(p) = plan {
            pps.set_fault_plan(p).expect("plan");
        }
        pps.set_stepping(mode);
        pps.run(trace).expect("run")
    };
    (run(Stepping::Dense, mk()), run(Stepping::SkipAhead, mk()))
}

/// Run one buffered configuration under both modes.
fn buffered_pair(cfg: PpsConfig, trace: &Trace, plan: Option<&FaultPlan>) -> (PpsRun, PpsRun) {
    let (n, k) = (cfg.n, cfg.k);
    let run = |mode: Stepping| {
        let mut pps = BufferedPps::new(cfg, BufferedRoundRobinDemux::new(n, k)).expect("engine");
        if let Some(p) = plan {
            pps.set_fault_plan(p).expect("plan");
        }
        pps.set_stepping(mode);
        pps.run(trace).expect("run")
    };
    (run(Stepping::Dense), run(Stepping::SkipAhead))
}

/// A sparse arrival pattern: bursts separated by long idle gaps, exactly
/// the shape the skip loop must fast-forward through without observable
/// effect. Slots stretch into the tens of thousands while only a handful
/// are occupied.
fn sparse_trace(n: usize, bursts: &[(u64, u8)]) -> Trace {
    let mut v = Vec::new();
    for &(start, len) in bursts {
        for d in 0..len as u64 {
            for i in 0..n as u32 {
                // Concentrate on one output half the time to exercise the
                // resequencer/watchdog paths, spread otherwise.
                let j = if (start + d) % 2 == 0 {
                    0
                } else {
                    (i + d as u32) % n as u32
                };
                v.push(Arrival::new(start + d, i, j));
            }
        }
    }
    Trace::build(v, n).expect("trace")
}

/// Random fault plan over `k` planes: a down/up pulse per drawn plane,
/// placed inside or between the bursts so skip jumps must stop at
/// activation slots that dense merely walks past.
fn pulse_plan(pulses: &[(u32, u64, u64)]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &(plane, down_at, up_after) in pulses {
        plan = plan
            .plane_down(plane, down_at)
            .plane_up(plane, down_at + up_after);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Bufferless engine, FlowFifo + watchdog sweep, sparse bursty traffic
    /// with plane-fault pulses: dense and skip must agree exactly.
    #[test]
    fn bufferless_dense_equals_skip(
        bursts in proptest::collection::vec((0u64..20_000, 1u8..4), 1..5),
        watchdog in (0u64..13).prop_map(|w| (w > 0).then_some(w)),
        fcfs in 0u8..2,
        pulses in proptest::collection::vec((0u32..4, 0u64..20_000, 1u64..6_000), 0..3),
    ) {
        let (n, k, r_prime) = (4usize, 4usize, 2usize);
        let mut cfg = PpsConfig::bufferless(n, k, r_prime);
        if fcfs == 1 {
            cfg = cfg.with_discipline(OutputDiscipline::GlobalFcfs);
        }
        if let Some(w) = watchdog {
            cfg = cfg.with_watchdog(w);
        }
        let trace = sparse_trace(n, &bursts);
        let plan = pulse_plan(&pulses);
        prop_assume!(plan.validate(&cfg).is_ok());

        let (d, s) = bufferless_pair(cfg, || RoundRobinDemux::new(n, k), &trace, Some(&plan));
        assert_same(&d, &s, "bufferless/rr");

        let (d, s) = bufferless_pair(
            cfg.with_discipline(OutputDiscipline::GlobalFcfs),
            || CpaDemux::new(n, k, r_prime),
            &trace,
            Some(&plan),
        );
        assert_same(&d, &s, "bufferless/cpa");
    }

    /// Buffered engine: input buffers force the loop dense while occupied;
    /// the skip logic must only engage across truly idle stretches.
    #[test]
    fn buffered_dense_equals_skip(
        bursts in proptest::collection::vec((0u64..20_000, 1u8..4), 1..5),
        size in 1usize..6,
        watchdog in (0u64..13).prop_map(|w| (w > 0).then_some(w)),
        pulses in proptest::collection::vec((0u32..4, 0u64..20_000, 1u64..6_000), 0..3),
    ) {
        let (n, k, r_prime) = (4usize, 4usize, 2usize);
        let mut cfg = PpsConfig::buffered(n, k, r_prime, size);
        if let Some(w) = watchdog {
            cfg = cfg.with_watchdog(w);
        }
        let trace = sparse_trace(n, &bursts);
        let plan = pulse_plan(&pulses);
        prop_assume!(plan.validate(&cfg).is_ok());

        let (d, s) = buffered_pair(cfg, &trace, Some(&plan));
        assert_same(&d, &s, "buffered/rr");
    }
}

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

/// Full-telemetry golden check: a gap-heavy faulted run records exactly
/// the same event stream under both modes — skipped slots emit nothing in
/// dense stepping, so eliding them must be invisible.
#[test]
fn full_telemetry_trace_is_identical() {
    use pps_core::telemetry::{self, Level};
    let _lock = TELEMETRY_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    telemetry::set_level(Level::Full);
    let (n, k, r_prime) = (4usize, 4usize, 2usize);
    let cfg = PpsConfig::bufferless(n, k, r_prime)
        .with_discipline(OutputDiscipline::GlobalFcfs)
        .with_watchdog(6);
    let trace = sparse_trace(n, &[(0, 3), (5_000, 2), (40_000, 1)]);
    let plan = pulse_plan(&[(0, 2, 10_000), (1, 41_000, 500)]);

    let collect = |mode: Stepping| {
        telemetry::collect(format!("equiv-{}", mode.name()), || {
            let mut pps = BufferlessPps::new(cfg, RoundRobinDemux::new(n, k)).expect("engine");
            pps.set_fault_plan(&plan).expect("plan");
            pps.set_stepping(mode);
            pps.run(&trace).expect("run")
        })
    };
    let (dense, dense_log) = collect(Stepping::Dense);
    let (skip, skip_log) = collect(Stepping::SkipAhead);
    telemetry::set_level(Level::Off);

    assert_same(&dense, &skip, "telemetry run");
    assert!(dense_log.total_events() > 0, "trace recorded nothing");
    // Labels differ by construction; events must not.
    let d: Vec<_> = dense_log.flatten().into_iter().map(|(_, e)| e).collect();
    let s: Vec<_> = skip_log.flatten().into_iter().map(|(_, e)| e).collect();
    assert_eq!(d, s, "telemetry event streams diverge");
}

/// Acceptance: a ≤1%-occupied workload over ≥10⁷ slots runs at least 20×
/// faster under skip-ahead, with identical results. The margin in practice
/// is orders of magnitude — 20× keeps the assert robust on loaded CI.
#[test]
fn sparse_workload_speedup_at_least_20x() {
    let (n, k, r_prime) = (4usize, 4usize, 2usize);
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    // 100 single-slot bursts spread over 10⁷ slots: occupancy ≪ 1%.
    let bursts: Vec<(u64, u8)> = (0..100).map(|i| (i * 100_000, 1)).collect();
    let trace = sparse_trace(n, &bursts);
    assert!(trace.horizon() >= 9_900_000);

    let timed = |mode: Stepping| {
        let mut pps = BufferlessPps::new(cfg, RoundRobinDemux::new(n, k)).expect("engine");
        pps.set_stepping(mode);
        let start = std::time::Instant::now();
        let run = pps.run(&trace).expect("run");
        (run, start.elapsed())
    };
    let (dense, t_dense) = timed(Stepping::Dense);
    let (skip, t_skip) = timed(Stepping::SkipAhead);
    assert_same(&dense, &skip, "sparse 10^7");
    assert_eq!(dense.log.undelivered(), 0);
    let ratio = t_dense.as_secs_f64() / t_skip.as_secs_f64().max(1e-9);
    assert!(
        ratio >= 20.0,
        "skip-ahead only {ratio:.1}x faster (dense {t_dense:?}, skip {t_skip:?})"
    );
}

/// A 10⁹-slot sparse horizon is CI-feasible under skip-ahead: the loop
/// touches O(events) slots, not O(horizon). Dense would take hours; this
/// must finish in seconds.
#[test]
fn soak_billion_slot_horizon_is_events_bound() {
    let (n, k, r_prime) = (4usize, 4usize, 2usize);
    let cfg = PpsConfig::bufferless(n, k, r_prime).with_watchdog(8);
    let bursts: Vec<(u64, u8)> = (0..200).map(|i| (i * 5_000_000, 1)).collect();
    let trace = sparse_trace(n, &bursts);
    assert!(
        trace.horizon() >= 995_000_000,
        "horizon {}",
        trace.horizon()
    );

    let skipped0 = pps_switch::perf::slots_skipped();
    let mut pps = BufferlessPps::new(cfg, RoundRobinDemux::new(n, k)).expect("engine");
    pps.set_stepping(Stepping::SkipAhead);
    let start = std::time::Instant::now();
    let run = pps.run(&trace).expect("run");
    let elapsed = start.elapsed();
    assert_eq!(run.log.undelivered(), 0);
    assert!(run.end_slot >= trace.horizon());
    // The elided interval is metered, not silently lost.
    assert!(pps_switch::perf::slots_skipped() - skipped0 >= 900_000_000);
    assert!(
        elapsed.as_secs_f64() < 30.0,
        "soak took {elapsed:?} — skip-ahead is not events-bound"
    );
}
