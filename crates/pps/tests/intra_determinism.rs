//! Intra-run sharding determinism harness (DESIGN.md §16).
//!
//! Sharding one run's planes and output resequencers across worker
//! threads must be an *unobservable* optimization, exactly like
//! skip-ahead stepping: for the same configuration and trace, the run
//! log, fabric statistics, end slot and full telemetry trace must be
//! byte-identical at every `--intra-jobs` value, under both stepping
//! modes. The only permitted difference is wall clock and the intra
//! merge-time perf meter.

use std::sync::Mutex;

use pps_core::fault::FaultPlan;
use pps_core::prelude::*;
use pps_core::Stepping;
use pps_switch::demux::{BufferedRoundRobinDemux, RoundRobinDemux};
use pps_switch::engine::{BufferedPps, BufferlessPps, PpsRun};

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

/// Assert two runs are observably identical (log, stats, end slot).
fn assert_same(a: &PpsRun, b: &PpsRun, what: &str) {
    assert_eq!(a.log.records(), b.log.records(), "{what}: run logs diverge");
    assert_eq!(a.stats, b.stats, "{what}: fabric stats diverge");
    assert_eq!(a.end_slot, b.end_slot, "{what}: end slots diverge");
}

/// A large-N workload that keeps every shard busy: full-rate bursts that
/// alternate between concentrating on output 0 (deep resequencer queues,
/// long active lists) and spreading across all outputs, separated by idle
/// gaps so skip-ahead stepping has jumps to compose with the shards.
fn large_trace(n: usize) -> Trace {
    let mut v = Vec::new();
    for &(start, len) in &[(0u64, 6u64), (5_000, 4), (20_000, 2)] {
        for d in 0..len {
            for i in 0..n as u32 {
                let j = if (start + d) % 2 == 0 {
                    0
                } else {
                    (i + d as u32) % n as u32
                };
                v.push(Arrival::new(start + d, i, j));
            }
        }
    }
    Trace::build(v, n).expect("trace")
}

/// Plane-fault pulses force shard-local agendas to drain and re-arm at
/// different times per shard, exercising the declared-order merge.
fn plan() -> FaultPlan {
    FaultPlan::new()
        .plane_down(1, 3)
        .plane_up(1, 6_000)
        .plane_down(5, 21_000)
        .plane_up(5, 21_500)
}

fn bufferless_run(n: usize, k: usize, intra: usize, mode: Stepping) -> PpsRun {
    let cfg = PpsConfig::bufferless(n, k, 2)
        .with_discipline(OutputDiscipline::GlobalFcfs)
        .with_watchdog(9);
    let mut pps = BufferlessPps::new(cfg, RoundRobinDemux::new(n, k)).expect("engine");
    pps.set_fault_plan(&plan()).expect("plan");
    pps.set_stepping(mode);
    pps.set_intra_jobs(intra);
    pps.run(&large_trace(n)).expect("run")
}

fn buffered_run(n: usize, k: usize, intra: usize, mode: Stepping) -> PpsRun {
    let cfg = PpsConfig::buffered(n, k, 2, 4).with_watchdog(9);
    let mut pps = BufferedPps::new(cfg, BufferedRoundRobinDemux::new(n, k)).expect("engine");
    pps.set_fault_plan(&plan()).expect("plan");
    pps.set_stepping(mode);
    pps.set_intra_jobs(intra);
    pps.run(&large_trace(n)).expect("run")
}

/// Tentpole acceptance: a large-N bufferless run is byte-identical at
/// `--intra-jobs` 1, 2 and 4, under both stepping modes.
#[test]
fn bufferless_sharded_equals_serial_both_steppings() {
    let (n, k) = (128, 8);
    for mode in [Stepping::Dense, Stepping::SkipAhead] {
        let serial = bufferless_run(n, k, 1, mode);
        for intra in [2, 4] {
            let sharded = bufferless_run(n, k, intra, mode);
            assert_same(
                &serial,
                &sharded,
                &format!("bufferless/{}/intra{intra}", mode.name()),
            );
        }
    }
}

/// Buffered engine: input buffers, per-head wake-ups and the sharded
/// fabric must still reproduce the serial walk exactly.
#[test]
fn buffered_sharded_equals_serial_both_steppings() {
    let (n, k) = (64, 8);
    for mode in [Stepping::Dense, Stepping::SkipAhead] {
        let serial = buffered_run(n, k, 1, mode);
        for intra in [2, 4] {
            let sharded = buffered_run(n, k, intra, mode);
            assert_same(
                &serial,
                &sharded,
                &format!("buffered/{}/intra{intra}", mode.name()),
            );
        }
    }
}

/// Shard counts that do not divide K or N evenly (including more shards
/// than planes) must clamp and still agree.
#[test]
fn ragged_shard_counts_agree() {
    let (n, k) = (48, 6);
    let serial = bufferless_run(n, k, 1, Stepping::SkipAhead);
    for intra in [3, 5, 16] {
        let sharded = bufferless_run(n, k, intra, Stepping::SkipAhead);
        assert_same(&serial, &sharded, &format!("ragged/intra{intra}"));
    }
}

/// The same byte-identity must hold when shards actually run on spawned
/// worker threads, not just on the inline fallback path. A widened worker
/// budget lets `run_sharded` lease threads for the extra bands; results
/// must not depend on which path executed. (The global budget is shared
/// with concurrently running tests — harmless, since every test here
/// asserts equality between runs, not a particular execution strategy.)
#[test]
fn threaded_shards_agree_with_serial() {
    pps_core::workers::set_jobs(8);
    let serial = bufferless_run(128, 8, 1, Stepping::SkipAhead);
    let sharded = bufferless_run(128, 8, 4, Stepping::SkipAhead);
    pps_core::workers::set_jobs(1);
    assert_same(&serial, &sharded, "threaded/intra4");
}

/// Full-telemetry golden check: shard-captured events must replay into
/// the scope ring in exactly the serial order, so the flattened event
/// stream is identical at any shard count. This is the coverage for the
/// thread-local shard capture path in `pps_core::telemetry`.
#[test]
fn full_telemetry_trace_is_identical_across_intra_jobs() {
    use pps_core::telemetry::{self, Level};
    let _lock = TELEMETRY_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    telemetry::set_level(Level::Full);
    let collect = |intra: usize, mode: Stepping| {
        telemetry::collect(format!("intra{intra}-{}", mode.name()), || {
            bufferless_run(96, 8, intra, mode)
        })
    };
    let (serial, serial_log) = collect(1, Stepping::SkipAhead);
    let (sharded, sharded_log) = collect(4, Stepping::SkipAhead);
    telemetry::set_level(Level::Off);

    assert_same(&serial, &sharded, "telemetry run");
    assert!(serial_log.total_events() > 0, "trace recorded nothing");
    let a: Vec<_> = serial_log.flatten().into_iter().map(|(_, e)| e).collect();
    let b: Vec<_> = sharded_log.flatten().into_iter().map(|(_, e)| e).collect();
    assert_eq!(a, b, "telemetry event streams diverge");
}
