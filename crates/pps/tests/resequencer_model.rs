//! Model-based property test for the FlowFifo resequencer.
//!
//! The production path — `CellPool` + `SeqRing` + the batched
//! `deliver_batch`/`emit` hot path of [`OutputMux`] — is checked against a
//! deliberately naive reference model built on `BTreeMap`/`BTreeSet`, which
//! transcribes the DESIGN.md semantics directly: per-flow reorder maps, an
//! eligible set ordered by `(arrival, id)`, per-flow gap timers that fire
//! during the limit-th consecutive blocked slot. Random per-plane delivery
//! delays produce reordered arrivals, watchdog skips, and late stragglers;
//! the emission sequence and every counter must match exactly, slot by
//! slot.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

use pps_core::prelude::*;
use pps_switch::output::OutputMux;

/// Naive FlowFifo resequencer: same observable contract as `OutputMux`,
/// structured for obviousness instead of speed.
struct ModelMux {
    reorder: Vec<BTreeMap<u32, CellId>>,
    next_seq: Vec<u32>,
    /// Eligible cells keyed exactly like the real emit heap.
    eligible: BTreeSet<(Slot, CellId)>,
    blocked_since: Vec<Option<Slot>>,
    watchdog: Option<Slot>,
    stalled_since: Option<Slot>,
    held: usize,
    emitted: u64,
    skipped: u64,
    stalled_slots: u64,
    late_dropped: u64,
}

impl ModelMux {
    fn new(n: usize, watchdog: Option<Slot>) -> Self {
        ModelMux {
            reorder: vec![BTreeMap::new(); n],
            next_seq: vec![0; n],
            eligible: BTreeSet::new(),
            blocked_since: vec![None; n],
            watchdog,
            stalled_since: None,
            held: 0,
            emitted: 0,
            skipped: 0,
            stalled_slots: 0,
            late_dropped: 0,
        }
    }

    fn eligible_of(&self, cells: &[Cell], input: usize) -> usize {
        self.eligible
            .iter()
            .filter(|(_, id)| cells[id.idx()].input.idx() == input)
            .count()
    }

    fn refresh_gap(&mut self, cells: &[Cell], i: usize, now: Slot) {
        if self.reorder[i].is_empty() || self.eligible_of(cells, i) > 0 {
            self.blocked_since[i] = None;
        } else if self.blocked_since[i].is_none() {
            self.blocked_since[i] = Some(now);
        }
    }

    /// Deliver one slot's batch, in order; returns per-cell accepted flags.
    fn deliver_batch(&mut self, cells: &[Cell], ids: &[CellId], now: Slot) -> Vec<bool> {
        let mut accepted = Vec::with_capacity(ids.len());
        let mut touched = Vec::new();
        for &id in ids {
            let c = &cells[id.idx()];
            let i = c.input.idx();
            if c.seq < self.next_seq[i] {
                self.late_dropped += 1;
                accepted.push(false);
                continue;
            }
            self.held += 1;
            if c.seq == self.next_seq[i] {
                self.eligible.insert((c.arrival, id));
            } else {
                self.reorder[i].insert(c.seq, id);
            }
            if !touched.contains(&i) {
                touched.push(i);
            }
            accepted.push(true);
        }
        for i in touched {
            self.refresh_gap(cells, i, now);
        }
        accepted
    }

    fn expire_gaps(&mut self, cells: &[Cell], now: Slot) {
        let Some(limit) = self.watchdog else { return };
        for i in 0..self.blocked_since.len() {
            let Some(since) = self.blocked_since[i] else {
                continue;
            };
            if now - since + 1 < limit {
                continue;
            }
            let (&seq, &head) = self.reorder[i].iter().next().expect("blocked => waiting");
            self.skipped += u64::from(seq - self.next_seq[i]);
            self.next_seq[i] = seq;
            self.reorder[i].remove(&seq);
            self.eligible.insert((cells[head.idx()].arrival, head));
            self.refresh_gap(cells, i, now);
        }
    }

    fn emit(&mut self, cells: &[Cell], now: Slot) -> Option<CellId> {
        self.expire_gaps(cells, now);
        if let Some((key, id)) = self.eligible.iter().next().copied() {
            self.eligible.remove(&(key, id));
            let i = cells[id.idx()].input.idx();
            self.next_seq[i] = cells[id.idx()].seq + 1;
            if let Some(next) = self.reorder[i].remove(&self.next_seq[i]) {
                self.eligible.insert((cells[next.idx()].arrival, next));
            }
            self.refresh_gap(cells, i, now);
            self.held -= 1;
            self.emitted += 1;
            self.stalled_since = None;
            return Some(id);
        }
        if self.held == 0 {
            self.stalled_since = None;
            return None;
        }
        self.stalled_since.get_or_insert(now);
        self.stalled_slots += 1;
        None
    }
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// Build one output's worth of flows — per input, `len` cells with
/// consecutive seqs and strictly increasing arrivals — then scatter each
/// cell's plane-delivery slot by a random delay. Ids follow global arrival
/// order, as `Trace::cells` assigns them.
fn build_run(
    lens: &[usize],
    seed: u64,
    max_delay: u64,
) -> (Vec<Cell>, BTreeMap<Slot, Vec<CellId>>) {
    let mut state = seed | 1;
    let mut protocells = Vec::new();
    for (i, &len) in lens.iter().enumerate() {
        let mut arrival: Slot = 0;
        for seq in 0..len as u32 {
            arrival += 1 + lcg(&mut state) % 3;
            protocells.push((arrival, i as u32, seq));
        }
    }
    protocells.sort_unstable();
    let cells: Vec<Cell> = protocells
        .iter()
        .enumerate()
        .map(|(id, &(arrival, input, seq))| Cell {
            id: CellId(id as u64),
            input: PortId(input),
            output: PortId(0),
            seq,
            arrival,
        })
        .collect();
    let mut schedule: BTreeMap<Slot, Vec<CellId>> = BTreeMap::new();
    for c in &cells {
        let deliver_at = c.arrival + lcg(&mut state) % (max_delay + 1);
        schedule.entry(deliver_at).or_default().push(c.id);
    }
    // Random within-slot delivery order (planes race each other).
    for batch in schedule.values_mut() {
        batch.sort_by_key(|id| (lcg(&mut state), id.0));
    }
    (cells, schedule)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn flow_fifo_matches_naive_reference_model(
        lens in proptest::collection::vec(0usize..10, 1usize..4),
        seed in 0u64..10_000,
        max_delay in 0u64..9,
        watchdog in (0u64..5).prop_map(|w| (w > 0).then_some(w)),
    ) {
        let (cells, schedule) = build_run(&lens, seed, max_delay);
        let n = lens.len();

        let mut pool = CellPool::new();
        for c in &cells {
            pool.ensure(c);
        }
        let mut real = OutputMux::new(n, OutputDiscipline::FlowFifo);
        real.set_watchdog(watchdog);
        let mut model = ModelMux::new(n, watchdog);

        let last = schedule.keys().next_back().copied().unwrap_or(0);
        // Everything is delivered by `last`; with gaps filled (or expired
        // by the watchdog) the mux drains one cell per slot afterwards.
        let horizon = last + cells.len() as u64 + watchdog.unwrap_or(0) + 2;
        let mut real_out = Vec::new();
        let mut model_out = Vec::new();
        for now in 0..=horizon {
            if let Some(batch) = schedule.get(&now) {
                let model_accepted = model.deliver_batch(&cells, batch, now);
                let real_accepted = real.deliver_batch(&pool, batch, now);
                prop_assert_eq!(
                    real_accepted,
                    model_accepted.iter().filter(|&&a| a).count(),
                    "accepted count diverged in slot {}", now
                );
            }
            let r = real.emit(&pool, now);
            let m = model.emit(&cells, now);
            prop_assert_eq!(r, m, "emission diverged in slot {}", now);
            if let Some(id) = r {
                real_out.push(id);
            }
            if let Some(id) = m {
                model_out.push(id);
            }
        }

        // Fully drained, and the delivered sequence matches exactly.
        prop_assert_eq!(real.held(), 0, "real mux failed to drain");
        prop_assert_eq!(model.held, 0, "model failed to drain");
        prop_assert_eq!(&real_out, &model_out);

        // Per-flow order was preserved among emitted cells.
        let mut last_seq = vec![None::<u32>; n];
        for id in &real_out {
            let c = &cells[id.idx()];
            let prev = last_seq[c.input.idx()].replace(c.seq);
            prop_assert!(prev.is_none_or(|p| c.seq > p), "flow order violated");
        }

        // Counters agree: emitted + skipped-or-late accounts for every cell.
        prop_assert_eq!(real.emitted(), model.emitted);
        prop_assert_eq!(real.skipped(), model.skipped);
        prop_assert_eq!(real.late_dropped(), model.late_dropped);
        prop_assert_eq!(real.stalled_slots(), model.stalled_slots);
        if watchdog.is_none() {
            prop_assert_eq!(real.emitted() as usize, cells.len());
            prop_assert_eq!(real.skipped(), 0);
            prop_assert_eq!(real.late_dropped(), 0);
        }
    }
}
