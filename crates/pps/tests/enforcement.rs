//! The engines enforce the formal model against *misbehaving*
//! demultiplexors: violating the input constraint, naming out-of-range
//! planes, referencing bad buffer slots, double-releasing, or overflowing
//! a finite buffer must all surface as hard [`ModelError`]s — never as a
//! silent mis-simulation.

use pps_core::prelude::*;
use pps_switch::engine::{BufferedPps, BufferlessPps};

fn trace(n: usize, arrivals: Vec<Arrival>) -> Trace {
    Trace::build(arrivals, n).unwrap()
}

/// Always dispatches to plane 0, even when the line is busy.
#[derive(Clone)]
struct BusyLineAbuser;
impl Demultiplexor for BusyLineAbuser {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }
    fn dispatch(&mut self, _c: &Cell, _ctx: &DispatchCtx<'_>) -> PlaneId {
        PlaneId(0)
    }
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "busy-line-abuser"
    }
}

#[test]
fn input_constraint_violation_is_fatal() {
    // r' = 2: two consecutive cells on one input cannot both use plane 0.
    let cfg = PpsConfig::bufferless(2, 2, 2);
    let t = trace(2, vec![Arrival::new(0, 0, 0), Arrival::new(1, 0, 1)]);
    let err = BufferlessPps::new(cfg, BusyLineAbuser)
        .unwrap()
        .run(&t)
        .unwrap_err();
    assert!(
        matches!(err, ModelError::InputConstraintViolation { .. }),
        "{err}"
    );
}

/// Names a plane that does not exist.
#[derive(Clone)]
struct OutOfRange;
impl Demultiplexor for OutOfRange {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }
    fn dispatch(&mut self, _c: &Cell, _ctx: &DispatchCtx<'_>) -> PlaneId {
        PlaneId(99)
    }
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "out-of-range"
    }
}

#[test]
fn plane_out_of_range_is_fatal() {
    let cfg = PpsConfig::bufferless(2, 2, 2);
    let t = trace(2, vec![Arrival::new(0, 0, 0)]);
    let err = BufferlessPps::new(cfg, OutOfRange)
        .unwrap()
        .run(&t)
        .unwrap_err();
    assert!(
        matches!(err, ModelError::PlaneOutOfRange { k: 2, .. }),
        "{err}"
    );
}

/// Buffered demux that releases a non-existent buffer slot.
#[derive(Clone)]
struct BadIndexReleaser;
impl BufferedDemultiplexor for BadIndexReleaser {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }
    fn slot_decision(
        &mut self,
        _input: PortId,
        arrival: Option<&Cell>,
        _buffer: &[Cell],
        _ctx: &DispatchCtx<'_>,
        out: &mut BufferedDecision,
    ) {
        out.releases.push((7, PlaneId(0)));
        out.arrival = arrival.map(|_| ArrivalAction::Enqueue);
    }
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "bad-index"
    }
}

#[test]
fn bad_buffer_index_is_fatal() {
    let cfg = PpsConfig::buffered(2, 2, 2, 4);
    let t = trace(2, vec![Arrival::new(0, 0, 0)]);
    let err = BufferedPps::new(cfg, BadIndexReleaser)
        .unwrap()
        .run(&t)
        .unwrap_err();
    assert!(
        matches!(err, ModelError::BadBufferIndex { index: 7, .. }),
        "{err}"
    );
}

/// Buffered demux that releases the same slot twice in one decision.
#[derive(Clone)]
struct DoubleReleaser;
impl BufferedDemultiplexor for DoubleReleaser {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }
    fn slot_decision(
        &mut self,
        _input: PortId,
        arrival: Option<&Cell>,
        buffer: &[Cell],
        _ctx: &DispatchCtx<'_>,
        out: &mut BufferedDecision,
    ) {
        if buffer.is_empty() {
            *out = BufferedDecision::hold(arrival.is_some());
        } else {
            out.releases.push((0, PlaneId(0)));
            out.releases.push((0, PlaneId(1)));
            out.arrival = arrival.map(|_| ArrivalAction::Enqueue);
        }
    }
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "double-release"
    }
}

#[test]
fn duplicate_release_indices_are_fatal() {
    let cfg = PpsConfig::buffered(2, 2, 2, 4);
    let t = trace(2, vec![Arrival::new(0, 0, 0), Arrival::new(1, 0, 0)]);
    let err = BufferedPps::new(cfg, DoubleReleaser)
        .unwrap()
        .run(&t)
        .unwrap_err();
    assert!(
        matches!(err, ModelError::BadBufferIndex { index: 0, .. }),
        "{err}"
    );
}

/// Buffered demux that hoards everything.
#[derive(Clone)]
struct Hoarder;
impl BufferedDemultiplexor for Hoarder {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }
    fn slot_decision(
        &mut self,
        _input: PortId,
        arrival: Option<&Cell>,
        _buffer: &[Cell],
        _ctx: &DispatchCtx<'_>,
        out: &mut BufferedDecision,
    ) {
        *out = BufferedDecision::hold(arrival.is_some());
    }
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "hoarder"
    }
}

#[test]
fn buffer_overflow_is_fatal_not_a_drop() {
    // Capacity 2, three arrivals on one input: the model forbids dropping,
    // so the engine must error instead.
    let cfg = PpsConfig::buffered(1, 2, 2, 2);
    let t = trace(1, (0..3).map(|s| Arrival::new(s, 0, 0)).collect());
    let err = BufferedPps::new(cfg, Hoarder).unwrap().run(&t).unwrap_err();
    assert!(
        matches!(err, ModelError::BufferOverflow { capacity: 2, .. }),
        "{err}"
    );
}

/// A buffered demux that releases two cells onto the *same* plane in one
/// slot (one line, two cells: input-constraint violation).
#[derive(Clone)]
struct SameLineDouble;
impl BufferedDemultiplexor for SameLineDouble {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }
    fn slot_decision(
        &mut self,
        _input: PortId,
        arrival: Option<&Cell>,
        buffer: &[Cell],
        _ctx: &DispatchCtx<'_>,
        out: &mut BufferedDecision,
    ) {
        if buffer.len() >= 2 {
            out.releases.push((0, PlaneId(0)));
            out.releases.push((1, PlaneId(0)));
            out.arrival = arrival.map(|_| ArrivalAction::Enqueue);
        } else {
            *out = BufferedDecision::hold(arrival.is_some());
        }
    }
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "same-line-double"
    }
}

#[test]
fn two_releases_on_one_line_violate_the_input_constraint() {
    let cfg = PpsConfig::buffered(1, 2, 2, 4);
    let t = trace(1, (0..2).map(|s| Arrival::new(s, 0, 0)).collect());
    let err = BufferedPps::new(cfg, SameLineDouble)
        .unwrap()
        .run(&t)
        .unwrap_err();
    assert!(
        matches!(err, ModelError::InputConstraintViolation { .. }),
        "{err}"
    );
}

#[test]
fn engine_rejects_mismatched_buffer_spec() {
    let buffered_cfg = PpsConfig::buffered(2, 2, 2, 4);
    assert!(matches!(
        BufferlessPps::new(buffered_cfg, BusyLineAbuser),
        Err(ModelError::InvalidConfig { .. })
    ));
    let bufferless_cfg = PpsConfig::bufferless(2, 2, 2);
    assert!(matches!(
        BufferedPps::new(bufferless_cfg, Hoarder),
        Err(ModelError::InvalidConfig { .. })
    ));
}
