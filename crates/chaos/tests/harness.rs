//! End-to-end harness tests: the acceptance criteria of the chaos PR.
//!
//! * a seeded campaign over the generated case mix is violation-free;
//! * the report is byte-identical at `--jobs 1` and `--jobs 4`;
//! * an intentionally injected conservation bug (the test-only leak hook)
//!   is caught by the oracles and shrunk to a repro of at most 8 fault
//!   events, with the repro files on disk.
//!
//! The tests drive [`pps_chaos::cli`] — the exact code path behind
//! `ppslab chaos` — so flag parsing, fan-out, shrinking and repro
//! emission are all under test.

use pps_chaos::cli::{self, ChaosOptions};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pps-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn seeded_campaign_is_violation_free() {
    let report = cli::run(&ChaosOptions {
        seed: 42,
        cases: 48,
        budget_slots: 128,
        repro_out: temp_dir("smoke"),
        ..ChaosOptions::default()
    })
    .expect("campaign runs");
    assert_eq!(report.failed, 0, "report:\n{}", report.text);
    assert!(report.text.contains("chaos: 48 cases, 0 failed"));
}

#[test]
fn report_is_byte_identical_across_job_counts() {
    let base = ChaosOptions {
        seed: 1337,
        cases: 24,
        budget_slots: 96,
        repro_out: temp_dir("jobs"),
        ..ChaosOptions::default()
    };
    let serial = cli::run(&ChaosOptions {
        jobs: Some(1),
        ..base.clone()
    })
    .expect("serial run");
    let parallel = cli::run(&ChaosOptions {
        jobs: Some(4),
        ..base
    })
    .expect("parallel run");
    assert_eq!(serial.text, parallel.text);
}

#[test]
fn report_is_byte_identical_dense_vs_skip() {
    // The skip-ahead lockstep must land on exactly the slots the dense
    // walk would have acted on: same verdicts, same end slots, same
    // delivered/dropped tallies — the whole report, byte for byte.
    let base = ChaosOptions {
        seed: 42,
        cases: 32,
        budget_slots: 128,
        repro_out: temp_dir("stepping"),
        ..ChaosOptions::default()
    };
    let dense = cli::run(&ChaosOptions {
        force_stepping: Some(pps_core::Stepping::Dense),
        ..base.clone()
    })
    .expect("dense run");
    let skip = cli::run(&ChaosOptions {
        force_stepping: Some(pps_core::Stepping::SkipAhead),
        ..base
    })
    .expect("skip run");
    assert_eq!(dense.failed, 0, "{}", dense.text);
    assert_eq!(dense.text, skip.text);
}

#[test]
fn report_is_byte_identical_sharded_vs_serial() {
    // Sharding a case's fabric across intra-run workers must reproduce
    // the serial walk exactly — same verdicts, same tallies, the whole
    // report byte for byte. Without pinning, each case draws its shard
    // count from its seed (ChaosCase::intra_jobs), so the unpinned
    // campaign in seeded_campaign_is_violation_free already mixes serial
    // and sharded cases; this test isolates the comparison.
    let base = ChaosOptions {
        seed: 42,
        cases: 32,
        budget_slots: 128,
        repro_out: temp_dir("intra"),
        ..ChaosOptions::default()
    };
    let serial = cli::run(&ChaosOptions {
        force_intra_jobs: Some(1),
        ..base.clone()
    })
    .expect("serial run");
    let sharded = cli::run(&ChaosOptions {
        force_intra_jobs: Some(4),
        ..base
    })
    .expect("sharded run");
    assert_eq!(serial.failed, 0, "{}", serial.text);
    assert_eq!(serial.text, sharded.text);
}

#[test]
fn injected_bug_is_caught_and_shrunk() {
    let repro_root = temp_dir("leak");
    // Arm the conservation-leak hook on every case: any case whose plan
    // downs a loaded plane now leaks one cell past the accounting. The
    // campaign must flag at least one case, shrink it, and write a repro.
    let report = cli::run(&ChaosOptions {
        seed: 42,
        cases: 32,
        budget_slots: 128,
        repro_out: repro_root.clone(),
        inject_leak: 1,
        ..ChaosOptions::default()
    })
    .expect("campaign runs");
    assert!(report.failed > 0, "leak went undetected:\n{}", report.text);
    assert!(
        report.text.contains("conservation"),
        "wrong oracle:\n{}",
        report.text
    );

    // Every shrunk line must report <= 8 kept events.
    let mut saw_shrunk = false;
    for line in report.text.lines() {
        if let Some(rest) = line.trim_start().strip_prefix("shrunk: ") {
            // format: "<orig> -> <kept> fault events, ..."
            let kept: usize = rest
                .split("-> ")
                .nth(1)
                .and_then(|s| s.split_whitespace().next())
                .and_then(|s| s.parse().ok())
                .expect("parse shrunk line");
            assert!(kept <= 8, "repro not minimal: {line}");
            saw_shrunk = true;
        }
    }
    assert!(saw_shrunk, "no shrunk line in:\n{}", report.text);

    // Repro files exist: plan.csv + repro.txt with a replay command.
    let case_dir = std::fs::read_dir(&repro_root)
        .expect("repro root exists")
        .next()
        .expect("at least one repro")
        .expect("readable entry")
        .path();
    assert!(case_dir.join("plan.csv").is_file());
    let txt = std::fs::read_to_string(case_dir.join("repro.txt")).expect("repro.txt");
    assert!(
        txt.contains("replay      : ppslab chaos --seed 42"),
        "{txt}"
    );
    assert!(case_dir.join("trace.json").is_file());
    let _ = std::fs::remove_dir_all(&repro_root);
}

#[test]
fn single_case_replay_matches_campaign_verdict() {
    // Case 3 of the smoke seed, replayed alone, must still pass — the
    // repro path regenerates a case bit-identically from (seed, index).
    let report = cli::run(&ChaosOptions {
        seed: 42,
        cases: 1,
        budget_slots: 128,
        only_case: Some(3),
        repro_out: temp_dir("replay"),
        ..ChaosOptions::default()
    })
    .expect("replay runs");
    assert_eq!(report.failed, 0, "{}", report.text);
    assert!(report.text.contains("case 003 "));
}
