//! `ppslab chaos` — argument parsing and the fuzzing driver.
//!
//! Lives here (not in the driver binary) so the harness tests exercise
//! the exact code path the CLI runs, flag parsing included. All errors
//! are typed: the driver prints them and exits nonzero instead of
//! panicking on a bad flag or an unwritable repro directory.

use crate::case::ChaosCase;
use crate::report::{case_line, failure_block, render, write_repro};
use crate::runner::{run_case, CaseOutcome, RunOpts};
use crate::shrink::{shrink, ShrinkResult};
use pps_core::fault::FaultPlan;
use pps_core::sweep::SweepPlan;
use pps_core::telemetry::{self, Level};
use pps_core::time::Slot;
use pps_core::workers;
use std::fmt;
use std::path::PathBuf;

/// A user-facing chaos-driver error. Every variant maps to a message and
/// a nonzero exit, never a panic.
#[derive(Debug)]
pub enum ChaosError {
    /// A flag was unknown, malformed, or inconsistent with the others.
    InvalidFlag(String),
    /// Reading or writing a file failed.
    Io {
        /// What the driver was touching.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A `--plan` CSV failed to load or parse.
    BadPlan(String),
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::InvalidFlag(msg) => write!(f, "invalid argument: {msg}"),
            ChaosError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            ChaosError::BadPlan(msg) => write!(f, "bad fault plan: {msg}"),
        }
    }
}

impl std::error::Error for ChaosError {}

/// Parsed `ppslab chaos` options.
#[derive(Clone, Debug)]
pub struct ChaosOptions {
    /// Master seed; every case seed derives from it.
    pub seed: u64,
    /// Number of cases to generate and run.
    pub cases: usize,
    /// Arrival horizon per case, in slots.
    pub budget_slots: Slot,
    /// Worker budget override (`None` keeps the process-wide setting).
    pub jobs: Option<usize>,
    /// Where minimized repros are written.
    pub repro_out: PathBuf,
    /// Run only this case index (repro replay).
    pub only_case: Option<usize>,
    /// Replace the generated fault plan (repro replay; requires
    /// [`ChaosOptions::only_case`]).
    pub plan_override: Option<FaultPlan>,
    /// Cut arrivals after this slot (repro replay).
    pub truncate_at: Option<Slot>,
    /// Arm the test-only conservation-leak hook this many times per case.
    pub inject_leak: u32,
    /// Pin every case to one stepping mode instead of the per-case draw
    /// (`--stepping dense|skip`). Reports are byte-identical either way.
    pub force_stepping: Option<pps_core::Stepping>,
    /// Pin every case's intra-run shard count instead of the per-case draw
    /// (`--intra-jobs N`). Reports are byte-identical at any value.
    pub force_intra_jobs: Option<usize>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 42,
            cases: 64,
            budget_slots: 256,
            jobs: None,
            repro_out: PathBuf::from("chaos-repros"),
            only_case: None,
            plan_override: None,
            truncate_at: None,
            inject_leak: 0,
            force_stepping: None,
            force_intra_jobs: None,
        }
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, ChaosError>
where
    T::Err: fmt::Display,
{
    value
        .parse()
        .map_err(|e| ChaosError::InvalidFlag(format!("{flag} {value}: {e}")))
}

/// Parse `chaos` subcommand arguments (everything after the subcommand).
pub fn parse(args: &[String]) -> Result<ChaosOptions, ChaosError> {
    let mut opts = ChaosOptions::default();
    let mut plan_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| ChaosError::InvalidFlag(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--seed" => opts.seed = parse_num(flag, value()?)?,
            "--cases" => opts.cases = parse_num(flag, value()?)?,
            "--budget-slots" => opts.budget_slots = parse_num(flag, value()?)?,
            "--jobs" => opts.jobs = Some(parse_num(flag, value()?)?),
            "--repro-out" => opts.repro_out = PathBuf::from(value()?),
            "--case" => opts.only_case = Some(parse_num(flag, value()?)?),
            "--plan" => plan_path = Some(PathBuf::from(value()?)),
            "--truncate-at" => opts.truncate_at = Some(parse_num(flag, value()?)?),
            "--inject-leak" => opts.inject_leak = parse_num(flag, value()?)?,
            "--stepping" => {
                let v = value()?;
                opts.force_stepping = Some(pps_core::Stepping::parse(v).ok_or_else(|| {
                    ChaosError::InvalidFlag(format!("--stepping {v}: expected dense or skip"))
                })?);
            }
            "--intra-jobs" => {
                let n: usize = parse_num(flag, value()?)?;
                if n == 0 {
                    return Err(ChaosError::InvalidFlag(
                        "--intra-jobs must be at least 1".into(),
                    ));
                }
                opts.force_intra_jobs = Some(n);
            }
            other => {
                return Err(ChaosError::InvalidFlag(format!("unknown flag {other}")));
            }
        }
    }
    if let Some(path) = plan_path {
        if opts.only_case.is_none() {
            return Err(ChaosError::InvalidFlag(
                "--plan replays one case and requires --case <index>".into(),
            ));
        }
        let plan = pps_core::fault::load(&path).map_err(|e| ChaosError::BadPlan(e.to_string()))?;
        opts.plan_override = Some(plan);
    }
    if opts.truncate_at.is_some() && opts.only_case.is_none() {
        return Err(ChaosError::InvalidFlag(
            "--truncate-at replays one case and requires --case <index>".into(),
        ));
    }
    if opts.cases == 0 {
        return Err(ChaosError::InvalidFlag("--cases must be at least 1".into()));
    }
    Ok(opts)
}

/// A finished chaos run: the rendered report and the failure count.
#[derive(Debug)]
pub struct ChaosReport {
    /// The full deterministic report (byte-identical at any job count).
    pub text: String,
    /// Number of failing cases (0 means the run is green).
    pub failed: usize,
}

/// Run a chaos campaign. The report bytes depend only on the options —
/// cases fan out over the worker budget via the deterministic sweep
/// executor, results merge in case order, and repros are written from
/// this thread in that same order.
pub fn run(opts: &ChaosOptions) -> Result<ChaosReport, ChaosError> {
    if let Some(jobs) = opts.jobs {
        workers::set_jobs(jobs);
    }
    // The stream oracles fold over the telemetry event log: recording must
    // be on for the duration of the campaign.
    let prev_level = telemetry::level();
    telemetry::set_level(Level::Full);

    let indices: Vec<usize> = match opts.only_case {
        Some(i) => vec![i],
        None => (0..opts.cases).collect(),
    };
    let run_opts = RunOpts {
        keep_events: false,
        inject_leak: opts.inject_leak,
        force_stepping: opts.force_stepping,
        force_intra_jobs: opts.force_intra_jobs,
        force_cioq_speedup: None,
    };
    let seed = opts.seed;
    let budget = opts.budget_slots;
    let plan_override = opts.plan_override.clone();
    let truncate_at = opts.truncate_at;

    let results: Vec<(ChaosCase, CaseOutcome, Option<ShrinkResult>)> =
        SweepPlan::new("chaos", indices).run(|pt| {
            let mut case = ChaosCase::generate(seed, *pt.params, budget);
            if let Some(p) = &plan_override {
                case.plan = p.clone();
            }
            if let Some(t) = truncate_at {
                case.truncate_at = Some(t);
            }
            let out = run_case(&case, run_opts);
            let shrunk = out.failed().then(|| shrink(&case, &out, run_opts));
            (case, out, shrunk)
        });

    telemetry::set_level(prev_level);

    let mut lines = Vec::with_capacity(results.len());
    let mut failed = 0usize;
    let mut cells = 0u64;
    let mut fault_events = 0usize;
    for (case, out, shrunk) in &results {
        cells += out.cells as u64;
        fault_events += case.plan.len();
        let mut line = case_line(case, out);
        if out.failed() {
            failed += 1;
            let repro_dir = match shrunk {
                Some(sh) => {
                    let dir =
                        write_repro(&opts.repro_out, seed, budget, case, sh, opts.inject_leak)
                            .map_err(|source| ChaosError::Io {
                                path: opts.repro_out.clone(),
                                source,
                            })?;
                    Some(dir)
                }
                None => None,
            };
            line.push('\n');
            line.push_str(&failure_block(out, shrunk.as_ref(), repro_dir.as_deref()));
            // failure_block ends with a newline; render() adds none then.
            while line.ends_with('\n') {
                line.pop();
            }
        }
        lines.push(line);
    }

    Ok(ChaosReport {
        text: render(seed, budget, &lines, failed, cells, fault_events),
        failed,
    })
}

/// Parse-and-run convenience used by the `ppslab chaos` subcommand.
pub fn run_chaos(args: &[String]) -> Result<ChaosReport, ChaosError> {
    run(&parse(args)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_happy_path() {
        let opts = parse(&s(&[
            "--seed",
            "7",
            "--cases",
            "12",
            "--budget-slots",
            "99",
        ]))
        .unwrap();
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.cases, 12);
        assert_eq!(opts.budget_slots, 99);
    }

    #[test]
    fn unknown_flag_is_typed() {
        let err = parse(&s(&["--bogus"])).unwrap_err();
        assert!(matches!(err, ChaosError::InvalidFlag(_)));
    }

    #[test]
    fn plan_requires_case() {
        let err = parse(&s(&["--plan", "x.csv"])).unwrap_err();
        assert!(matches!(err, ChaosError::InvalidFlag(_)));
    }

    #[test]
    fn missing_plan_file_is_typed() {
        let err = parse(&s(&["--case", "0", "--plan", "/nonexistent/plan.csv"])).unwrap_err();
        assert!(matches!(err, ChaosError::BadPlan(_)));
    }

    #[test]
    fn malformed_value_is_typed() {
        let err = parse(&s(&["--cases", "many"])).unwrap_err();
        assert!(matches!(err, ChaosError::InvalidFlag(_)));
    }
}
