//! # pps-chaos — randomized fault/traffic fuzzing with invariant oracles
//!
//! The experiment suite checks that each engine reproduces the paper's
//! bounds on *chosen* workloads; this crate checks that the engines stay
//! *internally coherent* on workloads nobody chose. A seed-driven fuzzer
//! composes random admissible traffic (Bernoulli or bursty on/off under a
//! leaky-bucket cap, uniform/hotspot/permutation/diagonal destinations)
//! with random fault schedules (plane failures and recoveries, link
//! degradation windows) and random switch geometry, then drives the PPS
//! under test alongside the shadow OQ, the VOQ crossbar (scheduler drawn
//! per case from the zoo — iSLIP, QPS-r or SW-QPS) and the CIOQ switch
//! (policy and speedup likewise drawn) in lockstep, with every runtime
//! invariant oracle armed:
//!
//! * **cell conservation** — arrivals = departures + backlog + drops,
//!   reconciled every slot against the cell pool ([`pps_core::oracle`]);
//! * **per-flow FIFO** and **causality** on every engine's run log;
//! * **no phantom / double / pre-arrival departures**, **output-line
//!   constraint**, **no dispatch to a visibly-down plane**, and
//!   **watchdog counter consistency** — folded over the telemetry event
//!   stream ([`pps_telemetry::oracle`]);
//! * the paper's **relative-delay envelope** vs the shadow OQ, on the
//!   cases where it is a theorem (fault-free, bufferless, deterministic
//!   spreading).
//!
//! On a violation the harness shrinks: ddmin over the fault events, then
//! horizon truncation, preserving the failure kind — and emits a
//! minimized repro (reduced plan CSV, replay command, trace tail of the
//! failing slots). `ppslab chaos --seed <s> --cases <n>` is the driver
//! face; reports are byte-identical at any `--jobs` because cases fan out
//! over [`pps_core::sweep::SweepPlan`] and merge in declared order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod cli;
pub mod fuzz_demux;
pub mod report;
pub mod runner;
pub mod shrink;

pub use case::{case_seed, ChaosCase, DemuxChoice, TrafficChoice};
pub use cli::{run_chaos, ChaosError, ChaosOptions, ChaosReport};
pub use runner::{run_case, CaseOutcome, FailureKind, RunOpts};
pub use shrink::{shrink, ShrinkResult};
