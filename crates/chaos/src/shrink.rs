//! Failure shrinking: minimize the fault schedule and the horizon.
//!
//! When a case trips an oracle, the raw trigger is rarely the smallest
//! one: ten scheduled faults may contain a single `PlaneDown` that does
//! all the damage. The shrinker runs classic delta debugging (ddmin) over
//! the fault-event list — try dropping chunks at progressively finer
//! granularity, keep any subset that still reproduces the *same* failure
//! kind — then truncates the arrival horizon to just past the violation
//! slot. Truncation is sound because [`ChaosCase::trace`] regenerates the
//! full trace and cuts it, so a shorter case sees an exact prefix of the
//! original arrivals.
//!
//! Everything here re-runs [`run_case`] on candidate cases, so shrinking
//! is deterministic: same case, same failure, same minimized repro.

use crate::case::ChaosCase;
use crate::runner::{run_case, CaseOutcome, FailureKind, RunOpts};
use pps_core::fault::{FaultEvent, FaultPlan};

/// A minimized failing case plus the bookkeeping the report shows.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The minimized case (reduced plan, possibly truncated horizon).
    pub case: ChaosCase,
    /// Outcome of the minimized case (still failing, same kind).
    pub outcome: CaseOutcome,
    /// Fault events before shrinking.
    pub original_events: usize,
    /// Fault events after shrinking.
    pub kept_events: usize,
    /// Candidate runs spent shrinking.
    pub attempts: usize,
}

/// Rebuild a plan from a subset of events (order is preserved; the
/// builders re-sort stably by activation slot, which is a no-op for a
/// subsequence of an already-sorted list).
fn plan_from(events: &[FaultEvent]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for ev in events {
        plan = match *ev {
            FaultEvent::PlaneDown { plane, at } => plan.plane_down(plane.0, at),
            FaultEvent::PlaneUp { plane, at } => plan.plane_up(plane.0, at),
            FaultEvent::LinkDegraded {
                input,
                plane,
                from,
                until,
            } => plan.link_degraded(input.0, plane.0, from, until),
        };
    }
    plan
}

/// Does `case` still fail the same way? Returns the outcome if so.
fn reproduces(case: &ChaosCase, kind: FailureKind, opts: RunOpts) -> Option<CaseOutcome> {
    let out = run_case(case, opts);
    (out.failure_kind() == Some(kind)).then_some(out)
}

/// Shrink a failing case. `failed` is the outcome that made it a
/// candidate (used for the failure signature and the first truncation
/// guess); `opts` must match the options of the original run, minus
/// event retention (the shrinker re-runs without keeping streams).
pub fn shrink(case: &ChaosCase, failed: &CaseOutcome, opts: RunOpts) -> ShrinkResult {
    let kind = failed
        .failure_kind()
        .expect("shrink called on a passing case");
    let run_opts = RunOpts {
        keep_events: false,
        ..opts
    };
    let mut attempts = 0usize;
    let original_events = case.plan.len();

    let mut best = case.clone();
    let mut best_out = None;

    // Phase 1: truncate the horizon to just past the first failure slot.
    // Most violations only need the arrivals that precede them.
    if let Some(at) = failed.failure_slot() {
        if at + 1 < best.horizon {
            let mut candidate = best.clone();
            candidate.truncate_at = Some(at + 1);
            attempts += 1;
            if let Some(out) = reproduces(&candidate, kind, run_opts) {
                best = candidate;
                best_out = Some(out);
            }
        }
    }

    // Phase 2: ddmin over the fault events.
    let mut events: Vec<FaultEvent> = best.plan.events().to_vec();
    let mut granularity = 2usize;
    while events.len() >= 2 {
        let chunk = events.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < events.len() {
            let end = (start + chunk).min(events.len());
            // Complement: everything except events[start..end].
            let candidate_events: Vec<FaultEvent> = events[..start]
                .iter()
                .chain(&events[end..])
                .copied()
                .collect();
            let mut candidate = best.clone();
            candidate.plan = plan_from(&candidate_events);
            attempts += 1;
            if let Some(out) = reproduces(&candidate, kind, run_opts) {
                events = candidate_events;
                best = candidate;
                best_out = Some(out);
                reduced = true;
                // Restart this granularity on the reduced list.
                start = 0;
                continue;
            }
            start = end;
        }
        if !reduced {
            if granularity >= events.len() {
                break;
            }
            granularity = (granularity * 2).min(events.len());
        } else {
            granularity = 2.max(granularity / 2);
        }
    }

    // Phase 3: re-truncate — dropping events can move the violation
    // earlier, making a tighter horizon reproduce.
    let current = best_out
        .take()
        .map(|o| (o.failure_slot(), o))
        .unwrap_or_else(|| {
            attempts += 1;
            let o = run_case(&best, run_opts);
            (o.failure_slot(), o)
        });
    let (slot, mut out) = current;
    if let Some(at) = slot {
        let tighter = at + 1;
        if best
            .truncate_at
            .map_or(best.horizon > tighter, |t| t > tighter)
        {
            let mut candidate = best.clone();
            candidate.truncate_at = Some(tighter);
            attempts += 1;
            if let Some(o) = reproduces(&candidate, kind, run_opts) {
                best = candidate;
                out = o;
            }
        }
    }

    let kept_events = best.plan.len();
    ShrinkResult {
        case: best,
        outcome: out,
        original_events,
        kept_events,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::ChaosCase;
    use crate::runner::RunOpts;
    use pps_core::OracleKind;

    /// An injected leak needs exactly one PlaneDown with cells behind it;
    /// ddmin should strip a padded plan down to (almost) nothing else.
    #[test]
    fn shrinks_injected_leak_to_a_few_events() {
        let opts = RunOpts {
            inject_leak: 1,
            ..RunOpts::default()
        };
        let found = (0..512)
            .map(|i| ChaosCase::generate(2024, i, 96))
            .filter(|c| c.buffer == 0 && c.plan.len() >= 4)
            .take(24)
            .find_map(|case| {
                let out = run_case(&case, opts);
                (out.failure_kind()
                    == Some(crate::runner::FailureKind::Oracle(OracleKind::Conservation)))
                .then_some((case, out))
            });
        let (case, out) = found.expect("no scanned case tripped the injected leak");
        let shrunk = shrink(&case, &out, opts);
        assert!(shrunk.outcome.failed());
        assert!(
            shrunk.kept_events <= 8,
            "kept {} of {} events",
            shrunk.kept_events,
            shrunk.original_events
        );
        assert!(shrunk.kept_events <= shrunk.original_events);
    }
}
