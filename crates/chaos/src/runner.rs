//! Lockstep four-engine execution of one chaos case.
//!
//! Every case drives the PPS under test, the shadow output-queued switch,
//! the crossbar (scheduler drawn per case from the zoo — iSLIP, QPS-r or
//! SW-QPS) and the CIOQ switch (policy drawn per case) through the *same*
//! arrival stream slot by slot. The PPS-side conservation ledger and the cell-pool
//! reconciliation run every slot (so a violation is caught at the slot it
//! happens, not at the end); the event-stream, flow-order, causality and
//! relative-delay oracles fold over the run once it finishes.
//!
//! Record at [`telemetry::Level::Full`] when running cases — the stream
//! oracles fold over the telemetry event log and see nothing otherwise
//! (the chaos CLI forces the level; library callers must do the same).

use crate::case::{ChaosCase, CrossbarChoice};
use crate::fuzz_demux::{FuzzBufferedDemux, FuzzDemux};
use pps_core::oracle::{self, ConservationLedger, OracleKind, OracleViolation};
use pps_core::telemetry::{self, Event};
use pps_core::{Cell, ModelError, RunLog, Slot, Stepping};
use pps_crossbar::{
    CioqSwitch, CrossbarScheduler, CrossbarSwitch, IslipArbiter, QpsRScheduler, SwQpsScheduler,
};
use pps_reference::ShadowOq;
use pps_switch::{BufferedPps, BufferlessPps, Fabric};
use pps_telemetry::{check_stream, StreamOracleConfig};
use pps_traffic::min_burstiness;
use std::sync::Arc;

/// iSLIP iteration count / CIOQ speedup for the comparison engines (the
/// scheduler and matching policy themselves are per-case draws).
const CROSSBAR_ITERATIONS: usize = 2;
const CIOQ_SPEEDUP: usize = 2;

/// Break the drain loop after this many slots without a single departure
/// or pending arrival anywhere — the signature of a watchdog-less PPS
/// stalled on a cell lost to a failed plane (a legal outcome, not a
/// violation: the backlog stays accounted for).
const STALL_WINDOW: Slot = 1024;

/// Knobs of one [`run_case`] invocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOpts {
    /// Keep the telemetry event stream in the outcome even when no oracle
    /// fires (the repro writer wants it; bulk fuzzing does not).
    pub keep_events: bool,
    /// Arm the test-only conservation-leak hook this many times before
    /// the run (each armed leak swallows one cell of a plane-failure
    /// flush without accounting for it). Used to prove the harness
    /// catches and shrinks a real conservation bug; 0 in normal runs.
    pub inject_leak: u32,
    /// Pin the lockstep loop's stepping mode instead of letting the case
    /// draw it from its seed ([`ChaosCase::stepping`]). Used by the
    /// dense/skip equivalence tests; `None` in normal campaigns.
    pub force_stepping: Option<Stepping>,
    /// Pin the engine's intra-run shard count instead of letting the case
    /// draw it from its seed ([`ChaosCase::intra_jobs`]). Used by the
    /// sharded/serial equivalence tests; `None` in normal campaigns.
    pub force_intra_jobs: Option<usize>,
    /// Pin the comparison CIOQ switch's speedup instead of the default
    /// [`CIOQ_SPEEDUP`]. Used by the speedup × fault interaction tests;
    /// `None` in normal campaigns.
    pub force_cioq_speedup: Option<usize>,
}

/// How a failed case failed — the signature the shrinker preserves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// An invariant oracle fired.
    Oracle(OracleKind),
    /// The engine itself rejected the run (constraint violation, overflow).
    EngineError,
}

/// Everything one case run produces.
#[derive(Debug)]
pub struct CaseOutcome {
    /// Cells offered by the trace.
    pub cells: usize,
    /// Cells the PPS delivered.
    pub delivered: u64,
    /// Cells dropped at dispatch or flushed by plane failures.
    pub dropped: u64,
    /// Cells the resequencer watchdog skipped past.
    pub skipped: u64,
    /// Cells arriving after the watchdog gave up on them.
    pub late_dropped: u64,
    /// Last executed slot.
    pub end_slot: Slot,
    /// All oracle violations, sorted by (slot, kind, detail).
    pub violations: Vec<OracleViolation>,
    /// Fatal engine error, if the PPS rejected the run mid-flight.
    pub engine_error: Option<(Slot, String)>,
    /// The recorded event stream (kept on failure or on request).
    pub events: Option<Vec<Event>>,
}

impl CaseOutcome {
    /// Did any oracle or the engine itself object?
    pub fn failed(&self) -> bool {
        self.engine_error.is_some() || !self.violations.is_empty()
    }

    /// The failure signature: the earliest violation's kind, or
    /// [`FailureKind::EngineError`] if the engine died first.
    pub fn failure_kind(&self) -> Option<FailureKind> {
        match (&self.engine_error, self.violations.first()) {
            (Some((err_slot, _)), Some(v)) if v.slot <= *err_slot => {
                Some(FailureKind::Oracle(v.kind))
            }
            (Some(_), _) => Some(FailureKind::EngineError),
            (None, Some(v)) => Some(FailureKind::Oracle(v.kind)),
            (None, None) => None,
        }
    }

    /// Slot of the first failure (violation or engine error).
    pub fn failure_slot(&self) -> Option<Slot> {
        let v = self.violations.first().map(|v| v.slot);
        let e = self.engine_error.as_ref().map(|(s, _)| *s);
        match (v, e) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// The comparison crossbar's scheduler, drawn per case from its seed
/// ([`ChaosCase::crossbar_sched`]) so the campaign exercises the whole
/// scheduler zoo in lockstep, not just iSLIP.
fn comparison_scheduler(case: &ChaosCase) -> Box<dyn CrossbarScheduler> {
    match case.crossbar_sched() {
        CrossbarChoice::Islip => Box::new(IslipArbiter::new(case.n, CROSSBAR_ITERATIONS)),
        CrossbarChoice::QpsR(r) => Box::new(QpsRScheduler::new(case.n, r, case.seed ^ 0x9B5)),
        CrossbarChoice::SwQps(w) => Box::new(SwQpsScheduler::new(case.n, w, case.seed ^ 0x5109)),
    }
}

/// The two engine shapes a case can materialize.
enum EngineUnderTest {
    Bufferless(BufferlessPps<FuzzDemux>),
    Buffered(BufferedPps<FuzzBufferedDemux>),
}

impl EngineUnderTest {
    fn build(case: &ChaosCase, intra_jobs: usize) -> Result<Self, ModelError> {
        let cfg = case.config();
        let plan = Arc::new(case.plan.clone());
        if case.buffer == 0 {
            let demux = FuzzDemux::build(case.demux, case.n, case.k, case.r_prime, case.seed);
            let mut e = BufferlessPps::new(cfg, demux)?;
            e.set_fault_plan_shared(plan)?;
            e.set_intra_jobs(intra_jobs);
            Ok(EngineUnderTest::Bufferless(e))
        } else {
            let demux = FuzzBufferedDemux::build(case.demux, case.n, case.k, case.r_prime);
            let mut e = BufferedPps::new(cfg, demux)?;
            e.set_fault_plan_shared(plan)?;
            e.set_intra_jobs(intra_jobs);
            Ok(EngineUnderTest::Buffered(e))
        }
    }

    fn slot(&mut self, now: Slot, arrivals: &[Cell], log: &mut RunLog) -> Result<(), ModelError> {
        match self {
            EngineUnderTest::Bufferless(e) => e.slot(now, arrivals, log),
            EngineUnderTest::Buffered(e) => e.slot(now, arrivals, log),
        }
    }

    fn backlog(&self) -> usize {
        match self {
            EngineUnderTest::Bufferless(e) => e.backlog(),
            EngineUnderTest::Buffered(e) => e.backlog(),
        }
    }

    fn fabric(&self) -> &Fabric {
        match self {
            EngineUnderTest::Bufferless(e) => e.fabric(),
            EngineUnderTest::Buffered(e) => e.fabric(),
        }
    }

    fn inject_conservation_leak(&mut self) {
        match self {
            EngineUnderTest::Bufferless(e) => e.inject_conservation_leak(),
            EngineUnderTest::Buffered(e) => e.inject_conservation_leak(),
        }
    }

    fn next_activity(&self, now: Slot) -> Option<Slot> {
        match self {
            EngineUnderTest::Bufferless(e) => e.next_activity(now),
            EngineUnderTest::Buffered(e) => e.next_activity(now),
        }
    }

    fn skip_idle(&mut self, from: Slot, to: Slot) {
        match self {
            EngineUnderTest::Bufferless(e) => e.skip_idle(from, to),
            EngineUnderTest::Buffered(e) => e.skip_idle(from, to),
        }
    }
}

/// Run one case through all four engines and every oracle.
pub fn run_case(case: &ChaosCase, opts: RunOpts) -> CaseOutcome {
    let trace = case.trace();
    let cells = trace.cells(case.n);

    let ((mut outcome, pps_log, oq_log), log) =
        telemetry::collect(format!("chaos/{}", case.index), || {
            lockstep(case, opts, &cells)
        });

    // Fold the stream oracles over everything the run recorded. A single
    // scope was active, so flatten() yields one chronological stream.
    let events: Vec<Event> = log
        .flatten()
        .iter()
        .flat_map(|(_, es)| es.iter().copied())
        .collect();
    let cfg = StreamOracleConfig {
        n: case.n,
        k: case.k,
        r_prime: case.r_prime,
        info_delay: case.demux.info_delay(),
        plan: Some(&case.plan),
        check_down_dispatch: case.demux.info_delay().is_some() && case.buffer == 0,
        // With recording off there are no WatchdogDrop events to reconcile.
        expected_skipped: if events.is_empty() {
            None
        } else {
            Some(outcome.skipped)
        },
    };
    outcome.violations.extend(check_stream(&events, &cfg));

    // Per-flow order and causality on every engine's run log.
    for log in [&pps_log, &oq_log] {
        outcome.violations.extend(oracle::check_flow_order(log));
        outcome.violations.extend(oracle::check_causality(log));
    }

    // Paper bound: relative delay vs the shadow OQ, for cases where the
    // Section 3 envelope is actually a theorem (see the eligibility doc).
    if case.relative_delay_eligible() {
        let b = min_burstiness(&trace, case.n).overall();
        let bound = (case.r_prime as u64) * (case.n as u64 + case.k as u64 + b) + 64;
        outcome
            .violations
            .extend(oracle::check_relative_delay(&pps_log, &oq_log, bound));
    }

    outcome
        .violations
        .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    if opts.keep_events || outcome.failed() {
        outcome.events = Some(events);
    }
    outcome
}

/// The slot loop proper. Returns the outcome skeleton plus the PPS and OQ
/// run logs (the crossbar/CIOQ logs are checked inside and dropped — only
/// the PPS/OQ pair feeds the relative-delay oracle).
fn lockstep(case: &ChaosCase, opts: RunOpts, cells: &[Cell]) -> (CaseOutcome, RunLog, RunLog) {
    let mut outcome = CaseOutcome {
        cells: cells.len(),
        delivered: 0,
        dropped: 0,
        skipped: 0,
        late_dropped: 0,
        end_slot: 0,
        violations: Vec::new(),
        engine_error: None,
        events: None,
    };

    let mut pps_log = RunLog::with_cells(cells);
    let mut oq_log = RunLog::with_cells(cells);
    let mut xbar_log = RunLog::with_cells(cells);
    let mut cioq_log = RunLog::with_cells(cells);

    let intra_jobs = opts.force_intra_jobs.unwrap_or_else(|| case.intra_jobs());
    let mut engine = match EngineUnderTest::build(case, intra_jobs) {
        Ok(e) => e,
        Err(e) => {
            outcome.engine_error = Some((0, e.to_string()));
            return (outcome, pps_log, oq_log);
        }
    };
    for _ in 0..opts.inject_leak {
        engine.inject_conservation_leak();
    }
    let mut oq = ShadowOq::new(case.n);
    let mut xbar = CrossbarSwitch::with_scheduler(case.n, comparison_scheduler(case));
    let speedup = opts.force_cioq_speedup.unwrap_or(CIOQ_SPEEDUP);
    let mut cioq = CioqSwitch::with_policy(case.n, speedup, case.cioq_policy());

    // Hard ceiling on run length: arrivals plus a full serialized drain of
    // every cell would still finish well inside this.
    let cap = case.horizon
        + (cells.len() as Slot + 1) * (case.r_prime as Slot + 1)
        + case.plan.horizon()
        + 512;

    let mut now: Slot = 0;
    let mut next = 0usize; // cursor into cells (sorted by arrival slot)
    let mut arrivals_so_far = 0u64;
    let mut last_progress: Slot = 0;
    let mut last_other_backlog = 0usize;
    let stepping = opts.force_stepping.unwrap_or_else(|| case.stepping());

    loop {
        let start = next;
        while next < cells.len() && cells[next].arrival == now {
            next += 1;
        }
        let scratch = &cells[start..next];
        arrivals_so_far += scratch.len() as u64;

        if let Err(e) = engine.slot(now, scratch, &mut pps_log) {
            outcome.engine_error = Some((now, e.to_string()));
            break;
        }
        oq.slot(now, scratch, &mut oq_log);
        xbar.slot(now, scratch, &mut xbar_log);
        cioq.slot(now, scratch, &mut cioq_log);

        // Per-slot PPS-side oracles: the conservation ledger and the cell
        // pool reconciliation. Stop at the first hit — everything after a
        // broken ledger is noise, and the shrinker wants the earliest slot.
        let stats = engine.fabric().stats();
        let departed = engine.fabric().departed();
        let ledger = ConservationLedger {
            arrivals: arrivals_so_far,
            departures: departed,
            backlog: engine.backlog() as u64,
            dropped: stats.dropped,
            late_dropped: stats.late_dropped,
        };
        let pool_len = engine.fabric().pool().len() as u64;
        if let Some(v) = ledger
            .check(now)
            .or_else(|| oracle::check_pool_occupancy(pool_len, arrivals_so_far, now))
        {
            outcome.violations.push(v);
            break;
        }

        let other_backlog = oq.backlog() + xbar.backlog() + cioq.backlog();
        if !scratch.is_empty() || departed > outcome.delivered || other_backlog < last_other_backlog
        {
            last_progress = now;
        }
        last_other_backlog = other_backlog;
        outcome.delivered = departed;

        let active = next < cells.len()
            || engine.backlog() > 0
            || oq.backlog() > 0
            || xbar.backlog() > 0
            || cioq.backlog() > 0;
        if !active || now >= cap || now.saturating_sub(last_progress) > STALL_WINDOW {
            break;
        }
        now += 1;

        if stepping == Stepping::SkipAhead {
            // Jump to wherever dense would next do or decide anything: the
            // next arrival, the earliest component activity, or the first
            // slot at which a break condition above could fire (the cap or
            // the stall window). Landing exactly there keeps end_slot and
            // every per-slot check identical to the dense walk.
            let limit = cap.min(last_progress + STALL_WINDOW + 1);
            let mut target = if next < cells.len() {
                cells[next].arrival
            } else {
                Slot::MAX
            };
            for t in [
                engine.next_activity(now - 1),
                oq.next_activity(now - 1),
                xbar.next_activity(now - 1),
                cioq.next_activity(now - 1),
            ]
            .into_iter()
            .flatten()
            {
                target = target.min(t);
            }
            let stop = target.min(limit);
            if stop > now {
                engine.skip_idle(now, stop - 1);
                // The crossbar and CIOQ meter every dense slot themselves;
                // account the stretch they just elided (the engine meters
                // its own inside skip_idle, the shadow OQ meters nothing).
                pps_core::perf::record_skipped(2 * (stop - now));
                now = stop;
            }
        }
    }

    let stats = engine.fabric().stats();
    outcome.delivered = engine.fabric().departed();
    outcome.dropped = stats.dropped;
    outcome.skipped = stats.skipped;
    outcome.late_dropped = stats.late_dropped;
    outcome.end_slot = now;

    // End-of-run conservation for the fault-free comparison engines:
    // whatever the log says was never delivered must still be queued.
    // Only meaningful when the run fed every arrival and stopped on its
    // own — a per-slot violation or engine error aborts mid-stream, and
    // the leftover cells are the abort's doing, not the engines'.
    let clean_stop =
        outcome.engine_error.is_none() && outcome.violations.is_empty() && next == cells.len();
    for (name, log, backlog) in [
        ("shadow-oq", &oq_log, oq.backlog()),
        ("crossbar", &xbar_log, xbar.backlog()),
        ("cioq", &cioq_log, cioq.backlog()),
    ] {
        if !clean_stop {
            break;
        }
        if log.undelivered() != backlog {
            outcome.violations.push(OracleViolation {
                kind: OracleKind::Conservation,
                slot: now,
                detail: format!(
                    "{name}: {} cells unaccounted (log undelivered {} vs backlog {backlog})",
                    log.undelivered().abs_diff(backlog),
                    log.undelivered(),
                ),
            });
        }
    }
    outcome
        .violations
        .extend(oracle::check_flow_order(&xbar_log));
    outcome
        .violations
        .extend(oracle::check_causality(&xbar_log));
    outcome
        .violations
        .extend(oracle::check_flow_order(&cioq_log));
    outcome
        .violations
        .extend(oracle::check_causality(&cioq_log));

    (outcome, pps_log, oq_log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::ChaosCase;

    #[test]
    fn clean_case_has_no_violations() {
        let case = ChaosCase::generate(42, 0, 64);
        let out = run_case(&case, RunOpts::default());
        assert_eq!(out.engine_error, None);
        assert!(
            out.violations.is_empty(),
            "unexpected violations: {:?}",
            out.violations
        );
        assert!(out.cells > 0);
    }

    #[test]
    fn stochastic_cases_run_clean() {
        // One Zipf and one MMPP case, fault-free so every oracle that can
        // be armed is armed, each through the full four-engine lockstep.
        use crate::case::TrafficChoice;
        let mut ran = (false, false);
        for i in 0..512 {
            let case = ChaosCase::generate(1337, i, 96);
            if !case.plan.is_empty() {
                continue;
            }
            let slot = match case.traffic {
                TrafficChoice::Zipf { .. } if !ran.0 => &mut ran.0,
                TrafficChoice::Mmpp { .. } if !ran.1 => &mut ran.1,
                _ => continue,
            };
            *slot = true;
            let out = run_case(&case, RunOpts::default());
            assert_eq!(out.engine_error, None, "case {i}");
            assert!(out.violations.is_empty(), "case {i}: {:?}", out.violations);
            assert!(out.cells > 0, "case {i} generated no cells");
            if ran.0 && ran.1 {
                return;
            }
        }
        panic!("corpus lacked fault-free stochastic cases: {ran:?}");
    }

    #[test]
    fn cioq_speedup_by_fault_pulse_stays_clean() {
        // Satellite of the scheduler-zoo PR: a PlaneDown/LinkDegraded
        // pulse mid-run must keep the conservation ledger and the watchdog
        // accounting clean at CIOQ speedup 1 *and* 2, under both matching
        // policies (the policy is a seed draw, so scan for one seed per
        // policy) and both stepping modes.
        use crate::case::{DemuxChoice, TrafficChoice};
        use pps_core::fault::FaultPlan;
        use pps_core::OutputDiscipline;
        use pps_traffic::gen::TrafficPattern;

        let pulse_case = |seed: u64| ChaosCase {
            index: 0,
            seed,
            n: 8,
            k: 4,
            r_prime: 2,
            buffer: 0,
            discipline: OutputDiscipline::FlowFifo,
            watchdog: Some(10),
            demux: DemuxChoice::FaultAwareCentralized,
            traffic: TrafficChoice::Bernoulli {
                pattern: TrafficPattern::Uniform,
            },
            load_millis: 600,
            horizon: 128,
            plan: FaultPlan::new()
                .plane_down(1, 40)
                .plane_up(1, 72)
                .link_degraded(2, 0, 48, 56),
            truncate_at: None,
        };

        // One seed per CIOQ matching policy.
        let mut seeds = std::collections::HashMap::new();
        for s in 0..64u64 {
            seeds.entry(pulse_case(s).cioq_policy()).or_insert(s);
            if seeds.len() == 2 {
                break;
            }
        }
        assert_eq!(seeds.len(), 2, "no seed drew the second policy");

        for (&policy, &seed) in &seeds {
            let case = pulse_case(seed);
            for speedup in [1usize, 2] {
                let mut tallies = Vec::new();
                for stepping in [Stepping::Dense, Stepping::SkipAhead] {
                    let out = run_case(
                        &case,
                        RunOpts {
                            force_cioq_speedup: Some(speedup),
                            force_stepping: Some(stepping),
                            ..RunOpts::default()
                        },
                    );
                    assert_eq!(out.engine_error, None, "{policy:?} s={speedup}");
                    assert!(
                        out.violations.is_empty(),
                        "{policy:?} s={speedup} {stepping:?}: {:?}",
                        out.violations
                    );
                    // The pulse actually bit (the downed plane flushed
                    // cells) and every cell is accounted for at the end:
                    // delivered, dropped at the flush, or dropped late by
                    // the watchdog — nothing stranded in a backlog.
                    assert!(out.dropped > 0, "{policy:?} s={speedup}: pulse missed");
                    assert_eq!(
                        out.delivered + out.dropped + out.late_dropped,
                        out.cells as u64,
                        "{policy:?} s={speedup} {stepping:?}: watchdog accounting leaked"
                    );
                    tallies.push((
                        out.delivered,
                        out.dropped,
                        out.skipped,
                        out.late_dropped,
                        out.end_slot,
                    ));
                }
                assert_eq!(
                    tallies[0], tallies[1],
                    "{policy:?} s={speedup}: dense != skip"
                );
            }
        }
    }

    #[test]
    fn buffered_zoo_cases_run_clean() {
        // The step-8 remap introduces stale and delayed-CPA buffered
        // automata; every such case in a campaign-sized corpus must pass
        // the full four-engine lockstep.
        let mut seen = (0, 0);
        for i in 0..768 {
            let case = ChaosCase::generate(21, i, 96);
            match case.demux {
                crate::case::DemuxChoice::BufferedStale(..) => seen.0 += 1,
                crate::case::DemuxChoice::DelayedCpa(_) => seen.1 += 1,
                _ => continue,
            }
            let out = run_case(&case, RunOpts::default());
            assert_eq!(out.engine_error, None, "case {i} ({})", case.demux.name());
            assert!(
                out.violations.is_empty(),
                "case {i} ({}): {:?}",
                case.demux.name(),
                out.violations
            );
            if seen.0 >= 8 && seen.1 >= 1 {
                return;
            }
        }
        panic!("corpus lacked buffered-zoo cases: {seen:?}");
    }

    #[test]
    fn injected_leak_trips_conservation() {
        // The leak hook fires in the plane-failure flush path, so it needs
        // a case whose downed plane holds cells at the failure slot — scan
        // generated cases until one trips (the vast majority of PlaneDown
        // cases under load do).
        let tripped = (0..512)
            .map(|i| ChaosCase::generate(7, i, 96))
            .filter(|c| {
                c.buffer == 0
                    && c.plan
                        .events()
                        .iter()
                        .any(|e| matches!(e, pps_core::FaultEvent::PlaneDown { .. }))
            })
            .take(16)
            .any(|case| {
                let out = run_case(
                    &case,
                    RunOpts {
                        inject_leak: 1,
                        ..RunOpts::default()
                    },
                );
                out.failure_kind() == Some(FailureKind::Oracle(OracleKind::Conservation))
            });
        assert!(tripped, "no scanned case tripped the injected leak");
    }
}
