//! Randomized case generation.
//!
//! A [`ChaosCase`] is the complete, self-describing recipe for one fuzzing
//! run: switch geometry, first-stage buffering, output discipline,
//! demultiplexor choice, traffic generator, and fault schedule. Everything
//! is derived from `(master_seed, index)` through a fixed draw order, so a
//! case can always be regenerated from the two numbers printed in the
//! report — the repro story depends on it.

use pps_core::fault::FaultPlan;
use pps_core::time::Slot;
use pps_core::{BufferSpec, OutputDiscipline, PpsConfig, Trace};
use pps_traffic::gen::{BernoulliGen, OnOffGen, TrafficPattern};
use pps_workload::{materialize, MmppGen, Phase, ZipfGen};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// MMPP modulator dwell parameters: mean calm stretch of 50 slots, mean
/// burst of 12.5 — several regime flips inside even a short chaos horizon.
const MMPP_CALM_EXIT: f64 = 0.02;
const MMPP_BURST_EXIT: f64 = 0.08;

/// Which demultiplexor the case drives the PPS with.
///
/// The chaos runner needs a concrete engine type, so the zoo is captured
/// as an enum (the engine's demux parameter is a generic, not a trait
/// object) and materialized by [`crate::fuzz_demux::FuzzDemux::build`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemuxChoice {
    /// Plain per-input round-robin (fully distributed).
    RoundRobin,
    /// Per-flow round-robin (fully distributed).
    PerFlowRoundRobin,
    /// Uniform random over free planes, seeded per case.
    Random,
    /// Least-loaded according to the input's local estimate.
    LeastLoadedLocal,
    /// Flow-hash static assignment with overflow to next free.
    HashFlow,
    /// Fault-aware round-robin on the centralized information class.
    FaultAwareCentralized,
    /// Fault-aware round-robin on `u`-RT information (the `u` field).
    FaultAwareUrt(Slot),
    /// Chang–Lee two-stage load-balanced rotation (fully distributed,
    /// stateless).
    TwoStageLb,
    /// Power-of-`d` sampled least-loaded dispatch (the `d` field).
    LeastLoadedOfD(usize),
    /// Buffered round-robin — the default for buffered cases.
    BufferedRoundRobin,
    /// Buffered stale least-loaded on `u`-old information holding each
    /// cell `hold ≤ u` slots (fields `(u, hold)`).
    BufferedStale(Slot, Slot),
    /// Delayed CPA: hold `u` slots, then assign by FCFS-OQ deadlines
    /// (the `u` field). Drawn only in its Theorem 12 regime (global-FCFS
    /// output stage, speedup `K/r' ≥ 2`).
    DelayedCpa(Slot),
}

impl DemuxChoice {
    /// Short name used in report lines.
    pub fn name(self) -> &'static str {
        match self {
            DemuxChoice::RoundRobin => "rr",
            DemuxChoice::PerFlowRoundRobin => "pf-rr",
            DemuxChoice::Random => "random",
            DemuxChoice::LeastLoadedLocal => "ll-local",
            DemuxChoice::HashFlow => "hash",
            DemuxChoice::FaultAwareCentralized => "fa-rr-c",
            DemuxChoice::FaultAwareUrt(_) => "fa-rr-u",
            DemuxChoice::TwoStageLb => "2s-lb",
            DemuxChoice::LeastLoadedOfD(_) => "ll-of-d",
            DemuxChoice::BufferedRoundRobin => "buf-rr",
            DemuxChoice::BufferedStale(..) => "buf-stale",
            DemuxChoice::DelayedCpa(_) => "dcpa",
        }
    }

    /// The information delay the down-plane-dispatch oracle should assume,
    /// or `None` when the demux is fault-blind and the check must stay off.
    /// The buffered `u`-RT automata report their honest delay, but the
    /// runner additionally gates the check on bufferless cases, so for
    /// them the value is descriptive only.
    pub fn info_delay(self) -> Option<Slot> {
        match self {
            DemuxChoice::FaultAwareCentralized => Some(0),
            DemuxChoice::FaultAwareUrt(u) => Some(u),
            DemuxChoice::BufferedStale(u, _) => Some(u),
            DemuxChoice::DelayedCpa(u) => Some(u),
            _ => None,
        }
    }
}

/// Which scheduler the comparison crossbar runs alongside the PPS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrossbarChoice {
    /// iSLIP at the runner's fixed iteration count.
    Islip,
    /// QPS-r with `r` accept rounds.
    QpsR(usize),
    /// SW-QPS with the given window size.
    SwQps(usize),
}

impl CrossbarChoice {
    /// Short name used in report lines and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            CrossbarChoice::Islip => "islip",
            CrossbarChoice::QpsR(_) => "qps-r",
            CrossbarChoice::SwQps(_) => "sw-qps",
        }
    }
}

/// Which traffic generator feeds the case.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficChoice {
    /// i.i.d. Bernoulli arrivals.
    Bernoulli {
        /// Destination pattern.
        pattern: TrafficPattern,
    },
    /// Bursty on/off arrivals (destination re-drawn per burst).
    OnOff {
        /// Mean ON-burst length, in tenths of a cell (fixed-point so the
        /// case stays `Eq`-comparable and reproducible).
        mean_burst_tenths: u32,
        /// Destination pattern.
        pattern: TrafficPattern,
    },
    /// Zipf-skewed flow population (`pps-workload`): destinations are a
    /// hash of the flow id, so elephant flows become hot outputs.
    Zipf {
        /// Zipf exponent `s`, in hundredths (fixed-point for `Eq`).
        s_hundredths: u32,
        /// Flow population size.
        flows: u64,
        /// Flow→output hash salt. Derived from the *master* seed, not the
        /// case seed, so every Zipf case of a campaign shares one flow
        /// universe: the same flow ids recur case after case and land on
        /// the same outputs, stressing `SeqRing` recycling with histories
        /// no single case produces.
        salt: u64,
    },
    /// Markov-modulated Bernoulli arrivals with a shared two-state burst
    /// modulator (`pps-workload`): bursts correlated across all inputs.
    Mmpp {
        /// Calm-phase per-slot arrival probability, in thousandths.
        calm_millis: u32,
        /// Burst-phase per-slot arrival probability, in thousandths.
        burst_millis: u32,
    },
}

impl TrafficChoice {
    /// Short name used in report lines.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficChoice::Bernoulli { .. } => "bern",
            TrafficChoice::OnOff { .. } => "onoff",
            TrafficChoice::Zipf { .. } => "zipf",
            TrafficChoice::Mmpp { .. } => "mmpp",
        }
    }

    fn pattern(&self) -> Option<&TrafficPattern> {
        match self {
            TrafficChoice::Bernoulli { pattern } => Some(pattern),
            TrafficChoice::OnOff { pattern, .. } => Some(pattern),
            TrafficChoice::Zipf { .. } | TrafficChoice::Mmpp { .. } => None,
        }
    }

    /// Pattern name for report lines.
    pub fn pattern_name(&self) -> &'static str {
        match self.pattern() {
            Some(TrafficPattern::Uniform) => "uniform",
            Some(TrafficPattern::Hotspot { .. }) => "hotspot",
            Some(TrafficPattern::Permutation(_)) => "rotation",
            Some(TrafficPattern::Diagonal) => "diagonal",
            // Stochastic generators pick destinations themselves.
            None => match self {
                TrafficChoice::Zipf { .. } => "flow-hash",
                _ => "modulated",
            },
        }
    }
}

/// One fully specified fuzzing case.
#[derive(Clone, Debug)]
pub struct ChaosCase {
    /// Case index within the run (also the report ordering key).
    pub index: usize,
    /// Per-case RNG seed, derived from the master seed and the index.
    pub seed: u64,
    /// Ports (`N`).
    pub n: usize,
    /// Planes (`K`).
    pub k: usize,
    /// Internal slowdown (`r'`).
    pub r_prime: usize,
    /// Per-input buffer capacity; 0 means bufferless.
    pub buffer: usize,
    /// Output-stage discipline.
    pub discipline: OutputDiscipline,
    /// Resequencer watchdog timeout, if armed.
    pub watchdog: Option<Slot>,
    /// Demultiplexor under test.
    pub demux: DemuxChoice,
    /// Traffic generator.
    pub traffic: TrafficChoice,
    /// Offered load per input, in thousandths (fixed-point).
    pub load_millis: u32,
    /// Arrival horizon in slots (the `--budget-slots` knob).
    pub horizon: Slot,
    /// Fault schedule applied to the PPS engine.
    pub plan: FaultPlan,
    /// When set by the shrinker, arrivals after this slot are removed
    /// from the (otherwise identical) generated trace.
    pub truncate_at: Option<Slot>,
}

/// Derive the RNG seed of case `index` under `master` — a SplitMix64-style
/// mix so neighbouring indices land far apart in seed space.
pub fn case_seed(master: u64, index: usize) -> u64 {
    let mut z = master ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaosCase {
    /// Generate case `index` of a run with `master` seed and the given
    /// arrival horizon. The draw order below is part of the repro format:
    /// changing it invalidates every recorded `(seed, index)` pair.
    pub fn generate(master: u64, index: usize, horizon: Slot) -> ChaosCase {
        let seed = case_seed(master, index);
        let mut rng = StdRng::seed_from_u64(seed);

        // 1. Geometry. K >= r' keeps the bufferless engine's "some line is
        //    free" guarantee in the fault-free case.
        let n = *pick(&mut rng, &[4usize, 8, 16]);
        let r_prime = *pick(&mut rng, &[2usize, 3]);
        let k = r_prime * rng.random_range(1..=3usize);

        // 2. First stage: mostly bufferless (the paper's base model); a
        //    quarter of cases exercise the buffered engine with a capacity
        //    generous enough that admissible traffic cannot overflow it.
        let buffered = rng.random_range(0..4u32) == 0;
        let buffer = if buffered { horizon as usize + 8 } else { 0 };

        // 3. Output discipline + watchdog.
        let discipline = if rng.random_range(0..10u32) < 7 {
            OutputDiscipline::FlowFifo
        } else {
            OutputDiscipline::GlobalFcfs
        };

        // 4. Fault schedule: two thirds of cases inject faults.
        let fault_count = if rng.random_range(0..3u32) < 2 {
            rng.random_range(1..=10usize)
        } else {
            0
        };
        let plan = random_plan(&mut rng, fault_count, k, n, r_prime, horizon);

        // A lost cell head-of-line-blocks FlowFifo/GlobalFcfs forever, so
        // faulted cases almost always arm the watchdog; a sliver keeps it
        // off to fuzz the stall path too.
        let watchdog = if !plan.is_empty() && rng.random_range(0..10u32) < 9 {
            Some(rng.random_range((2 * r_prime as Slot)..=(4 * r_prime as Slot + 8)))
        } else {
            None
        };

        // 5. Demultiplexor. Buffered cases use the buffered round-robin;
        //    faulted bufferless cases prefer (but are not limited to) the
        //    fault-aware algorithms.
        let demux = if buffered {
            DemuxChoice::BufferedRoundRobin
        } else if !plan.is_empty() && rng.random_range(0..10u32) < 7 {
            if rng.random_bool(0.5) {
                DemuxChoice::FaultAwareCentralized
            } else {
                DemuxChoice::FaultAwareUrt(rng.random_range(1..=8u64))
            }
        } else {
            match rng.random_range(0..5u32) {
                0 => DemuxChoice::RoundRobin,
                1 => DemuxChoice::PerFlowRoundRobin,
                2 => DemuxChoice::Random,
                3 => DemuxChoice::LeastLoadedLocal,
                _ => DemuxChoice::HashFlow,
            }
        };

        // 6. Traffic: load in [0.30, 0.95], bursty 40% of the time.
        let load_millis = rng.random_range(300..=950u32);
        let pattern = match rng.random_range(0..100u32) {
            0..=39 => TrafficPattern::Uniform,
            40..=64 => {
                // The hot output's aggregate load is n·ρ·hot + ρ·(1−hot);
                // keeping it ≤ 0.95 (admissibility) caps hot at
                // (0.95 − ρ) / (ρ·(n−1)). When the cap leaves no room,
                // fall back to uniform destinations.
                let cap = (1000u64 * u64::from(950u32.saturating_sub(load_millis))
                    / (u64::from(load_millis) * (n as u64 - 1))) as u32;
                if cap >= 100 {
                    TrafficPattern::Hotspot {
                        target: rng.random_range(0..n as u32),
                        hot: f64::from(rng.random_range(100..=cap.min(900))) / 1000.0,
                    }
                } else {
                    TrafficPattern::Uniform
                }
            }
            65..=84 => TrafficPattern::rotation(n, rng.random_range(1..n)),
            _ => TrafficPattern::Diagonal,
        };
        let traffic = if rng.random_range(0..10u32) < 4 {
            TrafficChoice::OnOff {
                mean_burst_tenths: rng.random_range(15..=80u32),
                pattern,
            }
        } else {
            TrafficChoice::Bernoulli { pattern }
        };

        // 7. Stochastic upgrade. A seed-derived hash — the same idiom as
        //    [`stepping`](Self::stepping)/[`intra_jobs`](Self::intra_jobs),
        //    *not* a fresh RNG draw, so the draw order above is untouched —
        //    swaps the classic generator for a pps-workload stochastic one
        //    in a quarter of cases: an eighth Zipf flow populations, an
        //    eighth correlated MMPP bursts. Parameters are further pure
        //    hashes of the case seed; the Zipf flow→output salt hashes the
        //    *master* seed, so every Zipf case of a campaign replays the
        //    same flow universe (cross-case flow-id reuse — consecutive
        //    cases keep returning to the same hot resequencer rings).
        let h = case_seed(seed, 0x570C_4A57);
        let traffic = match h >> 61 {
            0 => TrafficChoice::Zipf {
                s_hundredths: 80 + ((h >> 8) % 51) as u32,
                flows: if (h >> 16) & 1 == 0 { 1 << 16 } else { 1 << 20 },
                salt: case_seed(master ^ 0xF10E_5A17_C0DE_0B0E, 0),
            },
            1 => TrafficChoice::Mmpp {
                calm_millis: 50 + ((h >> 8) % 200) as u32,
                burst_millis: 800 + ((h >> 24) % 151) as u32,
            },
            _ => traffic,
        };

        // 8. Demux-zoo upgrade. Same seed-hash idiom as step 7 — pure
        //    hashes of the already-drawn case seed, never fresh RNG
        //    draws, so the draw order above and every recorded
        //    `(seed, index)` repro pair stay valid. A quarter of the
        //    buffered cases swap round-robin for one of the Section 4
        //    buffered automata, and a quarter of the plain bufferless
        //    bucket for a load-balancing transplant; the fault-aware
        //    bucket keeps its deliberate prevalence under faults.
        let h = case_seed(seed, 0x00DE_5A00);
        let demux = match demux {
            DemuxChoice::BufferedRoundRobin => {
                let u = 1 + ((h >> 8) % 8);
                match h >> 61 {
                    // Delayed CPA only in its Theorem 12 regime; outside
                    // it, fall back to the stale automaton at full hold.
                    0 if discipline == OutputDiscipline::GlobalFcfs && k >= 2 * r_prime => {
                        DemuxChoice::DelayedCpa(u)
                    }
                    0 => DemuxChoice::BufferedStale(u, u),
                    1 => DemuxChoice::BufferedStale(u, (h >> 16) % (u + 1)),
                    _ => demux,
                }
            }
            DemuxChoice::RoundRobin
            | DemuxChoice::PerFlowRoundRobin
            | DemuxChoice::Random
            | DemuxChoice::LeastLoadedLocal
            | DemuxChoice::HashFlow => match h >> 61 {
                0 => DemuxChoice::TwoStageLb,
                1 => DemuxChoice::LeastLoadedOfD(2 + ((h >> 8) & 1) as usize),
                _ => demux,
            },
            other => other,
        };

        ChaosCase {
            index,
            seed,
            n,
            k,
            r_prime,
            buffer,
            discipline,
            watchdog,
            demux,
            traffic,
            load_millis,
            horizon,
            plan,
            truncate_at: None,
        }
    }

    /// The engine configuration this case describes.
    pub fn config(&self) -> PpsConfig {
        PpsConfig {
            n: self.n,
            k: self.k,
            r_prime: self.r_prime,
            buffer: if self.buffer == 0 {
                BufferSpec::Bufferless
            } else {
                BufferSpec::Buffered { size: self.buffer }
            },
            discipline: self.discipline,
            watchdog: self.watchdog,
        }
    }

    /// Generate the case's arrival trace. The trace is always generated at
    /// the full horizon and then cut at [`ChaosCase::truncate_at`], so a
    /// truncated case sees an exact prefix of the original arrivals — the
    /// property the shrinker relies on.
    pub fn trace(&self) -> Trace {
        let load = f64::from(self.load_millis) / 1000.0;
        let full = match &self.traffic {
            TrafficChoice::Bernoulli { pattern } => BernoulliGen {
                load,
                pattern: pattern.clone(),
                seed: self.seed ^ 0xA5A5_5A5A_0F0F_F0F0,
            }
            .trace(self.n, self.horizon),
            TrafficChoice::OnOff {
                mean_burst_tenths,
                pattern,
            } => OnOffGen {
                mean_burst: f64::from(*mean_burst_tenths) / 10.0,
                load,
                pattern: pattern.clone(),
                seed: self.seed ^ 0xA5A5_5A5A_0F0F_F0F0,
            }
            .trace(self.n, self.horizon),
            TrafficChoice::Zipf {
                s_hundredths,
                flows,
                salt,
            } => {
                let mut g = ZipfGen::new(
                    self.seed ^ 0xA5A5_5A5A_0F0F_F0F0,
                    self.n,
                    load,
                    f64::from(*s_hundredths) / 100.0,
                    *flows,
                )
                .with_flow_salt(*salt);
                materialize(&mut g, self.horizon)
            }
            TrafficChoice::Mmpp {
                calm_millis,
                burst_millis,
            } => {
                let mut g = MmppGen::new(
                    self.seed ^ 0xA5A5_5A5A_0F0F_F0F0,
                    self.n,
                    Phase {
                        arrival_p: f64::from(*calm_millis) / 1000.0,
                        exit_p: MMPP_CALM_EXIT,
                    },
                    Phase {
                        arrival_p: f64::from(*burst_millis) / 1000.0,
                        exit_p: MMPP_BURST_EXIT,
                    },
                );
                materialize(&mut g, self.horizon)
            }
        };
        match self.truncate_at {
            None => full,
            Some(t) => {
                let kept: Vec<_> = full
                    .arrivals()
                    .iter()
                    .copied()
                    .filter(|a| a.slot <= t)
                    .collect();
                Trace::build(kept, self.n).expect("prefix of a valid trace is valid")
            }
        }
    }

    /// The slot-stepping mode this case runs its engines with. Derived
    /// from the already-drawn `seed` (a multiply-and-shift hash, *not* a
    /// fresh RNG draw), so adding it did not change the generation draw
    /// order and every recorded `(seed, index)` repro pair stays valid.
    /// Roughly half the cases fuzz each mode.
    pub fn stepping(&self) -> pps_core::Stepping {
        if self.seed.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63 == 0 {
            pps_core::Stepping::Dense
        } else {
            pps_core::Stepping::SkipAhead
        }
    }

    /// The intra-run shard count this case runs its engines with. Like
    /// [`stepping`](Self::stepping) it is derived from the already-drawn
    /// `seed` (a different xor-mix-and-shift hash, *not* a fresh RNG
    /// draw), so adding it changed neither the generation draw order nor
    /// the stepping split, and every recorded `(seed, index)` repro pair
    /// stays valid. Half the cases run serial, the rest shard the fabric
    /// 2 or 4 ways — sharding is specified to be byte-identical to the
    /// serial walk (DESIGN.md §16), so every oracle stays sound.
    pub fn intra_jobs(&self) -> usize {
        match (self.seed ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(0x2545_F491_4F6C_DD1D) >> 62 {
            0 | 1 => 1,
            2 => 2,
            _ => 4,
        }
    }

    /// The scheduler the comparison crossbar runs for this case. Derived
    /// from the already-drawn `seed` by the same hash idiom as
    /// [`stepping`](Self::stepping) — *not* a fresh RNG draw — so adding
    /// it changed no recorded `(seed, index)` repro pair. Half the cases
    /// keep iSLIP (the historical comparison engine); the rest split
    /// between the sampling schedulers with hash-drawn parameters.
    pub fn crossbar_sched(&self) -> CrossbarChoice {
        let h = case_seed(self.seed, 0x5CED_0CB5);
        match h >> 62 {
            0 | 1 => CrossbarChoice::Islip,
            2 => CrossbarChoice::QpsR(1 + ((h >> 8) % 3) as usize),
            _ => CrossbarChoice::SwQps(2 + ((h >> 8) % 7) as usize),
        }
    }

    /// The matching policy the comparison CIOQ switch runs for this case:
    /// half the cases keep the critical-cell-first EDF matching, the rest
    /// run the Cogill–Lall maximal round-robin matching. Same seed-hash
    /// idiom as [`crossbar_sched`](Self::crossbar_sched).
    pub fn cioq_policy(&self) -> pps_crossbar::CioqPolicy {
        if case_seed(self.seed, 0x0C10_90CA) >> 63 == 0 {
            pps_crossbar::CioqPolicy::CriticalFirst
        } else {
            pps_crossbar::CioqPolicy::MaximalRr
        }
    }

    /// Whether the paper's relative-delay envelope is a sound oracle for
    /// this case: the bound is proved for fault-free bufferless runs with
    /// an order-preserving discipline and no watchdog skips, and the chaos
    /// harness additionally restricts it to the deterministic spreading
    /// demuxes (random/hash placement can concentrate a flow arbitrarily).
    pub fn relative_delay_eligible(&self) -> bool {
        self.buffer == 0
            && self.plan.is_empty()
            && self.watchdog.is_none()
            && self.discipline == OutputDiscipline::FlowFifo
            && matches!(
                self.demux,
                DemuxChoice::RoundRobin | DemuxChoice::PerFlowRoundRobin
            )
    }
}

fn pick<'a, T>(rng: &mut StdRng, options: &'a [T]) -> &'a T {
    &options[rng.random_range(0..options.len())]
}

/// Draw `count` random fault events against a `k`-plane switch.
///
/// Downs always outnumber what recovery can mask: planes are drawn from
/// the full range, so Down/Up pairs, double-downs and ups without a prior
/// down all occur — the engine treats those as no-ops, and the oracles
/// must too. At least one plane is always left standing by construction
/// (`fail_plane` on the last live plane is the engine's problem to refuse,
/// not ours to avoid — but a plan that downs all `k` planes at once makes
/// every arrival droppable and the run degenerate, so the drawer caps
/// simultaneous downs at `k - 1`).
fn random_plan(
    rng: &mut StdRng,
    count: usize,
    k: usize,
    n: usize,
    r_prime: usize,
    horizon: Slot,
) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let mut down = vec![false; k];
    for _ in 0..count {
        let at = rng.random_range(1..horizon.max(2));
        match rng.random_range(0..100u32) {
            0..=44 => {
                let plane = rng.random_range(0..k as u32);
                if down.iter().filter(|d| **d).count() < k - 1 || down[plane as usize] {
                    down[plane as usize] = true;
                    plan = plan.plane_down(plane, at);
                }
            }
            45..=74 => {
                let plane = rng.random_range(0..k as u32);
                down[plane as usize] = false;
                plan = plan.plane_up(plane, at);
            }
            _ => {
                let input = rng.random_range(0..n as u32);
                let plane = rng.random_range(0..k as u32);
                let until = at + rng.random_range(1..=(3 * r_prime as Slot));
                plan = plan.link_degraded(input, plane, at, until);
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ChaosCase::generate(42, 7, 256);
        let b = ChaosCase::generate(42, 7, 256);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.n, b.n);
        assert_eq!(a.demux, b.demux);
        assert_eq!(a.plan.events(), b.plan.events());
        assert_eq!(a.trace().arrivals(), b.trace().arrivals());
    }

    #[test]
    fn different_indices_differ() {
        let a = ChaosCase::generate(42, 0, 256);
        let b = ChaosCase::generate(42, 1, 256);
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn truncation_is_an_exact_prefix() {
        let mut case = ChaosCase::generate(42, 3, 256);
        let full = case.trace();
        case.truncate_at = Some(100);
        let cut = case.trace();
        let expect: Vec<_> = full
            .arrivals()
            .iter()
            .copied()
            .filter(|a| a.slot <= 100)
            .collect();
        assert_eq!(cut.arrivals(), expect.as_slice());
    }

    #[test]
    fn generated_plans_validate() {
        for i in 0..64 {
            let case = ChaosCase::generate(7, i, 128);
            case.plan
                .validate(&case.config())
                .unwrap_or_else(|e| panic!("case {i}: {e}"));
        }
    }

    #[test]
    fn intra_jobs_draw_mixes_serial_and_sharded() {
        let mut seen = [0usize; 5];
        for i in 0..256 {
            let case = ChaosCase::generate(42, i, 64);
            seen[case.intra_jobs()] += 1;
        }
        assert_eq!(seen[0] + seen[3], 0, "draw outside {{1, 2, 4}}");
        assert!(seen[1] > 0 && seen[2] > 0 && seen[4] > 0, "{seen:?}");
        // Two of the four hash buckets map to serial.
        assert!(seen[1] >= 64, "serial underrepresented: {seen:?}");
    }

    #[test]
    fn hotspot_loads_stay_admissible() {
        for i in 0..256 {
            let case = ChaosCase::generate(1234, i, 128);
            if let Some(TrafficPattern::Hotspot { hot, .. }) = case.traffic.pattern() {
                let rho = f64::from(case.load_millis) / 1000.0;
                let aggregate = case.n as f64 * rho * hot + rho * (1.0 - hot);
                assert!(aggregate <= 0.96, "case {i}: hot output oversubscribed");
            }
        }
    }

    #[test]
    fn stochastic_upgrade_mixes_families() {
        // The seed-hash upgrade should leave the classic generators in the
        // majority while both stochastic families appear; expected split is
        // 6/8 classic, 1/8 each Zipf/MMPP.
        let mut seen = std::collections::HashMap::new();
        for i in 0..512 {
            let case = ChaosCase::generate(42, i, 64);
            *seen.entry(case.traffic.name()).or_insert(0usize) += 1;
        }
        assert!(seen.get("zipf").copied().unwrap_or(0) > 20, "{seen:?}");
        assert!(seen.get("mmpp").copied().unwrap_or(0) > 20, "{seen:?}");
        let classic =
            seen.get("bern").copied().unwrap_or(0) + seen.get("onoff").copied().unwrap_or(0);
        assert!(classic > 256, "classic generators crowded out: {seen:?}");
    }

    #[test]
    fn demux_zoo_upgrade_mixes_all_families() {
        // The step-8 remap must surface every new demux while leaving the
        // original families in place: buffered cases stay 3/4 round-robin,
        // the plain bufferless bucket stays 3/4 classic, and the
        // fault-aware bucket is untouched.
        let mut seen = std::collections::HashMap::new();
        for i in 0..2048 {
            let case = ChaosCase::generate(42, i, 64);
            *seen.entry(case.demux.name()).or_insert(0usize) += 1;
        }
        for name in ["2s-lb", "ll-of-d", "buf-stale", "buf-rr", "fa-rr-c"] {
            assert!(seen.get(name).copied().unwrap_or(0) > 8, "{name}: {seen:?}");
        }
        // Delayed CPA needs the (rarer) GlobalFcfs + speedup-2 regime but
        // must still appear in a campaign-sized corpus.
        assert!(seen.get("dcpa").copied().unwrap_or(0) > 0, "{seen:?}");
        assert!(
            seen.get("buf-rr").copied().unwrap_or(0) > seen.get("buf-stale").copied().unwrap_or(0),
            "{seen:?}"
        );
    }

    #[test]
    fn demux_zoo_upgrade_draws_valid_parameters() {
        for i in 0..2048 {
            let case = ChaosCase::generate(7, i, 64);
            match case.demux {
                DemuxChoice::BufferedStale(u, hold) => {
                    assert!(u >= 1 && hold <= u, "case {i}: u={u} hold={hold}");
                    assert!(case.buffer > u as usize, "case {i}: buffer too small");
                }
                DemuxChoice::DelayedCpa(u) => {
                    assert!(u >= 1, "case {i}");
                    assert!(case.buffer > u as usize, "case {i}: buffer too small");
                    assert_eq!(case.discipline, OutputDiscipline::GlobalFcfs, "case {i}");
                    assert!(case.k >= 2 * case.r_prime, "case {i}: speedup < 2");
                }
                DemuxChoice::LeastLoadedOfD(d) => {
                    assert!((2..=3).contains(&d), "case {i}: d={d}")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn comparison_engine_draws_mix_and_stay_deterministic() {
        let mut sched = std::collections::HashMap::new();
        let mut maximal = 0usize;
        for i in 0..512 {
            let case = ChaosCase::generate(42, i, 64);
            *sched.entry(case.crossbar_sched().name()).or_insert(0usize) += 1;
            if case.cioq_policy() == pps_crossbar::CioqPolicy::MaximalRr {
                maximal += 1;
            }
            assert_eq!(case.crossbar_sched(), case.crossbar_sched());
            assert_eq!(case.cioq_policy(), case.cioq_policy());
        }
        for name in ["islip", "qps-r", "sw-qps"] {
            assert!(sched.get(name).copied().unwrap_or(0) > 32, "{sched:?}");
        }
        assert!(
            sched["islip"] > sched["qps-r"] && sched["islip"] > sched["sw-qps"],
            "iSLIP must stay the majority comparison engine: {sched:?}"
        );
        assert!(
            (100..412).contains(&maximal),
            "CIOQ split skewed: {maximal}"
        );
    }

    #[test]
    fn recorded_repro_pair_still_regenerates() {
        // chaos-repros/case-001 was recorded before the scheduler-zoo
        // upgrades; the seed-hash idiom guarantees its case fields are
        // byte-identical today. Pin them so a draw-order regression is a
        // test failure, not a stale repro discovered in anger.
        let case = ChaosCase::generate(42, 1, 256);
        assert_eq!(case.seed, 13679457532755275413);
        assert_eq!(case.n, 16);
        assert_eq!(case.k, 6);
        assert_eq!(case.r_prime, 2);
        assert_eq!(case.buffer, 0);
        assert_eq!(case.discipline, OutputDiscipline::FlowFifo);
        assert_eq!(case.watchdog, Some(13));
        assert_eq!(case.demux, DemuxChoice::FaultAwareCentralized);
        assert_eq!(case.traffic.name(), "onoff");
        assert_eq!(case.load_millis, 568);
        // The on-disk repro keeps 1 of the original fault events (the
        // shrinker's doing; plan.csv overrides the plan at replay).
        assert_eq!(case.plan.events().len(), 7);
    }

    #[test]
    fn zipf_cases_share_one_flow_universe() {
        // Every Zipf case of a campaign carries the same master-derived
        // salt (cross-case flow-id reuse); a different master moves it.
        let salts: Vec<u64> = (0..512)
            .filter_map(|i| match ChaosCase::generate(42, i, 64).traffic {
                TrafficChoice::Zipf { salt, .. } => Some(salt),
                _ => None,
            })
            .collect();
        assert!(salts.len() > 20, "too few Zipf cases: {}", salts.len());
        assert!(salts.windows(2).all(|w| w[0] == w[1]));
        let other = (0..512)
            .filter_map(|i| match ChaosCase::generate(43, i, 64).traffic {
                TrafficChoice::Zipf { salt, .. } => Some(salt),
                _ => None,
            })
            .next()
            .unwrap();
        assert_ne!(salts[0], other);
    }

    #[test]
    fn stochastic_traces_are_deterministic_and_truncate() {
        let mut found = (false, false);
        for i in 0..512 {
            let mut case = ChaosCase::generate(9, i, 256);
            let fresh = match case.traffic {
                TrafficChoice::Zipf { .. } => {
                    found.0 = true;
                    true
                }
                TrafficChoice::Mmpp { .. } => {
                    found.1 = true;
                    true
                }
                _ => false,
            };
            if !fresh {
                continue;
            }
            let full = case.trace();
            assert_eq!(full.arrivals(), case.trace().arrivals());
            case.truncate_at = Some(64);
            let cut = case.trace();
            let expect: Vec<_> = full
                .arrivals()
                .iter()
                .copied()
                .filter(|a| a.slot <= 64)
                .collect();
            assert_eq!(cut.arrivals(), expect.as_slice());
            if found.0 && found.1 {
                return;
            }
        }
        panic!("corpus produced no stochastic case: {found:?}");
    }
}
