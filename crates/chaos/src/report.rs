//! Deterministic report rendering and minimized-repro emission.
//!
//! The report is assembled from case parameters and outcomes only — no
//! timestamps, no thread ids, no wall-clock — and the cases are rendered
//! in index order, so the bytes are identical at any `--jobs` count.

use crate::case::ChaosCase;
use crate::runner::CaseOutcome;
use crate::shrink::ShrinkResult;
use pps_core::telemetry::{Event, EventLog};
use pps_core::time::Slot;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// How many trailing slots of the event stream a repro trace keeps.
const TRACE_TAIL_SLOTS: Slot = 32;

/// One line per case: parameters, counters, verdict.
pub fn case_line(case: &ChaosCase, out: &CaseOutcome) -> String {
    let verdict = if out.failed() { "FAIL" } else { "ok  " };
    let stage = if case.buffer == 0 {
        "bufferless"
    } else {
        "buffered"
    };
    let discipline = match case.discipline {
        pps_core::OutputDiscipline::FlowFifo => "fifo",
        pps_core::OutputDiscipline::GlobalFcfs => "fcfs",
        pps_core::OutputDiscipline::Greedy => "greedy",
    };
    let wd = match case.watchdog {
        Some(w) => format!("{w}"),
        None => "-".to_string(),
    };
    format!(
        "case {:03} {verdict} {stage:<10} {:<8} N={} K={} r'={} {discipline} wd={wd} \
         {}/{} load={:.3} faults={} cells={} delivered={} dropped={} skipped={} late={} end={}",
        case.index,
        case.demux.name(),
        case.n,
        case.k,
        case.r_prime,
        case.traffic.name(),
        case.traffic.pattern_name(),
        f64::from(case.load_millis) / 1000.0,
        case.plan.len(),
        out.cells,
        out.delivered,
        out.dropped,
        out.skipped,
        out.late_dropped,
        out.end_slot,
    )
}

/// Detail block appended under a failing case's line.
pub fn failure_block(
    out: &CaseOutcome,
    shrunk: Option<&ShrinkResult>,
    repro_dir: Option<&Path>,
) -> String {
    let mut s = String::new();
    if let Some((slot, err)) = &out.engine_error {
        let _ = writeln!(s, "  engine error @slot {slot}: {err}");
    }
    for v in out.violations.iter().take(4) {
        let _ = writeln!(s, "  {v}");
    }
    if out.violations.len() > 4 {
        let _ = writeln!(s, "  ... and {} more", out.violations.len() - 4);
    }
    if let Some(sh) = shrunk {
        let _ = writeln!(
            s,
            "  shrunk: {} -> {} fault events, horizon {}, {} candidate runs",
            sh.original_events,
            sh.kept_events,
            sh.case.truncate_at.unwrap_or(sh.case.horizon),
            sh.attempts,
        );
    }
    if let Some(dir) = repro_dir {
        let _ = writeln!(s, "  repro: {}", dir.display());
    }
    s
}

/// Render the full run report.
pub fn render(
    seed: u64,
    budget_slots: Slot,
    lines: &[String],
    failed: usize,
    cells: u64,
    fault_events: usize,
) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "chaos: seed={seed} cases={} budget-slots={budget_slots}",
        lines.len()
    );
    for line in lines {
        s.push_str(line);
        if !line.ends_with('\n') {
            s.push('\n');
        }
    }
    let _ = writeln!(
        s,
        "chaos: {} cases, {failed} failed, {cells} cells, {fault_events} fault events",
        lines.len()
    );
    s
}

/// Write a minimized repro under `root/case-<idx>/`: the reduced fault
/// plan as CSV, a human-readable `repro.txt` with the replay command, and
/// a Chrome trace of the final slots of the failing run.
pub fn write_repro(
    root: &Path,
    master_seed: u64,
    budget_slots: Slot,
    original: &ChaosCase,
    shrunk: &ShrinkResult,
    inject_leak: u32,
) -> std::io::Result<PathBuf> {
    let dir = root.join(format!("case-{:03}", original.index));
    std::fs::create_dir_all(&dir)?;

    // 1. The reduced fault plan.
    let plan_path = dir.join("plan.csv");
    pps_core::fault::save(&shrunk.case.plan, &plan_path)?;

    // 2. The replay recipe.
    let case = &shrunk.case;
    let mut txt = String::new();
    let _ = writeln!(txt, "minimized chaos repro");
    let _ = writeln!(txt, "master seed : {master_seed}");
    let _ = writeln!(txt, "case index  : {}", case.index);
    let _ = writeln!(txt, "case seed   : {}", case.seed);
    let _ = writeln!(
        txt,
        "geometry    : N={} K={} r'={} buffer={} {:?} watchdog={:?}",
        case.n, case.k, case.r_prime, case.buffer, case.discipline, case.watchdog
    );
    let _ = writeln!(
        txt,
        "demux       : {}   traffic: {}/{} load={:.3}",
        case.demux.name(),
        case.traffic.name(),
        case.traffic.pattern_name(),
        f64::from(case.load_millis) / 1000.0
    );
    let _ = writeln!(
        txt,
        "fault plan  : {} events (of {} originally), see plan.csv",
        shrunk.kept_events, shrunk.original_events
    );
    if let Some((slot, err)) = &shrunk.outcome.engine_error {
        let _ = writeln!(txt, "engine error: @slot {slot}: {err}");
    }
    for v in &shrunk.outcome.violations {
        let _ = writeln!(txt, "violation   : {v}");
    }
    let truncate = case
        .truncate_at
        .map_or(String::new(), |t| format!(" --truncate-at {t}"));
    let leak = if inject_leak > 0 {
        format!(" --inject-leak {inject_leak}")
    } else {
        String::new()
    };
    let _ = writeln!(
        txt,
        "replay      : ppslab chaos --seed {master_seed} --cases 1 --case {} \
         --budget-slots {budget_slots} --plan {}{truncate}{leak}",
        case.index,
        plan_path.display()
    );
    std::fs::write(dir.join("repro.txt"), txt)?;

    // 3. The tail of the failing run's event stream, if it was kept.
    if let Some(events) = &shrunk.outcome.events {
        let from = shrunk
            .outcome
            .failure_slot()
            .unwrap_or(shrunk.outcome.end_slot)
            .saturating_sub(TRACE_TAIL_SLOTS);
        let tail: Vec<Event> = events.iter().filter(|e| e.slot >= from).copied().collect();
        let log = EventLog {
            label: format!("chaos-repro/{}", case.index),
            events: tail,
            overflowed: 0,
            children: Vec::new(),
        };
        pps_telemetry::dump(&log, &dir.join("trace.json"))?;
    }

    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::ChaosCase;
    use crate::runner::{run_case, RunOpts};

    #[test]
    fn case_lines_are_stable() {
        let case = ChaosCase::generate(42, 5, 64);
        let out = run_case(&case, RunOpts::default());
        let a = case_line(&case, &out);
        let out2 = run_case(&case, RunOpts::default());
        let b = case_line(&case, &out2);
        assert_eq!(a, b);
        assert!(a.starts_with("case 005 "));
    }
}
