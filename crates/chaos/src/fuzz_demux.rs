//! Enum wrapper over the demultiplexor zoo.
//!
//! The PPS engines are generic over their demultiplexor (`Demultiplexor`
//! is not object-safe for the engine's purposes — it carries a `Send`
//! bound and the engine stores it by value), so the fuzzer, which picks
//! the algorithm at runtime, needs one concrete type covering the whole
//! zoo. [`FuzzDemux`] is that type: a plain enum forwarding every trait
//! method to the wrapped algorithm.

use crate::case::DemuxChoice;
use pps_core::demux::{
    BufferedDecision, BufferedDemultiplexor, Demultiplexor, DispatchCtx, InfoClass, LocalView,
};
use pps_core::{Cell, GlobalSnapshot, PlaneId, PortId, Slot};
use pps_switch::demux::{
    BufferedRoundRobinDemux, BufferedStaleDemux, DelayedCpaDemux, FaultAwareRoundRobinDemux,
    HashFlowDemux, LeastLoadedLocalDemux, LeastLoadedOfDDemux, PerFlowRoundRobinDemux, RandomDemux,
    RoundRobinDemux, TwoStageLbDemux,
};

/// One concrete type spanning the bufferless demux zoo.
#[allow(missing_docs)]
pub enum FuzzDemux {
    RoundRobin(RoundRobinDemux),
    PerFlowRoundRobin(PerFlowRoundRobinDemux),
    Random(RandomDemux),
    LeastLoadedLocal(LeastLoadedLocalDemux),
    HashFlow(HashFlowDemux),
    FaultAware(FaultAwareRoundRobinDemux),
    TwoStageLb(TwoStageLbDemux),
    LeastLoadedOfD(LeastLoadedOfDDemux),
}

impl FuzzDemux {
    /// Materialize the algorithm a [`DemuxChoice`] names.
    ///
    /// Panics on the buffered variants: buffered cases materialize a
    /// [`FuzzBufferedDemux`] instead, the bufferless engine never sees
    /// them.
    pub fn build(choice: DemuxChoice, n: usize, k: usize, r_prime: usize, seed: u64) -> FuzzDemux {
        match choice {
            DemuxChoice::RoundRobin => FuzzDemux::RoundRobin(RoundRobinDemux::new(n, k)),
            DemuxChoice::PerFlowRoundRobin => {
                FuzzDemux::PerFlowRoundRobin(PerFlowRoundRobinDemux::new(n, k))
            }
            DemuxChoice::Random => FuzzDemux::Random(RandomDemux::new(n, seed)),
            DemuxChoice::LeastLoadedLocal => {
                FuzzDemux::LeastLoadedLocal(LeastLoadedLocalDemux::new(n, k, r_prime))
            }
            DemuxChoice::HashFlow => FuzzDemux::HashFlow(HashFlowDemux::new(n, k)),
            DemuxChoice::FaultAwareCentralized => {
                FuzzDemux::FaultAware(FaultAwareRoundRobinDemux::centralized(n, k))
            }
            DemuxChoice::FaultAwareUrt(u) => {
                FuzzDemux::FaultAware(FaultAwareRoundRobinDemux::urt(n, k, u))
            }
            DemuxChoice::TwoStageLb => FuzzDemux::TwoStageLb(TwoStageLbDemux::new(k)),
            DemuxChoice::LeastLoadedOfD(d) => {
                FuzzDemux::LeastLoadedOfD(LeastLoadedOfDDemux::new(n, k, r_prime, d, seed))
            }
            DemuxChoice::BufferedRoundRobin
            | DemuxChoice::BufferedStale(..)
            | DemuxChoice::DelayedCpa(_) => {
                panic!("buffered choice has no bufferless materialization")
            }
        }
    }

    fn inner(&self) -> &dyn Demultiplexor {
        match self {
            FuzzDemux::RoundRobin(d) => d,
            FuzzDemux::PerFlowRoundRobin(d) => d,
            FuzzDemux::Random(d) => d,
            FuzzDemux::LeastLoadedLocal(d) => d,
            FuzzDemux::HashFlow(d) => d,
            FuzzDemux::FaultAware(d) => d,
            FuzzDemux::TwoStageLb(d) => d,
            FuzzDemux::LeastLoadedOfD(d) => d,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn Demultiplexor {
        match self {
            FuzzDemux::RoundRobin(d) => d,
            FuzzDemux::PerFlowRoundRobin(d) => d,
            FuzzDemux::Random(d) => d,
            FuzzDemux::LeastLoadedLocal(d) => d,
            FuzzDemux::HashFlow(d) => d,
            FuzzDemux::FaultAware(d) => d,
            FuzzDemux::TwoStageLb(d) => d,
            FuzzDemux::LeastLoadedOfD(d) => d,
        }
    }
}

impl Demultiplexor for FuzzDemux {
    fn info_class(&self) -> InfoClass {
        self.inner().info_class()
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        self.inner_mut().dispatch(cell, ctx)
    }

    fn on_slot(&mut self, now: Slot, global: Option<&GlobalSnapshot>) {
        self.inner_mut().on_slot(now, global);
    }

    fn next_activity(&self, now: Slot) -> Option<Slot> {
        self.inner().next_activity(now)
    }

    fn reset(&mut self) {
        self.inner_mut().reset();
    }

    fn name(&self) -> &'static str {
        self.inner().name()
    }
}

/// One concrete type spanning the buffered demux zoo — the buffered
/// engine's counterpart of [`FuzzDemux`].
#[allow(missing_docs)]
pub enum FuzzBufferedDemux {
    RoundRobin(BufferedRoundRobinDemux),
    Stale(BufferedStaleDemux),
    DelayedCpa(DelayedCpaDemux),
}

impl FuzzBufferedDemux {
    /// Materialize the buffered algorithm a [`DemuxChoice`] names.
    ///
    /// Panics on bufferless variants: those materialize a [`FuzzDemux`].
    pub fn build(choice: DemuxChoice, n: usize, k: usize, r_prime: usize) -> FuzzBufferedDemux {
        match choice {
            DemuxChoice::BufferedRoundRobin => {
                FuzzBufferedDemux::RoundRobin(BufferedRoundRobinDemux::new(n, k))
            }
            DemuxChoice::BufferedStale(u, hold) => {
                FuzzBufferedDemux::Stale(BufferedStaleDemux::new(n, k, u, hold))
            }
            DemuxChoice::DelayedCpa(u) => {
                FuzzBufferedDemux::DelayedCpa(DelayedCpaDemux::new(n, k, r_prime, u))
            }
            _ => panic!("bufferless choice has no buffered materialization"),
        }
    }

    fn inner(&self) -> &dyn BufferedDemultiplexor {
        match self {
            FuzzBufferedDemux::RoundRobin(d) => d,
            FuzzBufferedDemux::Stale(d) => d,
            FuzzBufferedDemux::DelayedCpa(d) => d,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn BufferedDemultiplexor {
        match self {
            FuzzBufferedDemux::RoundRobin(d) => d,
            FuzzBufferedDemux::Stale(d) => d,
            FuzzBufferedDemux::DelayedCpa(d) => d,
        }
    }
}

impl BufferedDemultiplexor for FuzzBufferedDemux {
    fn info_class(&self) -> InfoClass {
        self.inner().info_class()
    }

    fn slot_decision(
        &mut self,
        input: PortId,
        arrival: Option<&Cell>,
        buffer: &[Cell],
        ctx: &DispatchCtx<'_>,
        out: &mut BufferedDecision,
    ) {
        self.inner_mut()
            .slot_decision(input, arrival, buffer, ctx, out);
    }

    fn next_activity(&self, now: Slot) -> Option<Slot> {
        self.inner().next_activity(now)
    }

    fn buffered_next_activity(
        &self,
        input: PortId,
        head: &Cell,
        local: &LocalView<'_>,
    ) -> Option<Slot> {
        self.inner().buffered_next_activity(input, head, local)
    }

    fn reset(&mut self) {
        self.inner_mut().reset();
    }

    fn name(&self) -> &'static str {
        self.inner().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_covers_the_zoo() {
        let choices = [
            DemuxChoice::RoundRobin,
            DemuxChoice::PerFlowRoundRobin,
            DemuxChoice::Random,
            DemuxChoice::LeastLoadedLocal,
            DemuxChoice::HashFlow,
            DemuxChoice::FaultAwareCentralized,
            DemuxChoice::FaultAwareUrt(4),
            DemuxChoice::TwoStageLb,
            DemuxChoice::LeastLoadedOfD(2),
        ];
        for c in choices {
            let d = FuzzDemux::build(c, 4, 4, 2, 99);
            assert!(!d.name().is_empty());
        }
    }

    #[test]
    fn build_covers_the_buffered_zoo() {
        let choices = [
            DemuxChoice::BufferedRoundRobin,
            DemuxChoice::BufferedStale(4, 2),
            DemuxChoice::DelayedCpa(3),
        ];
        for c in choices {
            let d = FuzzBufferedDemux::build(c, 4, 4, 2);
            assert!(!d.name().is_empty());
        }
    }
}
