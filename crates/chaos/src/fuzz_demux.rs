//! Enum wrapper over the demultiplexor zoo.
//!
//! The PPS engines are generic over their demultiplexor (`Demultiplexor`
//! is not object-safe for the engine's purposes — it carries a `Send`
//! bound and the engine stores it by value), so the fuzzer, which picks
//! the algorithm at runtime, needs one concrete type covering the whole
//! zoo. [`FuzzDemux`] is that type: a plain enum forwarding every trait
//! method to the wrapped algorithm.

use crate::case::DemuxChoice;
use pps_core::demux::{Demultiplexor, DispatchCtx, InfoClass};
use pps_core::{Cell, GlobalSnapshot, PlaneId, Slot};
use pps_switch::demux::{
    FaultAwareRoundRobinDemux, HashFlowDemux, LeastLoadedLocalDemux, PerFlowRoundRobinDemux,
    RandomDemux, RoundRobinDemux,
};

/// One concrete type spanning the bufferless demux zoo.
#[allow(missing_docs)]
pub enum FuzzDemux {
    RoundRobin(RoundRobinDemux),
    PerFlowRoundRobin(PerFlowRoundRobinDemux),
    Random(RandomDemux),
    LeastLoadedLocal(LeastLoadedLocalDemux),
    HashFlow(HashFlowDemux),
    FaultAware(FaultAwareRoundRobinDemux),
}

impl FuzzDemux {
    /// Materialize the algorithm a [`DemuxChoice`] names.
    ///
    /// Panics on [`DemuxChoice::BufferedRoundRobin`]: buffered cases build
    /// their demux directly, the bufferless engine never sees the variant.
    pub fn build(choice: DemuxChoice, n: usize, k: usize, r_prime: usize, seed: u64) -> FuzzDemux {
        match choice {
            DemuxChoice::RoundRobin => FuzzDemux::RoundRobin(RoundRobinDemux::new(n, k)),
            DemuxChoice::PerFlowRoundRobin => {
                FuzzDemux::PerFlowRoundRobin(PerFlowRoundRobinDemux::new(n, k))
            }
            DemuxChoice::Random => FuzzDemux::Random(RandomDemux::new(n, seed)),
            DemuxChoice::LeastLoadedLocal => {
                FuzzDemux::LeastLoadedLocal(LeastLoadedLocalDemux::new(n, k, r_prime))
            }
            DemuxChoice::HashFlow => FuzzDemux::HashFlow(HashFlowDemux::new(n, k)),
            DemuxChoice::FaultAwareCentralized => {
                FuzzDemux::FaultAware(FaultAwareRoundRobinDemux::centralized(n, k))
            }
            DemuxChoice::FaultAwareUrt(u) => {
                FuzzDemux::FaultAware(FaultAwareRoundRobinDemux::urt(n, k, u))
            }
            DemuxChoice::BufferedRoundRobin => {
                panic!("buffered choice has no bufferless materialization")
            }
        }
    }

    fn inner(&self) -> &dyn Demultiplexor {
        match self {
            FuzzDemux::RoundRobin(d) => d,
            FuzzDemux::PerFlowRoundRobin(d) => d,
            FuzzDemux::Random(d) => d,
            FuzzDemux::LeastLoadedLocal(d) => d,
            FuzzDemux::HashFlow(d) => d,
            FuzzDemux::FaultAware(d) => d,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn Demultiplexor {
        match self {
            FuzzDemux::RoundRobin(d) => d,
            FuzzDemux::PerFlowRoundRobin(d) => d,
            FuzzDemux::Random(d) => d,
            FuzzDemux::LeastLoadedLocal(d) => d,
            FuzzDemux::HashFlow(d) => d,
            FuzzDemux::FaultAware(d) => d,
        }
    }
}

impl Demultiplexor for FuzzDemux {
    fn info_class(&self) -> InfoClass {
        self.inner().info_class()
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        self.inner_mut().dispatch(cell, ctx)
    }

    fn on_slot(&mut self, now: Slot, global: Option<&GlobalSnapshot>) {
        self.inner_mut().on_slot(now, global);
    }

    fn next_activity(&self, now: Slot) -> Option<Slot> {
        self.inner().next_activity(now)
    }

    fn reset(&mut self) {
        self.inner_mut().reset();
    }

    fn name(&self) -> &'static str {
        self.inner().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_covers_the_zoo() {
        let choices = [
            DemuxChoice::RoundRobin,
            DemuxChoice::PerFlowRoundRobin,
            DemuxChoice::Random,
            DemuxChoice::LeastLoadedLocal,
            DemuxChoice::HashFlow,
            DemuxChoice::FaultAwareCentralized,
            DemuxChoice::FaultAwareUrt(4),
        ];
        for c in choices {
            let d = FuzzDemux::build(c, 4, 4, 2, 99);
            assert!(!d.name().is_empty());
        }
    }
}
