//! # pps-crossbar — input-queued crossbar baseline
//!
//! The alternative to parallelism that motivates the PPS: a *single*
//! `N × N` crossbar running at the full external rate `R`, with virtual
//! output queues (VOQs) at the inputs and an iterative round-robin
//! matching arbiter (iSLIP, after McKeown). The paper's related work
//! (Tamir & Chi's arbitrated crossbars; Chuang et al.'s CIOQ speedup
//! bound) frames the PPS against exactly this design point:
//!
//! * the crossbar needs its fabric and arbiter to run at rate `R` —
//!   which is what becomes infeasible at high line rates and drives
//!   designers to the PPS;
//! * the PPS runs everything at `r < R` but pays the Ω((R/r − 1)·N)
//!   relative delay of its distributed demultiplexors.
//!
//! Experiment E13 puts the two (plus the OQ ideal) on one delay-vs-load
//! chart.
//!
//! The crossbar here is cycle-accurate under the same slotted model as
//! the rest of the workspace: per slot at most one cell arrives per
//! input, the scheduler computes a matching over non-empty VOQs, matched
//! cells traverse the fabric and depart in the same slot (zero minimum
//! transit, like the other engines), and per-flow order is preserved by
//! construction (VOQs are FIFO and a flow lives in exactly one VOQ).
//!
//! ## The scheduler zoo
//!
//! The fabric is generic over [`scheduler::CrossbarScheduler`]; the
//! matching disciplines on offer:
//!
//! | scheduler | discipline | provenance |
//! |---|---|---|
//! | [`IslipArbiter`] | iterative round-robin grant/accept | McKeown, iSLIP |
//! | [`QpsRScheduler`] | queue-proportional sampling, `r` rounds | Gong et al., arXiv 1905.05392 |
//! | [`SwQpsScheduler`] | sliding-window QPS batch matching | Meng et al., arXiv 2010.08620 |
//!
//! The CIOQ switch ([`CioqSwitch`]) separately offers critical-cell-first
//! or rotating maximal matching under configurable speedup
//! ([`cioq::CioqPolicy`], after Cogill & Lall, arXiv cs/0605030).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cioq;
pub mod islip;
pub mod scheduler;
pub mod switch;

pub use cioq::{run_cioq, run_cioq_policy, run_cioq_stepped, CioqPolicy, CioqSwitch};
pub use islip::IslipArbiter;
pub use scheduler::{CrossbarScheduler, QpsRScheduler, SwQpsScheduler};
pub use switch::{run_crossbar, run_crossbar_stepped, run_crossbar_with, CrossbarSwitch};
