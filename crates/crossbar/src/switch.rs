//! The VOQ input-queued crossbar switch, generic over its scheduler.

use crate::islip::IslipArbiter;
use crate::scheduler::CrossbarScheduler;
use pps_core::prelude::*;

/// An `N × N` input-queued crossbar with per-input VOQs and a pluggable
/// matching scheduler (iSLIP by default), running at the external rate `R`
/// (one matching per slot, one cell per matched pair per slot).
#[derive(Clone, Debug)]
pub struct CrossbarSwitch<S: CrossbarScheduler = IslipArbiter> {
    n: usize,
    /// VOQ `(i, j)` at `i * n + j`, holding bare cell ids (the matching
    /// only needs occupancy, the departure only the id).
    voqs: Vec<FifoQueue<CellId>>,
    scheduler: S,
    /// Scratch occupancy matrix handed to the scheduler each slot.
    lens: Vec<usize>,
    /// Scratch matching written by the scheduler each slot.
    matching: Vec<Option<usize>>,
    transmitted: u64,
}

impl CrossbarSwitch<IslipArbiter> {
    /// An idle `n × n` crossbar with an `iterations`-round iSLIP arbiter.
    pub fn new(n: usize, iterations: usize) -> Self {
        CrossbarSwitch::with_scheduler(n, IslipArbiter::new(n, iterations))
    }
}

impl<S: CrossbarScheduler> CrossbarSwitch<S> {
    /// An idle `n × n` crossbar driven by `scheduler` (whose port count
    /// must match `n`).
    pub fn with_scheduler(n: usize, scheduler: S) -> Self {
        assert_eq!(scheduler.n(), n, "scheduler port count mismatch");
        CrossbarSwitch {
            n,
            voqs: (0..n * n).map(|_| FifoQueue::new()).collect(),
            scheduler,
            lens: vec![0; n * n],
            matching: vec![None; n],
            transmitted: 0,
        }
    }

    /// Advance one slot: enqueue arrivals into their VOQs, compute the
    /// matching, and transfer matched head cells (which depart this slot —
    /// the crossbar is output-unbuffered at speedup 1).
    pub fn slot(&mut self, now: Slot, arrivals: &[Cell], log: &mut RunLog) {
        use pps_core::telemetry::{self, Engine, EventKind};
        pps_core::perf::record_slots(1);
        for cell in arrivals {
            debug_assert_eq!(cell.arrival, now);
            if telemetry::on() {
                telemetry::record(
                    Engine::Crossbar,
                    now,
                    EventKind::Arrival {
                        cell: cell.id,
                        input: cell.input,
                        output: cell.output,
                    },
                );
            }
            self.voqs[cell.input.idx() * self.n + cell.output.idx()].push(cell.id);
        }
        for (l, q) in self.lens.iter_mut().zip(&self.voqs) {
            *l = q.len();
        }
        self.matching.fill(None);
        self.scheduler.schedule(now, &self.lens, &mut self.matching);
        for i in 0..self.n {
            if let Some(j) = self.matching[i] {
                let id = self.voqs[i * self.n + j]
                    .pop()
                    .expect("scheduler only matches occupied VOQs");
                if telemetry::on() {
                    telemetry::record(
                        Engine::Crossbar,
                        now,
                        EventKind::Depart {
                            cell: id,
                            output: PortId(j as u32),
                        },
                    );
                }
                log.set_departure(id, now);
                self.transmitted += 1;
            }
        }
    }

    /// Cells currently queued at the inputs.
    pub fn backlog(&self) -> usize {
        self.voqs.iter().map(|q| q.len()).sum()
    }

    /// The next slot strictly after `now` at which the switch does
    /// anything, ignoring future arrivals. Delegates to the scheduler's
    /// wake formula; for every discipline in the zoo that is `now + 1`
    /// with backlog and quiescent without — an all-empty occupancy matrix
    /// grants nothing, draws nothing, and moves no pointers.
    pub fn next_activity(&self, now: Slot) -> Option<Slot> {
        self.scheduler.next_activity(now, self.backlog())
    }

    /// Highest VOQ occupancy reached.
    pub fn max_voq_occupancy(&self) -> usize {
        self.voqs
            .iter()
            .map(|q| q.max_occupancy())
            .max()
            .unwrap_or(0)
    }

    /// Total cells transmitted.
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }

    /// The scheduler driving the fabric (for state-digest assertions).
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }
}

/// Run a trace through a fresh crossbar until it drains; returns the log.
/// Uses the process-default stepping mode.
pub fn run_crossbar(trace: &Trace, n: usize, iterations: usize) -> RunLog {
    run_crossbar_stepped(trace, n, iterations, pps_core::stepping::process_default())
}

/// [`run_crossbar`] with an explicit stepping mode. Identical logs either
/// way: an empty crossbar slot moves no state (see
/// [`CrossbarSwitch::next_activity`]), so skip-ahead jumps idle stretches
/// and meters them as skipped instead of simulated.
pub fn run_crossbar_stepped(
    trace: &Trace,
    n: usize,
    iterations: usize,
    mode: pps_core::Stepping,
) -> RunLog {
    run_crossbar_with(trace, IslipArbiter::new(n, iterations), mode).0
}

/// Run a trace through a fresh crossbar driven by `scheduler` until it
/// drains. Returns the log plus the drained switch, so callers can inspect
/// final scheduler state (the stepping-equivalence tests compare
/// [`CrossbarScheduler::state_digest`] across modes — identical logs with
/// diverged hidden state would still be a bug).
pub fn run_crossbar_with<S: CrossbarScheduler>(
    trace: &Trace,
    scheduler: S,
    mode: pps_core::Stepping,
) -> (RunLog, CrossbarSwitch<S>) {
    let n = scheduler.n();
    let cells = trace.cells(n);
    let mut log = RunLog::with_cells(&cells);
    let mut xb = CrossbarSwitch::with_scheduler(n, scheduler);
    let mut next = 0usize;
    let mut now: Slot = 0;
    let mut scratch: Vec<Cell> = Vec::new();
    let cap = trace.horizon() + (trace.len() as Slot + 2) * (n as Slot) + 64;
    while next < cells.len() || xb.backlog() > 0 {
        scratch.clear();
        while next < cells.len() && cells[next].arrival == now {
            scratch.push(cells[next]);
            next += 1;
        }
        xb.slot(now, &scratch, &mut log);
        now += 1;
        if now > cap {
            break;
        }
        if mode == pps_core::Stepping::SkipAhead
            && next < cells.len()
            && cells[next].arrival > now
            && xb.backlog() == 0
        {
            pps_core::perf::record_skipped(cells[next].arrival - now);
            now = cells[next].arrival;
        }
    }
    (log, xb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_reference::checker::{check_flow_order, check_work_conserving};

    fn trace(v: Vec<Arrival>, n: usize) -> Trace {
        Trace::build(v, n).unwrap()
    }

    #[test]
    fn lone_cell_departs_immediately() {
        let t = trace(vec![Arrival::new(3, 1, 2)], 4);
        let log = run_crossbar(&t, 4, 1);
        assert_eq!(log.get(CellId(0)).delay(), Some(0));
    }

    #[test]
    fn permutation_traffic_is_eventually_zero_delay() {
        // Persistent full-load permutation: once iSLIP desynchronizes,
        // every cell departs in its arrival slot.
        let n = 4;
        let mut v = Vec::new();
        for s in 0..200u64 {
            for i in 0..n as u32 {
                v.push(Arrival::new(s, i, (i + 1) % n as u32));
            }
        }
        let log = run_crossbar(&trace(v, n), n, 1);
        assert_eq!(log.undelivered(), 0);
        let late: Vec<_> = log
            .records()
            .iter()
            .filter(|r| r.arrival > 20 && r.delay().unwrap() > 0)
            .collect();
        assert!(
            late.is_empty(),
            "desynchronized iSLIP should be zero-delay: {late:?}"
        );
    }

    #[test]
    fn flow_order_is_preserved() {
        let n = 4;
        let t = {
            let mut v = Vec::new();
            for s in 0..100u64 {
                for i in 0..n as u32 {
                    v.push(Arrival::new(s, i, (s % n as u64) as u32));
                }
            }
            trace(v, n)
        };
        let log = run_crossbar(&t, n, 2);
        assert_eq!(log.undelivered(), 0);
        assert!(check_flow_order(&log).is_empty());
    }

    #[test]
    fn input_contention_shows_up_as_delay_unlike_oq() {
        // All inputs persistently send to all outputs round-robin shifted
        // so each slot has full demand; compare against the OQ reference:
        // the crossbar serializes at the inputs and cannot beat OQ.
        let n = 4;
        let mut v = Vec::new();
        for s in 0..200u64 {
            for i in 0..n as u32 {
                // Two inputs aim at the same output half the time.
                v.push(Arrival::new(s, i, ((i / 2) * 2) % n as u32));
            }
        }
        let t = trace(v, n);
        let xb = run_crossbar(&t, n, 1);
        let oq = pps_reference::oq::run_oq(&t, n);
        assert_eq!(xb.undelivered(), 0);
        let max_xb = xb.max_delay().unwrap();
        let max_oq = oq.max_delay().unwrap();
        assert!(max_xb >= max_oq, "crossbar {max_xb} vs oq {max_oq}");
    }

    #[test]
    fn work_conservation_can_fail_at_inputs_but_throughput_is_full_uniform() {
        // iSLIP is not work-conserving in the OQ sense (head-of-line at
        // the matching), but under uniform load it sustains throughput.
        let n = 8;
        let t = pps_traffic::gen::BernoulliGen::uniform(0.95, 3).trace(n, 2_000);
        let log = run_crossbar(&t, n, 3);
        assert_eq!(log.undelivered(), 0);
        // Work-conservation violations may exist; just quantify they are
        // not catastrophic (fewer than 10% of busy slots).
        let v = check_work_conserving(&log, None).len();
        assert!(v < t.len() / 10, "excessive idling: {v}");
    }
}
