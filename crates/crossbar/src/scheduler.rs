//! The crossbar scheduler zoo: one trait, three matching disciplines.
//!
//! [`CrossbarScheduler`] abstracts the per-slot matching computation of
//! the VOQ crossbar so the switch fabric ([`crate::switch::CrossbarSwitch`])
//! can host any arbiter:
//!
//! * [`crate::islip::IslipArbiter`] — iterative round-robin request–grant–
//!   accept (McKeown), the original occupant;
//! * [`QpsRScheduler`] — QPS-r (Gong, Xu, Liu & Maguluri, arXiv
//!   1905.05392): each input makes one *queue-proportional-sampling*
//!   proposal per round (output `j` drawn with probability
//!   `len(i,j) / Σ_j len(i,j)`), each output accepts the proposer with the
//!   longest VOQ, repeated for `r` rounds. With `r = 1` the time
//!   complexity per port is O(1) draws; the paper proves QPS-r matches the
//!   stability region and delay-order guarantees of maximal matching.
//! * [`SwQpsScheduler`] — SW-QPS (Meng, Gong & Xu, arXiv 2010.08620):
//!   sliding-window batch switching. Each slot every backlogged input
//!   makes one QPS proposal; the output packs an accepted proposal into
//!   the *earliest* window slot where both ports are still unmatched
//!   (first-fit accept, longest-VOQ-first among competing proposals), and
//!   the matching leaving the window executes immediately — so unlike
//!   batch switching there is zero batch delay, while each matching
//!   enjoys `T` slots of opportunistic refinement before it runs.
//!
//! ## Determinism across stepping modes
//!
//! Every scheduler here must produce byte-identical runs under dense and
//! skip-ahead stepping. The skip-ahead contract elides only slots with no
//! arrivals and zero backlog, so the invariant each implementation upholds
//! is: **a `schedule` call with an all-empty VOQ matrix draws nothing and
//! mutates nothing**. The samplers only consume RNG draws for inputs with
//! at least one queued cell, and the window state of SW-QPS can only be
//! non-empty while some VOQ is non-empty (every reservation points at a
//! queued cell), so an idle slot is a pure no-op for all three.
//!
//! ## Wake formulas (`next_activity`)
//!
//! All three disciplines act on queued cells every slot and hold no timers:
//! with backlog the next activity is `now + 1`, without backlog there is
//! none. (SW-QPS's window needs no catch-up across a jump: an empty window
//! slides into an empty window.)

use pps_core::rng::SplitMix64;
use pps_core::Slot;

/// A per-slot matching discipline for an `N × N` VOQ crossbar.
///
/// Object-safe: the chaos harness draws the discipline at runtime and
/// drives the switch through a `Box<dyn CrossbarScheduler>`.
pub trait CrossbarScheduler: Send {
    /// Number of ports.
    fn n(&self) -> usize;

    /// Compute this slot's matching. `lens[i * n + j]` is the occupancy of
    /// VOQ `(i, j)`; the result is written into `out` (length `n`,
    /// pre-filled `None` by the caller) as `out[i] = Some(j)`. Every
    /// matched pair must name a non-empty VOQ, and no output may be
    /// matched twice.
    fn schedule(&mut self, now: Slot, lens: &[usize], out: &mut [Option<usize>]);

    /// The next slot strictly after `now` at which the scheduler must be
    /// stepped, given the fabric's total VOQ backlog. All current
    /// disciplines are backlog-driven: `now + 1` with backlog, quiescent
    /// without.
    fn next_activity(&self, now: Slot, backlog: usize) -> Option<Slot> {
        (backlog > 0).then(|| now + 1)
    }

    /// Return the scheduler to its initial configuration.
    fn reset(&mut self);

    /// A fingerprint of all mutable scheduler state (pointers, RNG state,
    /// window reservations). The dense/skip equivalence proptests pin this
    /// across stepping modes — logs being equal does not prove the hidden
    /// state is, and diverged hidden state is a time bomb.
    fn state_digest(&self) -> u64;

    /// Short human-readable discipline name for reports.
    fn name(&self) -> &'static str;
}

impl CrossbarScheduler for Box<dyn CrossbarScheduler> {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn schedule(&mut self, now: Slot, lens: &[usize], out: &mut [Option<usize>]) {
        (**self).schedule(now, lens, out)
    }

    fn next_activity(&self, now: Slot, backlog: usize) -> Option<Slot> {
        (**self).next_activity(now, backlog)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn state_digest(&self) -> u64 {
        (**self).state_digest()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

// ---------------------------------------------------------------------------
// QPS-r
// ---------------------------------------------------------------------------

/// Queue-proportional sampling with `r` accept rounds (QPS-r).
#[derive(Clone, Debug)]
pub struct QpsRScheduler {
    n: usize,
    r: usize,
    rng: SplitMix64,
    /// Scratch: the output each unmatched input proposed this round
    /// (`usize::MAX` = no proposal).
    proposals: Vec<usize>,
}

impl QpsRScheduler {
    /// A QPS-`r` scheduler for an `n × n` crossbar, drawing proposals from
    /// a seeded substream (`r = 1` is the O(1)-per-port headline variant).
    pub fn new(n: usize, r: usize, seed: u64) -> Self {
        QpsRScheduler {
            n,
            r: r.max(1),
            rng: SplitMix64::new(seed).derive(0x9B5),
            proposals: vec![usize::MAX; n],
        }
    }

    /// The configured number of accept rounds.
    pub fn rounds(&self) -> usize {
        self.r
    }

    /// Queue-proportional draw for input `i`: output `j` with probability
    /// `lens[i][j] / total`. Consumes exactly one RNG draw; the caller
    /// guarantees `total > 0`.
    fn sample_output(&mut self, i: usize, lens: &[usize], total: u64) -> usize {
        let mut x = self.rng.below(total);
        for j in 0..self.n {
            let l = lens[i * self.n + j] as u64;
            if x < l {
                return j;
            }
            x -= l;
        }
        unreachable!("draw below total must land in a VOQ")
    }
}

impl CrossbarScheduler for QpsRScheduler {
    fn n(&self) -> usize {
        self.n
    }

    fn schedule(&mut self, _now: Slot, lens: &[usize], out: &mut [Option<usize>]) {
        let n = self.n;
        let mut output_taken = vec![false; n];
        for _round in 0..self.r {
            // Proposal phase: every still-unmatched input with backlog
            // samples one output queue-proportionally. Inputs with no
            // queued cells draw nothing — the skip-ahead invariant.
            for i in 0..n {
                self.proposals[i] = usize::MAX;
                if out[i].is_some() {
                    continue;
                }
                let total: u64 = lens[i * n..(i + 1) * n].iter().map(|&l| l as u64).sum();
                if total == 0 {
                    continue;
                }
                self.proposals[i] = self.sample_output(i, lens, total);
            }
            // Accept phase: each unmatched output takes the proposer with
            // the longest VOQ (smallest input id on ties); proposals to
            // already-matched outputs are simply lost this round.
            for j in 0..n {
                if output_taken[j] {
                    continue;
                }
                let winner = (0..n)
                    .filter(|&i| self.proposals[i] == j)
                    .max_by_key(|&i| (lens[i * n + j], std::cmp::Reverse(i)));
                if let Some(i) = winner {
                    out[i] = Some(j);
                    output_taken[j] = true;
                }
            }
        }
    }

    fn reset(&mut self) {
        // Note: reset does not rewind the RNG — a reset scheduler is a new
        // automaton, so callers wanting bit-replay construct a fresh one.
        self.proposals.fill(usize::MAX);
    }

    fn state_digest(&self) -> u64 {
        SplitMix64::fold_digest(0x9B5, self.rng.state_fingerprint())
    }

    fn name(&self) -> &'static str {
        "qps-r"
    }
}

// ---------------------------------------------------------------------------
// SW-QPS
// ---------------------------------------------------------------------------

/// Sliding-window QPS batch scheduler (SW-QPS).
#[derive(Clone, Debug)]
pub struct SwQpsScheduler {
    n: usize,
    window: usize,
    rng: SplitMix64,
    /// `slots[w][i] = Some(j)`: input `i` is reserved for output `j` in the
    /// matching that executes `w` slots from now. `slots[0]` is popped and
    /// executed by every `schedule` call.
    slots: std::collections::VecDeque<Vec<Option<usize>>>,
}

impl SwQpsScheduler {
    /// An SW-QPS scheduler with a `window`-slot sliding window over an
    /// `n × n` crossbar, drawing proposals from a seeded substream.
    pub fn new(n: usize, window: usize, seed: u64) -> Self {
        let window = window.max(1);
        SwQpsScheduler {
            n,
            window,
            rng: SplitMix64::new(seed).derive(0x5109),
            slots: (0..window).map(|_| vec![None; n]).collect(),
        }
    }

    /// The configured window length `T`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Reservations for VOQ `(i, j)` currently parked in the window.
    fn reserved(&self, i: usize, j: usize) -> usize {
        self.slots.iter().filter(|m| m[i] == Some(j)).count()
    }
}

impl CrossbarScheduler for SwQpsScheduler {
    fn n(&self) -> usize {
        self.n
    }

    fn schedule(&mut self, _now: Slot, lens: &[usize], out: &mut [Option<usize>]) {
        let n = self.n;
        // Proposal phase: one QPS draw per backlogged input, proposing
        // only cells not already reserved in the window (so executing a
        // reservation always finds its cell queued).
        let mut proposals: Vec<(usize, usize, usize)> = Vec::new(); // (len, i, j)
        for i in 0..n {
            let total: u64 = (0..n)
                .map(|j| lens[i * n + j].saturating_sub(self.reserved(i, j)) as u64)
                .sum();
            if total == 0 {
                continue;
            }
            let mut x = self.rng.below(total);
            for j in 0..n {
                let l = lens[i * n + j].saturating_sub(self.reserved(i, j)) as u64;
                if x < l {
                    proposals.push((lens[i * n + j], i, j));
                    break;
                }
                x -= l;
            }
        }
        // Accept phase: longest-VOQ proposals first (smallest input id on
        // ties), each packed into the earliest window slot where both its
        // input and its output are still unmatched (first fit).
        proposals.sort_unstable_by(|a, b| {
            (b.0, std::cmp::Reverse(b.1)).cmp(&(a.0, std::cmp::Reverse(a.1)))
        });
        for (_len, i, j) in proposals {
            let fit = (0..self.window).find(|&w| {
                let m = &self.slots[w];
                m[i].is_none() && !m.contains(&Some(j))
            });
            if let Some(w) = fit {
                self.slots[w][i] = Some(j);
            }
        }
        // Execute the matching leaving the window and slide.
        let head = self.slots.pop_front().expect("window is never empty");
        out.copy_from_slice(&head);
        let mut recycled = head;
        recycled.fill(None);
        self.slots.push_back(recycled);
    }

    fn reset(&mut self) {
        for m in &mut self.slots {
            m.fill(None);
        }
    }

    fn state_digest(&self) -> u64 {
        let mut d = SplitMix64::fold_digest(0x5109, self.rng.state_fingerprint());
        for m in &self.slots {
            for (i, j) in m.iter().enumerate() {
                if let Some(j) = j {
                    d = SplitMix64::fold_digest(d, ((i as u64) << 32) | *j as u64);
                }
            }
            d = SplitMix64::fold_digest(d, 0xFEED);
        }
        d
    }

    fn name(&self) -> &'static str {
        "sw-qps"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lens_of(n: usize, pairs: &[(usize, usize, usize)]) -> Vec<usize> {
        let mut lens = vec![0usize; n * n];
        for &(i, j, l) in pairs {
            lens[i * n + j] = l;
        }
        lens
    }

    fn run_sched<S: CrossbarScheduler>(s: &mut S, lens: &[usize]) -> Vec<Option<usize>> {
        let mut out = vec![None; s.n()];
        s.schedule(0, lens, &mut out);
        out
    }

    fn assert_valid(n: usize, lens: &[usize], m: &[Option<usize>]) {
        let mut outs = std::collections::BTreeSet::new();
        for (i, j) in m.iter().enumerate() {
            if let Some(j) = j {
                assert!(lens[i * n + j] > 0, "matched empty VOQ ({i},{j})");
                assert!(outs.insert(*j), "output {j} matched twice");
            }
        }
    }

    #[test]
    fn qps_single_backlogged_voq_is_matched() {
        let mut s = QpsRScheduler::new(4, 1, 7);
        let lens = lens_of(4, &[(2, 3, 5)]);
        let m = run_sched(&mut s, &lens);
        assert_eq!(m, vec![None, None, Some(3), None]);
    }

    #[test]
    fn qps_empty_matrix_draws_nothing() {
        let mut s = QpsRScheduler::new(4, 3, 7);
        let before = s.state_digest();
        let lens = vec![0usize; 16];
        let m = run_sched(&mut s, &lens);
        assert!(m.iter().all(|x| x.is_none()));
        assert_eq!(s.state_digest(), before, "idle slot must not draw");
    }

    #[test]
    fn qps_matchings_are_conflict_free() {
        let mut s = QpsRScheduler::new(6, 2, 42);
        for round in 0..64usize {
            let lens: Vec<usize> = (0..36).map(|x| (x * 7 + round) % 4).collect();
            let m = run_sched(&mut s, &lens);
            assert_valid(6, &lens, &m);
        }
    }

    #[test]
    fn qps_longest_voq_wins_contention() {
        // Both inputs hold only output 0, input 1 with the longer VOQ.
        // Whoever proposes (both must, it is their only choice), output 0
        // accepts the longest queue.
        let mut s = QpsRScheduler::new(2, 1, 3);
        let lens = lens_of(2, &[(0, 0, 1), (1, 0, 9)]);
        let m = run_sched(&mut s, &lens);
        assert_eq!(m, vec![None, Some(0)]);
    }

    #[test]
    fn qps_more_rounds_fill_the_matching() {
        // Persistent full demand: with r = n rounds the matching is
        // near-perfect almost every slot (each round matches ≥ 1 pair).
        let n = 4;
        let mut s = QpsRScheduler::new(n, n, 5);
        let lens = vec![3usize; n * n];
        let mut total = 0usize;
        for _ in 0..32 {
            total += run_sched(&mut s, &lens).iter().flatten().count();
        }
        assert!(total >= 32 * (n - 1), "QPS-{n} underfilled: {total}");
    }

    #[test]
    fn swqps_single_voq_executes_immediately() {
        // Zero batch delay: a lone proposal lands in window slot 0 and
        // executes the same slot.
        let mut s = SwQpsScheduler::new(4, 8, 7);
        let lens = lens_of(4, &[(1, 2, 3)]);
        let m = run_sched(&mut s, &lens);
        assert_eq!(m, vec![None, Some(2), None, None]);
    }

    #[test]
    fn swqps_empty_matrix_is_a_pure_noop() {
        let mut s = SwQpsScheduler::new(4, 4, 9);
        let before = s.state_digest();
        let lens = vec![0usize; 16];
        let m = run_sched(&mut s, &lens);
        assert!(m.iter().all(|x| x.is_none()));
        assert_eq!(s.state_digest(), before);
    }

    #[test]
    fn swqps_never_overbooks_a_voq() {
        // One cell, repeatedly offered: the window must hold at most one
        // reservation for it, so it departs exactly once.
        let mut s = SwQpsScheduler::new(2, 4, 11);
        let mut lens = lens_of(2, &[(0, 1, 1)]);
        let mut departures = 0usize;
        for _ in 0..8 {
            let m = run_sched(&mut s, &lens);
            if m[0] == Some(1) {
                departures += 1;
                lens[1] = 0; // cell gone
            }
        }
        assert_eq!(departures, 1);
    }

    #[test]
    fn swqps_contention_packs_across_the_window() {
        // Two inputs, both only output 0: the window serializes them into
        // different slots instead of dropping one.
        let mut s = SwQpsScheduler::new(2, 4, 13);
        let mut lens = lens_of(2, &[(0, 0, 2), (1, 0, 2)]);
        let mut served = [0usize; 2];
        for _ in 0..12 {
            let m = run_sched(&mut s, &lens);
            for (i, j) in m.iter().enumerate() {
                if j.is_some() {
                    served[i] += 1;
                    lens[i * 2] -= 1;
                }
            }
        }
        assert_eq!(served, [2, 2], "window must serialize contention");
    }

    #[test]
    fn swqps_matchings_are_conflict_free() {
        let n = 6;
        let mut s = SwQpsScheduler::new(n, 8, 17);
        let mut lens: Vec<usize> = (0..n * n).map(|x| (x * 5) % 3 + 1).collect();
        for _ in 0..64 {
            let m = {
                let mut out = vec![None; n];
                s.schedule(0, &lens, &mut out);
                out
            };
            assert_valid(n, &lens, &m);
            for (i, j) in m.iter().enumerate() {
                if let Some(j) = j {
                    lens[i * n + j] -= 1;
                }
            }
            // Refill a little to keep pressure on.
            for x in lens.iter_mut().step_by(7) {
                *x += 1;
            }
        }
    }

    #[test]
    fn schedulers_are_deterministic_per_seed() {
        let lens: Vec<usize> = (0..16).map(|x| x % 3).collect();
        let mut a = QpsRScheduler::new(4, 2, 99);
        let mut b = QpsRScheduler::new(4, 2, 99);
        let mut c = QpsRScheduler::new(4, 2, 100);
        let (ma, mb, mc): (Vec<_>, Vec<_>, Vec<_>) = (
            (0..16).map(|_| run_sched(&mut a, &lens)).collect(),
            (0..16).map(|_| run_sched(&mut b, &lens)).collect(),
            (0..16).map(|_| run_sched(&mut c, &lens)).collect(),
        );
        assert_eq!(ma, mb);
        assert_eq!(a.state_digest(), b.state_digest());
        // A different seed must diverge somewhere over 16 contended slots.
        assert_ne!(a.state_digest(), c.state_digest());
        let _ = mc;
    }

    #[test]
    fn boxed_scheduler_forwards() {
        let mut s: Box<dyn CrossbarScheduler> = Box::new(QpsRScheduler::new(4, 1, 1));
        assert_eq!(s.n(), 4);
        assert_eq!(s.name(), "qps-r");
        let lens = lens_of(4, &[(0, 1, 1)]);
        let mut out = vec![None; 4];
        s.schedule(0, &lens, &mut out);
        assert_eq!(out[0], Some(1));
        assert_eq!(s.next_activity(5, 1), Some(6));
        assert_eq!(s.next_activity(5, 0), None);
    }
}
