//! The iSLIP iterative matching arbiter.
//!
//! Each slot the arbiter computes a conflict-free input/output matching
//! over the non-empty VOQs in up to `iterations` request–grant–accept
//! rounds:
//!
//! 1. **Request** — every unmatched input requests every output whose VOQ
//!    is non-empty.
//! 2. **Grant** — every unmatched output grants the requesting input
//!    closest (cyclically) to its grant pointer.
//! 3. **Accept** — every input accepts the granting output closest to its
//!    accept pointer.
//!
//! Pointers advance **only when a grant is accepted in the first
//! iteration** — the detail that makes iSLIP's pointers desynchronize and
//! deliver 100% throughput under uniform traffic (and slot-exact service
//! under admissible persistent patterns once desynchronized).

/// Round-robin grant/accept state for an `N × N` arbiter.
#[derive(Clone, Debug)]
pub struct IslipArbiter {
    n: usize,
    iterations: usize,
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
}

impl IslipArbiter {
    /// An arbiter for an `n × n` crossbar running `iterations` matching
    /// rounds per slot (1 is classic SLIP; log₂N is the usual practical
    /// choice).
    pub fn new(n: usize, iterations: usize) -> Self {
        IslipArbiter {
            n,
            iterations: iterations.max(1),
            grant_ptr: vec![0; n],
            accept_ptr: vec![0; n],
        }
    }

    /// Number of ports.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Compute a matching. `occupied(i, j)` reports whether VOQ `(i, j)`
    /// holds at least one cell. Returns `match_of_input[i] = Some(j)`.
    pub fn matching<F: Fn(usize, usize) -> bool>(&mut self, occupied: F) -> Vec<Option<usize>> {
        let n = self.n;
        let mut input_matched: Vec<Option<usize>> = vec![None; n];
        let mut output_matched: Vec<Option<usize>> = vec![None; n];
        for iter in 0..self.iterations {
            // Grant phase: each unmatched output picks among requesting
            // unmatched inputs.
            let mut grants: Vec<Option<usize>> = vec![None; n]; // output -> input
            for j in 0..n {
                if output_matched[j].is_some() {
                    continue;
                }
                let start = self.grant_ptr[j];
                for off in 0..n {
                    let i = (start + off) % n;
                    if input_matched[i].is_none() && occupied(i, j) {
                        grants[j] = Some(i);
                        break;
                    }
                }
            }
            // Accept phase: each input picks among its grants.
            #[allow(clippy::needless_range_loop)] // i indexes three vectors
            for i in 0..n {
                if input_matched[i].is_some() {
                    continue;
                }
                let start = self.accept_ptr[i];
                let mut chosen: Option<usize> = None;
                for off in 0..n {
                    let j = (start + off) % n;
                    if grants[j] == Some(i) {
                        chosen = Some(j);
                        break;
                    }
                }
                if let Some(j) = chosen {
                    input_matched[i] = Some(j);
                    output_matched[j] = Some(i);
                    // Pointer update only on first-iteration acceptance —
                    // the desynchronization rule.
                    if iter == 0 {
                        self.grant_ptr[j] = (i + 1) % n;
                        self.accept_ptr[i] = (j + 1) % n;
                    }
                }
            }
        }
        input_matched
    }

    /// Reset pointers to the initial configuration.
    pub fn reset(&mut self) {
        self.grant_ptr.fill(0);
        self.accept_ptr.fill(0);
    }

    /// The grant and accept pointer vectors, in that order — exposed so
    /// the stepping-equivalence tests can pin that dense and skip-ahead
    /// runs leave byte-identical arbiter state (pointers must not move
    /// across a skipped idle gap: a grant requires an occupied VOQ, so an
    /// all-empty request matrix cannot accept anything).
    pub fn pointers(&self) -> (&[usize], &[usize]) {
        (&self.grant_ptr, &self.accept_ptr)
    }
}

impl crate::scheduler::CrossbarScheduler for IslipArbiter {
    fn n(&self) -> usize {
        self.n
    }

    fn schedule(&mut self, _now: pps_core::Slot, lens: &[usize], out: &mut [Option<usize>]) {
        let n = self.n;
        let m = self.matching(|i, j| lens[i * n + j] > 0);
        out.copy_from_slice(&m);
    }

    fn reset(&mut self) {
        IslipArbiter::reset(self);
    }

    fn state_digest(&self) -> u64 {
        use pps_core::rng::SplitMix64;
        let mut d = 0x15_117u64;
        for (&g, &a) in self.grant_ptr.iter().zip(&self.accept_ptr) {
            d = SplitMix64::fold_digest(d, ((g as u64) << 32) | a as u64);
        }
        d
    }

    fn name(&self) -> &'static str {
        "islip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_is_matched() {
        let mut a = IslipArbiter::new(4, 1);
        let m = a.matching(|i, j| i == 2 && j == 3);
        assert_eq!(m, vec![None, None, Some(3), None]);
    }

    #[test]
    fn conflicting_requests_serialize() {
        // Inputs 0 and 1 both want output 0 only: exactly one wins per
        // call, and the pointer moves so they alternate.
        let mut a = IslipArbiter::new(2, 1);
        let occupied = |i: usize, j: usize| j == 0 && i < 2;
        let w1 = a.matching(occupied)[0].is_some() as u8 + a.matching(occupied)[0].is_some() as u8;
        // Over two slots both inputs get served once each.
        let _ = w1;
        let mut served = [0u8; 2];
        a.reset();
        for _ in 0..4 {
            let m = a.matching(occupied);
            for (i, mj) in m.iter().enumerate() {
                if mj.is_some() {
                    served[i] += 1;
                }
            }
        }
        assert_eq!(served, [2, 2], "round robin must alternate fairly");
    }

    #[test]
    fn full_demand_yields_perfect_matching_after_desync() {
        // All VOQs occupied: after a few slots the pointers desynchronize
        // and every slot matches all N inputs (the classic iSLIP result).
        let n = 8;
        let mut a = IslipArbiter::new(n, 1);
        let mut perfect = 0;
        for slot in 0..3 * n {
            let m = a.matching(|_, _| true);
            let matched = m.iter().filter(|x| x.is_some()).count();
            if slot >= n {
                assert_eq!(matched, n, "slot {slot}: matching not perfect: {m:?}");
            }
            if matched == n {
                perfect += 1;
            }
        }
        assert!(perfect >= 2 * n);
    }

    #[test]
    fn matching_is_conflict_free() {
        let mut a = IslipArbiter::new(6, 3);
        for _ in 0..32 {
            let m = a.matching(|i, j| (i + j) % 2 == 0);
            let outs: Vec<usize> = m.iter().flatten().copied().collect();
            let set: std::collections::BTreeSet<usize> = outs.iter().copied().collect();
            assert_eq!(outs.len(), set.len(), "two inputs matched one output");
        }
    }

    #[test]
    fn more_iterations_fill_the_matching() {
        // A demand pattern where 1 iteration underfills but 2 converge:
        // inputs {0,1} request {0,1} fully.
        let occupied = |i: usize, j: usize| i < 2 && j < 2;
        let mut a1 = IslipArbiter::new(4, 1);
        let mut a2 = IslipArbiter::new(4, 2);
        let m1 = a1.matching(occupied).iter().flatten().count();
        let m2 = a2.matching(occupied).iter().flatten().count();
        assert!(m2 >= m1);
        assert_eq!(m2, 2, "two iterations must saturate the 2x2 block");
    }
}
