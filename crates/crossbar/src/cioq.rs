//! Combined input-output-queued (CIOQ) crossbar with fabric speedup.
//!
//! The paper's related work (§1.3) cites Chuang, Goel, McKeown & Prabhakar:
//! a CIOQ switch needs fabric speedup about 2 (exactly `2 − 1/N`) to
//! exactly mimic an output-queued switch. This module implements a CIOQ
//! crossbar with integer speedup `s` — the fabric runs `s` matching phases
//! per slot — scheduled *critical cells first*: cells carry their FCFS-OQ
//! departure deadlines (computable online at arrival, exactly like the
//! PPS's CPA), each phase transfers a greedy earliest-deadline matching,
//! and each output emits its earliest-deadline cell once per slot.
//!
//! Experiment E17 sweeps `s` across the threshold: at `s = 1` mimicking
//! fails visibly, from `s = 2` the greedy scheduler tracks the reference
//! closely — the same "speedup ≥ 2 buys exactness" phenomenon that CPA
//! exhibits on the PPS (ablation A2), in a completely different
//! architecture.

use pps_core::prelude::*;
use std::collections::BTreeSet;

/// The matching discipline a [`CioqSwitch`] runs in each fabric phase.
///
/// Cogill & Lall (arXiv cs/0605030) analyze CIOQ switches under *any*
/// maximal matching with speedup 2 and bound the expected extra waiting
/// versus OQ by a conflict envelope `λc / (1 − λc)` with
/// `λc = 2ρ(N−1)/N` — no deadline bookkeeping required. The two policies
/// here bracket that result: [`CioqPolicy::CriticalFirst`] uses the exact
/// FCFS-OQ deadlines (the Chuang et al. mimicking flavour), while
/// [`CioqPolicy::MaximalRr`] is a deliberately deadline-blind maximal
/// matching — rotating-start, longest-VOQ-first greedy — that only enjoys
/// the Cogill–Lall guarantee. Experiment E24 charts the gap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CioqPolicy {
    /// Greedy earliest-deadline-first over VOQ heads (deadlines are the
    /// online FCFS-OQ departure times, as CPA computes them for the PPS).
    CriticalFirst,
    /// Deadline-blind greedy maximal matching: inputs are visited in
    /// round-robin order starting at `(now + phase) mod N`, and each takes
    /// its longest VOQ among still-unmatched outputs. Maximal by
    /// construction — an input goes unmatched only when every non-empty
    /// VOQ it holds points at a taken output.
    MaximalRr,
}

impl CioqPolicy {
    /// Short policy name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CioqPolicy::CriticalFirst => "critical-first",
            CioqPolicy::MaximalRr => "maximal-rr",
        }
    }
}

/// A CIOQ crossbar with `s` matching phases per slot.
#[derive(Clone, Debug)]
pub struct CioqSwitch {
    n: usize,
    speedup: usize,
    policy: CioqPolicy,
    /// VOQ `(i, j)` holding `(deadline, id)` in FIFO (= deadline) order —
    /// the matching and the output buffer only ever need the id.
    voqs: Vec<std::collections::VecDeque<(Slot, CellId)>>,
    /// FCFS-OQ deadline oracle per output.
    dt_last: Vec<Option<Slot>>,
    /// Output-side buffers: cells awaiting emission, keyed by deadline.
    outq: Vec<BTreeSet<(Slot, CellId)>>,
    /// Cells currently parked at the outputs (`outq` entries).
    parked: usize,
    max_outq: usize,
}

impl CioqSwitch {
    /// An idle `n × n` CIOQ switch with fabric speedup `s ≥ 1`, scheduled
    /// critical-cells-first.
    pub fn new(n: usize, speedup: usize) -> Self {
        CioqSwitch::with_policy(n, speedup, CioqPolicy::CriticalFirst)
    }

    /// An idle `n × n` CIOQ switch with fabric speedup `s ≥ 1` under an
    /// explicit matching policy.
    pub fn with_policy(n: usize, speedup: usize, policy: CioqPolicy) -> Self {
        CioqSwitch {
            n,
            speedup: speedup.max(1),
            policy,
            voqs: (0..n * n).map(|_| Default::default()).collect(),
            dt_last: vec![None; n],
            outq: (0..n).map(|_| BTreeSet::new()).collect(),
            parked: 0,
            max_outq: 0,
        }
    }

    /// The matching policy in force.
    pub fn policy(&self) -> CioqPolicy {
        self.policy
    }

    /// Advance one slot.
    pub fn slot(&mut self, now: Slot, arrivals: &[Cell], log: &mut RunLog) {
        use pps_core::telemetry::{self, Engine, EventKind};
        pps_core::perf::record_slots(1);
        for cell in arrivals {
            debug_assert_eq!(cell.arrival, now);
            if telemetry::on() {
                telemetry::record(
                    Engine::Cioq,
                    now,
                    EventKind::Arrival {
                        cell: cell.id,
                        input: cell.input,
                        output: cell.output,
                    },
                );
            }
            let j = cell.output.idx();
            let dt = match self.dt_last[j] {
                Some(prev) => now.max(prev + 1),
                None => now,
            };
            self.dt_last[j] = Some(dt);
            self.voqs[cell.input.idx() * self.n + j].push_back((dt, cell.id));
        }
        // s matching phases per slot, policy-dependent. Either way the
        // transferred cell parks at its output keyed by its FCFS-OQ
        // deadline, and emission below is deadline-ordered — per-flow
        // deadlines are strictly increasing and VOQs are FIFO, so flow
        // order survives even the deadline-blind policy.
        for phase in 0..self.speedup {
            match self.policy {
                // Greedy earliest-deadline-first over VOQ heads.
                CioqPolicy::CriticalFirst => {
                    let mut heads: Vec<(Slot, CellId, usize, usize)> = Vec::new();
                    for i in 0..self.n {
                        for j in 0..self.n {
                            if let Some(&(dt, id)) = self.voqs[i * self.n + j].front() {
                                heads.push((dt, id, i, j));
                            }
                        }
                    }
                    heads.sort_unstable();
                    let mut input_used = vec![false; self.n];
                    let mut output_used = vec![false; self.n];
                    for (_dt, _id, i, j) in heads {
                        if input_used[i] || output_used[j] {
                            continue;
                        }
                        input_used[i] = true;
                        output_used[j] = true;
                        self.transfer(now, i, j);
                    }
                }
                // Rotating-start, longest-VOQ-first greedy maximal
                // matching, blind to deadlines.
                CioqPolicy::MaximalRr => {
                    let start = (now as usize).wrapping_add(phase) % self.n;
                    let mut output_used = vec![false; self.n];
                    for off in 0..self.n {
                        let i = (start + off) % self.n;
                        let mut best: Option<(usize, usize)> = None; // (len, j)
                        for joff in 0..self.n {
                            let j = (start + joff) % self.n;
                            if output_used[j] {
                                continue;
                            }
                            let l = self.voqs[i * self.n + j].len();
                            // Ties go to the output visited first from the
                            // rotating start.
                            if l > 0 && best.is_none_or(|(bl, _)| l > bl) {
                                best = Some((l, j));
                            }
                        }
                        if let Some((_, j)) = best {
                            output_used[j] = true;
                            self.transfer(now, i, j);
                        }
                    }
                }
            }
        }
        // Emission: earliest deadline per output, one per slot.
        for j in 0..self.n {
            self.max_outq = self.max_outq.max(self.outq[j].len());
            if let Some(&(dt, id)) = self.outq[j].first() {
                self.outq[j].remove(&(dt, id));
                self.parked -= 1;
                if telemetry::on() {
                    telemetry::record(
                        Engine::Cioq,
                        now,
                        EventKind::Depart {
                            cell: id,
                            output: PortId(j as u32),
                        },
                    );
                }
                log.set_departure(id, now);
            }
        }
    }

    /// Move the head of VOQ `(i, j)` across the fabric into output `j`'s
    /// buffer.
    fn transfer(&mut self, now: Slot, i: usize, j: usize) {
        use pps_core::telemetry::{self, Engine, EventKind};
        let (dt, id) = self.voqs[i * self.n + j].pop_front().expect("head exists");
        if telemetry::on() {
            // Parked at the output buffer awaiting its deadline turn.
            telemetry::record(
                Engine::Cioq,
                now,
                EventKind::ReseqHold {
                    cell: id,
                    output: PortId(j as u32),
                },
            );
        }
        self.outq[j].insert((dt, id));
        self.parked += 1;
    }

    /// Cells still inside the switch.
    pub fn backlog(&self) -> usize {
        self.voqs.iter().map(|q| q.len()).sum::<usize>() + self.parked
    }

    /// The next slot strictly after `now` at which the switch does
    /// anything, ignoring future arrivals. The deadline oracle (`dt_last`)
    /// holds absolute slots and needs no catch-up; an empty slot is a pure
    /// no-op, so this is `now + 1` with backlog or nothing without.
    pub fn next_activity(&self, now: Slot) -> Option<Slot> {
        (self.backlog() > 0).then(|| now + 1)
    }

    /// Largest output-queue occupancy reached.
    pub fn max_output_queue(&self) -> usize {
        self.max_outq
    }
}

/// Run a trace through a fresh CIOQ switch until it drains. Uses the
/// process-default stepping mode.
pub fn run_cioq(trace: &Trace, n: usize, speedup: usize) -> RunLog {
    run_cioq_stepped(trace, n, speedup, pps_core::stepping::process_default())
}

/// [`run_cioq`] with an explicit stepping mode. Identical logs either way:
/// an empty CIOQ slot moves no state (see [`CioqSwitch::next_activity`]),
/// so skip-ahead jumps idle stretches and meters them as skipped.
pub fn run_cioq_stepped(
    trace: &Trace,
    n: usize,
    speedup: usize,
    mode: pps_core::Stepping,
) -> RunLog {
    run_cioq_policy(trace, n, speedup, CioqPolicy::CriticalFirst, mode)
}

/// [`run_cioq_stepped`] under an explicit matching policy.
pub fn run_cioq_policy(
    trace: &Trace,
    n: usize,
    speedup: usize,
    policy: CioqPolicy,
    mode: pps_core::Stepping,
) -> RunLog {
    let cells = trace.cells(n);
    let mut log = RunLog::with_cells(&cells);
    let mut sw = CioqSwitch::with_policy(n, speedup, policy);
    let mut next = 0usize;
    let mut now: Slot = 0;
    let mut scratch: Vec<Cell> = Vec::new();
    let cap = trace.horizon() + (trace.len() as Slot + 2) * (n as Slot) + 64;
    while next < cells.len() || sw.backlog() > 0 {
        scratch.clear();
        while next < cells.len() && cells[next].arrival == now {
            scratch.push(cells[next]);
            next += 1;
        }
        sw.slot(now, &scratch, &mut log);
        now += 1;
        if now > cap {
            break;
        }
        if mode == pps_core::Stepping::SkipAhead
            && next < cells.len()
            && cells[next].arrival > now
            && sw.backlog() == 0
        {
            pps_core::perf::record_skipped(cells[next].arrival - now);
            now = cells[next].arrival;
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_reference::oq::run_oq;

    fn trace(v: Vec<Arrival>, n: usize) -> Trace {
        Trace::build(v, n).unwrap()
    }

    #[test]
    fn lone_cell_is_passthrough() {
        let t = trace(vec![Arrival::new(2, 0, 1)], 2);
        let log = run_cioq(&t, 2, 2);
        assert_eq!(log.get(CellId(0)).delay(), Some(0));
    }

    #[test]
    fn speedup_two_mimics_oq_under_fanin() {
        // The Chuang et al. worst-ish case flavour: several inputs burst
        // into one output while also feeding others.
        let n = 4;
        let mut v = Vec::new();
        for s in 0..60u64 {
            for i in 0..n as u32 {
                let j = if s % 3 == 0 {
                    0
                } else {
                    (i + s as u32) % n as u32
                };
                v.push(Arrival::new(s, i, j));
            }
        }
        let t = trace(v, n);
        let oq = run_oq(&t, n);
        let cioq = run_cioq(&t, n, 2);
        assert_eq!(cioq.undelivered(), 0);
        for (a, b) in cioq.records().iter().zip(oq.records()) {
            let rel = a.departure.unwrap() as i64 - b.departure.unwrap() as i64;
            assert!(rel <= 1, "cell {:?} late by {rel}", a.id);
        }
    }

    #[test]
    fn speedup_one_falls_behind() {
        // At s = 1 the fabric is the bottleneck: some cell must miss its
        // OQ deadline under concentrated fan-in.
        let n = 4;
        let mut v = Vec::new();
        for s in 0..80u64 {
            for i in 0..n as u32 {
                // Half the slots everyone hits output 0; otherwise spread.
                let j = if s % 2 == 0 { 0 } else { i };
                v.push(Arrival::new(s, i, j));
            }
        }
        let t = trace(v, n);
        let oq = run_oq(&t, n);
        let cioq = run_cioq(&t, n, 1);
        assert_eq!(cioq.undelivered(), 0);
        let worst = cioq
            .records()
            .iter()
            .zip(oq.records())
            .map(|(a, b)| a.departure.unwrap() as i64 - b.departure.unwrap() as i64)
            .max()
            .unwrap();
        assert!(worst > 0, "speedup 1 should visibly miss deadlines");
    }

    #[test]
    fn flow_order_is_preserved() {
        let n = 4;
        let t = pps_traffic::gen::OnOffGen::uniform(8.0, 0.8, 3).trace(n, 400);
        let log = run_cioq(&t, n, 2);
        assert_eq!(log.undelivered(), 0);
        assert!(pps_reference::checker::check_flow_order(&log).is_empty());
    }

    #[test]
    fn maximal_rr_preserves_flow_order() {
        let n = 4;
        let t = pps_traffic::gen::OnOffGen::uniform(8.0, 0.8, 7).trace(n, 400);
        for s in [1, 2] {
            let log = run_cioq_policy(&t, n, s, CioqPolicy::MaximalRr, pps_core::Stepping::Dense);
            assert_eq!(log.undelivered(), 0);
            assert!(pps_reference::checker::check_flow_order(&log).is_empty());
        }
    }

    #[test]
    fn maximal_rr_is_maximal() {
        // Full persistent demand: a maximal matching over an all-occupied
        // VOQ matrix is perfect, so at speedup 1 every output emits every
        // slot once the pipeline fills — total throughput equals n per
        // slot over the busy period.
        let n = 4;
        let mut v = Vec::new();
        for s in 0..100u64 {
            for i in 0..n as u32 {
                v.push(Arrival::new(s, i, (i + s as u32) % n as u32));
            }
        }
        let t = trace(v, n);
        let log = run_cioq_policy(&t, n, 1, CioqPolicy::MaximalRr, pps_core::Stepping::Dense);
        assert_eq!(log.undelivered(), 0);
        // Perfect per-slot service ⇒ drain ends by horizon + small slack.
        let last = log
            .records()
            .iter()
            .filter_map(|r| r.departure)
            .max()
            .unwrap();
        assert!(
            last <= 100 + n as u64,
            "maximal matching drained late: {last}"
        );
    }

    #[test]
    fn maximal_rr_tracks_oq_at_speedup_two() {
        // The Cogill–Lall regime: any maximal matching at speedup 2 keeps
        // mean delay within a constant envelope of OQ at moderate load.
        let n = 8;
        let t = pps_traffic::gen::BernoulliGen::uniform(0.45, 17).trace(n, 2_000);
        let oq = run_oq(&t, n).mean_delay().unwrap();
        let mm = run_cioq_policy(&t, n, 2, CioqPolicy::MaximalRr, pps_core::Stepping::Dense)
            .mean_delay()
            .unwrap();
        // λc = 2ρ(N−1)/N = 0.7875 ⇒ envelope λc/(1−λc) ≈ 3.7 slots.
        assert!(mm <= oq + 3.8, "maximal-rr {mm} vs oq {oq}");
    }

    #[test]
    fn higher_speedup_never_hurts() {
        let n = 8;
        let t = pps_traffic::gen::BernoulliGen::uniform(0.95, 9).trace(n, 800);
        let d1 = run_cioq(&t, n, 1).mean_delay().unwrap();
        let d2 = run_cioq(&t, n, 2).mean_delay().unwrap();
        let d3 = run_cioq(&t, n, 3).mean_delay().unwrap();
        assert!(d2 <= d1 + 1e-9);
        assert!(d3 <= d2 + 1e-9);
    }
}
