//! Property tests for the crossbar substrates.

use proptest::prelude::*;

use pps_crossbar::{run_cioq, run_crossbar, IslipArbiter};
use pps_reference::checker::check_flow_order;
use pps_reference::oq::run_oq;
use pps_traffic::gen::BernoulliGen;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn islip_matchings_are_conflict_free_and_maximal(
        n in 2usize..8,
        seed in 0u64..500,
        iterations in 1usize..4,
    ) {
        // Random occupancy pattern.
        let mut occ = vec![false; n * n];
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for cell in occ.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *cell = (x >> 62) & 1 == 1;
        }
        let mut arb = IslipArbiter::new(n, iterations);
        let m = arb.matching(|i, j| occ[i * n + j]);
        // Conflict-free in both directions.
        let mut outs = std::collections::BTreeSet::new();
        for (i, mj) in m.iter().enumerate() {
            if let Some(j) = mj {
                prop_assert!(occ[i * n + j], "matched an empty VOQ");
                prop_assert!(outs.insert(*j), "output matched twice");
            }
        }
        // With n iterations the matching is maximal: no (i, j) with both
        // endpoints unmatched and a cell between them.
        let mut arb_full = IslipArbiter::new(n, n);
        let m = arb_full.matching(|i, j| occ[i * n + j]);
        let matched_outs: std::collections::BTreeSet<usize> =
            m.iter().flatten().copied().collect();
        for i in 0..n {
            if m[i].is_some() {
                continue;
            }
            for j in 0..n {
                if occ[i * n + j] {
                    prop_assert!(
                        matched_outs.contains(&j),
                        "augmenting pair ({i}, {j}) left unmatched"
                    );
                }
            }
        }
    }

    #[test]
    fn crossbar_obligations(n in 2usize..8, seed in 0u64..200) {
        let trace = BernoulliGen::uniform(0.8, seed).trace(n, 60);
        let log = run_crossbar(&trace, n, 2);
        prop_assert_eq!(log.undelivered(), 0);
        prop_assert!(check_flow_order(&log).is_empty());
        // One departure per output per slot.
        let mut seen = std::collections::BTreeSet::new();
        for r in log.records() {
            if let Some(d) = r.departure {
                prop_assert!(seen.insert((r.output, d)), "double departure");
                prop_assert!(d >= r.arrival);
            }
        }
    }

    #[test]
    fn cioq_obligations_and_monotone_speedup(n in 2usize..7, seed in 0u64..200) {
        let trace = BernoulliGen::uniform(0.9, seed).trace(n, 60);
        let oq = run_oq(&trace, n);
        let mut prev_worst = i64::MAX;
        for s in [1usize, 2, 3] {
            let log = run_cioq(&trace, n, s);
            prop_assert_eq!(log.undelivered(), 0, "speedup {}", s);
            prop_assert!(check_flow_order(&log).is_empty());
            let worst = log
                .records()
                .iter()
                .zip(oq.records())
                .map(|(a, b)| a.departure.unwrap() as i64 - b.departure.unwrap() as i64)
                .max()
                .unwrap_or(0);
            prop_assert!(worst <= prev_worst, "speedup {} worsened: {} > {}", s, worst, prev_worst);
            prev_worst = worst;
            // CIOQ can never beat the ideal reference switch per cell
            // minimum: its relative delay is >= 0 in the worst cell.
            prop_assert!(worst >= 0);
        }
    }
}
