//! Dense vs skip-ahead byte-identity for every crossbar scheduler.
//!
//! Skip-ahead stepping elides slots with no arrivals and zero backlog. For
//! that to be sound the elided slots must be *pure no-ops* for the
//! scheduler: iSLIP pointers must not move (a grant requires an occupied
//! VOQ), and the sampling schedulers must not consume RNG draws (draws
//! happen only for backlogged inputs). These properties are easy to break
//! silently — a "fairness" tweak that rotates a pointer every slot, or a
//! sampler that draws before checking occupancy, produces identical logs
//! on gap-free traces and diverges only once a gap is skipped. So the
//! property here pins, on gap-heavy traces, both the **visible log** and
//! the **hidden scheduler state** ([`CrossbarScheduler::state_digest`],
//! plus the raw iSLIP pointers) across the two stepping modes, and the
//! CIOQ switch under both matching policies for good measure.

use pps_core::rng::SplitMix64;
use pps_core::trace::{Arrival, Trace};
use pps_core::{Slot, Stepping};
use pps_crossbar::{
    run_cioq_policy, run_crossbar_with, CioqPolicy, CrossbarScheduler, IslipArbiter, QpsRScheduler,
    SwQpsScheduler,
};
use proptest::prelude::*;

/// A bursty trace with long idle gaps — the shape that exercises the
/// skip-ahead path (backlog drains, then nothing arrives for a while).
fn gappy_trace(n: usize, seed: u64, bursts: usize) -> Trace {
    let mut rng = SplitMix64::new(seed).derive(0xB0);
    let mut v: Vec<Arrival> = Vec::new();
    let mut slot: Slot = 0;
    for _ in 0..bursts {
        let burst_len = 1 + rng.below(4);
        for _ in 0..burst_len {
            for i in 0..n as u32 {
                // Dense-ish bursts so VOQs contend and schedulers mutate.
                if rng.chance(0.8) {
                    v.push(Arrival::new(slot, i, rng.below(n as u64) as u32));
                }
            }
            slot += 1;
        }
        // An idle gap long enough that dense stepping walks many empty
        // slots while skip-ahead jumps them in one hop.
        slot += 3 + rng.below(197);
    }
    // Ensure at least one cell so the run is non-trivial.
    if v.is_empty() {
        v.push(Arrival::new(0, 0, 0));
    }
    Trace::build(v, n).unwrap()
}

/// Run `make()`'s scheduler under both modes; require identical departures
/// and identical final hidden state.
fn assert_equivalent<S: CrossbarScheduler, F: Fn() -> S>(t: &Trace, make: F) -> (u64, u64) {
    let (dense_log, dense_sw) = run_crossbar_with(t, make(), Stepping::Dense);
    let (skip_log, skip_sw) = run_crossbar_with(t, make(), Stepping::SkipAhead);
    let dense: Vec<_> = dense_log
        .records()
        .iter()
        .map(|r| (r.id, r.arrival, r.departure))
        .collect();
    let skip: Vec<_> = skip_log
        .records()
        .iter()
        .map(|r| (r.id, r.arrival, r.departure))
        .collect();
    assert_eq!(
        dense,
        skip,
        "{}: logs diverged across stepping",
        make().name()
    );
    assert_eq!(
        dense_log.undelivered(),
        0,
        "{}: run did not drain",
        make().name()
    );
    let (d, s) = (
        dense_sw.scheduler().state_digest(),
        skip_sw.scheduler().state_digest(),
    );
    assert_eq!(d, s, "{}: hidden scheduler state diverged", make().name());
    (d, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn islip_pointers_survive_skipped_gaps(
        n in 2usize..6,
        iterations in 1usize..4,
        seed in 0u64..100_000,
        bursts in 1usize..6,
    ) {
        let t = gappy_trace(n, seed, bursts);
        let (_, dense_sw) = run_crossbar_with(&t, IslipArbiter::new(n, iterations), Stepping::Dense);
        let (_, skip_sw) = run_crossbar_with(&t, IslipArbiter::new(n, iterations), Stepping::SkipAhead);
        // Byte-identical pointer vectors, not just equal digests.
        prop_assert_eq!(dense_sw.scheduler().pointers(), skip_sw.scheduler().pointers());
        prop_assert_eq!(
            dense_sw.scheduler().state_digest(),
            skip_sw.scheduler().state_digest()
        );
        assert_equivalent(&t, || IslipArbiter::new(n, iterations));
    }

    #[test]
    fn qps_r_is_stepping_invariant(
        n in 2usize..6,
        r in 1usize..4,
        seed in 0u64..100_000,
        bursts in 1usize..6,
    ) {
        let t = gappy_trace(n, seed, bursts);
        assert_equivalent(&t, || QpsRScheduler::new(n, r, seed ^ 0xA5));
    }

    #[test]
    fn sw_qps_is_stepping_invariant(
        n in 2usize..6,
        window in 1usize..8,
        seed in 0u64..100_000,
        bursts in 1usize..6,
    ) {
        let t = gappy_trace(n, seed, bursts);
        assert_equivalent(&t, || SwQpsScheduler::new(n, window, seed ^ 0x51));
    }

    #[test]
    fn cioq_policies_are_stepping_invariant(
        n in 2usize..6,
        speedup in 1usize..3,
        seed in 0u64..100_000,
        bursts in 1usize..5,
    ) {
        let t = gappy_trace(n, seed, bursts);
        for policy in [CioqPolicy::CriticalFirst, CioqPolicy::MaximalRr] {
            let dense = run_cioq_policy(&t, n, speedup, policy, Stepping::Dense);
            let skip = run_cioq_policy(&t, n, speedup, policy, Stepping::SkipAhead);
            let d: Vec<_> = dense.records().iter().map(|r| (r.id, r.departure)).collect();
            let s: Vec<_> = skip.records().iter().map(|r| (r.id, r.departure)).collect();
            prop_assert_eq!(d, s, "policy {} diverged", policy.name());
            prop_assert_eq!(dense.undelivered(), 0);
        }
    }
}

/// Deterministic regression: a hand-built trace whose gap once exposed a
/// pointer that moved on empty matrices would fail here with a stable
/// counterexample (no proptest shrinking needed to see it).
#[test]
fn islip_pointer_freeze_regression() {
    let n = 4;
    let mut v = Vec::new();
    // Burst: full contention on output 0 for 4 slots, then a 1000-slot
    // gap, then one probe cell per input.
    for s in 0..4u64 {
        for i in 0..n as u32 {
            v.push(Arrival::new(s, i, 0));
        }
    }
    for i in 0..n as u32 {
        v.push(Arrival::new(1100 + i as u64, i, (i + 1) % n as u32));
    }
    let t = Trace::build(v, n).unwrap();
    let (dense_log, dense_sw) = run_crossbar_with(&t, IslipArbiter::new(n, 1), Stepping::Dense);
    let (skip_log, skip_sw) = run_crossbar_with(&t, IslipArbiter::new(n, 1), Stepping::SkipAhead);
    assert_eq!(
        dense_sw.scheduler().pointers(),
        skip_sw.scheduler().pointers()
    );
    let d: Vec<_> = dense_log.records().iter().map(|r| r.departure).collect();
    let s: Vec<_> = skip_log.records().iter().map(|r| r.departure).collect();
    assert_eq!(d, s);
}
