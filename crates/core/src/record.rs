//! Per-cell run records.
//!
//! Each switch engine (PPS and shadow) produces a [`RunLog`]: for every cell
//! of the trace, when it arrived, when it departed, and — for the PPS —
//! which plane carried it. Relative queuing delay and relative delay jitter
//! are computed by joining two logs on [`CellId`] in `pps-analysis`.

use crate::cell::Cell;
use crate::ids::{CellId, FlowId, PlaneId, PortId};
use crate::time::Slot;
use serde::{Deserialize, Serialize};

/// The fate of one cell in one switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellRecord {
    /// The cell's global id.
    pub id: CellId,
    /// Input port.
    pub input: PortId,
    /// Output port.
    pub output: PortId,
    /// Per-flow sequence number.
    pub seq: u32,
    /// Arrival slot.
    pub arrival: Slot,
    /// Departure slot, or `None` if the cell was still queued when the
    /// simulation horizon was reached.
    pub departure: Option<Slot>,
    /// Plane the cell traversed (PPS only; `None` in shadow-switch logs).
    pub plane: Option<PlaneId>,
}

impl CellRecord {
    /// Queuing delay in slots (`departure − arrival`), if the cell departed.
    ///
    /// A cell that departs in its arrival slot has delay 0 — the paper
    /// explicitly allows this ("a cell can leave the PPS in the same
    /// time-slot it arrives").
    pub fn delay(&self) -> Option<Slot> {
        self.departure.map(|d| d - self.arrival)
    }

    /// The record's flow.
    pub fn flow(&self) -> FlowId {
        FlowId {
            input: self.input,
            output: self.output,
        }
    }
}

/// Dense per-cell log of one simulation run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunLog {
    records: Vec<CellRecord>,
}

impl RunLog {
    /// Pre-size a log for `cells` cells (records are inserted by id).
    pub fn with_cells(cells: &[Cell]) -> Self {
        RunLog {
            records: cells
                .iter()
                .map(|c| CellRecord {
                    id: c.id,
                    input: c.input,
                    output: c.output,
                    seq: c.seq,
                    arrival: c.arrival,
                    departure: None,
                    plane: None,
                })
                .collect(),
        }
    }

    /// Record the plane assignment of a cell.
    pub fn set_plane(&mut self, id: CellId, plane: PlaneId) {
        self.records[id.idx()].plane = Some(plane);
    }

    /// Record the departure slot of a cell.
    ///
    /// # Panics
    /// Panics if the cell already departed — a duplicated departure is an
    /// engine bug, never a modeling outcome.
    pub fn set_departure(&mut self, id: CellId, slot: Slot) {
        let rec = &mut self.records[id.idx()];
        assert!(
            rec.departure.is_none(),
            "cell {id:?} departed twice (slots {:?} and {slot})",
            rec.departure
        );
        rec.departure = Some(slot);
    }

    /// All records, indexed by cell id.
    pub fn records(&self) -> &[CellRecord] {
        &self.records
    }

    /// The record of a specific cell.
    pub fn get(&self, id: CellId) -> &CellRecord {
        &self.records[id.idx()]
    }

    /// Number of cells in the log.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of cells that never departed (still queued at horizon).
    pub fn undelivered(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.departure.is_none())
            .count()
    }

    /// Maximum queuing delay over delivered cells.
    pub fn max_delay(&self) -> Option<Slot> {
        self.records.iter().filter_map(|r| r.delay()).max()
    }

    /// Mean queuing delay over delivered cells.
    pub fn mean_delay(&self) -> Option<f64> {
        let (sum, n) = self
            .records
            .iter()
            .filter_map(|r| r.delay())
            .fold((0u128, 0u64), |(s, n), d| (s + d as u128, n + 1));
        (n > 0).then(|| sum as f64 / n as f64)
    }

    /// Latest departure slot in the log.
    pub fn makespan(&self) -> Option<Slot> {
        self.records.iter().filter_map(|r| r.departure).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Arrival, Trace};

    fn demo_log() -> RunLog {
        let t = Trace::build(
            vec![
                Arrival::new(0, 0, 0),
                Arrival::new(1, 0, 0),
                Arrival::new(2, 1, 0),
            ],
            2,
        )
        .unwrap();
        RunLog::with_cells(&t.cells(2))
    }

    #[test]
    fn delays_and_aggregates() {
        let mut log = demo_log();
        log.set_departure(CellId(0), 0);
        log.set_departure(CellId(1), 4);
        assert_eq!(log.get(CellId(0)).delay(), Some(0));
        assert_eq!(log.get(CellId(1)).delay(), Some(3));
        assert_eq!(log.max_delay(), Some(3));
        assert_eq!(log.mean_delay(), Some(1.5));
        assert_eq!(log.undelivered(), 1);
        assert_eq!(log.makespan(), Some(4));
    }

    #[test]
    #[should_panic(expected = "departed twice")]
    fn double_departure_is_a_bug() {
        let mut log = demo_log();
        log.set_departure(CellId(0), 1);
        log.set_departure(CellId(0), 2);
    }

    #[test]
    fn plane_assignment_is_recorded() {
        let mut log = demo_log();
        log.set_plane(CellId(2), PlaneId(1));
        assert_eq!(log.get(CellId(2)).plane, Some(PlaneId(1)));
        assert_eq!(log.get(CellId(0)).plane, None);
    }
}
