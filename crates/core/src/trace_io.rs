//! Trace persistence: a plain CSV interchange format.
//!
//! Traces are the experimental record — the adversarial constructions in
//! particular are worth archiving and replaying across machines and
//! versions. The format is a three-column CSV (`slot,input,output`), one
//! cell per line, understood by every plotting tool:
//!
//! ```text
//! slot,input,output
//! 0,3,0
//! 1,4,0
//! ```

use crate::error::ModelError;
use crate::trace::{Arrival, Trace};
use std::io::{BufRead, BufReader, Read, Write};

/// Serialize a trace as CSV.
pub fn write_csv<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    writeln!(w, "slot,input,output")?;
    for a in trace.arrivals() {
        writeln!(w, "{},{},{}", a.slot, a.input.0, a.output.0)?;
    }
    Ok(())
}

/// Parse a CSV trace for an `n`-port switch (validates like
/// [`Trace::build`]).
pub fn read_csv<R: Read>(r: R, n: usize) -> Result<Trace, ModelError> {
    let reader = BufReader::new(r);
    let mut arrivals = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ModelError::MalformedTrace {
            reason: format!("I/O error at line {}: {e}", lineno + 1),
        })?;
        let line = line.trim();
        if line.is_empty() || (lineno == 0 && line.starts_with("slot")) {
            continue;
        }
        let mut parts = line.split(',');
        let mut field = |name: &str| -> Result<u64, ModelError> {
            parts
                .next()
                .ok_or_else(|| ModelError::MalformedTrace {
                    reason: format!("line {}: missing {name}", lineno + 1),
                })?
                .trim()
                .parse()
                .map_err(|e| ModelError::MalformedTrace {
                    reason: format!("line {}: bad {name}: {e}", lineno + 1),
                })
        };
        let slot = field("slot")?;
        let input = field("input")? as u32;
        let output = field("output")? as u32;
        arrivals.push(Arrival::new(slot, input, output));
    }
    Trace::build(arrivals, n)
}

/// Round-trip convenience: write `trace` to `path`.
pub fn save(trace: &Trace, path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_csv(trace, std::io::BufWriter::new(file))
}

/// Round-trip convenience: load a trace from `path`.
pub fn load(path: &std::path::Path, n: usize) -> Result<Trace, ModelError> {
    let file = std::fs::File::open(path).map_err(|e| ModelError::MalformedTrace {
        reason: format!("cannot open {}: {e}", path.display()),
    })?;
    read_csv(file, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Trace {
        Trace::build(
            vec![
                Arrival::new(0, 3, 0),
                Arrival::new(1, 4, 0),
                Arrival::new(7, 0, 2),
            ],
            5,
        )
        .unwrap()
    }

    #[test]
    fn csv_round_trip() {
        let t = demo();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let parsed = read_csv(&buf[..], 5).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn header_and_blank_lines_are_tolerated() {
        let csv = "slot,input,output\n\n0,1,2\n\n3,0,1\n";
        let t = read_csv(csv.as_bytes(), 3).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn garbage_is_rejected_with_line_numbers() {
        let csv = "slot,input,output\n0,1,hello\n";
        let err = read_csv(csv.as_bytes(), 3).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn out_of_range_ports_are_rejected() {
        let csv = "0,9,0\n";
        assert!(read_csv(csv.as_bytes(), 3).is_err());
        // Output side and the n boundary itself (ports are 0..n).
        assert!(read_csv("0,0,9\n".as_bytes(), 3).is_err());
        assert!(read_csv("0,3,0\n".as_bytes(), 3).is_err());
        assert!(read_csv("0,2,2\n".as_bytes(), 3).is_ok());
    }

    #[test]
    fn trailing_newlines_and_crlf_are_tolerated() {
        // Editors love appending newlines; Windows tools write CRLF. Both
        // parse to the same trace as the canonical form.
        let canonical = read_csv("0,1,2\n3,0,1\n".as_bytes(), 3).unwrap();
        let trailing = read_csv("0,1,2\n3,0,1\n\n\n".as_bytes(), 3).unwrap();
        let no_final = read_csv("0,1,2\n3,0,1".as_bytes(), 3).unwrap();
        let crlf = read_csv("slot,input,output\r\n0,1,2\r\n3,0,1\r\n".as_bytes(), 3).unwrap();
        assert_eq!(trailing, canonical);
        assert_eq!(no_final, canonical);
        assert_eq!(crlf, canonical);
    }

    #[test]
    fn header_only_file_is_an_empty_trace() {
        let t = read_csv("slot,input,output\n".as_bytes(), 4).unwrap();
        assert_eq!(t.len(), 0);
        // ... and so is a completely empty file.
        let t = read_csv("".as_bytes(), 4).unwrap();
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn header_after_first_line_is_data_and_rejected() {
        // The header is only recognized on line 1; a stray one later is a
        // parse error with the right line number.
        let err = read_csv("0,1,2\nslot,input,output\n".as_bytes(), 3).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pps_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        let t = demo();
        save(&t, &path).unwrap();
        let loaded = load(&path, 5).unwrap();
        assert_eq!(loaded, t);
        let _ = std::fs::remove_file(&path);
    }
}
