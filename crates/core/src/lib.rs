//! # pps-core — formal model substrate for the Parallel Packet Switch reproduction
//!
//! This crate implements Section 2 ("Formal Model for Parallel Packet
//! Switches") of Attiya & Hay, *The Inherent Queuing Delay of Parallel Packet
//! Switches*, SPAA 2004:
//!
//! * **Slotted time** ([`Slot`]): a time slot is the time needed to transmit
//!   one cell at the external line rate `R`. Per slot at most one cell
//!   arrives at each input port and at most one cell departs each output
//!   port.
//! * **Cells and flows** ([`cell::Cell`], [`ids::FlowId`]): fixed-size cells
//!   belonging to input→output flows whose internal order must be preserved.
//! * **Rate-constrained internal lines** ([`link::LinkBank`]): the internal
//!   lines run at rate `r = R/r'`; a cell transmitted on a line occupies it
//!   for `r'` slots (the paper's *input constraint* and *output constraint*).
//! * **Demultiplexor state machines** ([`demux`]): the paper models the
//!   dispatching logic of each input port as a deterministic state machine
//!   classified by the information it may use — fully distributed, `u`
//!   real-time distributed, or centralized. The traits in [`demux`] encode
//!   exactly that classification, and every concrete algorithm in the
//!   workspace implements them.
//!
//! The crate deliberately contains no simulation engine: the PPS engine
//! lives in `pps-switch`, the reference (shadow) switch in `pps-reference`,
//! and traffic in `pps-traffic`. Keeping the model types and the
//! [`demux::Demultiplexor`] trait here lets the adversarial traffic
//! constructions probe demultiplexor state machines without depending on the
//! engine — mirroring the paper's treatment of demultiplexors as standalone
//! automata.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod cell;
pub mod cell_pool;
pub mod config;
pub mod demux;
pub mod error;
pub mod fault;
pub mod ids;
pub mod link;
pub mod oracle;
pub mod perf;
pub mod prelude;
pub mod queue;
pub mod rate;
pub mod record;
pub mod rng;
pub mod snapshot;
pub mod stepping;
pub mod sweep;
pub mod telemetry;
pub mod time;
pub mod topology;
pub mod trace;
pub mod trace_io;
pub mod workers;

pub use cell::Cell;
pub use cell_pool::CellPool;
pub use config::{BufferSpec, OutputDiscipline, PpsConfig};
pub use demux::{BufferedDemultiplexor, Demultiplexor, DispatchCtx, InfoClass, LocalView};
pub use error::ModelError;
pub use fault::{FaultEvent, FaultPlan, PlaneMask};
pub use ids::{CellId, FlowId, PlaneId, PortId};
pub use link::LinkBank;
pub use oracle::{OracleKind, OracleViolation};
pub use rate::Ratio;
pub use record::{CellRecord, RunLog};
pub use snapshot::GlobalSnapshot;
pub use stepping::Stepping;
pub use time::Slot;
pub use trace::{Arrival, Trace};
