//! The paper's closed-form bounds, in one place.
//!
//! Every theorem's bound is a small arithmetic expression over the switch
//! geometry; collecting them here keeps the experiment suite, the tests
//! and the docs telling the same story. Each function documents the exact
//! statement it encodes, and the `*_exact` variants re-derive the bound
//! under this model's timing convention (a plane's first delivery
//! completes in its starting slot — see DESIGN.md §4 "Deviations"), which
//! subtracts one `(R/r − 1)` term. Asymptotics are identical.

use crate::config::PpsConfig;

/// Theorem 6: a bufferless PPS with a d-partitioned fully-distributed
/// demultiplexing algorithm has relative queuing delay and relative delay
/// jitter at least `(R/r − 1)·d`, under burst-free leaky-bucket traffic.
pub fn theorem6(r_prime: usize, d: usize) -> u64 {
    (r_prime as u64 - 1) * d as u64
}

/// Model-exact realization of [`theorem6`]: `(R/r − 1)·(d − 1)`.
pub fn theorem6_exact(r_prime: usize, d: usize) -> u64 {
    (r_prime as u64 - 1) * (d as u64).saturating_sub(1)
}

/// Corollary 7: with an *unpartitioned* fully-distributed algorithm the
/// concentration reaches every input, so the bound is `(R/r − 1)·N`.
pub fn corollary7(cfg: &PpsConfig) -> u64 {
    theorem6(cfg.r_prime, cfg.n)
}

/// Model-exact realization of [`corollary7`].
pub fn corollary7_exact(cfg: &PpsConfig) -> u64 {
    theorem6_exact(cfg.r_prime, cfg.n)
}

/// Theorem 8: *every* fully-distributed algorithm concentrates at least
/// `r'·N/K = N/S` inputs on some plane, hence `(R/r − 1)·N/S`.
pub fn theorem8(cfg: &PpsConfig) -> u64 {
    (cfg.r_prime as u64 - 1) * cfg.n_over_s()
}

/// Effective window `u' = min(u, r'/2)` of Theorem 10 (floored at 1).
pub fn u_effective(r_prime: usize, u: u64) -> u64 {
    u.min(r_prime as u64 / 2).max(1)
}

/// The coordinated-set size `m = ⌊u'·N/K⌋` of the Theorem 10 burst.
pub fn theorem10_m(cfg: &PpsConfig, u: u64) -> u64 {
    u_effective(cfg.r_prime, u) * cfg.n as u64 / cfg.k as u64
}

/// Theorem 10: a bufferless u-RT algorithm suffers at least
/// `(1 − u'·r/R)·u'·N/S = m·(r' − u')` under burstiness `u'²·N/K − u'`.
pub fn theorem10(cfg: &PpsConfig, u: u64) -> u64 {
    let u_eff = u_effective(cfg.r_prime, u);
    theorem10_m(cfg, u) * (cfg.r_prime as u64 - u_eff)
}

/// Model-exact realization of [`theorem10`]: `(m − 1)·(r' − u')`.
pub fn theorem10_exact(cfg: &PpsConfig, u: u64) -> u64 {
    let u_eff = u_effective(cfg.r_prime, u);
    theorem10_m(cfg, u).saturating_sub(1) * (cfg.r_prime as u64 - u_eff)
}

/// The burstiness premise of Theorem 10: `u'²·N/K − u'`.
pub fn theorem10_burstiness(cfg: &PpsConfig, u: u64) -> u64 {
    let u_eff = u_effective(cfg.r_prime, u);
    u_eff * u_eff * cfg.n as u64 / cfg.k as u64 - u_eff
}

/// Corollary 11: any real-time distributed algorithm (`u = 1`) suffers
/// `(1 − r/R)·N/S` under burstiness `N/K − 1`.
pub fn corollary11(cfg: &PpsConfig) -> u64 {
    theorem10(cfg, 1)
}

/// Theorem 12 (upper bound): an input-buffered PPS with buffers ≥ `u` and
/// `S ≥ 2` supports a u-RT algorithm with relative delay at most `u`.
pub fn theorem12_upper(u: u64) -> u64 {
    u
}

/// Theorem 13: an input-buffered fully-distributed PPS suffers
/// `(1 − r/R)·N/S` for *any* buffer size.
pub fn theorem13(cfg: &PpsConfig) -> u64 {
    // (1 - r/R) * N/S = ((r'-1)/r') * N*r'/K = N(r'-1)/K, floored like N/S.
    (cfg.r_prime as u64 - 1) * cfg.n_over_s() / cfg.r_prime as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, k: usize, r_prime: usize) -> PpsConfig {
        PpsConfig::bufferless(n, k, r_prime)
    }

    #[test]
    fn theorem6_family() {
        assert_eq!(theorem6(4, 16), 48);
        assert_eq!(theorem6_exact(4, 16), 45);
        assert_eq!(corollary7(&cfg(128, 8, 4)), 384);
        assert_eq!(corollary7_exact(&cfg(128, 8, 4)), 381);
    }

    #[test]
    fn theorem8_scales_inversely_in_s() {
        // N = 64, r' = 4: S = 1 -> 192, S = 2 -> 96, S = 16 -> 12.
        assert_eq!(theorem8(&cfg(64, 4, 4)), 192);
        assert_eq!(theorem8(&cfg(64, 8, 4)), 96);
        assert_eq!(theorem8(&cfg(64, 64, 4)), 12);
    }

    #[test]
    fn theorem10_matches_the_papers_example_numbers() {
        // N = 32, K = 8, r' = 8 (S = 1), u = 4: u' = 4, m = 16, bound 64.
        let c = cfg(32, 8, 8);
        assert_eq!(u_effective(8, 4), 4);
        assert_eq!(theorem10_m(&c, 4), 16);
        assert_eq!(theorem10(&c, 4), 64);
        assert_eq!(theorem10_exact(&c, 4), 60);
        assert_eq!(theorem10_burstiness(&c, 4), 60);
        // u caps at r'/2.
        assert_eq!(theorem10(&c, 100), theorem10(&c, 4));
    }

    #[test]
    fn corollary11_closed_form() {
        // (1 - 1/8) * 64/S with S = 1: 56.
        assert_eq!(corollary11(&cfg(64, 8, 8)), 56);
    }

    #[test]
    fn theorem13_closed_form() {
        // N = 32, K = 8, r' = 4 (S = 2): (3/4) * 16 = 12.
        assert_eq!(theorem13(&cfg(32, 8, 4)), 12);
    }

    #[test]
    fn degenerate_r_prime_one_means_no_bound() {
        // r = R: the PPS planes run at line rate and the bounds vanish.
        assert_eq!(theorem6(1, 100), 0);
        assert_eq!(theorem8(&cfg(64, 8, 1)), 0);
    }
}
