//! Slot-stepping policy: dense lockstep vs event-driven skip-ahead.
//!
//! Every engine in the workspace historically advanced `now` one slot at a
//! time, paying a full loop iteration even when nothing was in flight.
//! Skip-ahead stepping (DESIGN.md §15) instead asks every time-bearing
//! component for its *next activity slot* — the next scripted arrival, the
//! earliest plane-service event, a resequencer watchdog expiry, the next
//! fault activation — and jumps `now` to the minimum, replaying the skipped
//! interval's effects in closed form. The two modes are **byte-identical**
//! in everything observable (run logs, statistics, telemetry traces,
//! oracle verdicts); they differ only in wall clock and in how the
//! [`crate::perf`] meters split slots between `simulated` and `skipped`.
//!
//! The process-wide default is [`Stepping::SkipAhead`]; the dense loop
//! stays available behind `ppslab --stepping dense` (and per-engine
//! setters) for paranoia runs and for the equivalence harness that pits
//! the two against each other.

use std::sync::atomic::{AtomicBool, Ordering};

/// How an engine's run loop advances time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Stepping {
    /// Classic lockstep: `now` increments by one every iteration, idle
    /// slots included.
    Dense,
    /// Event-driven: `now` jumps to the earliest next-activity slot
    /// reported by any component, with skipped intervals replayed in
    /// closed form. The default.
    #[default]
    SkipAhead,
}

impl Stepping {
    /// Parse a CLI spelling (`dense`, `skip` / `skip-ahead`).
    pub fn parse(s: &str) -> Option<Stepping> {
        match s {
            "dense" => Some(Stepping::Dense),
            "skip" | "skip-ahead" | "skipahead" => Some(Stepping::SkipAhead),
            _ => None,
        }
    }

    /// Short stable name (report lines, bench ids).
    pub fn name(self) -> &'static str {
        match self {
            Stepping::Dense => "dense",
            Stepping::SkipAhead => "skip",
        }
    }
}

/// `true` while the process default is [`Stepping::Dense`].
static DEFAULT_DENSE: AtomicBool = AtomicBool::new(false);

/// Set the process-wide default stepping mode. Engines read it once at
/// construction (so a mid-run flip cannot desynchronize a run); per-engine
/// setters override it. Drivers (`ppslab --stepping`) call this before
/// building anything.
pub fn set_process_default(mode: Stepping) {
    DEFAULT_DENSE.store(mode == Stepping::Dense, Ordering::Relaxed);
}

/// The process-wide default stepping mode (see [`set_process_default`]).
pub fn process_default() -> Stepping {
    if DEFAULT_DENSE.load(Ordering::Relaxed) {
        Stepping::Dense
    } else {
        Stepping::SkipAhead
    }
}

/// Fold two optional next-activity slots into the earlier one — the
/// reduction every engine's `next_activity` performs over its components.
#[inline]
pub fn earliest(
    a: Option<crate::time::Slot>,
    b: Option<crate::time::Slot>,
) -> Option<crate::time::Slot> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Fold any number of optional next-activity slots into the earliest one —
/// the min-reduce a sharded fabric performs over its per-shard agendas to
/// size a joint skip-ahead jump window (every shard must be willing to
/// sleep through the whole gap).
#[inline]
pub fn earliest_of(
    items: impl IntoIterator<Item = Option<crate::time::Slot>>,
) -> Option<crate::time::Slot> {
    items.into_iter().fold(None, earliest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!(Stepping::parse("dense"), Some(Stepping::Dense));
        assert_eq!(Stepping::parse("skip"), Some(Stepping::SkipAhead));
        assert_eq!(Stepping::parse("skip-ahead"), Some(Stepping::SkipAhead));
        assert_eq!(Stepping::parse("bogus"), None);
        assert_eq!(Stepping::default(), Stepping::SkipAhead);
    }

    #[test]
    fn earliest_folds_options() {
        assert_eq!(earliest(None, None), None);
        assert_eq!(earliest(Some(3), None), Some(3));
        assert_eq!(earliest(None, Some(7)), Some(7));
        assert_eq!(earliest(Some(9), Some(7)), Some(7));
    }

    #[test]
    fn earliest_of_reduces_iterators() {
        assert_eq!(earliest_of([]), None);
        assert_eq!(earliest_of([None, None]), None);
        assert_eq!(earliest_of([None, Some(5), Some(2), None]), Some(2));
    }
}
