//! Strongly-typed identifiers for ports, planes, flows and cells.
//!
//! An `N × N` PPS has `N` input ports, `N` output ports and `K` center-stage
//! planes. Input/output ports and planes are all small dense indices, but
//! mixing them up is the classic simulator bug, so each gets a
//! `#[repr(transparent)]` newtype over `u32`. Cells get a `u64` id assigned
//! in global arrival order (ties broken by input port), which doubles as the
//! global-FCFS rank used by the `GlobalFcfs` output discipline.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an input or output port (`0..N`).
///
/// The PPS is symmetric (`N × N`), and the paper indexes inputs and outputs
/// from the same range, so a single port type covers both sides; the field
/// position in [`FlowId`] disambiguates the role.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct PortId(pub u32);

/// Index of a center-stage switch ("plane", `0..K`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct PlaneId(pub u32);

/// Globally unique cell identifier, assigned in arrival order.
///
/// Cells arriving in the same slot are ordered by input port; this total
/// order is exactly the *global FCFS* discipline of the reference
/// output-queued switch (footnote 3 in the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct CellId(pub u64);

/// A flow is the stream of cells from one input port to one output port.
///
/// The switch must deliver the cells of a flow in order and without loss
/// (paper, Section 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId {
    /// Source input port.
    pub input: PortId,
    /// Destination output port.
    pub output: PortId,
}

impl PortId {
    /// The raw index as a `usize`, for array indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl PlaneId {
    /// The raw index as a `usize`, for array indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl CellId {
    /// The raw id as a `usize`, for dense per-cell logs.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl FlowId {
    /// Construct a flow identifier from raw port indices.
    #[inline]
    pub fn new(input: u32, output: u32) -> Self {
        FlowId {
            input: PortId(input),
            output: PortId(output),
        }
    }

    /// Dense index of this flow in an `N × N` flow matrix.
    #[inline]
    pub fn dense(self, n: usize) -> usize {
        self.input.idx() * n + self.output.idx()
    }
}

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for PlaneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for PlaneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}->{})", self.input.0, self.output.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_flow_index_round_trips() {
        let n = 8;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                assert!(seen.insert(FlowId::new(i, j).dense(n)));
            }
        }
        assert_eq!(seen.len(), n * n);
        assert_eq!(*seen.iter().max().unwrap(), n * n - 1);
    }

    #[test]
    fn cell_ids_order_like_their_numbers() {
        assert!(CellId(3) < CellId(10));
        assert_eq!(CellId(7).idx(), 7);
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", PortId(3)), "p3");
        assert_eq!(format!("{:?}", PlaneId(2)), "k2");
        assert_eq!(format!("{:?}", FlowId::new(1, 5)), "(1->5)");
    }
}
