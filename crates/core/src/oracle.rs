//! Runtime invariant oracles.
//!
//! The paper's central claim — a PPS cannot beat an inherent relative
//! queuing delay versus the ideal OQ switch — is only as trustworthy as
//! the simulator's conservation and ordering guarantees. This module turns
//! those guarantees into machine-checkable predicates over the model types
//! every engine already produces ([`RunLog`], per-slot counters, sampled
//! occupancy series). The chaos harness (`pps-chaos`) evaluates them every
//! slot against randomized fault/traffic schedules; experiments reuse the
//! same checks as pass criteria (e8's congestion-window shape assertion).
//!
//! Event-stream oracles — phantom delivery, dispatch to a known-down
//! plane, watchdog accounting — need the telemetry vocabulary and live in
//! `pps_telemetry::oracle`; they report through the same
//! [`OracleViolation`] type.
//!
//! Every check is **fault-aware**: cells legitimately lost to failed
//! planes, input starvation under link degradation, or watchdog skips are
//! accounted, not flagged. A violation therefore always indicates a
//! simulator bug (or an injected one), never an unlucky schedule.

use crate::record::RunLog;
use crate::time::Slot;
use std::fmt;

/// Which invariant a violation breaches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OracleKind {
    /// Cells in ≠ cells out + queued + dropped (the conservation ledger).
    Conservation,
    /// [`crate::CellPool`] occupancy disagrees with registered arrivals.
    PoolAccounting,
    /// Two delivered cells of one flow departed out of arrival order.
    FlowOrder,
    /// A cell departed before it arrived (or twice).
    Causality,
    /// A departure event for a cell that never arrived.
    PhantomDeparture,
    /// A demultiplexor dispatched to a plane its information class knew
    /// was down while a believed-up plane with a free line existed.
    DownPlaneDispatch,
    /// Watchdog counters disagree with the event stream.
    WatchdogAccounting,
    /// A delivered cell exceeded the relative-delay envelope vs the OQ
    /// shadow (fault-free bufferless runs only).
    RelativeDelayBound,
    /// A sampled occupancy series left the predicted linear envelope.
    OccupancyShape,
}

impl OracleKind {
    /// Stable short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            OracleKind::Conservation => "conservation",
            OracleKind::PoolAccounting => "pool-accounting",
            OracleKind::FlowOrder => "flow-order",
            OracleKind::Causality => "causality",
            OracleKind::PhantomDeparture => "phantom-departure",
            OracleKind::DownPlaneDispatch => "down-plane-dispatch",
            OracleKind::WatchdogAccounting => "watchdog-accounting",
            OracleKind::RelativeDelayBound => "relative-delay-bound",
            OracleKind::OccupancyShape => "occupancy-shape",
        }
    }
}

/// One oracle breach, anchored at the first slot where it was observable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleViolation {
    /// The invariant breached.
    pub kind: OracleKind,
    /// First slot at which the breach was observable.
    pub slot: Slot,
    /// Human-readable specifics (counters, cell ids).
    pub detail: String,
}

impl OracleViolation {
    /// Ordering key: earliest slot first, then kind, then detail — a total
    /// order so "first violation" is well-defined and run-order free.
    pub fn sort_key(&self) -> (Slot, OracleKind, &str) {
        (self.slot, self.kind, &self.detail)
    }
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @slot {}: {}",
            self.kind.name(),
            self.slot,
            self.detail
        )
    }
}

/// The per-slot conservation ledger: every cell that has entered the
/// switch is either out, still inside, or accounted lost.
///
/// `arrivals == departures + backlog + dropped + late_dropped` must hold
/// at the end of every slot. `dropped` covers fabric-level losses (failed
/// planes, input starvation under degradation); `late_dropped` covers
/// cells discarded at an output after the watchdog skipped past them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConservationLedger {
    /// Cells offered to the switch so far.
    pub arrivals: u64,
    /// Cells emitted by the output multiplexors so far.
    pub departures: u64,
    /// Cells currently inside (input buffers + plane queues + output muxes).
    pub backlog: u64,
    /// Cells lost at the fabric (failed planes, starved inputs).
    pub dropped: u64,
    /// Cells discarded at outputs after a watchdog skip.
    pub late_dropped: u64,
}

impl ConservationLedger {
    /// Check the ledger at the end of `slot`.
    pub fn check(&self, slot: Slot) -> Option<OracleViolation> {
        let out = self.departures + self.backlog + self.dropped + self.late_dropped;
        if self.arrivals != out {
            Some(OracleViolation {
                kind: OracleKind::Conservation,
                slot,
                detail: format!(
                    "arrivals {} != departures {} + backlog {} + dropped {} + late {}",
                    self.arrivals, self.departures, self.backlog, self.dropped, self.late_dropped
                ),
            })
        } else {
            None
        }
    }
}

/// Reconcile [`crate::CellPool`] occupancy against registered arrivals:
/// the pool holds metadata for exactly the cells that have entered.
pub fn check_pool_occupancy(pool_len: u64, arrivals: u64, slot: Slot) -> Option<OracleViolation> {
    if pool_len != arrivals {
        Some(OracleViolation {
            kind: OracleKind::PoolAccounting,
            slot,
            detail: format!("cell pool holds {pool_len} cells, {arrivals} arrived"),
        })
    } else {
        None
    }
}

/// Per-flow FIFO at every output, over the **delivered** cells only.
///
/// Within a flow, [`crate::Trace::cells`] assigns ids (and seqs) in
/// arrival order, so delivered cells must depart in strictly increasing
/// id order — strictly, because a flow's cells share one output and an
/// output emits at most one cell per slot. Undelivered cells (lost to
/// faults, skipped by the watchdog, still queued at the horizon) are
/// ignored: a gap is legal, an inversion never is.
pub fn check_flow_order(log: &RunLog) -> Vec<OracleViolation> {
    use std::collections::HashMap;
    let mut last: HashMap<(u32, u32), (u64, Slot)> = HashMap::new();
    let mut violations = Vec::new();
    // records() iterates in id order == per-flow arrival order.
    for rec in log.records() {
        let Some(dep) = rec.departure else { continue };
        let key = (rec.input.0, rec.output.0);
        if let Some(&(prev_id, prev_dep)) = last.get(&key) {
            if dep <= prev_dep {
                violations.push(OracleViolation {
                    kind: OracleKind::FlowOrder,
                    slot: dep.max(prev_dep),
                    detail: format!(
                        "flow {}->{}: cell {} departed at {} not after cell {} at {}",
                        rec.input.0, rec.output.0, rec.id.0, dep, prev_id, prev_dep
                    ),
                });
            }
        }
        last.insert(key, (rec.id.0, dep));
    }
    violations
}

/// No pre-arrival departures: every delivered cell leaves at or after its
/// arrival slot. (Double departures are impossible by construction —
/// [`RunLog::set_departure`] panics — and re-checked over the event stream
/// by `pps_telemetry::oracle`.)
pub fn check_causality(log: &RunLog) -> Vec<OracleViolation> {
    log.records()
        .iter()
        .filter_map(|rec| {
            let dep = rec.departure?;
            (dep < rec.arrival).then(|| OracleViolation {
                kind: OracleKind::Causality,
                slot: dep,
                detail: format!(
                    "cell {} departed at {} before arriving at {}",
                    rec.id.0, dep, rec.arrival
                ),
            })
        })
        .collect()
}

/// Relative-delay envelope versus the shadow OQ switch: every cell
/// delivered by both switches satisfies
/// `delay_pps(c) - delay_oq(c) <= bound`.
///
/// Only meaningful for fault-free bufferless runs; the caller picks the
/// envelope (the chaos harness uses `r'·(N + K + B)` plus slack — generous
/// against the paper's Section 3–4 worst cases, which are `Θ(N·r')` for
/// fully-distributed algorithms under burstiness `B`).
pub fn check_relative_delay(pps: &RunLog, oq: &RunLog, bound: u64) -> Vec<OracleViolation> {
    let mut violations = Vec::new();
    for rec in pps.records() {
        let (Some(dep), Some(oq_dep)) = (rec.departure, oq.get(rec.id).departure) else {
            continue;
        };
        let (d_pps, d_oq) = (dep - rec.arrival, oq_dep - rec.arrival);
        if d_pps > d_oq && d_pps - d_oq > bound {
            violations.push(OracleViolation {
                kind: OracleKind::RelativeDelayBound,
                slot: dep,
                detail: format!(
                    "cell {}: PPS delay {} vs OQ delay {} exceeds envelope {}",
                    rec.id.0, d_pps, d_oq, bound
                ),
            });
        }
    }
    violations
}

/// Check a sampled occupancy series against a linear ramp: for samples
/// `(slot, occupancy)`, the deviation of `occupancy - occupancy₀` from
/// `slope × (slot - slot₀)` must stay within `tolerance`.
///
/// This is the executable shape of Theorem 14: inside a congested window
/// the hot output is work-conserving (drains exactly one cell per slot),
/// so its in-switch occupancy ramps linearly at `inflow − 1` per slot.
/// Returns the first sample outside the envelope, with the maximum
/// deviation observed appended to the detail.
pub fn check_linear_ramp(
    series: &[(Slot, u64)],
    slope: i64,
    tolerance: u64,
) -> Option<OracleViolation> {
    let &(slot0, occ0) = series.first()?;
    let mut first_breach: Option<(Slot, u64)> = None;
    let mut max_dev = 0u64;
    for &(slot, occ) in series {
        let predicted = occ0 as i64 + slope * (slot - slot0) as i64;
        let dev = (occ as i64 - predicted).unsigned_abs();
        max_dev = max_dev.max(dev);
        if dev > tolerance && first_breach.is_none() {
            first_breach = Some((slot, dev));
        }
    }
    first_breach.map(|(slot, dev)| OracleViolation {
        kind: OracleKind::OccupancyShape,
        slot,
        detail: format!(
            "occupancy off the slope-{slope} ramp by {dev} (> tolerance {tolerance}; \
             max deviation {max_dev})"
        ),
    })
}

/// Maximum deviation of a sampled series from the linear ramp anchored at
/// its first sample — the scalar e8 reports alongside the pass/fail.
pub fn max_ramp_deviation(series: &[(Slot, u64)], slope: i64) -> u64 {
    let Some(&(slot0, occ0)) = series.first() else {
        return 0;
    };
    series
        .iter()
        .map(|&(slot, occ)| {
            let predicted = occ0 as i64 + slope * (slot - slot0) as i64;
            (occ as i64 - predicted).unsigned_abs()
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::ids::{CellId, PortId};

    fn cell(id: u64, input: u32, output: u32, arrival: Slot) -> Cell {
        Cell {
            id: CellId(id),
            input: PortId(input),
            output: PortId(output),
            seq: id as u32,
            arrival,
        }
    }

    #[test]
    fn ledger_balances_and_flags_leaks() {
        let ok = ConservationLedger {
            arrivals: 10,
            departures: 4,
            backlog: 3,
            dropped: 2,
            late_dropped: 1,
        };
        assert!(ok.check(5).is_none());
        let leak = ConservationLedger {
            arrivals: 10,
            departures: 4,
            backlog: 3,
            dropped: 1,
            late_dropped: 1,
        };
        let v = leak.check(5).expect("one cell unaccounted");
        assert_eq!(v.kind, OracleKind::Conservation);
        assert_eq!(v.slot, 5);
    }

    #[test]
    fn pool_reconciliation() {
        assert!(check_pool_occupancy(7, 7, 3).is_none());
        let v = check_pool_occupancy(6, 7, 3).expect("leaked metadata");
        assert_eq!(v.kind, OracleKind::PoolAccounting);
    }

    #[test]
    fn flow_order_ignores_gaps_but_flags_inversions() {
        let cells = [cell(0, 0, 0, 0), cell(1, 0, 0, 1), cell(2, 0, 0, 2)];
        let mut log = RunLog::with_cells(&cells);
        // Cell 1 lost (no departure); 0 then 2 in order: fine.
        log.set_departure(CellId(0), 3);
        log.set_departure(CellId(2), 5);
        assert!(check_flow_order(&log).is_empty());

        let mut bad = RunLog::with_cells(&cells);
        bad.set_departure(CellId(0), 6);
        bad.set_departure(CellId(2), 5);
        let vs = check_flow_order(&bad);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, OracleKind::FlowOrder);
        assert_eq!(vs[0].slot, 6);
    }

    #[test]
    fn causality_flags_time_travel() {
        let cells = [cell(0, 0, 0, 4)];
        let mut log = RunLog::with_cells(&cells);
        log.set_departure(CellId(0), 2);
        let vs = check_causality(&log);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, OracleKind::Causality);
    }

    #[test]
    fn relative_delay_envelope() {
        let cells = [cell(0, 0, 0, 0), cell(1, 1, 0, 0)];
        let mut pps = RunLog::with_cells(&cells);
        let mut oq = RunLog::with_cells(&cells);
        pps.set_departure(CellId(0), 10);
        oq.set_departure(CellId(0), 1);
        pps.set_departure(CellId(1), 3);
        oq.set_departure(CellId(1), 2);
        assert!(check_relative_delay(&pps, &oq, 9).is_empty());
        let vs = check_relative_delay(&pps, &oq, 8);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, OracleKind::RelativeDelayBound);
    }

    #[test]
    fn ramp_shape_accepts_noise_within_tolerance() {
        let series: Vec<(Slot, u64)> = (0..20).map(|t| (t, 10 + 2 * t + (t % 2))).collect();
        assert!(check_linear_ramp(&series, 2, 1).is_none());
        assert_eq!(max_ramp_deviation(&series, 2), 1);
        let v = check_linear_ramp(&series, 3, 1).expect("wrong slope breaks out");
        assert_eq!(v.kind, OracleKind::OccupancyShape);
    }
}
