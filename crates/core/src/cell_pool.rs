//! Structure-of-arrays cell storage.
//!
//! Queues inside the engines (plane FIFOs, resequencer rings, output heaps)
//! used to park 32-byte [`Cell`] values. At multi-million-cell scale that
//! copies four words per hop and scatters the per-cell metadata across every
//! queue's backing store. A [`CellPool`] keeps the metadata once, in parallel
//! arrays indexed by the cell's dense [`CellId`], so queues hold bare 8-byte
//! ids and the per-slot loops touch one cache-dense column per field they
//! actually read.
//!
//! Ids are assigned in global arrival order by [`Trace::cells`]
//! (`crate::trace::Trace::cells`), so within one run the pool is a dense
//! append-mostly table: [`ensure`](CellPool::ensure) is an O(1) write for the
//! common in-order case and idempotent for re-registration (the buffered
//! engine registers a cell at arrival and again at dispatch). An id is
//! *stable for the lifetime of the run*: nothing is freed per cell, and
//! recycling happens wholesale via [`clear`](CellPool::clear) when an engine
//! is reused for a fresh run.

use crate::cell::Cell;
use crate::ids::{CellId, FlowId, PortId};
use crate::time::Slot;

/// Parallel-array store of per-cell metadata, indexed by [`CellId`].
#[derive(Clone, Debug, Default)]
pub struct CellPool {
    input: Vec<PortId>,
    output: Vec<PortId>,
    seq: Vec<u32>,
    arrival: Vec<Slot>,
}

impl CellPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool with room for `cells` entries before reallocating.
    pub fn with_capacity(cells: usize) -> Self {
        CellPool {
            input: Vec::with_capacity(cells),
            output: Vec::with_capacity(cells),
            seq: Vec::with_capacity(cells),
            arrival: Vec::with_capacity(cells),
        }
    }

    /// Reserve room for at least `cells` total entries (run-length known up
    /// front, e.g. from `Trace::cells`), so the arrays grow once.
    pub fn reserve(&mut self, cells: usize) {
        let extra = cells.saturating_sub(self.input.len());
        self.input.reserve(extra);
        self.output.reserve(extra);
        self.seq.reserve(extra);
        self.arrival.reserve(extra);
    }

    /// Number of id slots the pool covers (one past the highest id seen).
    pub fn len(&self) -> usize {
        self.input.len()
    }

    /// Whether the pool holds no cells.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
    }

    /// Record `cell`'s metadata under its id. Idempotent: re-registering a
    /// cell overwrites the slot with the same values. Ids arriving out of
    /// order are fine — the gap is filled with placeholder entries that the
    /// straggler's own `ensure` later overwrites (ids are dense per run, so
    /// gaps are transient).
    #[inline]
    pub fn ensure(&mut self, cell: &Cell) {
        let idx = cell.id.idx();
        if idx >= self.input.len() {
            self.input.resize(idx + 1, PortId(0));
            self.output.resize(idx + 1, PortId(0));
            self.seq.resize(idx + 1, 0);
            self.arrival.resize(idx + 1, 0);
        }
        self.input[idx] = cell.input;
        self.output[idx] = cell.output;
        self.seq[idx] = cell.seq;
        self.arrival[idx] = cell.arrival;
    }

    /// Input port the cell arrived on.
    #[inline]
    pub fn input(&self, id: CellId) -> PortId {
        self.input[id.idx()]
    }

    /// Output port the cell is destined for.
    #[inline]
    pub fn output(&self, id: CellId) -> PortId {
        self.output[id.idx()]
    }

    /// Per-flow sequence number.
    #[inline]
    pub fn seq(&self, id: CellId) -> u32 {
        self.seq[id.idx()]
    }

    /// Slot in which the cell arrived to the switch.
    #[inline]
    pub fn arrival(&self, id: CellId) -> Slot {
        self.arrival[id.idx()]
    }

    /// The flow the cell belongs to.
    #[inline]
    pub fn flow(&self, id: CellId) -> FlowId {
        FlowId {
            input: self.input(id),
            output: self.output(id),
        }
    }

    /// Reassemble the full [`Cell`] value (boundary crossings and tests;
    /// the hot paths read single columns instead).
    #[inline]
    pub fn get(&self, id: CellId) -> Cell {
        Cell {
            id,
            input: self.input(id),
            output: self.output(id),
            seq: self.seq(id),
            arrival: self.arrival(id),
        }
    }

    /// Drop every entry but keep the allocations — the recycling path when
    /// an engine (and its id space) restarts for a fresh run.
    pub fn clear(&mut self) {
        self.input.clear();
        self.output.clear();
        self.seq.clear();
        self.arrival.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, input: u32, output: u32, seq: u32, arrival: Slot) -> Cell {
        Cell {
            id: CellId(id),
            input: PortId(input),
            output: PortId(output),
            seq,
            arrival,
        }
    }

    #[test]
    fn round_trips_cells() {
        let mut pool = CellPool::new();
        let c = cell(0, 2, 5, 7, 11);
        pool.ensure(&c);
        assert_eq!(pool.get(CellId(0)), c);
        assert_eq!(pool.input(CellId(0)), PortId(2));
        assert_eq!(pool.output(CellId(0)), PortId(5));
        assert_eq!(pool.seq(CellId(0)), 7);
        assert_eq!(pool.arrival(CellId(0)), 11);
        assert_eq!(pool.flow(CellId(0)), FlowId::new(2, 5));
    }

    #[test]
    fn ensure_is_idempotent_and_gap_tolerant() {
        let mut pool = CellPool::new();
        pool.ensure(&cell(3, 1, 1, 0, 4)); // out of order: ids 0..3 are gaps
        assert_eq!(pool.len(), 4);
        pool.ensure(&cell(1, 0, 2, 5, 2)); // straggler fills its own slot
        pool.ensure(&cell(1, 0, 2, 5, 2)); // re-registration is a no-op
        assert_eq!(pool.get(CellId(1)), cell(1, 0, 2, 5, 2));
        assert_eq!(pool.get(CellId(3)), cell(3, 1, 1, 0, 4));
    }

    #[test]
    fn clear_recycles_without_shrinking() {
        let mut pool = CellPool::with_capacity(8);
        for i in 0..8 {
            pool.ensure(&cell(i, 0, 0, i as u32, 0));
        }
        assert_eq!(pool.len(), 8);
        pool.clear();
        assert!(pool.is_empty());
        pool.ensure(&cell(0, 3, 4, 9, 9));
        assert_eq!(pool.get(CellId(0)), cell(0, 3, 4, 9, 9));
    }
}
