//! Zero-overhead structured event tracing for every engine.
//!
//! The engines in this workspace — the PPS fabric, the shadow OQ switch,
//! and the crossbar/CIOQ baselines — are black boxes between a trace in
//! and a [`crate::record::RunLog`] out. This module gives them a shared,
//! slot-stamped event vocabulary ([`EventKind`]) and a recording substrate
//! designed so that the *disabled* path costs one relaxed atomic load and
//! a predictable branch per call site, allocates nothing, and can be
//! compiled out entirely (build `pps-core` with `--no-default-features` to
//! drop the `telemetry` feature; [`on`] then becomes a `const false` and
//! the optimizer removes every recording site).
//!
//! ## Recording model
//!
//! Recording is **scoped**: [`collect`] installs a bounded per-thread ring
//! buffer ([`EventRing`]) for the duration of a closure and returns the
//! events it captured as an [`EventLog`]. Because a scope is thread-local
//! and every sweep point runs start-to-finish on one worker thread, scopes
//! double as the per-worker ring buffers of the parallel executor: workers
//! never contend on a shared event sink, and the sweep merge loop absorbs
//! per-point logs in **declared point order**, preserving the determinism
//! contract (DESIGN.md §10) — the final bundle is identical at any
//! `--jobs`.
//!
//! Events emitted while no scope is active (and the level is
//! [`Level::Full`]) are counted in `events_unscoped` and discarded; they
//! are never buffered globally, so library users cannot leak memory by
//! enabling telemetry without collecting.
//!
//! ## Counters
//!
//! Independent of ring buffers, every recorded event bumps a per-kind
//! process-wide counter at [`Level::Counters`] and above. The registry is
//! folded into the [`crate::perf`] meters: [`counters`] reports the event
//! counters alongside `perf.slots_simulated`, so one snapshot captures
//! both the slot meter and the event mix.

use crate::ids::{CellId, PlaneId, PortId};
use crate::time::Slot;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

/// How much the process records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing: the fast path is one relaxed load + branch per site.
    Off = 0,
    /// Per-kind event counters only (process-wide atomics, no buffers).
    Counters = 1,
    /// Counters plus full event streams into the active scope's ring.
    Full = 2,
}

impl Level {
    /// Parse a CLI spelling (`off`, `counters`, `full`).
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "off" => Some(Level::Off),
            "counters" => Some(Level::Counters),
            "full" => Some(Level::Full),
            _ => None,
        }
    }
}

/// Which engine emitted an event — the track axis of every sink, so
/// lockstep runs (PPS vs shadow on the same trace) render side by side.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Engine {
    /// The parallel packet switch under test.
    Pps = 0,
    /// The FCFS output-queued shadow reference.
    ShadowOq = 1,
    /// The VOQ + iSLIP input-queued crossbar baseline.
    Crossbar = 2,
    /// The CIOQ crossbar with fabric speedup.
    Cioq = 3,
}

impl Engine {
    /// Stable display name (used by every sink).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Pps => "pps",
            Engine::ShadowOq => "shadow-oq",
            Engine::Crossbar => "crossbar",
            Engine::Cioq => "cioq",
        }
    }
}

/// The kind of scripted fault applied to a PPS fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A plane failed (cells inside it were flushed and lost).
    PlaneDown,
    /// A failed plane came back into service.
    PlaneUp,
    /// An input→plane line was degraded (presents busy).
    LinkDegraded,
}

impl FaultKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PlaneDown => "plane-down",
            FaultKind::PlaneUp => "plane-up",
            FaultKind::LinkDegraded => "link-degraded",
        }
    }
}

/// One structured engine event. Payloads are small and `Copy`; occupancy
/// time series are derived by the sinks from enqueue/deliver/depart pairs
/// rather than carried on every event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A cell entered the switch.
    Arrival {
        /// The arriving cell.
        cell: CellId,
        /// Its input port.
        input: PortId,
        /// Its destination output.
        output: PortId,
    },
    /// The demultiplexor chose a plane for a cell.
    DemuxDecision {
        /// The dispatched cell.
        cell: CellId,
        /// The deciding input port.
        input: PortId,
        /// The chosen plane.
        plane: PlaneId,
    },
    /// A cell was accepted into a plane's per-output queue.
    PlaneEnqueue {
        /// The queued cell.
        cell: CellId,
        /// The carrying plane.
        plane: PlaneId,
        /// The destination output.
        output: PortId,
    },
    /// A plane delivered a cell to its output multiplexor.
    PlaneDeliver {
        /// The delivered cell.
        cell: CellId,
        /// The carrying plane.
        plane: PlaneId,
        /// The destination output.
        output: PortId,
    },
    /// The resequencer parked a cell (gap-blocked behind missing
    /// earlier cells of its flow, or an FCFS straggler).
    ReseqHold {
        /// The parked cell.
        cell: CellId,
        /// The output whose resequencer holds it.
        output: PortId,
    },
    /// A previously parked cell became eligible for emission.
    ReseqRelease {
        /// The released cell.
        cell: CellId,
        /// The output whose resequencer released it.
        output: PortId,
    },
    /// A cell departed on the external line.
    Depart {
        /// The departing cell.
        cell: CellId,
        /// The emitting output.
        output: PortId,
    },
    /// A scripted fault event took effect.
    FaultApplied {
        /// The plane concerned (for `LinkDegraded`, the line's plane end).
        plane: PlaneId,
        /// What happened.
        kind: FaultKind,
    },
    /// A resequencer watchdog skipped past or discarded cells.
    WatchdogDrop {
        /// The output whose watchdog fired.
        output: PortId,
        /// How many cells were declared lost by this firing.
        cells: u32,
    },
}

impl EventKind {
    /// Stable short name (one per variant; used by counters and sinks).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Arrival { .. } => "arrival",
            EventKind::DemuxDecision { .. } => "demux-decision",
            EventKind::PlaneEnqueue { .. } => "plane-enqueue",
            EventKind::PlaneDeliver { .. } => "plane-deliver",
            EventKind::ReseqHold { .. } => "reseq-hold",
            EventKind::ReseqRelease { .. } => "reseq-release",
            EventKind::Depart { .. } => "depart",
            EventKind::FaultApplied { .. } => "fault-applied",
            EventKind::WatchdogDrop { .. } => "watchdog-drop",
        }
    }

    fn counter_index(self) -> usize {
        match self {
            EventKind::Arrival { .. } => 0,
            EventKind::DemuxDecision { .. } => 1,
            EventKind::PlaneEnqueue { .. } => 2,
            EventKind::PlaneDeliver { .. } => 3,
            EventKind::ReseqHold { .. } => 4,
            EventKind::ReseqRelease { .. } => 5,
            EventKind::Depart { .. } => 6,
            EventKind::FaultApplied { .. } => 7,
            EventKind::WatchdogDrop { .. } => 8,
        }
    }
}

/// Number of [`EventKind`] variants (counter registry width).
const KINDS: usize = 9;

/// A slot-stamped event as recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The slot in which the event happened.
    pub slot: Slot,
    /// The emitting engine.
    pub engine: Engine,
    /// What happened.
    pub kind: EventKind,
}

// ---------------------------------------------------------------------------
// Level gate
// ---------------------------------------------------------------------------

static LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// Default ring capacity per scope (events). Large enough for a full
/// experiment point at the registry's sizes; bounded so a runaway soak run
/// cannot exhaust memory (the ring overwrites its oldest entries and
/// counts the overflow).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

/// Set the process-wide recording level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::SeqCst);
}

/// The current recording level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Counters,
        _ => Level::Full,
    }
}

/// The disabled-path gate: `true` iff any recording is enabled. Call sites
/// guard event construction behind this so the off path never builds
/// payloads. With the `telemetry` feature disabled this is `const false`
/// and recording sites compile out entirely.
#[cfg(feature = "telemetry")]
#[inline(always)]
pub fn on() -> bool {
    LEVEL.load(Ordering::Relaxed) != 0
}

/// Compile-out stand-in: always `false`, so guarded sites are dead code.
#[cfg(not(feature = "telemetry"))]
#[inline(always)]
pub const fn on() -> bool {
    false
}

/// Cap (in events) of each scope's ring buffer.
///
/// Applies to every scope opened after the call, on any thread, *and* to
/// the scopes currently open on the calling thread (a driver that parses
/// `--ring-cap` after its outermost `collect` began would otherwise silently
/// keep the default for that scope). Scopes already open on *other* threads
/// keep their ring until they close — scope stacks are thread-local, and
/// resizing a ring mid-record from another thread would race. Shrinking an
/// open scope's ring below its current occupancy drops the oldest events,
/// counted in the scope's `overflowed` tally exactly like wrap-around.
pub fn set_ring_capacity(cap: usize) {
    let cap = cap.max(1);
    RING_CAPACITY.store(cap, Ordering::SeqCst);
    SCOPES.with(|scopes| {
        for scope in scopes.borrow_mut().iter_mut() {
            scope.ring.set_capacity(cap);
        }
    });
}

// ---------------------------------------------------------------------------
// Counter registry (folded into the perf meters)
// ---------------------------------------------------------------------------

static COUNTERS: [AtomicU64; KINDS] = [const { AtomicU64::new(0) }; KINDS];
/// Events recorded into some ring.
static EVENTS_RECORDED: AtomicU64 = AtomicU64::new(0);
/// Events emitted at `Full` with no scope active (discarded).
static EVENTS_UNSCOPED: AtomicU64 = AtomicU64::new(0);
/// Events overwritten by ring overflow.
static EVENTS_OVERFLOWED: AtomicU64 = AtomicU64::new(0);

const COUNTER_NAMES: [&str; KINDS] = [
    "arrival",
    "demux-decision",
    "plane-enqueue",
    "plane-deliver",
    "reseq-hold",
    "reseq-release",
    "depart",
    "fault-applied",
    "watchdog-drop",
];

/// A named-counter snapshot: the telemetry event registry folded together
/// with the `perf` slot meter. Cumulative and monotonic, like
/// [`crate::perf::slots_simulated`].
pub fn counters() -> Vec<(&'static str, u64)> {
    let mut out = Vec::with_capacity(KINDS + 5);
    out.push(("perf.slots_simulated", crate::perf::slots_simulated()));
    out.push(("perf.slots_skipped", crate::perf::slots_skipped()));
    for (i, name) in COUNTER_NAMES.iter().enumerate() {
        out.push((*name, COUNTERS[i].load(Ordering::Relaxed)));
    }
    out.push(("events.recorded", EVENTS_RECORDED.load(Ordering::Relaxed)));
    out.push(("events.unscoped", EVENTS_UNSCOPED.load(Ordering::Relaxed)));
    out.push((
        "events.overflowed",
        EVENTS_OVERFLOWED.load(Ordering::Relaxed),
    ));
    out
}

/// Total events ever recorded into rings (cumulative, monotonic).
pub fn events_recorded() -> u64 {
    EVENTS_RECORDED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Ring buffer and scopes
// ---------------------------------------------------------------------------

/// A bounded event buffer: grows lazily up to its capacity, then wraps,
/// overwriting the oldest events (counted). Draining returns events in
/// emission order.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<Event>,
    /// Next write position once `buf.len() == cap` (wrap mode).
    head: usize,
    cap: usize,
    /// Events overwritten after the ring filled.
    pub overwritten: u64,
}

impl EventRing {
    /// An empty ring that holds at most `cap` events.
    pub fn new(cap: usize) -> Self {
        EventRing {
            buf: Vec::new(),
            head: 0,
            cap: cap.max(1),
            overwritten: 0,
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append an event, overwriting the oldest once full.
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Change the ring's capacity in place, preserving the newest events.
    /// Shrinking below the current occupancy drops the oldest entries and
    /// counts them as overwritten, exactly like wrap-around would have.
    pub fn set_capacity(&mut self, cap: usize) {
        let cap = cap.max(1);
        if cap == self.cap {
            return;
        }
        // Normalize to emission order so append/overwrite positions stay
        // coherent under the new capacity.
        if self.head != 0 {
            self.buf.rotate_left(self.head);
            self.head = 0;
        }
        if self.buf.len() > cap {
            let dropped = self.buf.len() - cap;
            self.buf.drain(..dropped);
            self.overwritten += dropped as u64;
        }
        self.cap = cap;
    }

    /// Drain into a `Vec` in emission order (oldest first).
    pub fn into_events(mut self) -> Vec<Event> {
        if self.head == 0 {
            return self.buf;
        }
        self.buf.rotate_left(self.head);
        self.buf
    }
}

/// The events captured by one [`collect`] scope, plus the logs of any
/// nested scopes absorbed while it was active (sweep points inside an
/// experiment, experiments inside the registry sweep).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EventLog {
    /// Scope label (experiment id, `plan-id/point-index`, …).
    pub label: String,
    /// Events recorded directly in this scope, in emission order.
    pub events: Vec<Event>,
    /// Events lost to ring overflow in this scope.
    pub overflowed: u64,
    /// Nested logs, in the order they were absorbed (declared sweep order).
    pub children: Vec<EventLog>,
}

impl EventLog {
    /// Total events in this log and all children.
    pub fn total_events(&self) -> usize {
        self.events.len()
            + self
                .children
                .iter()
                .map(EventLog::total_events)
                .sum::<usize>()
    }

    /// Depth-first flatten: `(label-path, &events)` pairs in deterministic
    /// order, parents before children.
    pub fn flatten(&self) -> Vec<(String, &[Event])> {
        let mut out = Vec::new();
        self.flatten_into("", &mut out);
        out
    }

    fn flatten_into<'a>(&'a self, prefix: &str, out: &mut Vec<(String, &'a [Event])>) {
        let path = if prefix.is_empty() {
            self.label.clone()
        } else {
            format!("{prefix}/{}", self.label)
        };
        if !self.events.is_empty() || self.children.is_empty() {
            out.push((path.clone(), self.events.as_slice()));
        }
        for child in &self.children {
            child.flatten_into(&path, out);
        }
    }
}

struct Scope {
    label: String,
    ring: EventRing,
    children: Vec<EventLog>,
}

thread_local! {
    static SCOPES: RefCell<Vec<Scope>> = const { RefCell::new(Vec::new()) };
}

/// Logs absorbed outside any scope — the process-level bundle a driver
/// (e.g. `ppslab`) drains once at the end with [`take_absorbed`].
static ABSORBED: Mutex<Vec<EventLog>> = Mutex::new(Vec::new());

/// Record one event. Call sites must guard with [`on`] so the disabled
/// path never constructs payloads:
///
/// ```
/// use pps_core::telemetry::{self, Engine, EventKind};
/// use pps_core::{CellId, PortId};
/// if telemetry::on() {
///     telemetry::record(Engine::Pps, 7, EventKind::Depart {
///         cell: CellId(0),
///         output: PortId(3),
///     });
/// }
/// ```
#[inline]
pub fn record(engine: Engine, slot: Slot, kind: EventKind) {
    let level = level();
    if level == Level::Off {
        return;
    }
    // Intra-run shard threads divert into their shard-local capture: no
    // shared atomics on the hot path, no scope ring. The fabric folds the
    // capture back at the merge barrier ([`fold_shard_counts`] +
    // [`replay_shard_events`]), in declared shard order, so the global
    // counters and the scope's event stream end up byte-identical to the
    // serial walk.
    if SHARD_ACTIVE.with(Cell::get) {
        SHARD.with(|shard| {
            if let Some(cap) = shard.borrow_mut().as_mut() {
                cap.counts[kind.counter_index()] += 1;
                if level == Level::Full {
                    cap.events.push(Event { slot, engine, kind });
                }
            }
        });
        return;
    }
    COUNTERS[kind.counter_index()].fetch_add(1, Ordering::Relaxed);
    if level != Level::Full {
        return;
    }
    SCOPES.with(|scopes| {
        let mut scopes = scopes.borrow_mut();
        match scopes.last_mut() {
            Some(scope) => {
                scope.ring.push(Event { slot, engine, kind });
                EVENTS_RECORDED.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                EVENTS_UNSCOPED.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Intra-run shard capture
// ---------------------------------------------------------------------------

/// Shard-local telemetry sink for one intra-run parallel region (DESIGN.md
/// §16). While installed via [`shard_capture_into`], [`record`] on that
/// thread appends into this capture instead of touching the process-wide
/// counter atomics or the thread's scope ring; the fabric folds captures
/// back on the merging thread, in declared shard order.
#[derive(Clone, Debug, Default)]
pub struct ShardCapture {
    /// Events captured at [`Level::Full`], in shard-local emission order.
    pub events: Vec<Event>,
    /// Per-kind counter increments deferred to the barrier fold.
    counts: [u64; KINDS],
}

thread_local! {
    /// Fast flag checked by [`record`]; `true` only inside
    /// [`shard_capture_into`].
    static SHARD_ACTIVE: Cell<bool> = const { Cell::new(false) };
    /// The capture currently installed on this thread, if any.
    static SHARD: RefCell<Option<ShardCapture>> = const { RefCell::new(None) };
}

/// Run `f` with `cap` installed as this thread's telemetry sink and return
/// `f`'s result. The capture is cleared on entry (its allocations are
/// reused) and holds everything `f` recorded on exit, even if `f` panics
/// (the capture is restored on unwind so a poisoned shard cannot leak a
/// diversion into later slots on a pooled worker thread).
pub fn shard_capture_into<R>(cap: &mut ShardCapture, f: impl FnOnce() -> R) -> R {
    let mut fresh = std::mem::take(cap);
    fresh.events.clear();
    fresh.counts = [0; KINDS];
    let prev = SHARD.with(|shard| shard.borrow_mut().replace(fresh));
    let prev_active = SHARD_ACTIVE.with(|active| active.replace(true));

    struct Guard<'a> {
        cap: &'a mut ShardCapture,
        prev: Option<ShardCapture>,
        prev_active: bool,
    }
    impl Drop for Guard<'_> {
        fn drop(&mut self) {
            let taken = SHARD.with(|shard| {
                let mut shard = shard.borrow_mut();
                let taken = shard.take();
                *shard = self.prev.take();
                taken
            });
            *self.cap = taken.unwrap_or_default();
            SHARD_ACTIVE.with(|active| active.set(self.prev_active));
        }
    }
    let _guard = Guard {
        cap,
        prev,
        prev_active,
    };
    f()
}

/// Number of events captured so far by this thread's installed shard
/// capture (0 outside [`shard_capture_into`]). Shards bracket per-unit
/// work with marks to attribute event runs during the ordered merge.
pub fn shard_mark() -> usize {
    SHARD.with(|shard| shard.borrow().as_ref().map_or(0, |cap| cap.events.len()))
}

/// Fold a capture's deferred counter increments into the process-wide
/// registry — one atomic add per kind that fired, instead of one per
/// event on the hot path.
pub fn fold_shard_counts(cap: &ShardCapture) {
    for (i, &n) in cap.counts.iter().enumerate() {
        if n != 0 {
            COUNTERS[i].fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Replay captured events into the merging thread's active scope, exactly
/// as if [`record`] had emitted them there: pushed in order into the scope
/// ring (counted recorded), or counted unscoped when no scope is active.
/// No-op below [`Level::Full`] — captures only hold events at `Full`.
pub fn replay_shard_events(events: &[Event]) {
    if events.is_empty() || level() != Level::Full {
        return;
    }
    SCOPES.with(|scopes| {
        let mut scopes = scopes.borrow_mut();
        match scopes.last_mut() {
            Some(scope) => {
                for &ev in events {
                    scope.ring.push(ev);
                }
                EVENTS_RECORDED.fetch_add(events.len() as u64, Ordering::Relaxed);
            }
            None => {
                EVENTS_UNSCOPED.fetch_add(events.len() as u64, Ordering::Relaxed);
            }
        }
    });
}

/// Run `f` with a fresh recording scope installed on this thread and
/// return its result together with the captured [`EventLog`]. Scopes nest:
/// an inner `collect` captures its own events, and its log lands in the
/// *parent's* `children` only when routed there with [`absorb`] — the
/// sweep executor does exactly that, in declared point order.
pub fn collect<R>(label: impl Into<String>, f: impl FnOnce() -> R) -> (R, EventLog) {
    let label = label.into();
    SCOPES.with(|scopes| {
        scopes.borrow_mut().push(Scope {
            label: label.clone(),
            ring: EventRing::new(RING_CAPACITY.load(Ordering::Relaxed)),
            children: Vec::new(),
        });
    });
    // Pop the scope even if `f` panics, so a failed point cannot poison
    // the thread for subsequent points.
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            SCOPES.with(|scopes| {
                scopes.borrow_mut().pop();
            });
        }
    }
    let result = {
        let _guard = PopGuard;
        let result = f();
        // Take the scope contents before the guard pops it.
        let log = SCOPES.with(|scopes| {
            let mut scopes = scopes.borrow_mut();
            let scope = scopes.last_mut().expect("collect scope present");
            let ring = std::mem::replace(&mut scope.ring, EventRing::new(1));
            let children = std::mem::take(&mut scope.children);
            let overflowed = ring.overwritten;
            EVENTS_OVERFLOWED.fetch_add(overflowed, Ordering::Relaxed);
            EventLog {
                label: scope.label.clone(),
                events: ring.into_events(),
                overflowed,
                children,
            }
        });
        (result, log)
    };
    result
}

/// Route a finished [`EventLog`] to its destination: the enclosing scope
/// on this thread if one is active (nested sweeps), else the process-level
/// bundle. The sweep executor calls this from its merge loop, in declared
/// point order, which is what makes the final bundle independent of the
/// worker schedule.
pub fn absorb(log: EventLog) {
    let unrouted = SCOPES.with(|scopes| {
        let mut scopes = scopes.borrow_mut();
        match scopes.last_mut() {
            Some(scope) => {
                scope.children.push(log);
                None
            }
            None => Some(log),
        }
    });
    if let Some(log) = unrouted {
        ABSORBED.lock().expect("telemetry bundle lock").push(log);
    }
}

/// Drain every log absorbed at process level (outside any scope), in
/// absorption order.
pub fn take_absorbed() -> Vec<EventLog> {
    std::mem::take(&mut ABSORBED.lock().expect("telemetry bundle lock"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(slot: Slot) -> (Engine, Slot, EventKind) {
        (
            Engine::Pps,
            slot,
            EventKind::Depart {
                cell: CellId(slot),
                output: PortId(0),
            },
        )
    }

    #[test]
    fn off_by_default_records_nothing() {
        let ((), log) = collect("idle", || {
            let (e, s, k) = ev(1);
            if on() {
                record(e, s, k);
            }
        });
        assert_eq!(log.events.len(), 0);
    }

    #[test]
    fn ring_wraps_and_counts() {
        let mut ring = EventRing::new(2);
        for slot in 0..5 {
            let (e, s, k) = ev(slot);
            ring.push(Event {
                slot: s,
                engine: e,
                kind: k,
            });
        }
        assert_eq!(ring.overwritten, 3);
        let events = ring.into_events();
        let slots: Vec<Slot> = events.iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![3, 4]);
    }

    fn push(ring: &mut EventRing, slot: Slot) {
        let (e, s, k) = ev(slot);
        ring.push(Event {
            slot: s,
            engine: e,
            kind: k,
        });
    }

    #[test]
    fn ring_grows_in_place_keeping_order() {
        let mut ring = EventRing::new(2);
        for slot in 0..5 {
            push(&mut ring, slot); // wrapped: holds [3, 4], head mid-buffer
        }
        ring.set_capacity(4);
        push(&mut ring, 5);
        push(&mut ring, 6);
        assert_eq!(ring.overwritten, 3, "growing must not drop anything");
        let slots: Vec<Slot> = ring.into_events().iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![3, 4, 5, 6]);
    }

    #[test]
    fn ring_shrinks_dropping_oldest_and_counting() {
        let mut ring = EventRing::new(4);
        for slot in 0..4 {
            push(&mut ring, slot);
        }
        ring.set_capacity(2);
        assert_eq!(ring.overwritten, 2, "shrink drops count as overflow");
        push(&mut ring, 9); // wrap under the new capacity
        assert_eq!(ring.overwritten, 3);
        let slots: Vec<Slot> = ring.into_events().iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![3, 9]);
    }
}
