//! Process-wide worker budget shared by every parallel component.
//!
//! One budget ([`set_jobs`]) caps the *total* number of threads making
//! progress at any instant across every concurrently running parallel
//! region — the sweep executor in `pps-experiments`, the registry-level
//! sweep `ppslab` runs, and the per-plane alignment scans in
//! `pps-traffic`. Each region keeps its calling thread and leases extra
//! workers only while it has work left, so nested parallelism (alignment
//! scans inside an experiment inside the registry sweep) never
//! oversubscribes.
//!
//! The budget lived in `pps_experiments::sweep` through PR 3; it moved
//! here so leaf crates below the experiment layer can lease from the same
//! pool without a dependency cycle (`pps-experiments` depends on
//! `pps-traffic`, not the other way round). `pps_experiments::sweep`
//! re-exports [`set_jobs`]/[`jobs`], so drivers are unaffected.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker budget (see [`set_jobs`]). The default of 1 keeps
/// library users (tests, doc examples) serial until a driver opts in.
static JOBS: AtomicUsize = AtomicUsize::new(1);
/// Extra workers currently leased across all live parallel regions.
static LEASED: AtomicUsize = AtomicUsize::new(0);
/// Requested intra-run shard count (see [`set_intra_jobs`]). Engines read
/// it once at construction, like the stepping default.
static INTRA_JOBS: AtomicUsize = AtomicUsize::new(1);

/// Set the process-wide parallelism budget: the maximum number of threads
/// (callers + leased workers) simultaneously making progress. `n = 1`
/// means fully serial execution on calling threads.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::SeqCst);
}

/// The current process-wide parallelism budget.
pub fn jobs() -> usize {
    JOBS.load(Ordering::SeqCst)
}

/// Set the process-wide *intra-run* shard count: how many shards a single
/// fabric partitions its planes and output resequencers into (`ppslab
/// --intra-jobs`). Shards above 1 advance in parallel on workers leased
/// from the same budget as [`set_jobs`]; results are byte-identical at any
/// value because shard results merge at a barrier in declared order.
/// Engines read this once at construction (a mid-run flip cannot re-shard
/// a live fabric); per-engine setters override it.
pub fn set_intra_jobs(n: usize) {
    INTRA_JOBS.store(n.max(1), Ordering::SeqCst);
}

/// The current process-wide intra-run shard count (see [`set_intra_jobs`]).
pub fn intra_jobs() -> usize {
    INTRA_JOBS.load(Ordering::SeqCst)
}

/// Try to lease one extra worker from the shared budget. On success the
/// caller owns one worker slot and must return it with
/// [`release_worker`] — prefer [`WorkerLease::try_new`], which releases
/// on drop.
pub fn lease_worker() -> bool {
    let budget = jobs().saturating_sub(1);
    let mut cur = LEASED.load(Ordering::SeqCst);
    loop {
        if cur >= budget {
            return false;
        }
        match LEASED.compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return true,
            Err(seen) => cur = seen,
        }
    }
}

/// Return a worker slot taken with [`lease_worker`].
pub fn release_worker() {
    LEASED.fetch_sub(1, Ordering::SeqCst);
}

/// RAII worker lease: holds one slot of the shared budget, released on
/// drop (including on panic unwind out of a parallel scope).
#[derive(Debug)]
pub struct WorkerLease(());

impl WorkerLease {
    /// Try to take one worker slot; `None` when the budget is exhausted.
    pub fn try_new() -> Option<WorkerLease> {
        if lease_worker() {
            Some(WorkerLease(()))
        } else {
            None
        }
    }
}

impl Drop for WorkerLease {
    fn drop(&mut self) {
        release_worker();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_respects_budget_and_releases() {
        // Serialized against other tests by touching only this module's
        // statics from one test (cargo runs tests in one process; keep the
        // invariant simple: restore jobs=1 at the end).
        set_jobs(3);
        let a = WorkerLease::try_new();
        let b = WorkerLease::try_new();
        assert!(a.is_some() && b.is_some(), "budget 3 = caller + 2 leases");
        assert!(WorkerLease::try_new().is_none(), "third lease over budget");
        drop(a);
        let c = WorkerLease::try_new();
        assert!(c.is_some(), "released slot is leasable again");
        drop(b);
        drop(c);
        set_jobs(1);
        assert!(
            WorkerLease::try_new().is_none(),
            "serial budget leases none"
        );
    }
}
