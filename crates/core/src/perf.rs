//! Process-wide simulation throughput accounting.
//!
//! Every engine in the workspace — the PPS fabric, the crossbar/CIOQ
//! baselines, and analysis passes that walk a trace slot by slot — bumps
//! the shared counter once per slot it processes (one relaxed atomic add,
//! negligible next to the slot's own work). Any driver can then meter
//! slots/sec across whole experiments without threading a counter through
//! every engine: read [`slots_simulated`] before and after a workload and
//! take the difference. The counter is cumulative and monotonic; it is
//! never reset.
//!
//! The counter lives in `pps-core` (rather than `pps-switch`, where it
//! started) so that engines which do not depend on the PPS fabric — the
//! `pps-crossbar` CIOQ/iSLIP switches, trace validators — can account
//! their slots too; `pps_switch::perf` re-exports it for compatibility.

use std::sync::atomic::{AtomicU64, Ordering};

static SLOTS_SIMULATED: AtomicU64 = AtomicU64::new(0);
static SLOTS_SKIPPED: AtomicU64 = AtomicU64::new(0);
static INTRA_MERGE_NANOS: AtomicU64 = AtomicU64::new(0);

/// Total slots simulated by this process so far, across every engine (PPS
/// fabric, crossbar baselines, hand-rolled `slot()` loops). Slots covered
/// by a skip-ahead jump count under [`slots_skipped`] instead — the sum of
/// the two is the simulated-time span an equivalent dense run would have
/// walked.
pub fn slots_simulated() -> u64 {
    SLOTS_SIMULATED.load(Ordering::Relaxed)
}

/// Total slots covered by skip-ahead jumps instead of being individually
/// processed (see [`crate::stepping`]). Cumulative and monotonic, like
/// [`slots_simulated`].
pub fn slots_skipped() -> u64 {
    SLOTS_SKIPPED.load(Ordering::Relaxed)
}

/// Record `n` processed slots. Engines call this once per slot (`n = 1`);
/// batch processors (e.g. a validator that scanned a whole trace) may
/// account their span in one add.
#[inline]
pub fn record_slots(n: u64) {
    SLOTS_SIMULATED.fetch_add(n, Ordering::Relaxed);
}

/// Record `n` slots elided by a skip-ahead jump. Engines call this once
/// per jump with the width of the skipped interval.
#[inline]
pub fn record_skipped(n: u64) {
    SLOTS_SKIPPED.fetch_add(n, Ordering::Relaxed);
}

/// Total wall-clock nanoseconds spent merging intra-run shard results at
/// the slot barrier (declared-order delivery/emit merge + telemetry fold).
/// Cumulative and monotonic; `0` until a sharded fabric runs.
pub fn intra_merge_nanos() -> u64 {
    INTRA_MERGE_NANOS.load(Ordering::Relaxed)
}

/// Record `n` nanoseconds of intra-run shard merge time. The fabric calls
/// this once per merged parallel region, not per cell.
#[inline]
pub fn record_intra_merge(n: u64) {
    INTRA_MERGE_NANOS.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let before = slots_simulated();
        record_slots(3);
        assert!(slots_simulated() >= before + 3);
    }

    #[test]
    fn skipped_counter_is_monotonic() {
        let skip = slots_skipped();
        record_skipped(5);
        assert!(slots_skipped() >= skip + 5);
    }
}
