//! Rates and speedup arithmetic.
//!
//! The paper normalizes the external rate to `R` = 1 cell/slot and assumes
//! `R/r` is an integer, writing `r' = R/r` (so the internal lines carry at
//! most one cell every `r'` slots). The speedup of the switch is
//! `S = K·r/R = K/r'`, a rational number; we keep it exact as a [`Ratio`]
//! because theorem predicates like `S ≥ 2` and bounds like `N/S` must not
//! suffer float fuzz.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An exact non-negative rational number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    /// Construct `num/den`, reduced to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "Ratio denominator must be non-zero");
        let g = gcd(num.max(1), den);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    /// Numerator in lowest terms.
    pub fn num(self) -> u64 {
        self.num
    }

    /// Denominator in lowest terms.
    pub fn den(self) -> u64 {
        self.den
    }

    /// The ratio as `f64`, for reporting only.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact comparison with an integer (`self >= rhs`).
    pub fn ge_int(self, rhs: u64) -> bool {
        self.num >= rhs.saturating_mul(self.den)
    }

    /// Exact comparison with another ratio (`self >= rhs`).
    pub fn ge(self, rhs: Ratio) -> bool {
        (self.num as u128) * (rhs.den as u128) >= (rhs.num as u128) * (self.den as u128)
    }

    /// `floor(x / self)` for an integer `x` — e.g. `N/S` in the bounds.
    pub fn div_int_floor(self, x: u64) -> u64 {
        // x / (num/den) = x*den/num
        (x as u128 * self.den as u128 / self.num as u128) as u64
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Speedup `S = K / r'` of a PPS with `k` planes and internal slowdown
/// `r_prime = R/r`.
pub fn speedup(k: usize, r_prime: usize) -> Ratio {
    Ratio::new(k as u64, r_prime as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let r = Ratio::new(8, 4);
        assert_eq!((r.num(), r.den()), (2, 1));
        assert_eq!(format!("{r}"), "2");
        assert_eq!(format!("{}", Ratio::new(10, 4)), "5/2");
    }

    #[test]
    fn speedup_matches_paper_examples() {
        // 5x5 PPS with 2 planes at r = R/2 (Figure 1 flavour): S = 2/2 = 1.
        assert_eq!(speedup(2, 2), Ratio::new(1, 1));
        // K = 8, r' = 4 => S = 2, the CPA threshold.
        assert!(speedup(8, 4).ge_int(2));
        assert!(!speedup(7, 4).ge_int(2));
    }

    #[test]
    fn division_by_ratio() {
        // N/S with N = 64, S = 8/4 = 2 => 32.
        assert_eq!(speedup(8, 4).div_int_floor(64), 32);
        // Non-integral case floors: N = 10, S = 3/2 => 6.66 -> 6.
        assert_eq!(Ratio::new(3, 2).div_int_floor(10), 6);
    }

    #[test]
    fn exact_ordering() {
        assert!(Ratio::new(3, 2).ge(Ratio::new(4, 3)));
        assert!(!Ratio::new(4, 3).ge(Ratio::new(3, 2)));
        assert!(Ratio::new(2, 1).ge(Ratio::new(4, 2)));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }
}
