//! Deterministic work-stealing executor for declared point lists.
//!
//! Every experiment in this workspace is a sweep: the same measurement at
//! a list of parameter points (`N`, `K`, `u`, buffer caps, seeds, …), each
//! point a self-contained simulation. [`SweepPlan`] makes that structure
//! explicit — callers declare their points as data and a closure computing
//! one point — so execution strategy becomes the executor's business, not
//! the runner's. The executor lived in `pps_experiments::sweep` through
//! PR 5; it moved here (next to the [`crate::workers`] budget it drains)
//! so crates below the experiment layer — notably the chaos harness, whose
//! cases are exactly such a point list — can share it without a dependency
//! cycle. `pps_experiments::sweep` re-exports everything, so experiment
//! code is unaffected.
//!
//! ## Determinism contract
//!
//! A sweep's result is a `Vec` in **declared point order**, and each point
//! is computed only from `(index, seed, params)` — never from another
//! point's result or from anything scheduling-dependent. The executor may
//! compute points on any thread in any order (work-stealing over an atomic
//! cursor), but the merged output is the same `Vec` the serial loop would
//! have produced, so every rendered table is byte-identical whatever
//! `--jobs` says. Cross-point assertions (monotonicity checks and the
//! like) run *after* the merge, over the ordered results.
//!
//! ## Seed derivation
//!
//! Randomized points draw their seed from [`SweepPoint::seed`], an FNV-1a
//! hash of the plan id and the point index. The seed depends only on those
//! two stable strings — never on thread identity, timing, or job count —
//! so a point's traffic is reproducible in isolation: the same `(id,
//! index)` always sees the same seed. (Experiments that predate the
//! executor and bake literal seeds into their params keep them; the hash
//! is for new sweeps that would otherwise reach for `index as u64`.)
//!
//! ## Job budget
//!
//! One process-wide budget ([`crate::workers::set_jobs`]) caps the *total*
//! number of worker threads across every concurrently running sweep,
//! including the registry-level sweep `ppslab` itself uses to run whole
//! experiments in parallel. Each executor keeps the calling thread and
//! leases extra workers from the shared budget only while it has points
//! left, so nested sweeps (experiments inside the registry sweep, chaos
//! cases inside a chaos run) never oversubscribe: at most `jobs` threads
//! make progress at any instant.

use crate::telemetry::{self, EventLog};
use crate::workers::{jobs, lease_worker, release_worker};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Deterministic per-point seed: FNV-1a over the plan id and point index.
/// Stable across runs, platforms, and job counts.
pub fn point_seed(id: &str, index: usize) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in id.bytes().chain((index as u64).to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// One point of a sweep, as seen by the point closure.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint<'a, P> {
    /// Position in the declared point list (also the result position).
    pub index: usize,
    /// Deterministic seed derived from the plan id and `index`.
    pub seed: u64,
    /// The declared parameters of this point.
    pub params: &'a P,
}

/// A declared sweep: an id (for seed derivation and diagnostics) plus the
/// ordered list of parameter points.
#[derive(Clone, Debug)]
pub struct SweepPlan<P> {
    id: &'static str,
    points: Vec<P>,
}

impl<P> SweepPlan<P> {
    /// Declare a sweep over `points`, in the order results are wanted.
    pub fn new(id: &'static str, points: Vec<P>) -> Self {
        SweepPlan { id, points }
    }

    /// The plan id.
    pub fn id(&self) -> &'static str {
        self.id
    }

    /// The declared points, in order.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Execute every point and return the results in declared order.
    ///
    /// The calling thread always participates; up to `jobs() - 1` extra
    /// workers are leased from the process-wide budget while points
    /// remain. `f` must compute a point from its [`SweepPoint`] alone —
    /// see the module docs for the determinism contract.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        F: Fn(SweepPoint<'_, P>) -> R + Sync,
    {
        let n = self.points.len();
        if n == 0 {
            return Vec::new();
        }
        // At `--telemetry full`, every point gets its own recording scope
        // on whichever worker computes it; the captured logs travel back
        // through the result channel and are absorbed *in declared point
        // order* below, so the merged event bundle — like the tables — is
        // byte-identical at any job count.
        let tracing = telemetry::level() == telemetry::Level::Full;
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R, Option<EventLog>)>();
        let work = |tx: mpsc::Sender<(usize, R, Option<EventLog>)>| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let point = SweepPoint {
                index: i,
                seed: point_seed(self.id, i),
                params: &self.points[i],
            };
            let (r, log) = if tracing {
                let (r, log) = telemetry::collect(format!("{}/{i}", self.id), || f(point));
                (r, Some(log))
            } else {
                (f(point), None)
            };
            if tx.send((i, r, log)).is_err() {
                break;
            }
        };
        // Lease extra workers up front (never more than there are points
        // beyond the caller's share); skip the scope entirely when the
        // budget is exhausted so serial sweeps stay thread-free.
        let wanted = n.saturating_sub(1).min(jobs().saturating_sub(1));
        let mut leased = 0usize;
        while leased < wanted && lease_worker() {
            leased += 1;
        }
        if leased == 0 {
            work(tx);
        } else {
            crossbeam::thread::scope(|scope| {
                for _ in 0..leased {
                    let tx = tx.clone();
                    scope.spawn(move |_| {
                        work(tx);
                        release_worker();
                    });
                }
                work(tx);
            })
            .expect("sweep worker panicked");
        }
        // Merge in declared order; every index is sent exactly once. Event
        // logs are absorbed on this thread in the same order, so they land
        // in the enclosing scope (nested sweeps) or the process bundle
        // independent of which worker recorded them.
        let mut slots: Vec<Option<(R, Option<EventLog>)>> = (0..n).map(|_| None).collect();
        for (i, r, log) in rx {
            debug_assert!(slots[i].is_none(), "point {i} computed twice");
            slots[i] = Some((r, log));
        }
        slots
            .into_iter()
            .map(|s| {
                let (r, log) = s.expect("every sweep point yields a result");
                if let Some(log) = log {
                    telemetry::absorb(log);
                }
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workers::set_jobs;

    #[test]
    fn results_come_back_in_declared_order() {
        let plan = SweepPlan::new("test-order", (0..64).collect::<Vec<usize>>());
        let out = plan.run(|pt| *pt.params * 2);
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = point_seed("e14", 0);
        let b = point_seed("e14", 1);
        let c = point_seed("e15", 0);
        assert_eq!(a, point_seed("e14", 0), "same (id, index) — same seed");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let plan = SweepPlan::new("test-agree", (0..40usize).collect::<Vec<_>>());
        let compute = |pt: SweepPoint<'_, usize>| (pt.index, pt.seed, pt.params * 3);
        set_jobs(1);
        let serial = plan.run(compute);
        set_jobs(8);
        let parallel = plan.run(compute);
        set_jobs(1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_plan_is_fine() {
        let plan: SweepPlan<u32> = SweepPlan::new("test-empty", vec![]);
        assert!(plan.run(|pt| *pt.params).is_empty());
    }

    #[test]
    fn nested_sweeps_share_the_budget() {
        // An outer sweep whose points each run an inner sweep: with any
        // budget, all 6 × 5 points are computed and ordered correctly.
        set_jobs(4);
        let outer = SweepPlan::new("test-outer", (0..6u64).collect::<Vec<_>>());
        let sums = outer.run(|pt| {
            let base = *pt.params;
            let inner = SweepPlan::new("test-inner", (0..5u64).collect::<Vec<_>>());
            inner.run(|q| base * 10 + *q.params).iter().sum::<u64>()
        });
        set_jobs(1);
        let expect: Vec<u64> = (0..6u64)
            .map(|b| (0..5).map(|q| b * 10 + q).sum())
            .collect();
        assert_eq!(sums, expect);
    }
}
