//! FIFO queues with occupancy accounting.
//!
//! Plane buffers and output resequencing buffers are the places where
//! relative queuing delay physically accumulates; the paper notes that large
//! relative delays imply correspondingly large buffers ("large relative
//! queuing delays usually imply that the buffer sizes at the middle-stage
//! switches or at the external ports should be large as well"). Tracking the
//! high-water mark per queue lets the experiments report that implication
//! directly.

use std::collections::VecDeque;

/// A FIFO queue that tracks its high-water mark and cumulative throughput.
#[derive(Clone, Debug)]
pub struct FifoQueue<T> {
    items: VecDeque<T>,
    max_occupancy: usize,
    total_enqueued: u64,
}

impl<T> Default for FifoQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FifoQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        FifoQueue {
            items: VecDeque::new(),
            max_occupancy: 0,
            total_enqueued: 0,
        }
    }

    /// Append an item at the tail.
    pub fn push(&mut self, item: T) {
        self.items.push_back(item);
        self.total_enqueued += 1;
        self.max_occupancy = self.max_occupancy.max(self.items.len());
    }

    /// Remove and return the head item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Borrow the head item.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Highest occupancy ever reached.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Total number of items ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// Iterate the queued items head-to-tail.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Drop all items but keep statistics history.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Reset both contents and statistics.
    pub fn reset(&mut self) {
        self.items.clear();
        self.max_occupancy = 0;
        self.total_enqueued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = FifoQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.peek(), Some(&2));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn high_water_mark_survives_drain() {
        let mut q = FifoQueue::new();
        for i in 0..5 {
            q.push(i);
        }
        while q.pop().is_some() {}
        q.push(99);
        assert_eq!(q.max_occupancy(), 5);
        assert_eq!(q.total_enqueued(), 6);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn reset_clears_statistics() {
        let mut q = FifoQueue::new();
        q.push(1);
        q.reset();
        assert_eq!(q.max_occupancy(), 0);
        assert_eq!(q.total_enqueued(), 0);
        assert!(q.is_empty());
    }
}
