//! Slotted time.
//!
//! The paper normalizes the external line rate to `R` = one cell per time
//! slot: *"a time-slot is the time required to transmit a cell at rate R"*.
//! All delays, deadlines and link occupancy windows in this workspace are
//! expressed in slots.

/// A discrete time slot index.
///
/// Plain `u64` alias rather than a newtype: slot arithmetic (deadline
/// computation, busy-until bookkeeping, interval algebra in the leaky-bucket
/// validator) is pervasive and the newtype ceremony buys nothing here — port
/// and plane indices, which *are* easy to mix up, get real newtypes in
/// [`crate::ids`].
pub type Slot = u64;

/// Iterator over the slots of a half-open interval `[start, end)`.
///
/// Convenience used by traffic generators and validators that reason about
/// leaky-bucket windows.
pub fn slots(start: Slot, end: Slot) -> impl Iterator<Item = Slot> {
    start..end
}

/// Saturating distance between two slots, `|a - b|`.
#[inline]
pub fn slot_distance(a: Slot, b: Slot) -> Slot {
    a.abs_diff(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_interval_is_half_open() {
        let v: Vec<Slot> = slots(3, 6).collect();
        assert_eq!(v, vec![3, 4, 5]);
        assert_eq!(slots(5, 5).count(), 0);
    }

    #[test]
    fn distance_is_symmetric() {
        assert_eq!(slot_distance(10, 3), 7);
        assert_eq!(slot_distance(3, 10), 7);
        assert_eq!(slot_distance(4, 4), 0);
    }
}
