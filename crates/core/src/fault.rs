//! Scripted fault injection.
//!
//! The paper motivates unpartitioned demultiplexors by fault tolerance
//! (§3: "a damage in one plane causes more cell dropping than if all K
//! planes are utilized"), which only becomes observable when failure and
//! *recovery* happen mid-run and each information class learns about them
//! with its own lag. A [`FaultPlan`] is a deterministic, slot-ordered
//! script of such events, serializable alongside traces so a faulted run
//! is as replayable as a fault-free one.
//!
//! Event semantics (all take effect at the *start* of their slot, before
//! any dispatch decision of that slot):
//!
//! * [`FaultEvent::PlaneDown`] — the plane black-holes every cell handed
//!   to it from `at` on, and every cell already queued inside it is lost
//!   (the fabric flushes and counts them as dropped).
//! * [`FaultEvent::PlaneUp`] — the plane accepts cells again from `at`.
//! * [`FaultEvent::LinkDegraded`] — the input→plane line is unusable
//!   during `[from, until)`; the demultiplexor sees it as busy through
//!   its ordinary local view.
//!
//! Visibility is class-correct by construction: the engine folds the
//! up/down state into the [`GlobalSnapshot`](crate::snapshot::GlobalSnapshot)
//! as a [`PlaneMask`], so a centralized demultiplexor sees the current
//! mask, a `u`-RT one sees it `u` slots stale, and a fully-distributed
//! one sees nothing at all.

use crate::config::PpsConfig;
use crate::error::ModelError;
use crate::ids::{PlaneId, PortId};
use crate::time::Slot;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Read, Write};

/// Which planes an observer believes are up.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlaneMask {
    up: Box<[bool]>,
}

impl PlaneMask {
    /// A mask with all `k` planes up.
    pub fn all_up(k: usize) -> Self {
        PlaneMask {
            up: vec![true; k].into_boxed_slice(),
        }
    }

    /// Number of planes covered by the mask.
    pub fn k(&self) -> usize {
        self.up.len()
    }

    /// Whether `plane` is believed up.
    #[inline]
    pub fn is_up(&self, plane: usize) -> bool {
        self.up[plane]
    }

    /// Record `plane` as up or down.
    pub fn set_up(&mut self, plane: usize, up: bool) {
        self.up[plane] = up;
    }

    /// Number of planes currently down.
    pub fn down_count(&self) -> usize {
        self.up.iter().filter(|&&u| !u).count()
    }

    /// Whether any plane is down.
    pub fn any_down(&self) -> bool {
        self.up.iter().any(|&u| !u)
    }

    /// Iterator over the planes believed up.
    pub fn up_planes(&self) -> impl Iterator<Item = usize> + '_ {
        self.up
            .iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(p, _)| p)
    }
}

/// One scripted fault event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Plane `plane` fails at the start of slot `at`; its queued cells are
    /// flushed (lost) and subsequent dispatches to it are black-holed.
    PlaneDown {
        /// The failing plane.
        plane: PlaneId,
        /// First slot of the outage.
        at: Slot,
    },
    /// Plane `plane` recovers at the start of slot `at`.
    PlaneUp {
        /// The recovering plane.
        plane: PlaneId,
        /// First slot after the outage.
        at: Slot,
    },
    /// The `input → plane` line is unusable during `[from, until)`.
    LinkDegraded {
        /// The input-port side of the degraded line.
        input: PortId,
        /// The plane side of the degraded line.
        plane: PlaneId,
        /// First degraded slot.
        from: Slot,
        /// First slot at which the line works again (exclusive end).
        until: Slot,
    },
}

impl FaultEvent {
    /// The slot at whose start the event takes effect.
    pub fn activates_at(&self) -> Slot {
        match *self {
            FaultEvent::PlaneDown { at, .. } | FaultEvent::PlaneUp { at, .. } => at,
            FaultEvent::LinkDegraded { from, .. } => from,
        }
    }

    /// The plane the event concerns.
    pub fn plane(&self) -> PlaneId {
        match *self {
            FaultEvent::PlaneDown { plane, .. }
            | FaultEvent::PlaneUp { plane, .. }
            | FaultEvent::LinkDegraded { plane, .. } => plane,
        }
    }
}

/// A slot-ordered script of fault events.
///
/// Built with the chainable constructors; events are kept sorted by
/// activation slot (stable for same-slot events, so a `PlaneUp` scripted
/// before a `PlaneDown` of the same slot applies first).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    fn push(mut self, ev: FaultEvent) -> Self {
        // Stable insertion: after every event with activation <= this one's.
        let at = ev.activates_at();
        let idx = self.events.partition_point(|e| e.activates_at() <= at);
        self.events.insert(idx, ev);
        self
    }

    /// Script plane `plane` failing at the start of slot `at`.
    pub fn plane_down(self, plane: u32, at: Slot) -> Self {
        self.push(FaultEvent::PlaneDown {
            plane: PlaneId(plane),
            at,
        })
    }

    /// Script plane `plane` recovering at the start of slot `at`.
    pub fn plane_up(self, plane: u32, at: Slot) -> Self {
        self.push(FaultEvent::PlaneUp {
            plane: PlaneId(plane),
            at,
        })
    }

    /// Script the `input → plane` line being unusable during `[from, until)`.
    pub fn link_degraded(self, input: u32, plane: u32, from: Slot, until: Slot) -> Self {
        self.push(FaultEvent::LinkDegraded {
            input: PortId(input),
            plane: PlaneId(plane),
            from,
            until,
        })
    }

    /// The scripted events in activation order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Activation slot of the last event (0 for an empty plan).
    pub fn horizon(&self) -> Slot {
        self.events.last().map_or(0, |e| e.activates_at())
    }

    /// Check every event against a switch geometry: plane and input
    /// indices in range, degradation windows non-empty.
    pub fn validate(&self, cfg: &PpsConfig) -> Result<(), ModelError> {
        let fail = |reason: String| Err(ModelError::InvalidConfig { reason });
        for ev in &self.events {
            let p = ev.plane().idx();
            if p >= cfg.k {
                return fail(format!(
                    "fault plan names plane {p} but the switch has K = {} planes",
                    cfg.k
                ));
            }
            if let FaultEvent::LinkDegraded {
                input, from, until, ..
            } = *ev
            {
                if input.idx() >= cfg.n {
                    return fail(format!(
                        "fault plan names input {} but the switch has N = {} ports",
                        input.idx(),
                        cfg.n
                    ));
                }
                if until <= from {
                    return fail(format!(
                        "link degradation window [{from}, {until}) is empty"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Serialize a fault plan as CSV (`kind,plane,input,at,until`; `input`
/// and `until` are empty for plane events).
pub fn write_csv<W: Write>(plan: &FaultPlan, mut w: W) -> std::io::Result<()> {
    writeln!(w, "kind,plane,input,at,until")?;
    for ev in plan.events() {
        match *ev {
            FaultEvent::PlaneDown { plane, at } => writeln!(w, "down,{},,{at},", plane.0)?,
            FaultEvent::PlaneUp { plane, at } => writeln!(w, "up,{},,{at},", plane.0)?,
            FaultEvent::LinkDegraded {
                input,
                plane,
                from,
                until,
            } => writeln!(w, "degrade,{},{},{from},{until}", plane.0, input.0)?,
        }
    }
    Ok(())
}

/// Parse a CSV fault plan (format of [`write_csv`]).
pub fn read_csv<R: Read>(r: R) -> Result<FaultPlan, ModelError> {
    let reader = BufReader::new(r);
    let mut plan = FaultPlan::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ModelError::MalformedTrace {
            reason: format!("I/O error at line {}: {e}", lineno + 1),
        })?;
        let line = line.trim();
        if line.is_empty() || (lineno == 0 && line.starts_with("kind")) {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let field = |idx: usize, name: &str| -> Result<u64, ModelError> {
            fields
                .get(idx)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| ModelError::MalformedTrace {
                    reason: format!("line {}: missing {name}", lineno + 1),
                })?
                .parse()
                .map_err(|e| ModelError::MalformedTrace {
                    reason: format!("line {}: bad {name}: {e}", lineno + 1),
                })
        };
        let plane = field(1, "plane")? as u32;
        plan = match fields[0] {
            "down" => plan.plane_down(plane, field(3, "at")?),
            "up" => plan.plane_up(plane, field(3, "at")?),
            "degrade" => plan.link_degraded(
                field(2, "input")? as u32,
                plane,
                field(3, "from")?,
                field(4, "until")?,
            ),
            kind => {
                return Err(ModelError::MalformedTrace {
                    reason: format!("line {}: unknown fault kind {kind:?}", lineno + 1),
                })
            }
        };
    }
    Ok(plan)
}

/// Round-trip convenience: write `plan` to `path`.
pub fn save(plan: &FaultPlan, path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_csv(plan, std::io::BufWriter::new(file))
}

/// Round-trip convenience: load a plan from `path`.
pub fn load(path: &std::path::Path) -> Result<FaultPlan, ModelError> {
    let file = std::fs::File::open(path).map_err(|e| ModelError::MalformedTrace {
        reason: format!("cannot open {}: {e}", path.display()),
    })?;
    read_csv(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> FaultPlan {
        FaultPlan::new()
            .plane_up(0, 1500)
            .plane_down(0, 500)
            .link_degraded(3, 2, 100, 200)
    }

    #[test]
    fn events_are_slot_ordered_and_stable() {
        let plan = demo();
        let slots: Vec<Slot> = plan.events().iter().map(|e| e.activates_at()).collect();
        assert_eq!(slots, vec![100, 500, 1500]);
        assert_eq!(plan.horizon(), 1500);
        // Same-slot events keep script order.
        let plan = FaultPlan::new().plane_up(1, 7).plane_down(2, 7);
        assert!(matches!(plan.events()[0], FaultEvent::PlaneUp { .. }));
        assert!(matches!(plan.events()[1], FaultEvent::PlaneDown { .. }));
    }

    #[test]
    fn validate_checks_geometry() {
        let cfg = PpsConfig::bufferless(4, 2, 2);
        assert!(demo().validate(&cfg).is_err()); // plane 2 out of range (K=2)
        let ok = FaultPlan::new().plane_down(1, 5).link_degraded(3, 0, 2, 4);
        assert!(ok.validate(&cfg).is_ok());
        let empty_window = FaultPlan::new().link_degraded(0, 0, 9, 9);
        assert!(empty_window.validate(&cfg).is_err());
        let bad_input = FaultPlan::new().link_degraded(4, 0, 1, 2);
        assert!(bad_input.validate(&cfg).is_err());
    }

    #[test]
    fn csv_round_trip() {
        let plan = demo();
        let mut buf = Vec::new();
        write_csv(&plan, &mut buf).unwrap();
        let parsed = read_csv(&buf[..]).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn csv_rejects_garbage_with_line_numbers() {
        let err = read_csv("kind,plane,input,at,until\nexplode,0,,5,\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = read_csv("down,zero,,5,\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("plane"), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pps_fault_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.csv");
        save(&demo(), &path).unwrap();
        assert_eq!(load(&path).unwrap(), demo());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn csv_round_trips_empty_plan() {
        let plan = FaultPlan::new();
        let mut buf = Vec::new();
        write_csv(&plan, &mut buf).unwrap();
        let parsed = read_csv(&buf[..]).unwrap();
        assert_eq!(parsed, plan);
        assert!(parsed.is_empty());
        assert_eq!(parsed.horizon(), 0);
        // Header-only and fully blank inputs also parse to the empty plan.
        assert_eq!(
            read_csv("kind,plane,input,at,until\n".as_bytes()).unwrap(),
            plan
        );
        assert_eq!(read_csv("".as_bytes()).unwrap(), plan);
        assert_eq!(read_csv("\n\n".as_bytes()).unwrap(), plan);
    }

    #[test]
    fn csv_round_trips_duplicate_slot_entries() {
        // Two downs of the same plane at the same slot, plus an up of
        // another plane in between: duplicates are legal script (the
        // engine treats a re-down as a no-op) and must survive the trip
        // verbatim, including their relative order.
        let plan = FaultPlan::new()
            .plane_down(1, 50)
            .plane_up(0, 50)
            .plane_down(1, 50)
            .link_degraded(2, 1, 50, 60)
            .link_degraded(2, 1, 50, 60);
        let mut buf = Vec::new();
        write_csv(&plan, &mut buf).unwrap();
        let parsed = read_csv(&buf[..]).unwrap();
        assert_eq!(parsed, plan);
        assert_eq!(parsed.len(), 5);
        assert!(parsed.events().iter().all(|e| e.activates_at() == 50));
    }

    #[test]
    fn csv_round_trips_out_of_order_events() {
        // The CSV may list events in any order; parsing rebuilds the plan
        // through the builders, which sort stably by activation slot — so
        // a scrambled file loads equal to the sorted plan.
        let scrambled = "kind,plane,input,at,until\n\
                         up,0,,900,\n\
                         degrade,1,3,10,20\n\
                         down,0,,300,\n";
        let parsed = read_csv(scrambled.as_bytes()).unwrap();
        let expect = FaultPlan::new()
            .link_degraded(3, 1, 10, 20)
            .plane_down(0, 300)
            .plane_up(0, 900);
        assert_eq!(parsed, expect);
        let slots: Vec<Slot> = parsed.events().iter().map(|e| e.activates_at()).collect();
        assert_eq!(slots, vec![10, 300, 900]);
        // And the round trip of the re-sorted plan is stable.
        let mut buf = Vec::new();
        write_csv(&parsed, &mut buf).unwrap();
        assert_eq!(read_csv(&buf[..]).unwrap(), parsed);
    }

    #[test]
    fn csv_round_trips_events_past_the_run_horizon() {
        // Events scheduled far past any realistic run horizon are kept:
        // the plan does not know the run length, the engine simply never
        // reaches them. validate() accepts them too — geometry is its
        // business, time is not.
        let plan = FaultPlan::new()
            .plane_down(0, 10)
            .plane_up(0, u64::MAX - 1)
            .link_degraded(0, 1, 1 << 40, (1 << 40) + 5);
        let mut buf = Vec::new();
        write_csv(&plan, &mut buf).unwrap();
        let parsed = read_csv(&buf[..]).unwrap();
        assert_eq!(parsed, plan);
        assert_eq!(parsed.horizon(), u64::MAX - 1);
        let cfg = PpsConfig::bufferless(4, 2, 2);
        assert!(parsed.validate(&cfg).is_ok());
    }

    #[test]
    fn plane_mask_bookkeeping() {
        let mut m = PlaneMask::all_up(4);
        assert!(!m.any_down());
        m.set_up(2, false);
        assert!(m.any_down());
        assert_eq!(m.down_count(), 1);
        assert!(!m.is_up(2));
        assert_eq!(m.up_planes().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(m.k(), 4);
    }
}
