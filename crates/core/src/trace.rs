//! Arrival traces.
//!
//! A [`Trace`] is the exact sequence of cell arrivals offered to a switch:
//! *"the two switches receive the same cells, with the same destinations, on
//! the same input-ports"* — both the PPS and the shadow reference switch
//! consume the same trace, which is what makes relative queuing delay
//! well-defined.
//!
//! The arrival model is enforced structurally: arrivals are kept sorted by
//! slot and at most one cell may arrive per `(slot, input)` pair.

use crate::cell::Cell;
use crate::error::ModelError;
use crate::ids::{CellId, PortId};
use crate::time::Slot;
use serde::{Deserialize, Serialize};

/// One cell arrival: at `slot`, a cell destined for `output` arrives on
/// `input`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Arrival slot.
    pub slot: Slot,
    /// Input port.
    pub input: PortId,
    /// Destination output port.
    pub output: PortId,
}

impl Arrival {
    /// Shorthand constructor from raw indices.
    pub fn new(slot: Slot, input: u32, output: u32) -> Self {
        Arrival {
            slot,
            input: PortId(input),
            output: PortId(output),
        }
    }
}

/// A validated arrival sequence for an `N × N` switch.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    arrivals: Vec<Arrival>,
}

impl Trace {
    /// Build a trace from raw arrivals.
    ///
    /// Arrivals are sorted by `(slot, input)`; the build fails if two cells
    /// share a `(slot, input)` pair (the external line carries at most one
    /// cell per slot) or if any port index is `>= n`.
    pub fn build(mut arrivals: Vec<Arrival>, n: usize) -> Result<Self, ModelError> {
        arrivals.sort_by_key(|a| (a.slot, a.input));
        for w in arrivals.windows(2) {
            if w[0].slot == w[1].slot && w[0].input == w[1].input {
                return Err(ModelError::MalformedTrace {
                    reason: format!(
                        "two arrivals on input {:?} in slot {}",
                        w[0].input, w[0].slot
                    ),
                });
            }
        }
        for a in &arrivals {
            if a.input.idx() >= n || a.output.idx() >= n {
                return Err(ModelError::MalformedTrace {
                    reason: format!("arrival {:?} references a port outside 0..{}", a, n),
                });
            }
        }
        Ok(Trace { arrivals })
    }

    /// An empty trace.
    pub fn empty() -> Self {
        Trace::default()
    }

    /// Number of cells in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace carries no cells.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The arrivals, sorted by `(slot, input)`.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Slot of the last arrival (0 for an empty trace).
    pub fn horizon(&self) -> Slot {
        self.arrivals.last().map_or(0, |a| a.slot)
    }

    /// Materialize the trace into [`Cell`]s with global ids in arrival order
    /// and per-flow sequence numbers.
    ///
    /// Both switch engines inject exactly these cells, so per-cell records
    /// can be joined by [`CellId`] afterwards.
    pub fn cells(&self, n: usize) -> Vec<Cell> {
        let mut seq = vec![0u32; n * n];
        self.arrivals
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let f = a.input.idx() * n + a.output.idx();
                let s = seq[f];
                seq[f] += 1;
                Cell {
                    id: CellId(i as u64),
                    input: a.input,
                    output: a.output,
                    seq: s,
                    arrival: a.slot,
                }
            })
            .collect()
    }

    /// Concatenate `other` onto this trace, shifting it to start `gap` slots
    /// after this trace's horizon. Used by the adversary to compose the
    /// alignment, quiescence and burst phases of Figure 2.
    pub fn then(mut self, other: &Trace, gap: Slot) -> Self {
        let base = if self.arrivals.is_empty() {
            0
        } else {
            self.horizon() + 1 + gap
        };
        self.arrivals.extend(other.arrivals.iter().map(|a| Arrival {
            slot: a.slot + base,
            ..*a
        }));
        self
    }

    /// Shift every arrival `delta` slots later.
    pub fn shifted(mut self, delta: Slot) -> Self {
        for a in &mut self.arrivals {
            a.slot += delta;
        }
        self
    }

    /// Merge two traces that are already disjoint in `(slot, input)`.
    pub fn merge(self, other: Trace, n: usize) -> Result<Self, ModelError> {
        let mut all = self.arrivals;
        all.extend(other.arrivals);
        Trace::build(all, n)
    }

    /// Group arrivals by slot: yields `(slot, &[Arrival])` in slot order.
    pub fn by_slot(&self) -> BySlot<'_> {
        BySlot {
            arrivals: &self.arrivals,
            pos: 0,
        }
    }
}

/// Iterator over per-slot arrival groups; see [`Trace::by_slot`].
pub struct BySlot<'a> {
    arrivals: &'a [Arrival],
    pos: usize,
}

impl<'a> Iterator for BySlot<'a> {
    type Item = (Slot, &'a [Arrival]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.arrivals.len() {
            return None;
        }
        let slot = self.arrivals[self.pos].slot;
        let start = self.pos;
        while self.pos < self.arrivals.len() && self.arrivals[self.pos].slot == slot {
            self.pos += 1;
        }
        Some((slot, &self.arrivals[start..self.pos]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sorts_and_validates() {
        let t = Trace::build(
            vec![
                Arrival::new(5, 1, 0),
                Arrival::new(2, 0, 1),
                Arrival::new(5, 0, 1),
            ],
            2,
        )
        .unwrap();
        let slots: Vec<Slot> = t.arrivals().iter().map(|a| a.slot).collect();
        assert_eq!(slots, vec![2, 5, 5]);
        assert_eq!(t.horizon(), 5);
    }

    #[test]
    fn duplicate_slot_input_is_rejected() {
        let r = Trace::build(vec![Arrival::new(3, 1, 0), Arrival::new(3, 1, 1)], 2);
        assert!(matches!(r, Err(ModelError::MalformedTrace { .. })));
    }

    #[test]
    fn out_of_range_port_is_rejected() {
        let r = Trace::build(vec![Arrival::new(0, 0, 7)], 2);
        assert!(r.is_err());
    }

    #[test]
    fn cells_get_flow_sequence_numbers() {
        let t = Trace::build(
            vec![
                Arrival::new(0, 0, 1),
                Arrival::new(1, 0, 1),
                Arrival::new(2, 0, 0),
                Arrival::new(3, 0, 1),
            ],
            2,
        )
        .unwrap();
        let cells = t.cells(2);
        let seqs: Vec<u32> = cells.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![0, 1, 0, 2]);
        // Ids are dense in arrival order.
        assert_eq!(cells[3].id, CellId(3));
    }

    #[test]
    fn same_slot_cells_ordered_by_input() {
        let t = Trace::build(vec![Arrival::new(0, 1, 0), Arrival::new(0, 0, 0)], 2).unwrap();
        let cells = t.cells(2);
        assert_eq!(cells[0].input, PortId(0));
        assert_eq!(cells[1].input, PortId(1));
    }

    #[test]
    fn composition_shifts_past_horizon() {
        let a = Trace::build(vec![Arrival::new(0, 0, 0), Arrival::new(4, 0, 0)], 1).unwrap();
        let b = Trace::build(vec![Arrival::new(0, 0, 0)], 1).unwrap();
        let c = a.then(&b, 10);
        // horizon 4, +1, +gap 10 => second trace starts at 15.
        assert_eq!(c.arrivals()[2].slot, 15);
    }

    #[test]
    fn then_on_empty_starts_at_zero() {
        let b = Trace::build(vec![Arrival::new(2, 0, 0)], 1).unwrap();
        let c = Trace::empty().then(&b, 100);
        assert_eq!(c.arrivals()[0].slot, 2);
    }

    #[test]
    fn by_slot_groups() {
        let t = Trace::build(
            vec![
                Arrival::new(1, 0, 0),
                Arrival::new(1, 1, 0),
                Arrival::new(3, 0, 0),
            ],
            2,
        )
        .unwrap();
        let groups: Vec<(Slot, usize)> = t.by_slot().map(|(s, a)| (s, a.len())).collect();
        assert_eq!(groups, vec![(1, 2), (3, 1)]);
    }
}
