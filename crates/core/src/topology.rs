//! Topology description and rendering (the paper's Figure 1).
//!
//! Figure 1 of the paper depicts "a 5×5 PPS with 2 planes in its center
//! stage, without buffers in the input-ports". [`render`] reproduces that
//! diagram for any configuration — the quickstart example prints it — and
//! [`describe`] gives the one-line architectural summary used in reports.

use crate::config::{BufferSpec, PpsConfig};
use std::fmt::Write;

/// One-line architectural summary, e.g.
/// `5x5 PPS, K=2 planes @ r=R/2 (S=1), bufferless inputs`.
pub fn describe(cfg: &PpsConfig) -> String {
    let buf = match cfg.buffer {
        BufferSpec::Bufferless => "bufferless inputs".to_string(),
        BufferSpec::Buffered { size } => format!("{size}-cell input buffers"),
    };
    format!(
        "{n}x{n} PPS, K={k} planes @ r=R/{rp} (S={s}), {buf}",
        n = cfg.n,
        k = cfg.k,
        rp = cfg.r_prime,
        s = cfg.speedup(),
    )
}

/// ASCII rendering of the three-stage Clos topology (Figure 1).
///
/// Inputs on the left, planes in the center, outputs on the right. Large
/// configurations are elided with ellipsis rows to keep the diagram
/// readable.
pub fn render(cfg: &PpsConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", describe(cfg));
    let _ = writeln!(out);
    let show_ports = cfg.n.min(5);
    let show_planes = cfg.k.min(4);
    let port_rows = show_ports + usize::from(cfg.n > show_ports);
    let plane_rows = show_planes + usize::from(cfg.k > show_planes);
    let rows = port_rows.max(plane_rows);
    for row in 0..rows {
        let inp = column_label(row, show_ports, cfg.n, "in ");
        let pl = plane_label(cfg, row, show_planes);
        let outp = column_label(row, show_ports, cfg.n, "out ");
        let _ = writeln!(out, "  {inp:<8} >--r-->  {pl:<22} --r-->  {outp}");
    }
    let _ = writeln!(
        out,
        "\n  every input connects to all {} planes; every plane to all {} outputs",
        cfg.k, cfg.n
    );
    out
}

fn column_label(row: usize, shown: usize, total: usize, prefix: &str) -> String {
    if row < shown {
        format!("{prefix}{row}")
    } else if row == shown && total > shown {
        format!("{prefix}... ({} total)", total)
    } else {
        String::new()
    }
}

fn plane_label(cfg: &PpsConfig, row: usize, shown: usize) -> String {
    if row < shown {
        format!(
            "[plane {row}: {n}x{n} @ r=R/{rp}]",
            n = cfg.n,
            rp = cfg.r_prime
        )
    } else if row == shown && cfg.k > shown {
        format!("[... {} planes total]", cfg.k)
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_description() {
        let cfg = PpsConfig::bufferless(5, 2, 2);
        assert_eq!(
            describe(&cfg),
            "5x5 PPS, K=2 planes @ r=R/2 (S=1), bufferless inputs"
        );
    }

    #[test]
    fn render_mentions_every_stage() {
        let s = render(&PpsConfig::bufferless(5, 2, 2));
        assert!(s.contains("in 0"));
        assert!(s.contains("plane 1"));
        assert!(s.contains("out 4"));
        assert!(!s.contains("..."), "small configs are not elided:\n{s}");
    }

    #[test]
    fn large_configs_are_elided() {
        let s = render(&PpsConfig::bufferless(512, 64, 16));
        assert!(s.contains("(512 total)"));
        assert!(s.contains("[... 64 planes total]"));
    }

    #[test]
    fn buffered_description() {
        let cfg = PpsConfig::buffered(8, 4, 2, 16);
        assert!(describe(&cfg).contains("16-cell input buffers"));
    }
}
