//! Model-level errors.
//!
//! The PPS model forbids dropping cells and forbids violating the internal
//! line-rate constraints; a demultiplexing algorithm that attempts either is
//! *incorrect*, and the engine surfaces that as a hard error rather than
//! silently mis-simulating.

use crate::ids::{CellId, PlaneId, PortId};
use crate::time::Slot;
use std::fmt;

/// Errors raised by the switch engines when a configuration or an algorithm
/// breaks the formal model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A configuration parameter is out of the model's domain.
    InvalidConfig {
        /// Human-readable explanation of the violated requirement.
        reason: String,
    },
    /// A demultiplexor dispatched a cell onto an input line that is still
    /// occupied (paper's *input constraint*: one cell per `r'` slots).
    InputConstraintViolation {
        /// Input port owning the line.
        input: PortId,
        /// Plane at the far end of the line.
        plane: PlaneId,
        /// Slot of the offending transmission.
        at: Slot,
        /// Slot at which the line becomes free again.
        busy_until: Slot,
    },
    /// A plane attempted to send two cells to the same output within `r'`
    /// slots (paper's *output constraint*). The engine schedules plane
    /// departures itself, so seeing this indicates an engine bug — it is
    /// still checked defensively.
    OutputConstraintViolation {
        /// Plane owning the line.
        plane: PlaneId,
        /// Output port at the far end of the line.
        output: PortId,
        /// Slot of the offending transmission.
        at: Slot,
        /// Slot at which the line becomes free again.
        busy_until: Slot,
    },
    /// An input-buffered demultiplexor tried to buffer a cell into a full
    /// buffer. The model forbids dropping cells, so this is fatal.
    BufferOverflow {
        /// Input port whose buffer overflowed.
        input: PortId,
        /// Configured buffer capacity.
        capacity: usize,
        /// The cell that could not be stored.
        cell: CellId,
    },
    /// A demultiplexor returned a plane index `>= K`.
    PlaneOutOfRange {
        /// The invalid plane index.
        plane: PlaneId,
        /// Number of planes in the switch.
        k: usize,
    },
    /// A buffered demultiplexor referenced a buffer slot that does not hold
    /// a cell.
    BadBufferIndex {
        /// Input port of the offending decision.
        input: PortId,
        /// The out-of-range or empty index.
        index: usize,
    },
    /// A trace violated the arrival model (two cells in one slot on one
    /// input port, or unsorted slots).
    MalformedTrace {
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            ModelError::InputConstraintViolation {
                input,
                plane,
                at,
                busy_until,
            } => write!(
                f,
                "input constraint violated: line ({input:?},{plane:?}) used at slot {at} but busy until {busy_until}"
            ),
            ModelError::OutputConstraintViolation {
                plane,
                output,
                at,
                busy_until,
            } => write!(
                f,
                "output constraint violated: line ({plane:?},{output:?}) used at slot {at} but busy until {busy_until}"
            ),
            ModelError::BufferOverflow {
                input,
                capacity,
                cell,
            } => write!(
                f,
                "input buffer overflow at {input:?} (capacity {capacity}) while storing {cell:?}"
            ),
            ModelError::PlaneOutOfRange { plane, k } => {
                write!(f, "demultiplexor chose plane {plane:?} but K = {k}")
            }
            ModelError::BadBufferIndex { input, index } => {
                write!(f, "demultiplexor referenced empty buffer slot {index} at {input:?}")
            }
            ModelError::MalformedTrace { reason } => write!(f, "malformed trace: {reason}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_constraint() {
        let e = ModelError::InputConstraintViolation {
            input: PortId(1),
            plane: PlaneId(2),
            at: 10,
            busy_until: 12,
        };
        let s = e.to_string();
        assert!(s.contains("input constraint"));
        assert!(s.contains("busy until 12"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = ModelError::PlaneOutOfRange {
            plane: PlaneId(9),
            k: 4,
        };
        assert_eq!(a.clone(), a);
    }
}
