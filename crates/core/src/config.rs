//! PPS configuration and validation.

use crate::error::ModelError;
use crate::rate::{speedup, Ratio};
use crate::time::Slot;
use serde::{Deserialize, Serialize};

/// First-stage buffering model.
///
/// The base PPS of Iyer–Awadallah–McKeown is *bufferless*: an arriving cell
/// is demultiplexed to a plane immediately. Iyer & McKeown's *input-buffered
/// PPS* variant adds a finite buffer at each input port; Section 4 of the
/// paper studies how that buffer changes the attainable bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BufferSpec {
    /// No input buffers; every arrival is dispatched in its arrival slot.
    Bufferless,
    /// A finite buffer of `size` cells at every input port.
    Buffered {
        /// Capacity of each input-port buffer, in cells.
        size: usize,
    },
}

impl BufferSpec {
    /// Buffer capacity (0 for the bufferless switch).
    pub fn capacity(self) -> usize {
        match self {
            BufferSpec::Bufferless => 0,
            BufferSpec::Buffered { size } => size,
        }
    }
}

/// Emission discipline of the output multiplexors.
///
/// The paper's lower bounds are discipline-independent (Lemma 4 assumes only
/// that cells are not dropped), but the cited upper bounds target specific
/// reference disciplines, so the engine makes the discipline pluggable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputDiscipline {
    /// Emit cells respecting per-flow order; among eligible heads, prefer the
    /// cell that arrived to the switch earliest (then lowest id). The
    /// default: it matches the model requirement that flow order is
    /// preserved while staying work-conserving at the output.
    FlowFifo,
    /// Emit cells in global arrival order (the *globally FCFS* discipline of
    /// footnote 3): the output waits for the next-in-order cell even if
    /// later cells are already present. Used when mimicking a FCFS
    /// output-queued switch (CPA).
    GlobalFcfs,
    /// Emit any present cell, earliest-arrival-at-output first. Maximally
    /// work-conserving but may reorder flows; provided for ablations only.
    Greedy,
}

/// Static description of a PPS instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PpsConfig {
    /// Number of external ports (`N`): the switch is `N × N`.
    pub n: usize,
    /// Number of center-stage planes (`K`).
    pub k: usize,
    /// Internal slowdown `r' = R/r` (integer per the paper's assumption):
    /// an internal line carries at most one cell every `r_prime` slots.
    pub r_prime: usize,
    /// First-stage buffering.
    pub buffer: BufferSpec,
    /// Output-stage emission discipline.
    pub discipline: OutputDiscipline,
    /// Resequencer watchdog: if an output multiplexor holds cells but
    /// emits nothing for this many consecutive slots (a cell lost to a
    /// failed plane is head-of-line-blocking the discipline), it skips
    /// ahead past the missing cell. `None` disables the watchdog — the
    /// correct setting for fault-free runs, where a stall is a bug, not a
    /// loss.
    pub watchdog: Option<Slot>,
}

impl PpsConfig {
    /// A bufferless, flow-FIFO configuration — the common case in the
    /// paper's Section 3.
    pub fn bufferless(n: usize, k: usize, r_prime: usize) -> Self {
        PpsConfig {
            n,
            k,
            r_prime,
            buffer: BufferSpec::Bufferless,
            discipline: OutputDiscipline::FlowFifo,
            watchdog: None,
        }
    }

    /// An input-buffered configuration (Section 4).
    pub fn buffered(n: usize, k: usize, r_prime: usize, size: usize) -> Self {
        PpsConfig {
            n,
            k,
            r_prime,
            buffer: BufferSpec::Buffered { size },
            discipline: OutputDiscipline::FlowFifo,
            watchdog: None,
        }
    }

    /// Replace the output discipline.
    pub fn with_discipline(mut self, d: OutputDiscipline) -> Self {
        self.discipline = d;
        self
    }

    /// Enable the resequencer watchdog with a `timeout`-slot stall limit
    /// (see [`PpsConfig::watchdog`]).
    pub fn with_watchdog(mut self, timeout: Slot) -> Self {
        self.watchdog = Some(timeout);
        self
    }

    /// Speedup `S = K/r'` of this configuration.
    pub fn speedup(&self) -> Ratio {
        speedup(self.k, self.r_prime)
    }

    /// `N/S = N·r'/K` rounded down — the recurring quantity in the paper's
    /// bounds.
    pub fn n_over_s(&self) -> u64 {
        self.speedup().div_int_floor(self.n as u64)
    }

    /// Validate the configuration against the model's domain.
    ///
    /// Beyond positivity, a *bufferless* switch needs `K ≥ r'`: with one
    /// arrival per slot, up to `r'` cells may need distinct free input lines
    /// within any `r'`-slot window, and a bufferless input has nowhere to
    /// hold a cell while all its lines are busy.
    pub fn validate(&self) -> Result<(), ModelError> {
        let fail = |reason: String| Err(ModelError::InvalidConfig { reason });
        if self.n == 0 {
            return fail("N must be positive".into());
        }
        if self.k == 0 {
            return fail("K must be positive".into());
        }
        if self.r_prime == 0 {
            return fail("r' = R/r must be positive".into());
        }
        if self.n > u32::MAX as usize || self.k > u32::MAX as usize {
            return fail("port/plane counts must fit in u32".into());
        }
        if matches!(self.buffer, BufferSpec::Bufferless) && self.k < self.r_prime {
            return fail(format!(
                "bufferless PPS requires K >= r' (got K = {}, r' = {}): an input \
                 receiving one cell per slot needs r' simultaneously-free lines",
                self.k, self.r_prime
            ));
        }
        if let BufferSpec::Buffered { size } = self.buffer {
            if size == 0 {
                return fail("input buffer size must be positive; use Bufferless instead".into());
            }
        }
        if self.watchdog == Some(0) {
            return fail("watchdog timeout must be positive; use None to disable".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_configuration_is_valid() {
        // Figure 1: a 5x5 PPS with 2 planes (bufferless). With r' = 2 this
        // needs K >= 2, which holds.
        let cfg = PpsConfig::bufferless(5, 2, 2);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.speedup(), Ratio::new(1, 1));
    }

    #[test]
    fn bufferless_requires_enough_planes() {
        let cfg = PpsConfig::bufferless(4, 2, 3);
        assert!(matches!(
            cfg.validate(),
            Err(ModelError::InvalidConfig { .. })
        ));
        // The same geometry is fine with input buffers.
        let cfg = PpsConfig::buffered(4, 2, 3, 8);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn zero_sized_anything_is_rejected() {
        assert!(PpsConfig::bufferless(0, 2, 1).validate().is_err());
        assert!(PpsConfig::bufferless(2, 0, 1).validate().is_err());
        assert!(PpsConfig::bufferless(2, 2, 0).validate().is_err());
        assert!(PpsConfig::buffered(2, 2, 1, 0).validate().is_err());
    }

    #[test]
    fn watchdog_zero_is_rejected() {
        assert!(PpsConfig::bufferless(2, 2, 1)
            .with_watchdog(0)
            .validate()
            .is_err());
        assert!(PpsConfig::bufferless(2, 2, 1)
            .with_watchdog(16)
            .validate()
            .is_ok());
    }

    #[test]
    fn n_over_s_matches_hand_computation() {
        // N = 64, K = 8, r' = 4 => S = 2, N/S = 32.
        assert_eq!(PpsConfig::bufferless(64, 8, 4).n_over_s(), 32);
        // N = 10, K = 3, r' = 2 => S = 3/2, N/S = 6 (floor of 6.67).
        assert_eq!(PpsConfig::bufferless(10, 3, 2).n_over_s(), 6);
    }
}
