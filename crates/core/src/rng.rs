//! Seeded SplitMix64 — the workspace's one source of randomness.
//!
//! Every randomized component (the workload generators, the sampling
//! crossbar schedulers, the randomized demultiplexors that take a raw
//! seed) draws from [`SplitMix64`] substreams derived from a master seed
//! through [`SplitMix64::derive`], the same finalizer mix the chaos
//! harness uses for its per-case seeds (`pps_chaos::case_seed`). The
//! discipline buys three properties the workspace's contracts depend on:
//!
//! * **replayability** — a `(seed, parameters)` pair regenerates the exact
//!   decision stream, byte for byte, on any machine;
//! * **schedule independence** — substreams are derived per component (and
//!   per concern: gaps, flows, destinations, proposals), so the stream one
//!   component draws never depends on how many other components exist or
//!   which slots they fire in;
//! * **allocation-free draws** — the generator state is one `u64`; the hot
//!   path is three multiplies and some xors, with no heap in sight.

/// One-word splittable PRNG (Steele, Lea & Flood's SplitMix64 finalizer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// The golden-ratio increment of the SplitMix64 stream.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Apply the SplitMix64 output finalizer to `z` (also usable standalone as
/// a high-quality 64→64-bit mixer for hashing flow ids to outputs).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent substream tagged `tag` without consuming any
    /// draws from this stream — the seed discipline: component `c` on
    /// input `i` draws from `master.derive(c).derive(i)`, so streams never
    /// interleave whatever order components are stepped in.
    #[inline]
    pub fn derive(&self, tag: u64) -> SplitMix64 {
        SplitMix64 {
            state: mix64(self.state ^ tag.wrapping_mul(GAMMA)),
        }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix64(self.state)
    }

    /// Uniform draw in `[0, 1)` with 53 mantissa bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)` (multiply-shift; bias < n·2⁻⁶⁴).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Bernoulli draw with success probability `p ∈ [0, 1]`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "chance({p})");
        self.next_f64() < p
    }

    /// Number of failures before the first success of a Bernoulli(`p`)
    /// sequence — `Geometric(p)` on `{0, 1, 2, …}` via inversion, so a
    /// per-slot-probability process can jump straight to its next event
    /// instead of flipping a coin every slot. `p = 1` always returns 0;
    /// `p = 0` saturates (the caller treats it as "never").
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        debug_assert!((0.0..=1.0).contains(&p), "geometric({p})");
        if p >= 1.0 {
            return 0;
        }
        if p <= 0.0 {
            return u64::MAX;
        }
        // Inversion: floor(ln(1-U) / ln(1-p)); 1-U is uniform on (0, 1].
        let u = 1.0 - self.next_f64();
        let g = u.ln() / (1.0 - p).ln();
        if g >= u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// The raw generator state — a compact fingerprint for the dense/skip
    /// state-equality proptests (two generators with equal state produce
    /// equal futures).
    #[inline]
    pub fn state_fingerprint(&self) -> u64 {
        self.state
    }

    /// Fold `extra` into a running digest — tiny helper for components
    /// that fingerprint scheduler state across stepping modes.
    #[inline]
    pub fn fold_digest(acc: u64, extra: u64) -> u64 {
        mix64(acc ^ extra.wrapping_mul(GAMMA))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn derive_is_independent_of_consumption() {
        let parent = SplitMix64::new(7);
        let before = parent.derive(3);
        let mut consumed = parent;
        let _ = consumed.next_u64();
        let _ = consumed.next_u64();
        assert_eq!(parent.derive(3), before);
        assert_ne!(parent.derive(4), before);
    }

    #[test]
    fn digest_fold_separates_states() {
        let a = SplitMix64::fold_digest(0, 1);
        let b = SplitMix64::fold_digest(0, 2);
        assert_ne!(a, b);
        assert_ne!(SplitMix64::fold_digest(a, 5), SplitMix64::fold_digest(b, 5));
    }
}
