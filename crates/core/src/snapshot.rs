//! Global switch-state snapshots and the delayed-information bus.
//!
//! The paper classifies demultiplexing algorithms by the information they
//! may consult (Section 1): *fully-distributed* algorithms see only their
//! input port, *`u` real-time distributed* (`u`-RT) algorithms additionally
//! see the global switch state **older than `u` slots**, and *centralized*
//! algorithms see the current global state.
//!
//! [`GlobalSnapshot`] is the observable global state at one instant;
//! [`SnapshotRing`] retains the last `u + 1` snapshots so the engine can
//! hand each demultiplexor exactly the view its class entitles it to.

use crate::fault::PlaneMask;
use crate::time::Slot;
use std::collections::VecDeque;

/// Observable global state of a PPS at one slot.
///
/// Contents mirror the paper's notion of a *switch configuration*: the
/// buffer contents of every plane (as per-destination queue lengths), the
/// input-buffer occupancy, and the backlog at the output multiplexors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalSnapshot {
    /// Slot at which this snapshot was taken.
    pub taken_at: Slot,
    /// Number of planes `K`.
    pub k: usize,
    /// Number of ports `N`.
    pub n: usize,
    /// Queue length of plane `k`'s buffer for output `j`, at `k * n + j`.
    pub plane_queue_len: Box<[u32]>,
    /// Occupancy of each input-port buffer (all zero for a bufferless PPS).
    pub input_buffer_len: Box<[u32]>,
    /// Cells waiting at each output multiplexor.
    pub output_pending: Box<[u32]>,
    /// Which planes were up when the snapshot was taken. Part of the
    /// observable state, so failure knowledge propagates with exactly the
    /// information delay of the observer's class: a centralized
    /// demultiplexor sees the current mask, a `u`-RT one a mask `u` slots
    /// stale, a fully-distributed one no mask at all.
    pub plane_mask: PlaneMask,
}

impl GlobalSnapshot {
    /// An all-empty snapshot at `taken_at`.
    pub fn empty(n: usize, k: usize, taken_at: Slot) -> Self {
        GlobalSnapshot {
            taken_at,
            k,
            n,
            plane_queue_len: vec![0; k * n].into_boxed_slice(),
            input_buffer_len: vec![0; n].into_boxed_slice(),
            output_pending: vec![0; n].into_boxed_slice(),
            plane_mask: PlaneMask::all_up(k),
        }
    }

    /// Queue length of plane `plane`'s buffer for output `output`.
    #[inline]
    pub fn queue_len(&self, plane: usize, output: usize) -> u32 {
        self.plane_queue_len[plane * self.n + output]
    }

    /// Total backlog destined for `output` across all planes.
    pub fn backlog_for_output(&self, output: usize) -> u64 {
        (0..self.k).map(|p| self.queue_len(p, output) as u64).sum()
    }

    /// Plane with the shortest queue for `output`, lowest index on ties.
    pub fn least_loaded_plane_for(&self, output: usize) -> usize {
        (0..self.k)
            .min_by_key(|&p| (self.queue_len(p, output), p))
            .expect("snapshot has at least one plane")
    }

    /// Planes sorted by ascending queue length for `output` (stable: ties
    /// keep index order). This is the ranking a stale-information
    /// least-loaded demultiplexor works from.
    pub fn plane_ranking_for(&self, output: usize) -> Vec<usize> {
        let mut planes: Vec<usize> = (0..self.k).collect();
        planes.sort_by_key(|&p| (self.queue_len(p, output), p));
        planes
    }
}

/// Ring of recent snapshots implementing the `u`-slot information delay.
#[derive(Clone, Debug)]
pub struct SnapshotRing {
    ring: VecDeque<GlobalSnapshot>,
    delay: Slot,
}

impl SnapshotRing {
    /// A ring serving views delayed by `delay` slots (`delay = 0` models a
    /// centralized algorithm's immediate knowledge).
    pub fn new(delay: Slot) -> Self {
        SnapshotRing {
            ring: VecDeque::with_capacity(delay as usize + 1),
            delay,
        }
    }

    /// The configured information delay `u`.
    pub fn delay(&self) -> Slot {
        self.delay
    }

    /// Record the snapshot for the current slot. Must be called with
    /// strictly increasing `taken_at`.
    pub fn push(&mut self, snap: GlobalSnapshot) {
        if let Some(last) = self.ring.back() {
            debug_assert!(snap.taken_at > last.taken_at, "snapshots must advance");
        }
        self.ring.push_back(snap);
        while self.ring.len() > self.delay as usize + 1 {
            self.ring.pop_front();
        }
    }

    /// Take back the slot that the next [`push`](Self::push) would evict,
    /// so the caller can overwrite its buffers in place instead of
    /// allocating a fresh snapshot every slot. Returns `None` while the
    /// ring is still filling (the first `delay + 1` pushes).
    pub fn recycle_slot(&mut self) -> Option<GlobalSnapshot> {
        if self.ring.len() > self.delay as usize {
            self.ring.pop_front()
        } else {
            None
        }
    }

    /// The view available at `now`: the snapshot taken at `now − delay`, or
    /// `None` during the first `delay` slots of the run (when no
    /// sufficiently old global information exists yet — the paper's `[0,
    /// t − u]` window is empty).
    pub fn view(&self, now: Slot) -> Option<&GlobalSnapshot> {
        let want = now.checked_sub(self.delay)?;
        // Snapshots are pushed every slot, so the front of the ring is the
        // oldest retained; index arithmetic finds `want` directly.
        let first = self.ring.front()?.taken_at;
        let idx = want.checked_sub(first)? as usize;
        self.ring.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t: Slot, lens: &[u32]) -> GlobalSnapshot {
        let mut s = GlobalSnapshot::empty(2, 2, t);
        s.plane_queue_len.copy_from_slice(lens);
        s
    }

    #[test]
    fn least_loaded_breaks_ties_by_index() {
        // k=2, n=2; output 1 queue lens: plane0 -> 5, plane1 -> 5.
        let s = snap(0, &[0, 5, 9, 5]);
        assert_eq!(s.least_loaded_plane_for(1), 0);
        assert_eq!(s.least_loaded_plane_for(0), 0);
        assert_eq!(s.plane_ranking_for(0), vec![0, 1]);
        assert_eq!(s.backlog_for_output(1), 10);
    }

    #[test]
    fn ring_serves_exactly_u_old_views() {
        let mut ring = SnapshotRing::new(3);
        for t in 0..10 {
            ring.push(snap(t, &[t as u32, 0, 0, 0]));
        }
        // At slot 9 the view is the snapshot from slot 6.
        assert_eq!(ring.view(9).unwrap().taken_at, 6);
        // Older snapshots are discarded.
        assert!(ring.view(3).is_none() || ring.view(3).unwrap().taken_at == 0);
    }

    #[test]
    fn no_view_before_u_slots_elapse() {
        let mut ring = SnapshotRing::new(5);
        ring.push(snap(0, &[0, 0, 0, 0]));
        ring.push(snap(1, &[0, 0, 0, 0]));
        assert!(ring.view(1).is_none());
        assert!(ring.view(4).is_none());
    }

    #[test]
    fn recycle_returns_the_slot_push_would_evict() {
        let mut ring = SnapshotRing::new(2);
        for t in 0..3 {
            assert!(ring.recycle_slot().is_none(), "ring still filling at {t}");
            ring.push(snap(t, &[0, 0, 0, 0]));
        }
        // Full: recycling hands back the oldest snapshot for reuse, and a
        // subsequent push restores the invariant length of delay + 1.
        let old = ring.recycle_slot().expect("ring full");
        assert_eq!(old.taken_at, 0);
        ring.push(snap(3, &[0, 0, 0, 0]));
        assert_eq!(ring.view(3).unwrap().taken_at, 1);
        assert_eq!(ring.view(5).unwrap().taken_at, 3);
    }

    #[test]
    fn zero_delay_is_the_centralized_view() {
        let mut ring = SnapshotRing::new(0);
        ring.push(snap(7, &[1, 2, 3, 4]));
        assert_eq!(ring.view(7).unwrap().taken_at, 7);
    }
}
