//! Rate-constrained internal lines.
//!
//! The internal lines of the PPS operate at rate `r = R/r'`. The paper
//! models this as an occupancy rule: *"a cell sent from an input-port `i` to
//! a plane `k` is transmitted over `r'` time slots; transmission takes place
//! in the first time-slot of this period, and then the line between `i` and
//! `k` is not utilized in the next `r' − 1` time-slots"*. The same rule
//! applies on the plane→output side (*output constraint*).
//!
//! [`LinkBank`] is a flat `A × B` matrix of `busy_until` slots — one row per
//! port on the near side, one column per port on the far side — giving O(1)
//! acquire/test and zero per-slot allocation.

use crate::error::ModelError;
use crate::ids::{PlaneId, PortId};
use crate::time::Slot;

/// Which side of the center stage a [`LinkBank`] models — selects the error
/// variant reported on violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkSide {
    /// Input-port → plane lines (the *input constraint*).
    InputToPlane,
    /// Plane → output-port lines (the *output constraint*).
    PlaneToOutput,
}

/// An `A × B` bank of rate-`r` lines with per-line occupancy tracking.
#[derive(Clone, Debug)]
pub struct LinkBank {
    busy_until: Box<[Slot]>,
    a: usize,
    b: usize,
    r_prime: Slot,
    side: LinkSide,
    /// Total successful acquisitions, for utilization statistics.
    acquisitions: u64,
}

impl LinkBank {
    /// Create a bank of `a × b` idle lines with occupancy window `r_prime`.
    pub fn new(a: usize, b: usize, r_prime: usize, side: LinkSide) -> Self {
        LinkBank {
            busy_until: vec![0; a * b].into_boxed_slice(),
            a,
            b,
            r_prime: r_prime as Slot,
            side,
            acquisitions: 0,
        }
    }

    #[inline]
    fn at(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.a && y < self.b);
        x * self.b + y
    }

    /// Is line `(x, y)` free at slot `now`?
    #[inline]
    pub fn is_free(&self, x: usize, y: usize, now: Slot) -> bool {
        self.busy_until[self.at(x, y)] <= now
    }

    /// Slot at which line `(x, y)` next becomes free.
    #[inline]
    pub fn free_at(&self, x: usize, y: usize) -> Slot {
        self.busy_until[self.at(x, y)]
    }

    /// Occupy line `(x, y)` for a transmission starting at `now`.
    ///
    /// Fails with the appropriate constraint-violation error if the line is
    /// still busy — the caller (engine) treats that as an algorithm bug.
    pub fn acquire(&mut self, x: usize, y: usize, now: Slot) -> Result<(), ModelError> {
        let idx = self.at(x, y);
        let busy_until = self.busy_until[idx];
        if busy_until > now {
            return Err(match self.side {
                LinkSide::InputToPlane => ModelError::InputConstraintViolation {
                    input: PortId(x as u32),
                    plane: PlaneId(y as u32),
                    at: now,
                    busy_until,
                },
                LinkSide::PlaneToOutput => ModelError::OutputConstraintViolation {
                    plane: PlaneId(x as u32),
                    output: PortId(y as u32),
                    at: now,
                    busy_until,
                },
            });
        }
        self.busy_until[idx] = now + self.r_prime;
        self.acquisitions += 1;
        Ok(())
    }

    /// Row `x` of the busy-until matrix: one entry per far-side port.
    ///
    /// This is exactly the *local information* a demultiplexor at input `x`
    /// possesses about its own lines.
    #[inline]
    pub fn row(&self, x: usize) -> &[Slot] {
        &self.busy_until[x * self.b..(x + 1) * self.b]
    }

    /// Number of far-side ports with a free line from `x` at `now`.
    pub fn free_count(&self, x: usize, now: Slot) -> usize {
        self.row(x).iter().filter(|&&bu| bu <= now).count()
    }

    /// Total successful acquisitions since construction.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Occupancy window `r'` of every line in the bank.
    pub fn r_prime(&self) -> Slot {
        self.r_prime
    }

    /// Reset every line to idle (for engine reuse across runs).
    pub fn reset(&mut self) {
        self.busy_until.fill(0);
        self.acquisitions = 0;
    }

    /// Fault-injection: force line `(x, y)` busy through slot `until`
    /// (exclusive), never shortening an existing occupancy. The line
    /// simply looks busy to its owner's local view — exactly how a
    /// degraded physical line presents to a demultiplexor.
    pub fn degrade(&mut self, x: usize, y: usize, until: Slot) {
        let idx = self.at(x, y);
        self.busy_until[idx] = self.busy_until[idx].max(until);
    }

    /// Split the bank into disjoint mutable row bands of `rows_per_part`
    /// near-side ports each (the last band may be shorter). Each
    /// [`LinkBankPart`] keeps *global* row indices so shard code is
    /// index-identical to the serial walk; per-part acquisitions are
    /// tallied locally and folded back with [`LinkBank::add_acquisitions`]
    /// at the merge barrier.
    pub fn split_rows_mut(&mut self, rows_per_part: usize) -> Vec<LinkBankPart<'_>> {
        let (b, r_prime, side) = (self.b, self.r_prime, self.side);
        self.busy_until
            .chunks_mut(rows_per_part * b)
            .enumerate()
            .map(|(i, band)| LinkBankPart {
                busy_until: band,
                base: i * rows_per_part,
                b,
                r_prime,
                side,
                taken: 0,
            })
            .collect()
    }

    /// Fold `n` shard-local acquisitions (see [`LinkBankPart::taken`]) into
    /// the bank's cumulative count.
    pub fn add_acquisitions(&mut self, n: u64) {
        self.acquisitions += n;
    }
}

/// A disjoint mutable band of [`LinkBank`] rows handed to one intra-run
/// shard. All indices are the bank's global near-side indices; the band
/// panics (via slice bounds, debug-asserted first) on rows it does not own,
/// which is exactly the shard-isolation invariant the fabric relies on.
#[derive(Debug)]
pub struct LinkBankPart<'a> {
    busy_until: &'a mut [Slot],
    base: usize,
    b: usize,
    r_prime: Slot,
    side: LinkSide,
    taken: u64,
}

impl LinkBankPart<'_> {
    #[inline]
    fn at(&self, x: usize, y: usize) -> usize {
        debug_assert!(x >= self.base && y < self.b);
        (x - self.base) * self.b + y
    }

    /// Is line `(x, y)` free at slot `now`? (`x` is a global row index.)
    #[inline]
    pub fn is_free(&self, x: usize, y: usize, now: Slot) -> bool {
        self.busy_until[self.at(x, y)] <= now
    }

    /// Slot at which line `(x, y)` next becomes free.
    #[inline]
    pub fn free_at(&self, x: usize, y: usize) -> Slot {
        self.busy_until[self.at(x, y)]
    }

    /// Occupy line `(x, y)` for a transmission starting at `now` — the
    /// same semantics and error variants as [`LinkBank::acquire`].
    pub fn acquire(&mut self, x: usize, y: usize, now: Slot) -> Result<(), ModelError> {
        let idx = self.at(x, y);
        let busy_until = self.busy_until[idx];
        if busy_until > now {
            return Err(match self.side {
                LinkSide::InputToPlane => ModelError::InputConstraintViolation {
                    input: PortId(x as u32),
                    plane: PlaneId(y as u32),
                    at: now,
                    busy_until,
                },
                LinkSide::PlaneToOutput => ModelError::OutputConstraintViolation {
                    plane: PlaneId(x as u32),
                    output: PortId(y as u32),
                    at: now,
                    busy_until,
                },
            });
        }
        self.busy_until[idx] = now + self.r_prime;
        self.taken += 1;
        Ok(())
    }

    /// Successful acquisitions through this part since the split.
    pub fn taken(&self) -> u64 {
        self.taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_is_busy_for_exactly_r_prime_slots() {
        let mut bank = LinkBank::new(2, 3, 4, LinkSide::InputToPlane);
        assert!(bank.is_free(0, 1, 0));
        bank.acquire(0, 1, 10).unwrap();
        for t in 10..14 {
            assert!(!bank.is_free(0, 1, t), "slot {t} should be busy");
        }
        assert!(bank.is_free(0, 1, 14));
        // Reuse at exactly now + r' succeeds.
        bank.acquire(0, 1, 14).unwrap();
    }

    #[test]
    fn violation_reports_the_right_side() {
        let mut bank = LinkBank::new(2, 2, 3, LinkSide::PlaneToOutput);
        bank.acquire(1, 0, 5).unwrap();
        let err = bank.acquire(1, 0, 7).unwrap_err();
        assert!(matches!(
            err,
            ModelError::OutputConstraintViolation {
                plane: PlaneId(1),
                output: PortId(0),
                at: 7,
                busy_until: 8,
            }
        ));
    }

    #[test]
    fn rows_are_independent() {
        let mut bank = LinkBank::new(2, 2, 2, LinkSide::InputToPlane);
        bank.acquire(0, 0, 0).unwrap();
        assert!(!bank.is_free(0, 0, 0));
        assert!(bank.is_free(1, 0, 0));
        assert!(bank.is_free(0, 1, 0));
        assert_eq!(bank.free_count(0, 0), 1);
        assert_eq!(bank.free_count(1, 0), 2);
    }

    #[test]
    fn r_prime_one_means_full_rate() {
        // r' = 1 models r = R: the line is free again in the next slot.
        let mut bank = LinkBank::new(1, 1, 1, LinkSide::InputToPlane);
        for t in 0..5 {
            bank.acquire(0, 0, t).unwrap();
        }
        assert_eq!(bank.acquisitions(), 5);
    }

    #[test]
    fn degrade_forces_busy_without_shortening() {
        let mut bank = LinkBank::new(1, 1, 2, LinkSide::InputToPlane);
        bank.degrade(0, 0, 10);
        assert!(!bank.is_free(0, 0, 9));
        assert!(bank.is_free(0, 0, 10));
        assert!(bank.acquire(0, 0, 5).is_err());
        bank.degrade(0, 0, 3); // never shortens an occupancy
        assert!(!bank.is_free(0, 0, 9));
        assert_eq!(bank.acquisitions(), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut bank = LinkBank::new(1, 2, 3, LinkSide::InputToPlane);
        bank.acquire(0, 1, 2).unwrap();
        bank.reset();
        assert!(bank.is_free(0, 1, 0));
        assert_eq!(bank.acquisitions(), 0);
    }

    #[test]
    fn split_rows_matches_whole_bank_semantics() {
        let mut bank = LinkBank::new(5, 3, 4, LinkSide::PlaneToOutput);
        bank.acquire(4, 2, 1).unwrap();
        let folded = {
            let mut parts = bank.split_rows_mut(2);
            assert_eq!(parts.len(), 3, "ceil(5/2) bands");
            // Global indices address the right band; state is shared with
            // the bank.
            assert!(!parts[2].is_free(4, 2, 3));
            assert_eq!(parts[2].free_at(4, 2), 5);
            parts[0].acquire(1, 0, 7).unwrap();
            parts[1].acquire(2, 1, 7).unwrap();
            let err = parts[2].acquire(4, 2, 3).unwrap_err();
            assert!(matches!(
                err,
                ModelError::OutputConstraintViolation {
                    plane: PlaneId(4),
                    output: PortId(2),
                    at: 3,
                    busy_until: 5,
                }
            ));
            assert_eq!(parts[0].taken(), 1);
            assert_eq!(parts[2].taken(), 0);
            parts.iter().map(|p| p.taken()).sum::<u64>()
        };
        bank.add_acquisitions(folded);
        assert_eq!(bank.acquisitions(), 3, "1 direct + 2 folded");
        assert_eq!(bank.free_at(1, 0), 11);
        assert_eq!(bank.free_at(2, 1), 11);
    }
}
