//! Demultiplexor state machines.
//!
//! The paper models the dispatching logic at each input port as a
//! deterministic state machine ("demultiplexor") and classifies algorithms
//! by the information a dispatch decision may use:
//!
//! * **fully-distributed** (Definition 5): only the input port's own history
//!   `[0, t]`;
//! * **`u` real-time distributed** (Definition 9): the local history plus
//!   global switch information from `[0, t − u]`;
//! * **centralized**: full and immediate global knowledge.
//!
//! [`Demultiplexor`] (bufferless, Definition 1) and
//! [`BufferedDemultiplexor`] (input-buffered, Definition 2) encode these
//! classes. A single trait object serves *all* `N` input ports — the
//! `input` argument says which port's automaton is deciding. Fully
//! distributed implementations keep a per-input state vector and may only
//! touch the entry for the deciding input; the engine hands them no global
//! view at all, so the classification is enforced by construction, not by
//! convention.
//!
//! All implementations must be **deterministic** given their seed, and
//! [`Clone`]-able: the adversarial constructions of `pps-traffic` clone a
//! demultiplexor and feed it hypothetical traffic to discover concentrating
//! configurations — a mechanical rendition of the proof of Theorem 6, which
//! navigates the strongly-connected configuration graph of the automaton.

use crate::cell::Cell;
use crate::ids::{PlaneId, PortId};
use crate::snapshot::GlobalSnapshot;
use crate::time::Slot;

/// Information class of a demultiplexing algorithm (paper, Section 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InfoClass {
    /// Decisions use only the deciding input port's local history.
    FullyDistributed,
    /// Decisions may also use global information older than `u` slots.
    RealTimeDistributed {
        /// The information delay `u ≥ 1`.
        u: Slot,
    },
    /// Decisions use full, immediate global information.
    Centralized,
}

impl InfoClass {
    /// The information delay: `None` for fully distributed (no global
    /// information at all), `Some(u)` for `u`-RT, `Some(0)` for centralized.
    pub fn delay(self) -> Option<Slot> {
        match self {
            InfoClass::FullyDistributed => None,
            InfoClass::RealTimeDistributed { u } => Some(u),
            InfoClass::Centralized => Some(0),
        }
    }
}

/// The local information available to the demultiplexor of one input port:
/// the occupancy of its own `K` internal lines.
#[derive(Clone, Copy, Debug)]
pub struct LocalView<'a> {
    /// Current slot.
    pub now: Slot,
    /// The deciding input port.
    pub input: PortId,
    /// `busy_until[k]` for each of this input's lines.
    pub link_busy_until: &'a [Slot],
}

impl<'a> LocalView<'a> {
    /// Number of planes.
    #[inline]
    pub fn k(&self) -> usize {
        self.link_busy_until.len()
    }

    /// Is the line to `plane` free this slot?
    #[inline]
    pub fn is_free(&self, plane: usize) -> bool {
        self.link_busy_until[plane] <= self.now
    }

    /// Iterator over the planes whose line is free this slot.
    pub fn free_planes(&self) -> impl Iterator<Item = usize> + '_ {
        let now = self.now;
        self.link_busy_until
            .iter()
            .enumerate()
            .filter(move |(_, &bu)| bu <= now)
            .map(|(p, _)| p)
    }

    /// First free plane at or after `start`, scanning cyclically. The
    /// building block of every round-robin-style algorithm.
    pub fn next_free_from(&self, start: usize) -> Option<usize> {
        let k = self.k();
        (0..k)
            .map(|off| (start + off) % k)
            .find(|&p| self.is_free(p))
    }
}

/// Full dispatch context: the local view plus whatever global view the
/// algorithm's class entitles it to (`None` for fully distributed, the
/// `u`-old snapshot for `u`-RT once `u` slots have elapsed, the current
/// snapshot for centralized).
#[derive(Clone, Copy, Debug)]
pub struct DispatchCtx<'a> {
    /// This input port's local view.
    pub local: LocalView<'a>,
    /// Delayed or immediate global view, per the algorithm's [`InfoClass`].
    pub global: Option<&'a GlobalSnapshot>,
}

/// A bufferless demultiplexing algorithm (paper, Definition 1):
/// `D_i : destination × state → plane`.
pub trait Demultiplexor: Send {
    /// The algorithm's information class.
    fn info_class(&self) -> InfoClass;

    /// Dispatch a cell arriving *now* at `cell.input`. Must return a plane
    /// whose input line is free (`ctx.local.is_free(plane)`); the engine
    /// verifies and fails the run otherwise.
    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId;

    /// Hook invoked once per slot before any arrival of that slot, with the
    /// global view the class entitles the algorithm to. Fully-distributed
    /// algorithms receive `None` and — per Definition 5 — must not change
    /// state here when no cell arrives; the default body does nothing.
    fn on_slot(&mut self, _now: Slot, _global: Option<&GlobalSnapshot>) {}

    /// The next slot strictly after `now` at which this automaton needs to
    /// be stepped even without an arrival, or `None` if it is quiescent
    /// until the next cell. Skip-ahead engines do **not** invoke
    /// [`on_slot`](Self::on_slot) for slots a jump elides, so any algorithm
    /// whose state ages with time (timers, decaying counters) must report
    /// its next wake-up here. The default — correct for every stateless or
    /// arrival-driven automaton, per Definition 5 — is `None`.
    fn next_activity(&self, _now: Slot) -> Option<Slot> {
        None
    }

    /// Return the automaton to its initial configuration.
    fn reset(&mut self);

    /// Short human-readable algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// What to do with the cell arriving this slot at a buffered input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalAction {
    /// Send the arriving cell straight to `PlaneId` (its line must be free).
    Dispatch(PlaneId),
    /// Store the arriving cell at the tail of the input buffer.
    Enqueue,
}

/// A buffered demultiplexor's decision for one input port in one slot
/// (paper, Definition 2: the decision vector over buffer slots plus the
/// incoming cell).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BufferedDecision {
    /// Buffered cells to release this slot, as `(buffer index, plane)`
    /// pairs. Indices refer to the buffer as passed in (head = 0) and must
    /// be distinct; every named plane's line must be free and the planes
    /// distinct (one line carries one cell per slot).
    pub releases: Vec<(usize, PlaneId)>,
    /// Action for the arriving cell; must be `Some` iff a cell arrived.
    pub arrival: Option<ArrivalAction>,
}

impl BufferedDecision {
    /// Keep the arriving cell (if any) in the buffer and release nothing.
    pub fn hold(arrived: bool) -> Self {
        BufferedDecision {
            releases: Vec::new(),
            arrival: arrived.then_some(ArrivalAction::Enqueue),
        }
    }

    /// Empty the decision (keeping the `releases` allocation) so the same
    /// instance can be refilled slot after slot.
    pub fn clear(&mut self) {
        self.releases.clear();
        self.arrival = None;
    }
}

/// An input-buffered demultiplexing algorithm (paper, Definition 2).
pub trait BufferedDemultiplexor: Send {
    /// The algorithm's information class.
    fn info_class(&self) -> InfoClass;

    /// Per-slot decision for one input port. `buffer` lists the currently
    /// stored cells head-to-tail; `arrival` is this slot's incoming cell,
    /// if any. The decision is written into `out`, which the engine hands
    /// in cleared and reuses across slots so deciding allocates nothing.
    fn slot_decision(
        &mut self,
        input: PortId,
        arrival: Option<&Cell>,
        buffer: &[Cell],
        ctx: &DispatchCtx<'_>,
        out: &mut BufferedDecision,
    );

    /// The next slot strictly after `now` at which this automaton needs a
    /// [`slot_decision`](Self::slot_decision) call even without an arrival
    /// or buffered cell, or `None` if it is quiescent until then. See
    /// [`Demultiplexor::next_activity`]; buffer-driven wake-ups are
    /// reported separately via
    /// [`buffered_next_activity`](Self::buffered_next_activity), so only
    /// time-aging state (timers, decaying counters) needs reporting here.
    fn next_activity(&self, _now: Slot) -> Option<Slot> {
        None
    }

    /// The next slot strictly after `local.now` at which this automaton
    /// might *act on* the buffered head cell `head` of `input` — release
    /// it, or mutate per-input state because of it. Skip-ahead engines
    /// fold this over every non-empty input buffer to size a jump; waking
    /// *early* is always safe (the dense walk would have made a hold
    /// decision and changed nothing), waking late past an acting slot is
    /// not. The conservative default, `now + 1`, forces dense stepping
    /// while the buffer is non-empty — exactly the pre-skip-ahead
    /// behavior — so implementations only override it when they can bound
    /// their next release (e.g. a hold-for-`u`-slots rule).
    fn buffered_next_activity(
        &self,
        input: PortId,
        head: &Cell,
        local: &LocalView<'_>,
    ) -> Option<Slot> {
        let _ = (input, head);
        Some(local.now + 1)
    }

    /// Return the automaton to its initial configuration.
    fn reset(&mut self);

    /// Short human-readable algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// Demultiplexors whose state machines the adversary may probe.
///
/// The adversarial constructions of `pps-traffic` take one working copy of
/// the automaton via [`probe_copy`](Self::probe_copy) and then drive it
/// *forward*, recording its dispatch trajectory — they never clone per
/// peek or per candidate plane (see `pps_traffic::adversary::alignment`).
/// The blanket impl covers every `Demultiplexor + Clone`, so third-party
/// demultiplexors keep working with clone-based save/restore for free.
pub trait ExplorableDemux: Demultiplexor + Clone {
    /// Save the automaton: a working copy the adversary may mutate while
    /// probing, leaving `self` untouched.
    fn probe_copy(&self) -> Self {
        self.clone()
    }

    /// Restore a configuration previously saved with
    /// [`probe_copy`](Self::probe_copy).
    fn restore_from(&mut self, saved: &Self) {
        self.clone_from(saved);
    }
}
impl<T: Demultiplexor + Clone> ExplorableDemux for T {}

/// Seeded sticky flow-hash demultiplexor (fully distributed).
///
/// Each flow starts on a *home plane* — a seeded multiplicative hash of its
/// dense flow index, the distributed analogue of ECMP spreading — and
/// *sticks* to the last plane that actually carried it: when the current
/// plane's line is busy, the dispatch deviates to the next free line and
/// the flow's pin moves with it (flowlet-style pinning, which keeps a
/// deviated flow from hammering its congested home every slot). The pin
/// table is per-input state indexed by the input's own flows only, so the
/// algorithm is fully distributed by construction; being stateful, it also
/// exercises the adversary's one-pass trajectory recording in a way the
/// stateless hash in `pps-switch` cannot.
#[derive(Clone, Debug)]
pub struct FlowHashDemux {
    n: usize,
    k: usize,
    seed: u64,
    /// Current plane pin per dense flow index; `u32::MAX` = unpinned
    /// (first dispatch uses the hashed home plane).
    pins: Vec<u32>,
    /// Dispatches that had to move a flow off its pinned plane.
    repins: u64,
}

impl FlowHashDemux {
    /// Pin sentinel: the flow has not dispatched yet.
    const UNPINNED: u32 = u32::MAX;

    /// Sticky flow hashing for an `n × n` switch over `k` planes.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        FlowHashDemux {
            n,
            k,
            seed,
            pins: vec![Self::UNPINNED; n * n],
            repins: 0,
        }
    }

    /// The hashed home plane of flow `(input, output)` — where the flow
    /// starts, and returns to after [`reset`](Demultiplexor::reset).
    pub fn home_plane(&self, input: usize, output: usize) -> usize {
        let f = (input * self.n + output) as u64 ^ self.seed;
        ((f.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % self.k as u64) as usize
    }

    /// Dispatches that moved a flow off its pinned plane.
    pub fn repins(&self) -> u64 {
        self.repins
    }
}

impl Demultiplexor for FlowHashDemux {
    fn info_class(&self) -> InfoClass {
        InfoClass::FullyDistributed
    }

    fn dispatch(&mut self, cell: &Cell, ctx: &DispatchCtx<'_>) -> PlaneId {
        let flow = cell.input.idx() * self.n + cell.output.idx();
        let pinned = self.pins[flow];
        let want = if pinned == Self::UNPINNED {
            self.home_plane(cell.input.idx(), cell.output.idx())
        } else {
            pinned as usize
        };
        let p = if ctx.local.is_free(want) {
            want
        } else {
            self.repins += 1;
            ctx.local
                .next_free_from(want)
                .expect("valid bufferless config guarantees a free plane")
        };
        self.pins[flow] = p as u32;
        PlaneId(p as u32)
    }

    fn reset(&mut self) {
        self.pins.fill(Self::UNPINNED);
        self.repins = 0;
    }

    fn name(&self) -> &'static str {
        "flow-hash"
    }
}

/// Probe helper: ask `demux` what it *would* do with `cell` at `now`,
/// assuming all of the input's lines are free, by running the real
/// automaton on a scratch clone-free context. Mutates `demux` — clone
/// first if the probe must not perturb live state.
pub fn probe_dispatch<D: Demultiplexor + ?Sized>(
    demux: &mut D,
    cell: &Cell,
    now: Slot,
    all_free: &[Slot],
) -> PlaneId {
    let ctx = DispatchCtx {
        local: LocalView {
            now,
            input: cell.input,
            link_busy_until: all_free,
        },
        global: None,
    };
    demux.dispatch(cell, &ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CellId;

    #[test]
    fn local_view_free_scan() {
        let busy = [0u64, 10, 0, 10];
        let v = LocalView {
            now: 5,
            input: PortId(0),
            link_busy_until: &busy,
        };
        assert_eq!(v.k(), 4);
        assert!(v.is_free(0));
        assert!(!v.is_free(1));
        let free: Vec<usize> = v.free_planes().collect();
        assert_eq!(free, vec![0, 2]);
        assert_eq!(v.next_free_from(1), Some(2));
        assert_eq!(v.next_free_from(3), Some(0));
    }

    #[test]
    fn next_free_none_when_all_busy() {
        let busy = [9u64, 9];
        let v = LocalView {
            now: 3,
            input: PortId(0),
            link_busy_until: &busy,
        };
        assert_eq!(v.next_free_from(0), None);
    }

    #[test]
    fn info_class_delay() {
        assert_eq!(InfoClass::FullyDistributed.delay(), None);
        assert_eq!(InfoClass::RealTimeDistributed { u: 4 }.delay(), Some(4));
        assert_eq!(InfoClass::Centralized.delay(), Some(0));
    }

    /// A toy demux to exercise the probe helper.
    #[derive(Clone)]
    struct Fixed(u32);
    impl Demultiplexor for Fixed {
        fn info_class(&self) -> InfoClass {
            InfoClass::FullyDistributed
        }
        fn dispatch(&mut self, _c: &Cell, _ctx: &DispatchCtx<'_>) -> PlaneId {
            PlaneId(self.0)
        }
        fn reset(&mut self) {}
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn flow_hash_sticks_until_forced_off() {
        let mut d = FlowHashDemux::new(2, 4, 7);
        let c = Cell {
            id: CellId(0),
            input: PortId(0),
            output: PortId(1),
            seq: 0,
            arrival: 0,
        };
        let free = vec![0u64; 4];
        let home = probe_dispatch(&mut d, &c, 0, &free).idx();
        assert_eq!(home, d.home_plane(0, 1), "first dispatch uses the hash");
        // Busy home line: the flow deviates and re-pins.
        let mut busy = vec![0u64; 4];
        busy[home] = 100;
        let moved = probe_dispatch(&mut d, &c, 1, &busy).idx();
        assert_ne!(moved, home);
        assert_eq!(d.repins(), 1);
        // Home frees up again — the flow stays on its new pin (sticky).
        assert_eq!(probe_dispatch(&mut d, &c, 200, &free).idx(), moved);
        assert_eq!(d.repins(), 1, "staying on the pin is not a repin");
        // Reset returns the flow to its hashed home.
        d.reset();
        assert_eq!(probe_dispatch(&mut d, &c, 300, &free).idx(), home);
    }

    #[test]
    fn flow_hash_seed_changes_homes() {
        let a = FlowHashDemux::new(8, 8, 1);
        let b = FlowHashDemux::new(8, 8, 2);
        let differing = (0..8)
            .flat_map(|i| (0..8).map(move |j| (i, j)))
            .filter(|&(i, j)| a.home_plane(i, j) != b.home_plane(i, j))
            .count();
        assert!(differing > 0, "seeds must perturb the placement");
    }

    #[test]
    fn probe_runs_the_real_automaton() {
        let mut d = Fixed(2);
        let cell = Cell {
            id: CellId(0),
            input: PortId(1),
            output: PortId(0),
            seq: 0,
            arrival: 0,
        };
        let free = vec![0u64; 4];
        assert_eq!(probe_dispatch(&mut d, &cell, 0, &free), PlaneId(2));
    }
}
