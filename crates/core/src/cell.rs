//! Fixed-size cells.
//!
//! Packets are fragmented into fixed-size cells outside the switch (paper,
//! Section 1); inside the model a cell is pure metadata. The struct is kept
//! at 32 bytes so multi-million-cell runs stay cache-friendly.

use crate::ids::{CellId, FlowId, PlaneId, PortId};
use crate::time::Slot;
use serde::{Deserialize, Serialize};

/// A fixed-size cell traversing the switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// Globally unique id in arrival order (global-FCFS rank).
    pub id: CellId,
    /// Input port the cell arrived on.
    pub input: PortId,
    /// Output port the cell is destined for.
    pub output: PortId,
    /// Per-flow sequence number (0-based); the switch must deliver a flow's
    /// cells in increasing `seq` order.
    pub seq: u32,
    /// Slot in which the cell arrived to the switch.
    pub arrival: Slot,
}

impl Cell {
    /// The flow this cell belongs to.
    #[inline]
    pub fn flow(&self) -> FlowId {
        FlowId {
            input: self.input,
            output: self.output,
        }
    }
}

/// A cell tagged with the plane it was dispatched through.
///
/// Produced by the demultiplexing stage, consumed by the planes; carried all
/// the way to the output so the output constraint and per-plane
/// concentration statistics can be audited after the fact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoutedCell {
    /// The cell itself.
    pub cell: Cell,
    /// Center-stage plane carrying the cell.
    pub plane: PlaneId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_is_small() {
        // Keep the hot per-cell struct within 32 bytes (see module docs).
        assert!(std::mem::size_of::<Cell>() <= 32);
    }

    #[test]
    fn flow_projection() {
        let c = Cell {
            id: CellId(0),
            input: PortId(2),
            output: PortId(5),
            seq: 0,
            arrival: 7,
        };
        assert_eq!(c.flow(), FlowId::new(2, 5));
    }
}
