//! Convenience re-exports for downstream crates.
//!
//! `use pps_core::prelude::*;` brings in every type needed to configure a
//! switch, author traffic, implement a demultiplexing algorithm, or consume
//! run logs.

pub use crate::cell::{Cell, RoutedCell};
pub use crate::cell_pool::CellPool;
pub use crate::config::{BufferSpec, OutputDiscipline, PpsConfig};
pub use crate::demux::{
    ArrivalAction, BufferedDecision, BufferedDemultiplexor, Demultiplexor, DispatchCtx,
    ExplorableDemux, FlowHashDemux, InfoClass, LocalView,
};
pub use crate::error::ModelError;
pub use crate::fault::{FaultEvent, FaultPlan, PlaneMask};
pub use crate::ids::{CellId, FlowId, PlaneId, PortId};
pub use crate::link::{LinkBank, LinkBankPart, LinkSide};
pub use crate::queue::FifoQueue;
pub use crate::rate::{speedup, Ratio};
pub use crate::record::{CellRecord, RunLog};
pub use crate::snapshot::{GlobalSnapshot, SnapshotRing};
pub use crate::stepping::Stepping;
pub use crate::time::Slot;
pub use crate::trace::{Arrival, Trace};
