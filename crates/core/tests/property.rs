//! Property tests for the model substrate.

use proptest::prelude::*;

use pps_core::link::{LinkBank, LinkSide};
use pps_core::prelude::*;
use pps_core::rate::Ratio;
use pps_core::snapshot::{GlobalSnapshot, SnapshotRing};

proptest! {
    #[test]
    fn ratio_reduction_preserves_value(num in 1u64..10_000, den in 1u64..10_000) {
        let r = Ratio::new(num, den);
        // Cross-multiplication equality with the unreduced pair.
        prop_assert_eq!(r.num() as u128 * den as u128, num as u128 * r.den() as u128);
        // to_f64 is consistent.
        prop_assert!((r.to_f64() - num as f64 / den as f64).abs() < 1e-9);
    }

    #[test]
    fn ratio_ordering_is_exact(a in 1u64..1000, b in 1u64..1000, c in 1u64..1000, d in 1u64..1000) {
        let x = Ratio::new(a, b);
        let y = Ratio::new(c, d);
        prop_assert_eq!(x.ge(y), (a as f64 / b as f64) >= (c as f64 / d as f64) ||
            a as u128 * d as u128 == c as u128 * b as u128);
    }

    #[test]
    fn div_int_floor_matches_float(num in 1u64..100, den in 1u64..100, x in 0u64..10_000) {
        let r = Ratio::new(num, den);
        let exact = (x as u128 * den as u128 / num as u128) as u64;
        prop_assert_eq!(r.div_int_floor(x), exact);
    }

    #[test]
    fn link_bank_spacing_invariant(
        r_prime in 1usize..6,
        uses in proptest::collection::vec(0u64..200, 1..40),
    ) {
        // Acquire the same line at the given slots (sorted, deduped):
        // acquisition succeeds iff spacing >= r'.
        let mut slots = uses;
        slots.sort_unstable();
        slots.dedup();
        let mut bank = LinkBank::new(1, 1, r_prime, LinkSide::InputToPlane);
        let mut last: Option<u64> = None;
        for &t in &slots {
            let expect_ok = last.is_none_or(|l| t >= l + r_prime as u64);
            let got = bank.acquire(0, 0, t);
            prop_assert_eq!(got.is_ok(), expect_ok, "slot {} after {:?}", t, last);
            if expect_ok {
                last = Some(t);
            }
        }
    }

    #[test]
    fn snapshot_ring_serves_exactly_u_old(u in 1u64..16, horizon in 16u64..64) {
        let mut ring = SnapshotRing::new(u);
        for t in 0..horizon {
            ring.push(GlobalSnapshot::empty(2, 2, t));
            // After pushing slot t's snapshot, a decision at slot t+1 .. may
            // consult taken_at = (t+1) - u if it exists.
            let now = t + 1;
            match ring.view(now) {
                Some(s) => prop_assert_eq!(s.taken_at, now - u),
                None => prop_assert!(now < u + 1, "view missing at now={} u={}", now, u),
            }
        }
    }

    #[test]
    fn trace_cells_are_dense_and_ordered(
        raw in proptest::collection::vec((0u64..50, 0u32..6, 0u32..6), 0..60),
    ) {
        let mut seen = std::collections::BTreeSet::new();
        let arrivals: Vec<Arrival> = raw
            .into_iter()
            .filter(|&(slot, input, _)| seen.insert((slot, input)))
            .map(|(slot, input, output)| Arrival::new(slot, input, output))
            .collect();
        let trace = Trace::build(arrivals, 6).unwrap();
        let cells = trace.cells(6);
        // Ids dense and in (slot, input) order; per-flow seqs dense from 0.
        let mut per_flow: std::collections::BTreeMap<FlowId, u32> = Default::default();
        for (i, c) in cells.iter().enumerate() {
            prop_assert_eq!(c.id, CellId(i as u64));
            if i > 0 {
                let prev = &cells[i - 1];
                prop_assert!((prev.arrival, prev.input) < (c.arrival, c.input));
            }
            let next = per_flow.entry(c.flow()).or_insert(0);
            prop_assert_eq!(c.seq, *next);
            *next += 1;
        }
    }

    #[test]
    fn trace_composition_preserves_cells(
        gap in 0u64..20,
        len_a in 0usize..20,
        len_b in 0usize..20,
    ) {
        let mk = |len: usize| {
            Trace::build((0..len).map(|s| Arrival::new(s as u64, 0, 0)).collect(), 1).unwrap()
        };
        let a = mk(len_a);
        let b = mk(len_b);
        let c = a.clone().then(&b, gap);
        prop_assert_eq!(c.len(), a.len() + b.len());
        if !a.is_empty() && !b.is_empty() {
            // The composed second part starts strictly after the first's
            // horizon plus the gap.
            let second_start = c.arrivals()[a.len()].slot;
            prop_assert_eq!(second_start, a.horizon() + 1 + gap);
        }
    }
}
