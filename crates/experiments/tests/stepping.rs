//! Registry-level dense/skip equivalence: the experiment tables a user
//! actually reads must come out byte-identical whichever slot-stepping
//! mode the engines run under, at any worker budget. This is the
//! user-facing face of the `skip_equivalence` harness in `pps-switch`.
//!
//! The stepping default and the worker budget are process-wide, so the
//! test serializes itself behind a mutex-free structure: it is the only
//! test in this file, runs each configuration to completion before
//! flipping the knobs, and restores both on exit.

use pps_experiments::registry;
use pps_experiments::sweep::set_jobs;

/// Cheap experiments that still cover both engines, the shadow OQ, the
/// crossbar baselines, faults, and the watchdog paths — plus the three
/// stochastic-workload studies (e19–e21), whose acceptance criterion is
/// exactly this byte-identity across stepping modes and worker budgets.
const IDS: [&str; 7] = ["e1", "e4", "e9", "e16", "e19", "e20", "e21"];

fn render_all() -> String {
    let mut out = String::new();
    for (id, runner) in registry() {
        if IDS.contains(&id) {
            out.push_str(&runner().render());
            out.push('\n');
        }
    }
    out
}

#[test]
fn tables_are_identical_across_stepping_and_jobs() {
    use pps_core::stepping::{process_default, set_process_default};
    use pps_core::Stepping;
    let prior = process_default();

    let mut renders = Vec::new();
    for (mode, jobs) in [
        (Stepping::Dense, 1),
        (Stepping::Dense, 4),
        (Stepping::SkipAhead, 1),
        (Stepping::SkipAhead, 4),
    ] {
        set_process_default(mode);
        set_jobs(jobs);
        renders.push((mode, jobs, render_all()));
    }
    set_jobs(1);
    set_process_default(prior);

    let (_, _, reference) = &renders[0];
    assert!(reference.contains('|'), "tables rendered nothing");
    for (mode, jobs, text) in &renders[1..] {
        assert_eq!(
            text,
            reference,
            "tables diverge at stepping={} jobs={jobs}",
            mode.name()
        );
    }
}
