//! End-to-end telemetry contracts, exercised through real engine runs:
//!
//! - disabled path: no events recorded, results byte-identical to a traced
//!   run (tracing must observe, never perturb);
//! - `counters` level: registry grows but rings stay empty;
//! - `full` level: a lockstep E3 point yields a schema-valid Chrome trace
//!   with paired PPS and shadow-OQ tracks;
//! - sweep merge: the captured event bundle is identical at any `--jobs`.
//!
//! The recording level and worker budget are process-wide, so every test
//! takes `TELEMETRY_LOCK` and restores `Level::Off` on exit (panic
//! included) via `LevelGuard`.

use pps_core::telemetry::{self, Level};
use pps_experiments::e03_fd_general;
use pps_experiments::sweep::{set_jobs, SweepPlan};
use std::sync::Mutex;

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

/// Serializes the test and restores `Level::Off` when dropped.
struct LevelGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl LevelGuard {
    fn set(level: Level) -> Self {
        let lock = TELEMETRY_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        telemetry::set_level(level);
        LevelGuard { _lock: lock }
    }
}

impl Drop for LevelGuard {
    fn drop(&mut self) {
        telemetry::set_level(Level::Off);
    }
}

/// One lockstep E3 point: a bufferless PPS against its shadow OQ on the
/// same concentration-attack trace. Small enough for a test, rich enough
/// to emit every dataplane event kind on both engines.
fn lockstep_point() -> (f64, u64, usize, u64, u64, i64, i64, u64) {
    e03_fd_general::point(16, 8, 4)
}

#[test]
fn disabled_level_records_nothing_and_leaves_results_unchanged() {
    let _guard = LevelGuard::set(Level::Off);
    let (off_result, off_log) = telemetry::collect("off", lockstep_point);
    assert_eq!(
        off_log.total_events(),
        0,
        "Level::Off must record no events"
    );
    assert_eq!(off_log.overflowed, 0);

    // The same point traced at Full must compute the same numbers: the
    // instrumentation observes the engines, it never steers them.
    telemetry::set_level(Level::Full);
    let (full_result, full_log) = telemetry::collect("full", lockstep_point);
    assert_eq!(off_result, full_result, "tracing changed engine results");
    assert!(full_log.total_events() > 0, "Full traced nothing");
}

#[test]
fn counters_level_fills_registry_but_not_rings() {
    let _guard = LevelGuard::set(Level::Counters);
    let before: u64 = count_of("arrival");
    let (_result, log) = telemetry::collect("counters", lockstep_point);
    assert_eq!(log.total_events(), 0, "Counters must not buffer events");
    let after: u64 = count_of("arrival");
    assert!(
        after > before,
        "arrival counter did not grow ({before} -> {after})"
    );
}

fn count_of(name: &str) -> u64 {
    telemetry::counters()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap_or(0)
}

#[test]
fn lockstep_trace_is_schema_valid_with_paired_tracks() {
    let _guard = LevelGuard::set(Level::Full);
    let (_result, log) = telemetry::collect("e3-point", lockstep_point);
    assert!(log.total_events() > 0);

    let mut buf = Vec::new();
    pps_telemetry::chrome::write_chrome(&log, &mut buf).expect("write chrome trace");
    let text = String::from_utf8(buf).expect("trace is UTF-8");

    let report = pps_telemetry::chrome::lint(&text);
    assert!(report.ok(), "chrome trace failed lint: {report:?}");

    // Lockstep visualization: both engines must appear as named process
    // tracks so Perfetto renders them side by side.
    for engine in ["[pps]", "[shadow-oq]"] {
        assert!(
            report.process_names.iter().any(|n| n.contains(engine)),
            "trace has no {engine} track among {:?}",
            report.process_names
        );
    }
    // The dataplane event vocabulary was captured from both engines.
    // (E3's minimal partition keeps per-flow order, so no reseq events
    // here; the fault test below covers that half of the vocabulary.)
    let kinds = kind_names(&log);
    for kind in [
        "arrival",
        "demux-decision",
        "plane-enqueue",
        "plane-deliver",
        "depart",
    ] {
        assert!(kinds.contains(kind), "no {kind} events captured: {kinds:?}");
    }
}

fn kind_names(log: &telemetry::EventLog) -> std::collections::BTreeSet<&'static str> {
    log.flatten()
        .iter()
        .flat_map(|(_, events)| events.iter().map(|e| e.kind.name()))
        .collect()
}

#[test]
fn fault_run_emits_resequencer_and_watchdog_events() {
    use pps_core::prelude::*;
    use pps_experiments::a1_fault::recovery_point;
    use pps_switch::demux::RoundRobinDemux;
    use pps_traffic::gen::BernoulliGen;

    let _guard = LevelGuard::set(Level::Full);
    let (n, k, r_prime) = (16, 8, 2);
    let cfg = PpsConfig::bufferless(n, k, r_prime).with_watchdog(32);
    let trace = BernoulliGen::uniform(0.7, 77).trace(n, 1_000);
    let plan = FaultPlan::new().plane_down(0, 200).plane_up(0, 600);
    let (_impact, log) = telemetry::collect("fault-run", || {
        recovery_point(cfg, RoundRobinDemux::new(n, k), &trace, &plan, (200, 600))
    });

    // A mid-run plane failure forces the resequencer half of the
    // vocabulary: holds behind lost cells, watchdog drops past them,
    // releases once gaps are declared dead, and the fault markers.
    let kinds = kind_names(&log);
    for kind in [
        "reseq-hold",
        "reseq-release",
        "watchdog-drop",
        "fault-applied",
    ] {
        assert!(kinds.contains(kind), "no {kind} events captured: {kinds:?}");
    }

    // The trace stays schema-valid with fault instants on the tracks.
    let mut buf = Vec::new();
    pps_telemetry::chrome::write_chrome(&log, &mut buf).expect("write chrome trace");
    let report = pps_telemetry::chrome::lint(&String::from_utf8(buf).expect("UTF-8"));
    assert!(report.ok(), "fault trace failed lint: {report:?}");
}

#[test]
fn ring_capacity_change_applies_to_open_scopes() {
    use pps_core::telemetry::{Engine, EventKind, DEFAULT_RING_CAPACITY};
    use pps_core::{CellId, PortId};

    let _guard = LevelGuard::set(Level::Full);
    // Restore the process-wide default even if an assert below panics.
    struct CapGuard;
    impl Drop for CapGuard {
        fn drop(&mut self) {
            telemetry::set_ring_capacity(DEFAULT_RING_CAPACITY);
        }
    }
    let _cap = CapGuard;

    let rec = |slot| {
        telemetry::record(
            Engine::Pps,
            slot,
            EventKind::Depart {
                cell: CellId(slot),
                output: PortId(0),
            },
        )
    };

    // Raising the cap mid-scope must take effect for the scope that is
    // already open — a driver that parses `--ring-cap` after its outermost
    // collect began would otherwise keep the stale capacity and overflow.
    telemetry::set_ring_capacity(2);
    let ((), grown) = telemetry::collect("grow", || {
        rec(0);
        telemetry::set_ring_capacity(4);
        rec(1);
        rec(2);
        rec(3);
    });
    assert_eq!(grown.overflowed, 0, "grown ring must not overflow");
    let slots: Vec<u64> = grown.events.iter().map(|e| e.slot).collect();
    assert_eq!(slots, vec![0, 1, 2, 3]);

    // Shrinking mid-scope drops the oldest events and counts them exactly
    // like wrap-around overflow.
    telemetry::set_ring_capacity(4);
    let ((), shrunk) = telemetry::collect("shrink", || {
        for slot in 0..4 {
            rec(slot);
        }
        telemetry::set_ring_capacity(2);
    });
    assert_eq!(shrunk.overflowed, 2);
    let slots: Vec<u64> = shrunk.events.iter().map(|e| e.slot).collect();
    assert_eq!(slots, vec![2, 3]);
}

#[test]
fn sweep_event_bundle_is_jobs_invariant() {
    let _guard = LevelGuard::set(Level::Full);
    let run_at = |jobs: usize| {
        set_jobs(jobs);
        let (_results, log) = telemetry::collect("sweep", || {
            let plan = SweepPlan::new("tel-jobs", vec![4usize, 8, 16]);
            plan.run(|pt| e03_fd_general::point(16, *pt.params, 4))
        });
        set_jobs(1);
        log
    };
    let serial = run_at(1);
    let parallel = run_at(8);
    assert!(serial.total_events() > 0);
    assert_eq!(
        serial, parallel,
        "event bundle differs between --jobs 1 and --jobs 8"
    );
}
