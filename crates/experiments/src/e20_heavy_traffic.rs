//! E20 — the heavy-traffic regime: delay growth as load approaches 1.
//!
//! Heavy-traffic theory (Jhunjhunwala & Maguluri, arXiv:2004.12271)
//! characterizes switch delay as load `ρ → 1`: the shadow OQ switch's
//! mean queueing delay under i.i.d. uniform Bernoulli traffic follows the
//! discrete Geo/D/1 form `W(ρ) ≈ (N−1)/N · ρ / (2(1−ρ))` per output, and
//! the question for a PPS is whether its *relative* delay (the paper's
//! metric) also blows up with `1/(1−ρ)` or stays bounded by geometry.
//!
//! This experiment sweeps load under uniform Bernoulli traffic and
//! reports, side by side: the measured OQ mean delay vs the Geo/D/1
//! prediction, and the mean/p99/p999 relative delay of a bufferless and
//! an input-buffered fully-distributed PPS. The expected shape — and the
//! pass condition — is that the *absolute* delay diverges with the
//! heavy-traffic prediction while the *relative* delay stays flat and
//! small: the inherent queuing delay of the PPS is an additive geometric
//! term (`Θ(N/S)` worst-case, near zero typically), not a multiplicative
//! degradation, exactly as the paper's bounds say.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_buffered, compare_bufferless, relative_delays, Table, TailQuantiles};
use pps_core::prelude::*;
use pps_switch::demux::{BufferedRoundRobinDemux, RoundRobinDemux};
use pps_workload::WorkloadSpec;

/// Geometry: same canonical S = 2 point as E19.
pub const N: usize = 16;
/// Center-stage planes.
pub const K: usize = 8;
/// Internal slowdown.
pub const R_PRIME: usize = 4;
/// Per-input buffer of the buffered variant.
pub const BUFFER: usize = 64;
/// Slots per load point.
pub const HORIZON: u64 = 40_000;

/// Geo/D/1 mean-waiting prediction for an output fed by
/// `Binomial(N, ρ/N)` arrivals at one departure per slot.
pub fn predicted_oq_mean(load: f64) -> f64 {
    ((N - 1) as f64 / N as f64) * load / (2.0 * (1.0 - load))
}

/// One load point's measurements.
#[derive(Clone, Debug)]
pub struct LoadPoint {
    /// Offered per-input load.
    pub load: f64,
    /// Measured mean queueing delay of the shadow OQ switch.
    pub oq_mean: f64,
    /// Bufferless PPS relative-delay tails.
    pub bufferless: TailQuantiles,
    /// Buffered PPS relative-delay tails.
    pub buffered: TailQuantiles,
    /// Undelivered cells (bufferless, buffered).
    pub undelivered: (usize, usize),
}

/// Measure one load level.
pub fn measure(load: f64, seed: u64) -> LoadPoint {
    let spec = WorkloadSpec::parse(&format!(
        "uniform:n={N},load={load},seed={seed},horizon={HORIZON}"
    ))
    .expect("spec");
    let trace = spec.trace().expect("materialize");

    let cfg = PpsConfig::bufferless(N, K, R_PRIME);
    let bl = compare_bufferless(cfg, RoundRobinDemux::new(N, K), &trace).expect("bufferless");
    let cfg_b = PpsConfig::buffered(N, K, R_PRIME, BUFFER);
    let bf = compare_buffered(cfg_b, BufferedRoundRobinDemux::new(N, K), &trace).expect("buffered");

    let oq_delays: Vec<u64> = bl.oq.records().iter().filter_map(|r| r.delay()).collect();
    let oq_mean = oq_delays.iter().sum::<u64>() as f64 / oq_delays.len().max(1) as f64;
    LoadPoint {
        load,
        oq_mean,
        bufferless: TailQuantiles::from(&relative_delays(&bl.pps.log, &bl.oq)).expect("cells"),
        buffered: TailQuantiles::from(&relative_delays(&bf.pps.log, &bf.oq)).expect("cells"),
        undelivered: (
            bl.relative_delay().pps_undelivered,
            bf.relative_delay().pps_undelivered,
        ),
    }
}

/// Run the sweep.
pub fn run() -> ExperimentOutput {
    let loads = [0.6, 0.75, 0.9, 0.95, 0.98];
    let mut table = Table::new(
        format!(
            "Heavy-traffic sweep, uniform Bernoulli (N={N}, K={K}, r'={R_PRIME}, buffer={BUFFER}, \
             {HORIZON} slots): absolute OQ delay diverges, relative delay stays flat"
        ),
        &[
            "load",
            "OQ mean",
            "Geo/D/1 W",
            "bl mean",
            "bl p99",
            "bl p999",
            "buf mean",
            "buf p99",
            "buf p999",
        ],
    );
    let plan = SweepPlan::new("e20", loads.to_vec());
    let points = plan.run(|pt| measure(*pt.params, 20_000 + pt.index as u64));
    let mut pass = true;
    for (i, p) in points.iter().enumerate() {
        let w = predicted_oq_mean(p.load);
        // (a) everything delivered; (b) measured OQ mean tracks the
        // heavy-traffic prediction (factor-3 band away from the extreme
        // point, where finite-horizon bias is large); (c) absolute delay
        // grows with load while the relative tail does NOT: p999 stays
        // below the fully-distributed worst case at every load.
        pass &= p.undelivered == (0, 0);
        if p.load <= 0.951 {
            pass &= p.oq_mean > w / 3.0 && p.oq_mean < w * 3.0 + 1.0;
        }
        if i > 0 {
            pass &= p.oq_mean > points[i - 1].oq_mean;
        }
        pass &= p.bufferless.p999 < ((R_PRIME - 1) * (N - 1)) as i64;
        pass &= p.buffered.p999 < ((R_PRIME - 1) * (N - 1)) as i64;
        table.row_display(&[
            format!("{:.2}", p.load),
            format!("{:.2}", p.oq_mean),
            format!("{w:.2}"),
            format!("{:.2}", p.bufferless.mean),
            p.bufferless.p99.to_string(),
            p.bufferless.p999.to_string(),
            format!("{:.2}", p.buffered.mean),
            p.buffered.p99.to_string(),
            p.buffered.p999.to_string(),
        ]);
    }
    ExperimentOutput {
        id: "e20",
        title: "Heavy traffic — absolute delay diverges as 1/(1−ρ), relative delay stays geometric"
            .into(),
        tables: vec![table],
        notes: vec![
            "the shadow OQ mean follows the Geo/D/1 heavy-traffic form (N−1)/N·ρ/(2(1−ρ)); \
             the PPS's relative delay does not inherit the 1/(1−ρ) divergence — the \
             inherent queuing delay is an additive geometric cost, which is the \
             operational content of the paper's bounds under average-case load"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }

    #[test]
    fn oq_mean_tracks_geo_d1_at_moderate_load() {
        let p = measure(0.75, 1);
        let w = predicted_oq_mean(0.75);
        assert!(
            p.oq_mean > w / 2.0 && p.oq_mean < w * 2.0 + 0.5,
            "OQ mean {} vs predicted {w}",
            p.oq_mean
        );
    }

    #[test]
    fn relative_tail_does_not_diverge_with_load() {
        let lo = measure(0.6, 2);
        let hi = measure(0.98, 3);
        // Absolute delay explodes by an order of magnitude...
        assert!(hi.oq_mean > 4.0 * lo.oq_mean);
        // ...while the relative p999 stays under the geometric worst case.
        assert!(hi.bufferless.p999 < ((R_PRIME - 1) * (N - 1)) as i64);
    }
}
