//! E13 — architecture baseline: the PPS against the single-fabric
//! input-queued crossbar it displaces.
//!
//! The paper's related work anchors the PPS between two single-fabric
//! designs: the ideal output-queued switch (needs memory at rate `N·R` —
//! the reference) and the input-queued crossbar with a centralized arbiter
//! (runs at rate `R`; Tamir & Chi's arbitrated crossbars are the paper's
//! u-RT example). This experiment measures mean/max queuing delay of all
//! four under the same admissible uniform Bernoulli load:
//!
//! * OQ (ideal), * iSLIP crossbar (VOQ, 2 iterations), * PPS + CPA
//!   (centralized, S = 2), * PPS + round robin (fully distributed).
//!
//! Expected shape: OQ and PPS+CPA coincide; the crossbar tracks OQ closely
//! under uniform load (iSLIP's home turf) but cannot beat it; PPS+RR pays
//! a small typical-case penalty — its Θ(N) cost is a *worst-case* story
//! (E2), which is the paper's point.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::Table;
use pps_core::prelude::*;
use pps_crossbar::run_crossbar;
use pps_reference::oq::run_oq;
use pps_switch::demux::{CpaDemux, RoundRobinDemux};
use pps_switch::engine::run_bufferless;
use pps_traffic::gen::BernoulliGen;

fn stats(log: &RunLog) -> (f64, u64, usize) {
    (
        log.mean_delay().unwrap_or(0.0),
        log.max_delay().unwrap_or(0),
        log.undelivered(),
    )
}

/// One load point: `(oq, crossbar, pps_cpa, pps_rr)` as
/// `(mean delay, max delay, undelivered)` triples.
#[allow(clippy::type_complexity)]
pub fn point(n: usize, k: usize, r_prime: usize, load: f64, seed: u64) -> [(f64, u64, usize); 4] {
    let trace = BernoulliGen::uniform(load, seed).trace(n, 3_000);
    let oq = run_oq(&trace, n);
    let xb = run_crossbar(&trace, n, 2);
    let cpa_cfg =
        PpsConfig::bufferless(n, k, r_prime).with_discipline(OutputDiscipline::GlobalFcfs);
    let cpa = run_bufferless(cpa_cfg, CpaDemux::new(n, k, r_prime), &trace)
        .expect("run")
        .log;
    let rr = run_bufferless(
        PpsConfig::bufferless(n, k, r_prime),
        RoundRobinDemux::new(n, k),
        &trace,
    )
    .expect("run")
    .log;
    [stats(&oq), stats(&xb), stats(&cpa), stats(&rr)]
}

/// Run the default load sweep.
pub fn run() -> ExperimentOutput {
    let (n, k, r_prime) = (16, 8, 4); // S = 2
    let mut table = Table::new(
        format!("Queuing delay by architecture at N={n} (PPS: K={k}, r'={r_prime}, S=2), uniform Bernoulli"),
        &[
            "load",
            "OQ mean/max",
            "iSLIP mean/max",
            "PPS+CPA mean/max",
            "PPS+RR mean/max",
        ],
    );
    let mut pass = true;
    let plan = SweepPlan::new("e13", vec![0.5f64, 0.7, 0.9, 0.99]);
    let results = plan.run(|pt| point(n, k, r_prime, *pt.params, 77));
    for (&load, [oq, xb, cpa, rr]) in plan.points().iter().zip(results) {
        // Sanity: everything drains; the ideal OQ is never beaten on mean.
        pass &= oq.2 == 0 && xb.2 == 0 && cpa.2 == 0 && rr.2 == 0;
        pass &= xb.0 + 1e-9 >= oq.0 && cpa.0 + 1e-9 >= oq.0 && rr.0 + 1e-9 >= oq.0;
        // CPA mimics FCFS-OQ: identical maxima.
        pass &= cpa.1 == oq.1;
        let fmt = |(mean, max, _): (f64, u64, usize)| format!("{mean:.2}/{max}");
        table.row_display(&[format!("{load}"), fmt(oq), fmt(xb), fmt(cpa), fmt(rr)]);
    }
    ExperimentOutput {
        id: "e13",
        title: "Baseline — PPS vs ideal OQ vs iSLIP input-queued crossbar".into(),
        tables: vec![table],
        notes: vec![
            "under benign uniform load all architectures are close — the paper's \
             bounds are about worst cases, not averages (contrast with E2)"
                .into(),
            "PPS+CPA's max delay equals OQ's at every load: mimicking, measured".into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_architectures_drain_and_respect_the_ideal() {
        let [oq, xb, cpa, rr] = point(8, 8, 4, 0.8, 3);
        for (mean, _max, undelivered) in [oq, xb, cpa, rr] {
            assert_eq!(undelivered, 0);
            assert!(mean >= 0.0);
        }
        assert!(xb.0 >= oq.0 - 1e-9);
        assert_eq!(cpa.1, oq.1, "CPA must mimic the OQ max delay");
    }

    #[test]
    fn crossbar_degrades_under_hotspot_where_pps_cpa_does_not() {
        use pps_traffic::gen::TrafficPattern;
        let n = 8;
        let trace = BernoulliGen {
            load: 0.6,
            pattern: TrafficPattern::Hotspot {
                target: 0,
                hot: 0.5,
            },
            seed: 5,
        }
        .trace(n, 2_000);
        let oq = run_oq(&trace, n);
        let xb = run_crossbar(&trace, n, 2);
        assert_eq!(xb.undelivered(), 0);
        // Input-queued matching cannot beat the ideal on the hot output.
        assert!(xb.mean_delay().unwrap() >= oq.mean_delay().unwrap() - 1e-9);
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
