//! E11 — tightness of Corollary 7: Iyer & McKeown's fully-distributed
//! algorithm \[15\] mimics a FCFS output-queued switch with relative delay
//! at most `N·K/S = N·R/r` at `S ≥ 2`, so together with the `(R/r − 1)·N`
//! lower bound the relative queuing delay of a bufferless fully-distributed
//! PPS is `Θ((R/r)·N)`.
//!
//! Victim/hero: the per-flow round robin (the spirit of \[15\]'s
//! spreading). We measure it under the concentration attack (lower side)
//! and under heavy admissible loads (typical side), and check everything
//! sits inside the `[(R/r−1)(N−1), (R/r)·N]` window.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_bufferless, Table};
use pps_core::prelude::*;
use pps_switch::demux::PerFlowRoundRobinDemux;
use pps_traffic::adversary::concentration_attack;
use pps_traffic::gen::BernoulliGen;

/// Run the default sweep over N.
pub fn run() -> ExperimentOutput {
    let (k, r_prime) = (8, 4); // S = 2 as required by [15]
    let mut table = Table::new(
        format!("Theta((R/r)N) tightness at K={k}, r'={r_prime}, S=2 (per-flow round robin)"),
        &[
            "N",
            "lower bound (exact)",
            "upper bound N*R/r",
            "attack delay",
            "bernoulli-0.9 delay",
            "within window",
        ],
    );
    let mut pass = true;
    let plan = SweepPlan::new("e11", vec![8usize, 16, 32, 64]);
    let results = plan.run(|pt| {
        let n = *pt.params;
        let cfg = PpsConfig::bufferless(n, k, r_prime);
        let demux = PerFlowRoundRobinDemux::new(n, k);
        let atk = concentration_attack(&demux, &cfg, &(0..n as u32).collect::<Vec<_>>(), 4 * k);
        let attack_cmp = compare_bufferless(cfg, demux.clone(), &atk.trace).expect("run");
        let bern = BernoulliGen::uniform(0.9, 31).trace(n, 1_500);
        let bern_cmp = compare_bufferless(cfg, demux, &bern).expect("run");
        (
            atk.model_exact_bound,
            attack_cmp.relative_delay().max,
            bern_cmp.relative_delay().max,
            attack_cmp.relative_delay().pps_undelivered,
            bern_cmp.relative_delay().pps_undelivered,
        )
    });
    for (&n, (lower, attack_delay, bern_delay, atk_undeliv, bern_undeliv)) in
        plan.points().iter().zip(results)
    {
        let upper = (n * r_prime) as i64;
        let ok = attack_delay as u64 >= lower
            && attack_delay <= upper
            && bern_delay <= upper
            && atk_undeliv == 0
            && bern_undeliv == 0;
        pass &= ok;
        table.row_display(&[
            n.to_string(),
            lower.to_string(),
            upper.to_string(),
            attack_delay.to_string(),
            bern_delay.to_string(),
            if ok { "yes".into() } else { "NO".to_string() },
        ]);
    }
    ExperimentOutput {
        id: "e11",
        title: "Tightness — lower bound meets the Iyer-McKeown N*R/r upper bound: Theta((R/r)N)"
            .into(),
        tables: vec![table],
        notes: vec![
            "the same algorithm exhibits both sides: worst-case traffic drives it to \
             the lower bound, while no traffic pushes it past N*R/r"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_reaches_lower_bound_but_not_past_upper() {
        let n = 16;
        let cfg = PpsConfig::bufferless(n, 8, 4);
        let demux = PerFlowRoundRobinDemux::new(n, 8);
        let atk = concentration_attack(&demux, &cfg, &(0..n as u32).collect::<Vec<_>>(), 32);
        assert_eq!(atk.d, n, "per-flow RR is unpartitioned: all inputs align");
        let cmp = compare_bufferless(cfg, demux, &atk.trace).unwrap();
        let d = cmp.relative_delay().max;
        assert!(d as u64 >= atk.model_exact_bound);
        assert!(d <= (n * 4) as i64, "upper bound violated: {d}");
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
