//! E12 — the paper's headline message (§1.2): *"the PPS architecture does
//! not scale with increasing number of external ports … great effort is
//! currently invested in building switches with a large number of ports
//! (where N = 512 or even 1024)"*.
//!
//! We sweep the Corollary 7 attack on the round robin up to `N = 1024` and
//! fit the slope of relative delay vs `N`: it should be `≈ R/r − 1`,
//! confirming the linear-in-N wall. Points run in parallel (they are
//! independent simulations).

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_bufferless_intra, Table};
use pps_core::prelude::*;
use pps_switch::demux::RoundRobinDemux;
use pps_traffic::adversary::concentration_attack;

/// One scaling point: `(N, exact bound, measured delay, implied buffer)`.
pub fn point(n: usize, k: usize, r_prime: usize) -> (usize, u64, i64, usize) {
    point_at(n, k, r_prime, 1)
}

/// [`point`] with a pinned intra-run shard count. The sharded fabric is
/// byte-identical to the serial walk (DESIGN.md §16), so the returned
/// tuple must not depend on `intra_jobs` — the large-N sweep point runs
/// sharded and its table row is pinned against the serial walk in tests.
pub fn point_at(n: usize, k: usize, r_prime: usize, intra_jobs: usize) -> (usize, u64, i64, usize) {
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    cfg.validate().expect("valid point");
    let demux = RoundRobinDemux::new(n, k);
    let atk = concentration_attack(&demux, &cfg, &(0..n as u32).collect::<Vec<_>>(), 4 * k);
    let cmp = compare_bufferless_intra(cfg, demux, &atk.trace, intra_jobs).expect("run");
    let rd = cmp.relative_delay();
    assert_eq!(rd.pps_undelivered, 0);
    // "Large relative queuing delays usually imply that the buffer sizes at
    // the middle-stage switches … should be large as well": report the
    // measured plane-buffer high-water mark alongside.
    (
        n,
        atk.model_exact_bound,
        rd.max,
        cmp.pps_stats().max_plane_queue,
    )
}

/// Run the default sweep, in parallel across points. The largest point
/// runs with a sharded fabric (4 intra-run shards) so the tier-1 suite
/// exercises the sharded path on a giant-N switch; every other point
/// stays serial. Rows are identical either way.
pub fn run() -> ExperimentOutput {
    let (k, r_prime) = (8, 4); // S = 2
    let plan = SweepPlan::new("e12", vec![64usize, 128, 256, 512, 1024]);
    let results = plan.run(|pt| {
        let n = *pt.params;
        point_at(n, k, r_prime, if n >= 1024 { 4 } else { 1 })
    });
    let mut table = Table::new(
        format!("Scaling to N=1024 at K={k}, r'={r_prime}, S=2 (slope should be ~ R/r-1 = 3)"),
        &[
            "N",
            "bound (exact)",
            "measured delay",
            "plane buffer HWM",
            "delay/N",
        ],
    );
    let mut pass = true;
    for &(n, bound, delay, hwm) in &results {
        pass &= delay as u64 >= bound;
        table.row_display(&[
            n.to_string(),
            bound.to_string(),
            delay.to_string(),
            hwm.to_string(),
            format!("{:.3}", delay as f64 / n as f64),
        ]);
    }
    // Least-squares slope through the (N, delay) points.
    let xs: Vec<f64> = results.iter().map(|&(n, ..)| n as f64).collect();
    let ys: Vec<f64> = results.iter().map(|&(_, _, d, _)| d as f64).collect();
    let slope = slope(&xs, &ys);
    pass &= (r_prime as f64 - 1.0 - slope).abs() < 0.2;
    ExperimentOutput {
        id: "e12",
        title: "Scaling — relative delay grows linearly in N up to 1024 ports".into(),
        tables: vec![table],
        notes: vec![format!(
            "least-squares slope of delay vs N: {slope:.3} (theory: R/r - 1 = {})",
            r_prime - 1
        )],
        pass,
    }
}

fn slope(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_512_behaves_like_the_paper_warns() {
        let (_n, bound, delay, hwm) = point(512, 8, 4);
        assert!(delay as u64 >= bound);
        // The concentration fills one plane queue with ~N(1 - 1/r') cells
        // (it drains one cell per r' slots while the burst arrives).
        assert!(hwm >= 256, "plane buffer HWM {hwm} too small");
    }

    #[test]
    fn slope_is_r_prime_minus_one() {
        let pts: Vec<(usize, i64)> = [64usize, 128, 256]
            .iter()
            .map(|&n| {
                let (_, _, d, _) = point(n, 8, 4);
                (n, d)
            })
            .collect();
        let xs: Vec<f64> = pts.iter().map(|&(n, _)| n as f64).collect();
        let ys: Vec<f64> = pts.iter().map(|&(_, d)| d as f64).collect();
        let s = slope(&xs, &ys);
        assert!((s - 3.0).abs() < 0.2, "slope {s}");
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }

    #[test]
    fn sharded_point_matches_serial_walk() {
        // Pins the sharded large-N row of the sweep against the serial
        // fabric: the whole tuple (bound, delay, plane HWM) must agree.
        assert_eq!(point_at(512, 8, 4, 2), point_at(512, 8, 4, 1));
    }
}
