//! E7 — Theorem 13: an input-buffered PPS with a *fully-distributed*
//! demultiplexing algorithm has relative queuing delay and jitter at least
//! `(1 − r/R)·N/S`, **for any buffer size**, under burst-free traffic.
//!
//! Buffers help `u`-RT algorithms (E6) but not fully-distributed ones:
//! with no information about other inputs, buffering a cell cannot prevent
//! the concentration — it can only add delay. Victim: buffered round
//! robin. Sweep: the buffer size.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_buffered, Table};
use pps_core::prelude::*;
use pps_switch::demux::{BufferedRoundRobinDemux, RoundRobinDemux};
use pps_traffic::adversary::concentration_attack;
use pps_traffic::min_burstiness;

/// One sweep point; returns `(theorem bound, exact bound, measured delay,
/// measured jitter, burstiness)`.
pub fn point(n: usize, k: usize, r_prime: usize, buffer: usize) -> (u64, u64, i64, i64, u64) {
    // The buffered round robin's pointer automaton coincides with the
    // bufferless round robin whenever buffers are empty — which the
    // attack's r'-spaced phases guarantee — so the alignment is planned
    // against the bufferless twin.
    let cfg_plan = PpsConfig::bufferless(n, k, r_prime);
    let atk = concentration_attack(
        &RoundRobinDemux::new(n, k),
        &cfg_plan,
        &(0..n as u32).collect::<Vec<_>>(),
        4 * k,
    );
    let b = min_burstiness(&atk.trace, n).overall();
    let cfg = PpsConfig::buffered(n, k, r_prime, buffer);
    cfg.validate().expect("valid sweep point");
    let cmp = compare_buffered(cfg, BufferedRoundRobinDemux::new(n, k), &atk.trace).expect("run");
    let rd = cmp.relative_delay();
    assert_eq!(rd.pps_undelivered, 0);
    let n_over_s = cfg.n_over_s();
    // (1 - r/R) * N/S = ((r'-1)/r') * N*r'/K = N(r'-1)/K.
    let theorem_bound = (r_prime as u64 - 1) * n_over_s / r_prime as u64;
    (
        theorem_bound,
        atk.model_exact_bound,
        rd.max,
        cmp.relative_jitter(),
        b,
    )
}

/// Run the default sweep.
pub fn run() -> ExperimentOutput {
    let (n, k, r_prime) = (32, 8, 4); // S = 2
    let mut table = Table::new(
        format!(
            "Theorem 13 sweep: N={n}, K={k}, r'={r_prime}, S=2 (bound = (1-r/R)*N/S, any buffer)"
        ),
        &[
            "buffer size",
            "bound (paper)",
            "bound (exact, RR)",
            "measured delay",
            "measured jitter",
            "traffic B",
        ],
    );
    let mut pass = true;
    let plan = SweepPlan::new("e7", vec![1usize, 4, 16, 64, 256]);
    let results = plan.run(|pt| point(n, k, r_prime, *pt.params));
    for (&buffer, (paper, exact, delay, jitter, b)) in plan.points().iter().zip(results) {
        pass &= delay as u64 >= paper && delay as u64 >= exact && jitter as u64 >= paper && b == 0;
        table.row_display(&[
            buffer.to_string(),
            paper.to_string(),
            exact.to_string(),
            delay.to_string(),
            jitter.to_string(),
            b.to_string(),
        ]);
    }
    ExperimentOutput {
        id: "e7",
        title: "Theorem 13 — buffered fully-distributed lower bound, independent of buffer size"
            .into(),
        tables: vec![table],
        notes: vec![
            "measured delay is flat across buffer sizes: with no global information \
             there is nothing useful to wait for (the theorem's point)"
                .into(),
            "bound (exact, RR) is the concentration the unpartitioned round robin \
             actually suffers ((R/r-1)*(N-1)), far above the class-wide (1-r/R)*N/S"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_for_small_and_large_buffers() {
        for buffer in [1usize, 32] {
            let (paper, _exact, delay, jitter, b) = point(8, 8, 4, buffer);
            assert_eq!(b, 0);
            assert!(delay as u64 >= paper, "buffer {buffer}: {delay} < {paper}");
            assert!(jitter as u64 >= paper);
        }
    }

    #[test]
    fn buffers_do_not_rescue_a_distributed_algorithm() {
        let small = point(16, 8, 4, 1).2;
        let large = point(16, 8, 4, 128).2;
        assert_eq!(small, large, "delay must not improve with buffer size");
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
