//! E9 — Proposition 15: any traffic that sustains congestion (the premise
//! of Theorem 14) is **not** `(R, B)` leaky-bucket for any `B` independent
//! of the congestion duration.
//!
//! Measured: the exact minimal burstiness of the E8 congestion traffic as
//! a function of its duration — it grows linearly, `B_min = (rate − 1)·T`,
//! so no fixed `B` covers all durations. This is why Theorem 14 does not
//! contradict Theorem 8.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::Table;
use pps_traffic::adversary::congestion_traffic;
use pps_traffic::min_burstiness;

/// Run the duration sweep.
pub fn run() -> ExperimentOutput {
    let n = 16;
    let mut table = Table::new(
        "Proposition 15: minimal burstiness of congestion traffic vs duration (2 cells/slot)",
        &[
            "duration T",
            "predicted B = (rate-1)*T",
            "measured B_min",
            "B_min / T",
        ],
    );
    let mut pass = true;
    let plan = SweepPlan::new("e9", vec![50u64, 100, 200, 400, 800]);
    let results = plan.run(|pt| {
        let c = congestion_traffic(n, 0, 2, *pt.params);
        let b = min_burstiness(&c.trace, n).overall();
        // No engine runs here — the experiment *is* the trace validation —
        // so account the scanned slots to the shared throughput meter
        // (otherwise --bench-json reports a bogus 0 slots for e9).
        pps_core::perf::record_slots(c.trace.horizon());
        (c.expected_burstiness, b)
    });
    // Cross-point monotonicity runs after the merge, over ordered results.
    let mut prev_b = 0u64;
    for (&duration, (expected, b)) in plan.points().iter().zip(results) {
        pass &= b == expected && b > prev_b;
        prev_b = b;
        table.row_display(&[
            duration.to_string(),
            expected.to_string(),
            b.to_string(),
            format!("{:.2}", b as f64 / duration as f64),
        ]);
    }
    ExperimentOutput {
        id: "e9",
        title: "Proposition 15 — congestion traffic violates every fixed leaky-bucket bound".into(),
        tables: vec![table],
        notes: vec![
            "B_min/T converges to rate-1: burstiness is proportional to the congested \
             period's length, hence unbounded for sustained congestion"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
