//! E9 — Proposition 15: any traffic that sustains congestion (the premise
//! of Theorem 14) is **not** `(R, B)` leaky-bucket for any `B` independent
//! of the congestion duration.
//!
//! Measured: the exact minimal burstiness of the E8 congestion traffic as
//! a function of its duration — it grows linearly, `B_min = (rate − 1)·T`,
//! so no fixed `B` covers all durations. This is why Theorem 14 does not
//! contradict Theorem 8.
//!
//! The congestion generator depends only on the slot index, so every
//! shorter duration's trace is an exact prefix of the longest one. One
//! [`IncrementalBurstiness`] pass over the longest trace therefore yields
//! every sweep point's `B_min` as a running checkpoint — linear in the
//! longest duration, where rescanning per point was quadratic over the
//! sweep.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::Table;
use pps_core::time::Slot;
use pps_traffic::adversary::congestion_traffic;
use pps_traffic::IncrementalBurstiness;

/// `B_min` of the `durations[i]`-slot congestion trace, for every `i`, from
/// a single scan of the longest duration's trace. `checkpoints[i]` equals
/// `min_burstiness(congestion_traffic(n, 0, senders, durations[i]).trace,
/// n).overall()` (pinned by a test) because shorter traces are prefixes and
/// the calculator's running maxima are valid at any prefix.
pub fn duration_checkpoints(n: usize, senders: usize, durations: &[Slot]) -> Vec<u64> {
    let longest = durations.iter().copied().max().unwrap_or(0);
    let c = congestion_traffic(n, 0, senders, longest);
    // Record the single pass with the shared throughput meter: no engine
    // runs in e9 — the experiment *is* the trace validation — so this is
    // what keeps --bench-json from reporting a bogus 0 slots.
    pps_core::perf::record_slots(c.trace.horizon());
    // Checkpoint order must follow each duration's boundary, so walk the
    // durations smallest-first but write results back in declared order.
    let mut order: Vec<usize> = (0..durations.len()).collect();
    order.sort_by_key(|&i| durations[i]);
    let mut checkpoints = vec![0u64; durations.len()];
    let mut inc = IncrementalBurstiness::new(n);
    let mut next = order.iter().copied().peekable();
    for (slot, group) in c.trace.by_slot() {
        while next.peek().is_some_and(|&i| slot >= durations[i]) {
            checkpoints[next.next().unwrap()] = inc.overall();
        }
        inc.observe_slot(slot, group);
    }
    for i in next {
        checkpoints[i] = inc.overall();
    }
    checkpoints
}

/// Run the duration sweep.
pub fn run() -> ExperimentOutput {
    let n = 16;
    let senders = 2;
    let mut table = Table::new(
        "Proposition 15: minimal burstiness of congestion traffic vs duration (2 cells/slot)",
        &[
            "duration T",
            "predicted B = (rate-1)*T",
            "measured B_min",
            "B_min / T",
        ],
    );
    let mut pass = true;
    let plan = SweepPlan::new("e9", vec![50u64, 100, 200, 400, 800]);
    let checkpoints = duration_checkpoints(n, senders, plan.points());
    let results = plan.run(|pt| {
        let duration = *pt.params;
        let expected = (senders as u64 - 1) * duration;
        (expected, checkpoints[pt.index])
    });
    // Cross-point monotonicity runs after the merge, over ordered results.
    let mut prev_b = 0u64;
    for (&duration, (expected, b)) in plan.points().iter().zip(results) {
        pass &= b == expected && b > prev_b;
        prev_b = b;
        table.row_display(&[
            duration.to_string(),
            expected.to_string(),
            b.to_string(),
            format!("{:.2}", b as f64 / duration as f64),
        ]);
    }
    ExperimentOutput {
        id: "e9",
        title: "Proposition 15 — congestion traffic violates every fixed leaky-bucket bound".into(),
        tables: vec![table],
        notes: vec![
            "B_min/T converges to rate-1: burstiness is proportional to the congested \
             period's length, hence unbounded for sustained congestion"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_traffic::min_burstiness;

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }

    #[test]
    fn checkpoints_match_one_shot_scans() {
        // Unsorted durations with a duplicate: each checkpoint must equal a
        // fresh full scan of that duration's own trace.
        let n = 8;
        let durations = [40u64, 10, 25, 25, 60];
        let got = duration_checkpoints(n, 3, &durations);
        for (&d, &b) in durations.iter().zip(&got) {
            let c = congestion_traffic(n, 0, 3, d);
            assert_eq!(
                b,
                min_burstiness(&c.trace, n).overall(),
                "checkpoint for duration {d}"
            );
        }
    }
}
