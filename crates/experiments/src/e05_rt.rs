//! E5 — Corollary 11: *any* real-time distributed demultiplexing algorithm
//! (i.e. `u`-RT with the minimal `u = 1`) on a bufferless PPS has relative
//! queuing delay and jitter at least `(1 − r/R)·N/S`, under leaky-bucket
//! traffic with burstiness `N/K − 1`.
//!
//! This is E4 specialized to `u = 1`, swept over the switch size instead:
//! even one slot of information lag is enough for the bound.

use crate::e04_urt;
use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::Table;

/// Run the default sweep over N.
pub fn run() -> ExperimentOutput {
    let (k, r_prime) = (8, 8); // S = 1
    let mut table = Table::new(
        format!("Corollary 11 sweep: K={k}, r'={r_prime}, u=1 (bound = (1-r/R)*N/S)"),
        &[
            "N",
            "m = N/K",
            "bound (paper)",
            "bound (exact)",
            "measured delay",
            "measured jitter",
            "traffic B",
            "premise B = N/K-1",
        ],
    );
    let mut pass = true;
    let plan = SweepPlan::new("e5", vec![16usize, 32, 64, 128]);
    let results = plan.run(|pt| e04_urt::point(*pt.params, k, r_prime, 1));
    for (&n, (_u_eff, m, paper, exact, delay, jitter, b, premise)) in
        plan.points().iter().zip(results)
    {
        pass &= delay as u64 >= exact && jitter as u64 >= exact && b <= premise;
        table.row_display(&[
            n.to_string(),
            m.to_string(),
            paper.to_string(),
            exact.to_string(),
            delay.to_string(),
            jitter.to_string(),
            b.to_string(),
            premise.to_string(),
        ]);
    }
    ExperimentOutput {
        id: "e5",
        title: "Corollary 11 — any real-time distributed algorithm: (1-r/R)*N/S".into(),
        tables: vec![table],
        notes: vec![
            "u = 1 is the strongest realistic information model short of centralized; \
             the bound still grows linearly in N"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_at_u_equals_one() {
        let (_u, m, paper, exact, delay, jitter, b, premise) = e04_urt::point(64, 8, 8, 1);
        assert_eq!(m, 8);
        assert!(b <= premise);
        assert!(delay as u64 >= exact, "{delay} < {exact}");
        assert!(jitter as u64 >= exact);
        // Paper closed form: (1 - r/R) * N/S = (1 - 1/8) * 64 = 56.
        assert_eq!(paper, 56);
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
