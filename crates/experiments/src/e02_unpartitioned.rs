//! E2 — Corollary 7: a bufferless PPS with an *unpartitioned*
//! fully-distributed demultiplexing algorithm (every plane usable by every
//! input — the fault-tolerant configuration) has relative queuing delay
//! and jitter at least `(R/r − 1)·N` under burst-free traffic.
//!
//! Victim: the per-input round robin. Sweep: `N`.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_bufferless, Table};
use pps_core::prelude::*;
use pps_switch::demux::RoundRobinDemux;
use pps_traffic::adversary::concentration_attack;
use pps_traffic::min_burstiness;

/// One sweep point at `n` ports over `k` planes with slowdown `r_prime`.
pub fn point(n: usize, k: usize, r_prime: usize) -> (usize, u64, u64, i64, i64, u64) {
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    cfg.validate().expect("valid sweep point");
    let demux = RoundRobinDemux::new(n, k);
    let all: Vec<u32> = (0..n as u32).collect();
    let atk = concentration_attack(&demux, &cfg, &all, 4 * k);
    let b = min_burstiness(&atk.trace, n).overall();
    let cmp = compare_bufferless(cfg, demux, &atk.trace).expect("run");
    let rd = cmp.relative_delay();
    assert_eq!(rd.pps_undelivered, 0);
    (
        atk.d,
        atk.predicted_bound,
        atk.model_exact_bound,
        rd.max,
        cmp.relative_jitter(),
        b,
    )
}

/// Run the default sweep.
pub fn run() -> ExperimentOutput {
    let (k, r_prime) = (8, 4); // S = 2, the practical regime of [15]
    let mut table = Table::new(
        format!("Corollary 7 sweep: K={k}, r'={r_prime}, S=2 (bound = (R/r-1)*N)"),
        &[
            "N",
            "d aligned",
            "bound (paper)",
            "bound (exact)",
            "measured delay",
            "measured jitter",
            "traffic B",
        ],
    );
    let mut pass = true;
    let plan = SweepPlan::new("e2", vec![8usize, 16, 32, 64, 128]);
    let results = plan.run(|pt| point(*pt.params, k, r_prime));
    for (&n, (d, paper, exact, delay, jitter, b)) in plan.points().iter().zip(results) {
        pass &= d == n && delay as u64 >= exact && jitter as u64 >= exact && b == 0;
        table.row_display(&[
            n.to_string(),
            d.to_string(),
            paper.to_string(),
            exact.to_string(),
            delay.to_string(),
            jitter.to_string(),
            b.to_string(),
        ]);
    }
    ExperimentOutput {
        id: "e2",
        title: "Corollary 7 — unpartitioned fully-distributed lower bound (R/r-1)*N".into(),
        tables: vec![table],
        notes: vec![
            "every input aligns (d = N): fault tolerance demands every demultiplexor \
             can reach every plane, which is exactly what the adversary exploits"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_inputs_align_and_bound_holds() {
        let (d, _paper, exact, delay, jitter, b) = point(16, 8, 4);
        assert_eq!(d, 16);
        assert_eq!(b, 0);
        assert!(delay as u64 >= exact);
        assert!(jitter as u64 >= exact);
    }

    #[test]
    fn delay_grows_linearly_with_n() {
        let d8 = point(8, 8, 4).3;
        let d32 = point(32, 8, 4).3;
        // 4x the ports => ~4x the relative delay (slope (r'-1) = 3).
        let ratio = d32 as f64 / d8 as f64;
        assert!((3.0..5.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
