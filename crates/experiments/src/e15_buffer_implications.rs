//! E15 — the paper's buffer corollary (§1.2 and §6): *"large relative
//! queuing delays usually imply that the buffer sizes at the middle-stage
//! switches or at the external ports should be large as well"*, and the
//! closing remark that the delay bounds should translate into bounds on a
//! jitter regulator's internal buffer \[20\].
//!
//! For the Corollary 7 attack swept over `N` we record, next to the
//! relative delay: the plane-buffer high-water mark, the output
//! (resequencer) high-water mark, and the internal buffer a jitter
//! regulator needs to flatten the run to constant delay. All three grow
//! linearly with `N` — the delay bound priced in memory.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_bufferless, Table};
use pps_core::prelude::*;
use pps_reference::regulator::{min_feasible_delay, regulate};
use pps_switch::demux::RoundRobinDemux;
use pps_traffic::adversary::concentration_attack;

/// One sweep point: `(relative delay, plane HWM, output HWM, regulator
/// buffer, regulator residual jitter)`.
pub fn point(n: usize, k: usize, r_prime: usize) -> (i64, usize, usize, usize, u64) {
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    let demux = RoundRobinDemux::new(n, k);
    let atk = concentration_attack(&demux, &cfg, &(0..n as u32).collect::<Vec<_>>(), 4 * k);
    let cmp = compare_bufferless(cfg, demux, &atk.trace).expect("run");
    let rd = cmp.relative_delay();
    assert_eq!(rd.pps_undelivered, 0);
    let d = min_feasible_delay(&cmp.pps.log);
    let reg = regulate(&cmp.pps.log, d);
    (
        rd.max,
        cmp.pps_stats().max_plane_queue,
        cmp.pps_stats().max_output_held,
        reg.buffer_required,
        reg.residual_jitter,
    )
}

/// Run the default sweep.
pub fn run() -> ExperimentOutput {
    let (k, r_prime) = (8, 4); // S = 2
    let mut table = Table::new(
        format!("Memory implied by the Corollary 7 delay at K={k}, r'={r_prime}"),
        &[
            "N",
            "rel delay",
            "plane buffer HWM",
            "resequencer HWM",
            "regulator buffer",
            "residual jitter",
        ],
    );
    let mut pass = true;
    let mut prev: Option<(usize, i64, usize)> = None;
    let plan = SweepPlan::new("e15", vec![32usize, 64, 128, 256]);
    let results = plan.run(|pt| point(*pt.params, k, r_prime));
    // The doubling checks compare adjacent points, so they run post-merge
    // over the ordered results.
    for (&n, (delay, plane_hwm, out_hwm, reg_buf, resid)) in plan.points().iter().zip(results) {
        // The regulator buffer must absorb the early cells of the
        // concentration: at least a constant fraction of N.
        pass &= reg_buf >= n / 2 && plane_hwm >= n / 2 && resid == 0;
        if let Some((pn, pd, pb)) = prev {
            // Linear growth: doubling N roughly doubles both delay and buffers.
            let dr = delay as f64 / pd as f64;
            let br = reg_buf as f64 / pb as f64;
            pass &= (1.6..2.4).contains(&dr) && (1.6..2.4).contains(&br);
            let _ = pn;
        }
        prev = Some((n, delay, reg_buf));
        table.row_display(&[
            n.to_string(),
            delay.to_string(),
            plane_hwm.to_string(),
            out_hwm.to_string(),
            reg_buf.to_string(),
            resid.to_string(),
        ]);
    }
    ExperimentOutput {
        id: "e15",
        title: "Buffer implications — the delay bounds priced in plane, resequencer and \
                jitter-regulator memory"
            .into(),
        tables: vec![table],
        notes: vec![
            "residual jitter 0: a regulator *can* flatten the PPS output — but only \
             by holding Theta(N) cells, the paper's suggested translation of the \
             delay lower bound into a buffer lower bound"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regulator_buffer_scales_with_the_concentration() {
        let (delay, plane_hwm, _out, reg_small, _r) = point(16, 8, 4);
        let (_d2, _p2, _o2, reg_large, _r2) = point(64, 8, 4);
        assert!(delay > 0);
        assert!(plane_hwm >= 8);
        assert!(
            reg_large > 3 * reg_small,
            "4x ports should ~4x the regulator buffer: {reg_small} -> {reg_large}"
        );
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
