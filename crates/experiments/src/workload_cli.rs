//! `ppslab --workload <spec>` — one-shot tail-delay report for any
//! workload specification.
//!
//! ```text
//! ppslab --workload "zipf:n=16,load=0.85,s=1.1,flows=1048576,seed=7"
//! ppslab --workload "mmpp:n=8,calm=0.1,burst=0.9" --workload-k 8 --workload-rprime 4
//! ppslab --workload "replay:path=capture.csv,n=16"
//! ```
//!
//! Materializes the spec (see `pps_workload::WorkloadSpec` for the
//! families and keys), runs it through one demultiplexor per information
//! class against the shadow OQ switch, and prints mean/p99/p999/max
//! relative delay per class plus the trace's measured burstiness. The
//! same report backs the E19 experiment; this entry point exists so a
//! spec can be explored without writing code — the spec string is the
//! full reproducible name of the run.

use pps_analysis::{compare_bufferless, relative_delays, TailQuantiles};
use pps_core::prelude::*;
use pps_switch::demux::{CpaDemux, RoundRobinDemux, StaleLeastLoadedDemux};
use pps_traffic::{min_burstiness, TraceStats};
use pps_workload::WorkloadSpec;

/// Execute a `--workload` run; returns the printable report.
pub fn run_workload(spec_str: &str, k: usize, r_prime: usize) -> Result<String, String> {
    let spec = WorkloadSpec::parse(spec_str)?;
    let n = spec.ports();
    let trace = spec.trace()?;
    if trace.is_empty() {
        return Err(format!("workload {spec_str:?} produced no cells"));
    }
    let b = min_burstiness(&trace, n).overall();
    let envelope = (r_prime as u64) * (n as u64 + k as u64 + b) + 64;

    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "workload             : {spec_str}");
    let _ = writeln!(out, "family               : {}", spec.family());
    let _ = writeln!(
        out,
        "traffic              : {}",
        TraceStats::of(&trace, n).summary()
    );
    let _ = writeln!(out, "burstiness B_min     : {b}");
    let _ = writeln!(
        out,
        "geometry             : N={n} K={k} r'={r_prime} (envelope bound {envelope})"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "class", "mean", "p99", "p999", "max", "undeliv"
    );

    let cfg = PpsConfig::bufferless(n, k, r_prime);
    cfg.validate().map_err(|e| e.to_string())?;
    let mut report_row = |label: &str, cmp: pps_analysis::Comparison| {
        let tails = TailQuantiles::from(&relative_delays(&cmp.pps.log, &cmp.oq))
            .expect("trace is nonempty");
        let _ = writeln!(
            out,
            "{label:<22} {:>10.2} {:>8} {:>8} {:>8} {:>8}",
            tails.mean,
            tails.p99,
            tails.p999,
            tails.max,
            cmp.relative_delay().pps_undelivered
        );
    };
    report_row(
        "fully-dist (rr)",
        compare_bufferless(cfg, RoundRobinDemux::new(n, k), &trace).map_err(|e| e.to_string())?,
    );
    report_row(
        "u-RT (stale:2)",
        compare_bufferless(cfg, StaleLeastLoadedDemux::new(n, k, 2), &trace)
            .map_err(|e| e.to_string())?,
    );
    report_row(
        "centralized (cpa)",
        compare_bufferless(
            cfg.with_discipline(OutputDiscipline::GlobalFcfs),
            CpaDemux::new(n, k, r_prime),
            &trace,
        )
        .map_err(|e| e.to_string())?,
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_classes() {
        let out = run_workload("uniform:n=8,load=0.7,seed=3,horizon=2000", 8, 4).unwrap();
        assert!(out.contains("fully-dist (rr)"), "{out}");
        assert!(out.contains("u-RT (stale:2)"), "{out}");
        assert!(out.contains("centralized (cpa)"), "{out}");
        assert!(out.contains("burstiness B_min"), "{out}");
    }

    #[test]
    fn report_is_deterministic() {
        let a = run_workload("zipf:n=8,load=0.6,seed=11,horizon=3000", 8, 4).unwrap();
        let b = run_workload("zipf:n=8,load=0.6,seed=11,horizon=3000", 8, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_specs_are_reported() {
        assert!(run_workload("nope:x=1", 8, 4).is_err());
        assert!(run_workload("zipf:bogus=1", 8, 4).is_err());
    }
}
