//! Declarative parameter sweeps with a deterministic parallel executor.
//!
//! The executor itself lives in [`pps_core::sweep`] since PR 6 (the chaos
//! harness schedules its fuzz cases through the same work-stealing loop,
//! and `pps-chaos` sits below this crate in the dependency graph). This
//! module re-exports the whole driver-facing surface — [`SweepPlan`],
//! [`SweepPoint`], [`point_seed`], and the [`jobs`]/[`set_jobs`] budget —
//! so experiment code and external drivers keep their existing imports.
//!
//! See `pps_core::sweep` for the determinism contract (declared-order
//! merge, byte-identical tables at any `--jobs`) and the seed-derivation
//! rules.

pub use pps_core::sweep::{point_seed, SweepPlan, SweepPoint};
pub use pps_core::workers::{jobs, set_jobs};
