//! E24 — maximal matching with speedup: the Cogill–Lall envelope, measured.
//!
//! Cogill & Lall (arXiv cs/0605030) analyze a CIOQ switch running *any*
//! maximal matching at speedup 2 and bound the expected waiting beyond
//! the ideal OQ switch by the conflict envelope `λc / (1 − λc)`, with
//! `λc = 2ρ(N−1)/N` under uniform load — no deadline bookkeeping, no
//! stable-marriage machinery, any maximal matching qualifies.
//!
//! This experiment drives the CIOQ engine's deadline-blind maximal
//! round-robin matching ([`CioqPolicy::MaximalRr`]) at speedup 1 and 2,
//! with the deadline-aware critical-cells-first policy (the Chuang et al.
//! mimicking flavour, cf. E17) and the ideal OQ shadow as references, and
//! charts measured mean/p99 delay against the envelope. Expected shape:
//! at `s = 2` the blind maximal matching sits inside the envelope wherever
//! the envelope is a theorem (`λc < 1`), and speedup 2 strictly improves
//! on speedup 1; critical-first tracks OQ tighter still — the price of
//! deadline bookkeeping is what the envelope saves you from paying.

use crate::e22_qps_crossbar::{conflict_load, envelope, fmt_p99, N};
use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{Table, TailQuantiles};
use pps_core::prelude::*;
use pps_crossbar::{run_cioq_policy, CioqPolicy};
use pps_reference::oq::run_oq;
use pps_traffic::gen::BernoulliGen;

/// Slots per load point.
pub const HORIZON: u64 = 10_000;

fn tails(log: &RunLog) -> TailQuantiles {
    let delays: Vec<i64> = log
        .records()
        .iter()
        .filter_map(|r| r.delay().map(|d| d as i64))
        .collect();
    TailQuantiles::from(&delays).expect("non-empty run")
}

/// One load point's measurements.
#[derive(Clone, Debug)]
pub struct LoadPoint {
    /// Offered per-input load.
    pub load: f64,
    /// Ideal OQ mean delay.
    pub oq_mean: f64,
    /// Maximal round-robin at speedup 1.
    pub mm_s1: TailQuantiles,
    /// Maximal round-robin at speedup 2.
    pub mm_s2: TailQuantiles,
    /// Critical-cells-first at speedup 2.
    pub cf_s2: TailQuantiles,
    /// Undelivered cells across all runs.
    pub undelivered: usize,
}

/// Measure one load level.
pub fn measure(load: f64, seed: u64) -> LoadPoint {
    let trace = BernoulliGen::uniform(load, seed).trace(N, HORIZON);
    let mode = pps_core::stepping::process_default();
    let oq = run_oq(&trace, N);
    let mm1 = run_cioq_policy(&trace, N, 1, CioqPolicy::MaximalRr, mode);
    let mm2 = run_cioq_policy(&trace, N, 2, CioqPolicy::MaximalRr, mode);
    let cf2 = run_cioq_policy(&trace, N, 2, CioqPolicy::CriticalFirst, mode);
    LoadPoint {
        load,
        oq_mean: oq.mean_delay().unwrap_or(0.0),
        mm_s1: tails(&mm1),
        mm_s2: tails(&mm2),
        cf_s2: tails(&cf2),
        undelivered: mm1.undelivered() + mm2.undelivered() + cf2.undelivered(),
    }
}

/// Run the sweep.
pub fn run() -> ExperimentOutput {
    let loads = [0.2, 0.35, 0.5, 0.8];
    let mut table = Table::new(
        format!(
            "Maximal-matching CIOQ vs critical-first and ideal OQ, uniform Bernoulli \
             (N={N}, {HORIZON} slots); envelope = Cogill–Lall λc/(1−λc), blank where λc ≥ 1"
        ),
        &[
            "load",
            "λc",
            "envelope",
            "OQ mean",
            "mm s=1 mean/p99",
            "mm s=2 mean/p99",
            "cf s=2 mean/p99",
        ],
    );
    let plan = SweepPlan::new("e24", loads.to_vec());
    let points = plan.run(|pt| measure(*pt.params, 2400 + pt.index as u64));
    let mut pass = true;
    for p in &points {
        pass &= p.undelivered == 0;
        // Speedup 2 never loses to speedup 1 (same matching, twice the
        // phases), and the deadline-aware policy never loses to the blind
        // one at the same speedup.
        pass &= p.mm_s2.mean <= p.mm_s1.mean + 1e-9;
        pass &= p.cf_s2.mean <= p.mm_s2.mean + 0.05;
        if let Some(env) = envelope(p.load) {
            // The theorem under test: blind maximal matching at speedup 2
            // stays inside the conflict envelope of the ideal OQ delay.
            pass &= p.mm_s2.mean - p.oq_mean <= env;
        }
        let fmt = |q: &TailQuantiles| format!("{:.2}/{}", q.mean, fmt_p99(q));
        table.row_display(&[
            format!("{:.2}", p.load),
            format!("{:.2}", conflict_load(p.load)),
            envelope(p.load).map_or("—".into(), |e| format!("{e:.2}")),
            format!("{:.2}", p.oq_mean),
            fmt(&p.mm_s1),
            fmt(&p.mm_s2),
            fmt(&p.cf_s2),
        ]);
    }
    ExperimentOutput {
        id: "e24",
        title: "Maximal matching with speedup — the Cogill–Lall envelope, measured".into(),
        tables: vec![table],
        notes: vec![
            "any maximal matching at speedup 2 inherits the λc/(1−λc) waiting envelope; \
             the measured blind round-robin matching sits far inside it wherever λc < 1"
                .into(),
            "critical-first at the same speedup tracks OQ tighter — deadline bookkeeping \
             buys the constant, the envelope is free"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }

    #[test]
    fn speedup_two_is_inside_the_envelope() {
        let p = measure(0.35, 11);
        let env = envelope(0.35).unwrap();
        assert_eq!(p.undelivered, 0);
        assert!(
            p.mm_s2.mean - p.oq_mean <= env,
            "extra wait {} vs envelope {env}",
            p.mm_s2.mean - p.oq_mean
        );
        assert!(p.mm_s2.mean <= p.mm_s1.mean + 1e-9);
    }
}
