//! E19 — average and tail relative delay under stochastic heavy traffic.
//!
//! Every experiment before this one drove the switch with a scripted
//! adversary: the right tool for *lower* bounds, silent about the typical
//! case. Here three stochastic generator families from `pps-workload` —
//! Zipf-skewed flows, Markov-modulated (MMPP) bursts, and full-rate
//! on-off trains — run against one representative of each information
//! class of the paper's taxonomy:
//!
//! * fully distributed — round robin (Theorem 6 regime),
//! * `u`-RT distributed — stale least-loaded with `u = 2` (Theorem 10),
//! * centralized — CPA over global FCFS (the zero-relative-delay regime).
//!
//! For each `(family, class)` pair we report the mean, p99, p999 and max
//! relative delay against the shadow OQ switch. The sanity ceiling is the
//! chaos harness's envelope bound `r'·(N + K + B) + 64` with `B` the
//! *measured* burstiness of the materialized trace — sound for any
//! traffic — and the headline observation is the gulf between it and the
//! measured p999: worst-case inherent delay needs adversarial
//! coordination that stochastic load, even heavy and bursty, essentially
//! never produces (the paper's §6 closing point, here quantified in the
//! tail rather than the max).

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_bufferless, relative_delays, Table, TailQuantiles};
use pps_core::prelude::*;
use pps_switch::demux::{CpaDemux, RoundRobinDemux, StaleLeastLoadedDemux};
use pps_traffic::min_burstiness;
use pps_workload::WorkloadSpec;

/// Switch geometry shared by every point: `S = K/r' = 2`, the paper's
/// canonical speedup-2 operating point.
pub const N: usize = 16;
/// Center-stage planes.
pub const K: usize = 8;
/// Internal slowdown `R/r`.
pub const R_PRIME: usize = 4;

/// The three generator families under study (name, `--workload` spec).
pub fn families() -> Vec<(&'static str, String)> {
    vec![
        (
            "zipf",
            format!("zipf:n={N},load=0.85,s=1.1,flows=1048576,seed=7,horizon=20000"),
        ),
        (
            "mmpp",
            format!("mmpp:n={N},calm=0.1,burst=0.95,calm_exit=0.02,burst_exit=0.08,seed=7,horizon=20000"),
        ),
        (
            "onoff",
            format!("onoff:n={N},on=0.03,off=0.15,seed=7,horizon=20000"),
        ),
    ]
}

/// A labeled comparison runner: builds its demux and runs `trace`.
type ClassRunner = (
    &'static str,
    fn(&Trace) -> Result<pps_analysis::Comparison, ModelError>,
);

/// Information classes: one representative demux per class.
fn classes() -> Vec<ClassRunner> {
    vec![
        ("fully-dist (rr)", |t| {
            compare_bufferless(
                PpsConfig::bufferless(N, K, R_PRIME),
                RoundRobinDemux::new(N, K),
                t,
            )
        }),
        ("u-RT (stale:2)", |t| {
            compare_bufferless(
                PpsConfig::bufferless(N, K, R_PRIME),
                StaleLeastLoadedDemux::new(N, K, 2),
                t,
            )
        }),
        ("centralized (cpa)", |t| {
            compare_bufferless(
                PpsConfig::bufferless(N, K, R_PRIME).with_discipline(OutputDiscipline::GlobalFcfs),
                CpaDemux::new(N, K, R_PRIME),
                t,
            )
        }),
    ]
}

/// One measured point: tail stats plus bookkeeping for the pass checks.
#[derive(Clone, Debug)]
pub struct TailPoint {
    /// Generator family label.
    pub family: &'static str,
    /// Information-class label.
    pub class: &'static str,
    /// Cells in the materialized trace.
    pub cells: usize,
    /// Measured minimal burstiness of the trace.
    pub burstiness: u64,
    /// Relative-delay tail statistics.
    pub tails: TailQuantiles,
    /// Cells the PPS failed to deliver (must be 0).
    pub undelivered: usize,
}

impl TailPoint {
    /// The chaos-harness envelope ceiling for this point's traffic.
    pub fn envelope(&self) -> i64 {
        ((R_PRIME as u64) * (N as u64 + K as u64 + self.burstiness) + 64) as i64
    }
}

/// Measure every `(family, class)` combination.
pub fn measure() -> Vec<TailPoint> {
    let fams = families();
    let cls = classes();
    let combos: Vec<(usize, usize)> = (0..fams.len())
        .flat_map(|f| (0..cls.len()).map(move |c| (f, c)))
        .collect();
    let plan = SweepPlan::new("e19", combos);
    plan.run(|pt| {
        let (f, c) = *pt.params;
        let spec = WorkloadSpec::parse(&fams[f].1).expect("family spec");
        let trace = spec.trace().expect("materialize");
        let b = min_burstiness(&trace, N).overall();
        let cmp = (cls[c].1)(&trace).expect("run");
        let rd = cmp.relative_delay();
        let tails =
            TailQuantiles::from(&relative_delays(&cmp.pps.log, &cmp.oq)).expect("nonempty trace");
        TailPoint {
            family: fams[f].0,
            class: cls[c].0,
            cells: trace.len(),
            burstiness: b,
            tails,
            undelivered: rd.pps_undelivered,
        }
    })
}

/// Run the study.
pub fn run() -> ExperimentOutput {
    let mut table = Table::new(
        format!(
            "Relative-delay tails under stochastic load (N={N}, K={K}, r'={R_PRIME}, S=2; \
             mean/p99/p999/max vs shadow OQ)"
        ),
        &[
            "family", "class", "cells", "B_min", "mean", "p99", "p999", "max", "envelope",
        ],
    );
    let mut pass = true;
    let points = measure();
    for p in &points {
        // Soundness: everything delivered, tails ordered, and the whole
        // distribution under the traffic-measured envelope ceiling.
        pass &= p.undelivered == 0;
        pass &= p.tails.p99 <= p.tails.p999 && p.tails.p999 <= p.tails.max;
        pass &= p.tails.max <= p.envelope();
        // The stochastic tail sits far below the adversarial worst case:
        // the deterministic fully-distributed bound at this geometry is
        // (r'−1)(N−1) = 45; even p999 under heavy stochastic load must
        // not reach it for the distributed classes (the paper's point
        // that the worst case needs coordination).
        if p.class.starts_with("fully") {
            pass &= p.tails.p999 < ((R_PRIME - 1) * (N - 1)) as i64;
        }
        table.row_display(&[
            p.family.to_string(),
            p.class.to_string(),
            p.cells.to_string(),
            p.burstiness.to_string(),
            format!("{:.2}", p.tails.mean),
            p.tails.p99.to_string(),
            p.tails.p999.to_string(),
            p.tails.max.to_string(),
            p.envelope().to_string(),
        ]);
    }
    ExperimentOutput {
        id: "e19",
        title: "Stochastic heavy traffic — mean and tail relative delay across information classes"
            .into(),
        tables: vec![table],
        notes: vec![
            "three generator families (Zipf flows, correlated MMPP bursts, full-rate \
             on-off trains), one representative per information class; every cell \
             delivered, every distribution under the measured-burstiness envelope"
                .into(),
            "the adversarial ceiling (r'-1)(N-1) = 45 for fully-distributed demuxes is \
             never approached by the stochastic p999 — the worst case needs \
             coordinated, demux-aware traffic (paper §6)"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }

    #[test]
    fn all_nine_combinations_are_measured() {
        let pts = measure();
        assert_eq!(pts.len(), 9);
        let zipf_fd = pts
            .iter()
            .find(|p| p.family == "zipf" && p.class.starts_with("fully"))
            .unwrap();
        assert!(
            zipf_fd.cells > 100_000,
            "load 0.85 over 20k slots x 16 inputs"
        );
    }

    #[test]
    fn centralized_class_beats_fully_distributed_in_the_mean() {
        // CPA tracks the shadow OQ's global FCFS order; its mean relative
        // delay under stochastic load must not exceed round robin's.
        let pts = measure();
        for fam in ["zipf", "mmpp", "onoff"] {
            let fd = pts
                .iter()
                .find(|p| p.family == fam && p.class.starts_with("fully"))
                .unwrap();
            let cent = pts
                .iter()
                .find(|p| p.family == fam && p.class.starts_with("centralized"))
                .unwrap();
            assert!(
                cent.tails.mean <= fd.tails.mean + 0.5,
                "{fam}: centralized mean {} vs fully-distributed {}",
                cent.tails.mean,
                fd.tails.mean
            );
        }
    }
}
