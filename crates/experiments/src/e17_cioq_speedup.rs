//! E17 — the related-work anchor (§1.3): Chuang, Goel, McKeown &
//! Prabhakar's result that a combined input-output-queued (CIOQ) crossbar
//! needs speedup ≈ 2 (`2 − 1/N`) to mimic an output-queued switch.
//!
//! We sweep the CIOQ fabric speedup under fan-in-heavy admissible traffic
//! and record the max relative delay versus the FCFS-OQ reference. The
//! paper leans on this landscape: *every* architecture needs either a
//! rate-R centralized element (CIOQ arbiter, CPA) or pays delay — the PPS
//! merely relocates the trade-off into the demultiplexors.
//!
//! Expected shape: visible misses at `s = 1`, at most a one-slot slip at
//! `s = 2` (our scheduler is greedy EDF, not the exact
//! critical-cells-first of the theorem), and clean mimicking from `s = 3`.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{metrics, Table};
use pps_core::prelude::*;
use pps_crossbar::run_cioq;
use pps_reference::oq::run_oq;
use pps_traffic::gen::{BernoulliGen, TrafficPattern};

fn fanin_trace(n: usize, slots: Slot, seed: u64) -> Trace {
    BernoulliGen {
        load: 0.95,
        pattern: TrafficPattern::Hotspot {
            target: 0,
            hot: 0.35,
        },
        seed,
    }
    .trace(n, slots)
}

/// One speedup point: `(max relative delay, mean relative delay)`.
pub fn point(n: usize, speedup: usize, trace: &Trace) -> (i64, f64) {
    let oq = run_oq(trace, n);
    let cioq = run_cioq(trace, n, speedup);
    assert_eq!(cioq.undelivered(), 0, "CIOQ must drain");
    let rd = metrics::relative_delay(&cioq, &oq);
    (rd.max, rd.mean)
}

/// Run the default sweep.
pub fn run() -> ExperimentOutput {
    let n = 16;
    let trace = fanin_trace(n, 3_000, 61);
    let mut table = Table::new(
        format!("CIOQ speedup sweep at N={n}, hotspot fan-in load 0.95 (threshold ~2)"),
        &["speedup s", "max rel delay", "mean rel delay"],
    );
    let mut pass = true;
    let plan = SweepPlan::new("e17", vec![1usize, 2, 3, 4]);
    let results = plan.run(|pt| point(n, *pt.params, &trace));
    for (&s, &(max_rd, mean_rd)) in plan.points().iter().zip(results.iter()) {
        table.row_display(&[s.to_string(), max_rd.to_string(), format!("{mean_rd:.3}")]);
    }
    // Shape: s = 1 misses clearly; s >= 2 within a one-slot greedy slip;
    // monotone non-increasing.
    pass &= results[0].0 > 1;
    pass &= results.iter().skip(1).all(|&(d, _)| d <= 1);
    pass &= results.windows(2).all(|w| w[1].0 <= w[0].0);
    ExperimentOutput {
        id: "e17",
        title: "Related work — CIOQ crossbar speedup threshold for OQ mimicking (~2)".into(),
        tables: vec![table],
        notes: vec![
            "greedy earliest-deadline matching, not the exact critical-cells-first \
             schedule of Chuang et al., hence the <= 1-slot slip allowance at s = 2"
                .into(),
            "same economics as the PPS: exactness costs a centralized rate-R element \
             (here the arbiter at speedup 2, there CPA at S >= 2)"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_shape_at_small_n() {
        let trace = fanin_trace(8, 1_500, 7);
        let (d1, _) = point(8, 1, &trace);
        let (d2, _) = point(8, 2, &trace);
        let (d4, _) = point(8, 4, &trace);
        assert!(d1 > d2, "speedup must help: {d1} !> {d2}");
        assert!(d2 <= 1, "s=2 should mimic within a slot: {d2}");
        assert!(d4 <= d2);
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
