//! E4 — Theorem 10: a bufferless PPS with a `u`-RT demultiplexing
//! algorithm has relative queuing delay and jitter at least
//! `(1 − u'·r/R)·u'·N/S` under leaky-bucket traffic with burstiness
//! `u'²·N/K − u'`, where `u' = min(u, r'/2)`.
//!
//! Victim: the stale-least-loaded demultiplexor. The burst hides inside
//! the `u`-slot information blind spot, so the symmetric inputs pick
//! identical plane sequences and concentrate `m = u'·N/K` cells per plane.
//! Sweep: the information delay `u`.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_bufferless, Table};
use pps_core::prelude::*;
use pps_switch::demux::StaleLeastLoadedDemux;
use pps_traffic::adversary::urt_burst_attack;
use pps_traffic::min_burstiness;

/// One sweep point; returns `(u', m, paper bound, exact bound, measured
/// delay, measured jitter, burstiness, premise burstiness)`.
pub fn point(
    n: usize,
    k: usize,
    r_prime: usize,
    u: Slot,
) -> (Slot, usize, u64, u64, i64, i64, u64, u64) {
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    cfg.validate().expect("valid sweep point");
    let atk = urt_burst_attack(&cfg, u);
    let b = min_burstiness(&atk.trace, n).overall();
    let demux = StaleLeastLoadedDemux::new(n, k, u);
    let cmp = compare_bufferless(cfg, demux, &atk.trace).expect("run");
    let rd = cmp.relative_delay();
    assert_eq!(rd.pps_undelivered, 0);
    (
        atk.u_eff,
        atk.m,
        atk.predicted_bound,
        atk.model_exact_bound,
        rd.max,
        cmp.relative_jitter(),
        b,
        atk.predicted_burstiness,
    )
}

/// Run the default sweep.
pub fn run() -> ExperimentOutput {
    let (n, k, r_prime) = (32, 8, 8); // S = 1
    let mut table = Table::new(
        format!("Theorem 10 sweep: N={n}, K={k}, r'={r_prime}, S=1 (bound = (1-u'r/R)*u'N/S)"),
        &[
            "u",
            "u'",
            "m",
            "bound (paper)",
            "bound (exact)",
            "measured delay",
            "measured jitter",
            "traffic B",
            "premise B",
        ],
    );
    let mut pass = true;
    let plan = SweepPlan::new("e4", vec![1u64, 2, 3, 4, 8]);
    let results = plan.run(|pt| point(n, k, r_prime, *pt.params));
    for (&u, (u_eff, m, paper, exact, delay, jitter, b, premise)) in
        plan.points().iter().zip(results)
    {
        pass &= delay as u64 >= exact && jitter as u64 >= exact && b <= premise;
        table.row_display(&[
            u.to_string(),
            u_eff.to_string(),
            m.to_string(),
            paper.to_string(),
            exact.to_string(),
            delay.to_string(),
            jitter.to_string(),
            b.to_string(),
            premise.to_string(),
        ]);
    }
    ExperimentOutput {
        id: "e4",
        title: "Theorem 10 — u-RT lower bound (1-u'r/R)*u'N/S with burstiness u'^2 N/K - u'".into(),
        tables: vec![table],
        notes: vec![
            "the burst is invisible to the stale global view, so all m inputs walk the \
             same plane sequence — Definition 9's blind spot made concrete"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blind_spot_forces_concentration() {
        let (_u_eff, m, _paper, exact, delay, jitter, b, premise) = point(32, 8, 8, 4);
        assert_eq!(m, 16);
        assert!(b <= premise, "traffic burstier than the theorem allows");
        assert!(delay as u64 >= exact, "delay {delay} < exact {exact}");
        assert!(jitter as u64 >= exact, "jitter {jitter} < exact {exact}");
    }

    #[test]
    fn larger_u_hurts_until_the_cap() {
        let d1 = point(32, 8, 8, 1).4;
        let d4 = point(32, 8, 8, 4).4;
        let d8 = point(32, 8, 8, 8).4; // capped at u' = 4
        assert!(d4 > d1, "more staleness, more concentration: {d1} !< {d4}");
        assert_eq!(d4, d8, "u' caps at r'/2");
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
