//! E18 — the jitter-vs-buffer trade-off (paper §6): *"Jitter regulators …
//! use an internal buffer to shape the traffic; Mansour and Patt-Shamir
//! present competitive analysis of jitter regulators with bounded internal
//! buffer size. It might be possible to translate our lower bounds on the
//! relative queuing delay to bounds on the size of this internal
//! buffer."*
//!
//! The translation, measured: take the Corollary 7 attack run (relative
//! delay and jitter `(R/r − 1)(N − 1)`), put a causal bounded-buffer
//! regulator behind the hot output, and sweep the buffer cap. The achieved
//! jitter falls from the unregulated worst case to zero exactly when the
//! buffer reaches the offline requirement — which E15 showed is `Θ(N)`.
//! A jitter target below the switch's relative delay is thus unreachable
//! with `o(N)` regulator memory: the delay lower bound *is* a buffer lower
//! bound.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_bufferless, Table};
use pps_core::prelude::*;
use pps_reference::regulator::{min_feasible_delay, regulate, regulate_online};
use pps_switch::demux::RoundRobinDemux;
use pps_traffic::adversary::concentration_attack;

/// The attacked run to regulate: Corollary 7 on round robin.
fn attacked_log(n: usize, k: usize, r_prime: usize) -> RunLog {
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    let demux = RoundRobinDemux::new(n, k);
    let atk = concentration_attack(&demux, &cfg, &(0..n as u32).collect::<Vec<_>>(), 4 * k);
    let cmp = compare_bufferless(cfg, demux, &atk.trace).expect("run");
    cmp.pps.log
}

/// Run the default sweep.
pub fn run() -> ExperimentOutput {
    let (n, k, r_prime) = (64, 8, 4);
    let log = attacked_log(n, k, r_prime);
    let target = min_feasible_delay(&log);
    let offline = regulate(&log, target);
    let unregulated = {
        let j = pps_analysis::metrics::flow_jitters(&log);
        j.values().copied().max().unwrap_or(0)
    };
    let mut table = Table::new(
        format!(
            "Jitter vs regulator buffer on the Corollary 7 run (N={n}, target D={target}, \
             offline buffer requirement {})",
            offline.buffer_required
        ),
        &["buffer cap", "achieved jitter", "forced releases"],
    );
    let mut pass = true;
    let plan = SweepPlan::new("e18", vec![1usize, 2, 4, 8, 16, 32, 48, 64]);
    let reports = plan.run(|pt| regulate_online(&log, target, *pt.params));
    // The monotonicity check compares adjacent caps, post-merge.
    let mut prev = u64::MAX;
    let mut flattened_at = None;
    for (&cap, rep) in plan.points().iter().zip(reports.iter()) {
        pass &= rep.achieved_jitter <= prev;
        prev = rep.achieved_jitter;
        if rep.achieved_jitter == 0 && flattened_at.is_none() {
            flattened_at = Some(cap);
        }
        table.row_display(&[
            cap.to_string(),
            rep.achieved_jitter.to_string(),
            rep.forced_releases.to_string(),
        ]);
    }
    // The curve must start near the unregulated jitter and flatten only
    // once the cap reaches the offline (Theta(N)) requirement.
    pass &= flattened_at.is_some_and(|cap| cap >= offline.buffer_required.min(48));
    pass &= unregulated > 0;
    ExperimentOutput {
        id: "e18",
        title: "§6 translation — the delay lower bound as a jitter-regulator buffer bound".into(),
        tables: vec![table],
        notes: vec![
            format!(
                "unregulated per-flow jitter of the run: {unregulated} slots; offline \
                 regulator needs {} cells of buffer to flatten it",
                offline.buffer_required
            ),
            "zero jitter is unreachable below the offline buffer requirement, which \
             grows linearly in N (E15): the Omega(N) delay bound priced in regulator \
             memory"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tradeoff_curve_shape() {
        let log = attacked_log(16, 8, 4);
        let target = min_feasible_delay(&log);
        let tiny = regulate_online(&log, target, 1).achieved_jitter;
        let offline = regulate(&log, target);
        let roomy = regulate_online(&log, target, offline.buffer_required + 1).achieved_jitter;
        assert!(
            tiny > 0,
            "a one-cell regulator cannot flatten Theta(N) jitter"
        );
        assert_eq!(roomy, 0, "the offline requirement suffices online too");
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
