//! E10 — the centralized upper bound the paper contrasts against (Iyer,
//! Awadallah & McKeown \[14\]): a bufferless PPS running CPA with speedup
//! `S ≥ 2` mimics a FCFS output-queued switch with **zero relative queuing
//! delay**.
//!
//! This is the other side of every lower bound: full immediate information
//! dissolves the Ω(N) delays entirely — which is exactly why the paper's
//! taxonomy (centralized / u-RT / fully-distributed) is the story.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::Table;
use pps_core::prelude::*;
use pps_switch::demux::{CpaDemux, RoundRobinDemux};
use pps_traffic::adversary::{concentration_attack, urt_burst_attack};
use pps_traffic::gen::{BernoulliGen, OnOffGen, TrafficPattern};

fn workloads(n: usize, k: usize, r_prime: usize) -> Vec<(&'static str, Trace)> {
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    vec![
        (
            "bernoulli-0.95",
            BernoulliGen::uniform(0.95, 21).trace(n, 3_000),
        ),
        (
            "onoff-bursty",
            OnOffGen::uniform(16.0, 0.8, 22).trace(n, 3_000),
        ),
        (
            "hotspot-0.6",
            BernoulliGen {
                load: 0.5,
                pattern: TrafficPattern::Hotspot {
                    target: 3,
                    hot: 0.6,
                },
                seed: 23,
            }
            .trace(n, 2_000),
        ),
        (
            "rr-attack-trace",
            concentration_attack(
                &RoundRobinDemux::new(n, k),
                &cfg,
                &(0..n as u32).collect::<Vec<_>>(),
                4 * k,
            )
            .trace,
        ),
        ("urt-attack-trace", urt_burst_attack(&cfg, 2).trace),
    ]
}

/// One workload: `(max relative delay, undelivered, deadline misses)`.
pub fn point(n: usize, k: usize, r_prime: usize, trace: &Trace) -> (i64, usize, u64) {
    let cfg = PpsConfig::bufferless(n, k, r_prime).with_discipline(OutputDiscipline::GlobalFcfs);
    cfg.validate().expect("valid point");
    let pps =
        pps_switch::engine::BufferlessPps::new(cfg, CpaDemux::new(n, k, r_prime)).expect("engine");
    // Run manually to read the demux statistic afterwards.
    let mut pps = pps;
    let run = pps.run(trace).expect("model-legal run");
    let misses = pps.demux().deadline_misses();
    let oq = pps_reference::oq::run_oq(trace, n);
    let cmp = pps_analysis::lockstep::Comparison { pps: run, oq, n };
    let rd = cmp.relative_delay();
    (rd.max, rd.pps_undelivered, misses)
}

/// Run the default battery.
pub fn run() -> ExperimentOutput {
    let (n, k, r_prime) = (16, 8, 4); // S = 2
    let mut table = Table::new(
        format!("CPA at N={n}, K={k}, r'={r_prime}, S=2 (claim: zero relative delay)"),
        &[
            "workload",
            "max rel delay",
            "undelivered",
            "deadline misses",
        ],
    );
    let mut pass = true;
    let loads = workloads(n, k, r_prime);
    let plan = SweepPlan::new("e10", (0..loads.len()).collect());
    let results = plan.run(|pt| point(n, k, r_prime, &loads[*pt.params].1));
    for (&w, (max_rd, undelivered, misses)) in plan.points().iter().zip(results) {
        pass &= max_rd <= 0 && undelivered == 0 && misses == 0;
        table.row_display(&[
            loads[w].0.to_string(),
            max_rd.to_string(),
            undelivered.to_string(),
            misses.to_string(),
        ]);
    }
    ExperimentOutput {
        id: "e10",
        title: "CPA (Iyer et al. [14]) — centralized, S >= 2: zero relative queuing delay".into(),
        tables: vec![table],
        notes: vec![
            "the attack traffics that force Omega(N) on distributed algorithms leave \
             CPA untouched: with immediate global knowledge no concentration can form"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_relative_delay_under_attack() {
        let cfg = PpsConfig::bufferless(8, 8, 4);
        let attack = concentration_attack(
            &RoundRobinDemux::new(8, 8),
            &cfg,
            &(0..8).collect::<Vec<_>>(),
            32,
        )
        .trace;
        let (max_rd, undelivered, misses) = point(8, 8, 4, &attack);
        assert_eq!(undelivered, 0);
        assert_eq!(misses, 0, "S = 2 must never miss a deadline");
        assert!(max_rd <= 0, "CPA must mimic the OQ switch: {max_rd}");
    }

    #[test]
    fn zero_relative_delay_under_saturation() {
        let t = BernoulliGen::uniform(1.0, 5).trace(8, 500);
        let (max_rd, undelivered, misses) = point(8, 8, 4, &t);
        assert_eq!((undelivered, misses), (0, 0));
        assert!(max_rd <= 0, "{max_rd}");
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
