//! E23 — SW-QPS: sliding-window batching without the batching delay.
//!
//! Meng, Gong & Xu (arXiv:2010.08620) observe that batch crossbar
//! schedulers buy matching quality by amortizing work over `T` slots but
//! pay an `Ω(T)` batching delay, and propose the *sliding-window* repair:
//! keep a window of `T` partial matchings in flight, emit (and execute)
//! the head matching every slot, and admit each new cell into the
//! earliest window slot that still has its input and output free. Every
//! slot ships a matching that has been refined for `T` slots — batch
//! quality, zero batching delay.
//!
//! This experiment sweeps the window size `T ∈ {1, 2, 4, 8}` at two
//! uniform Bernoulli loads, with QPS-1 (the window-less ancestor, = SW-QPS
//! at `T = 1` up to proposal order) and the ideal OQ shadow as references.
//! The headline claim to reproduce: delay *falls* as the window grows —
//! the opposite of classic batching — and the whole family stays inside
//! the maximal-matching conflict envelope where that is a theorem
//! (`λc = 2ρ(N−1)/N < 1`, arXiv cs/0605030; see E22).

use crate::e22_qps_crossbar::{conflict_load, envelope, fmt_p99, N};
use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{Table, TailQuantiles};
use pps_core::prelude::*;
use pps_crossbar::{run_crossbar_with, QpsRScheduler, SwQpsScheduler};
use pps_reference::oq::run_oq;
use pps_traffic::gen::BernoulliGen;

/// Slots per load point.
pub const HORIZON: u64 = 10_000;
/// Window sizes under test.
pub const WINDOWS: [usize; 4] = [1, 2, 4, 8];

fn tails(log: &RunLog) -> TailQuantiles {
    let delays: Vec<i64> = log
        .records()
        .iter()
        .filter_map(|r| r.delay().map(|d| d as i64))
        .collect();
    TailQuantiles::from(&delays).expect("non-empty run")
}

/// One load point: QPS-1 reference, SW-QPS per window, OQ mean.
#[derive(Clone, Debug)]
pub struct LoadPoint {
    /// Offered per-input load.
    pub load: f64,
    /// Ideal OQ mean delay.
    pub oq_mean: f64,
    /// QPS-1 delay tails (the ancestor).
    pub qps1: TailQuantiles,
    /// SW-QPS delay tails, one per entry of [`WINDOWS`].
    pub sw: Vec<TailQuantiles>,
    /// Undelivered cells across all runs.
    pub undelivered: usize,
}

/// Measure one load level.
pub fn measure(load: f64, seed: u64) -> LoadPoint {
    let trace = BernoulliGen::uniform(load, seed).trace(N, HORIZON);
    let mode = pps_core::stepping::process_default();
    let oq = run_oq(&trace, N);
    let (qps_log, _) = run_crossbar_with(&trace, QpsRScheduler::new(N, 1, seed ^ 0xE23), mode);
    let mut undelivered = qps_log.undelivered();
    let sw: Vec<TailQuantiles> = WINDOWS
        .iter()
        .map(|&w| {
            let (log, _) =
                run_crossbar_with(&trace, SwQpsScheduler::new(N, w, seed ^ w as u64), mode);
            undelivered += log.undelivered();
            tails(&log)
        })
        .collect();
    LoadPoint {
        load,
        oq_mean: oq.mean_delay().unwrap_or(0.0),
        qps1: tails(&qps_log),
        sw,
        undelivered,
    }
}

/// Run the sweep.
pub fn run() -> ExperimentOutput {
    let loads = [0.5, 0.75];
    let mut table = Table::new(
        format!(
            "SW-QPS window sweep vs QPS-1 and ideal OQ, uniform Bernoulli (N={N}, \
             {HORIZON} slots); envelope = Cogill–Lall λc/(1−λc), blank where λc ≥ 1"
        ),
        &[
            "load",
            "envelope",
            "OQ mean",
            "qps-1 mean/p99",
            "T=1 mean/p99",
            "T=2 mean/p99",
            "T=4 mean/p99",
            "T=8 mean/p99",
        ],
    );
    let plan = SweepPlan::new("e23", loads.to_vec());
    let points = plan.run(|pt| measure(*pt.params, 2300 + pt.index as u64));
    let mut pass = true;
    for p in &points {
        pass &= p.undelivered == 0;
        let widest = p.sw.last().expect("windows");
        // The sliding-window claim: the widest window beats (or matches)
        // both the narrowest and the window-less ancestor on mean delay —
        // batch quality with zero batching delay. A 5% slack absorbs
        // sampling noise at low load, where all means are fractions of a
        // slot.
        pass &= widest.mean <= p.sw[0].mean * 1.05 + 0.05;
        pass &= widest.mean <= p.qps1.mean * 1.05 + 0.05;
        if let Some(env) = envelope(p.load) {
            for q in &p.sw {
                pass &= q.mean - p.oq_mean <= env;
            }
        }
        let fmt = |q: &TailQuantiles| format!("{:.2}/{}", q.mean, fmt_p99(q));
        let mut row = vec![
            format!("{:.2}", p.load),
            envelope(p.load).map_or("—".into(), |e| format!("{e:.2}")),
            format!("{:.2}", p.oq_mean),
            fmt(&p.qps1),
        ];
        row.extend(p.sw.iter().map(fmt));
        table.row_display(&row);
    }
    ExperimentOutput {
        id: "e23",
        title: "SW-QPS — sliding-window matching: batch quality, zero batching delay".into(),
        tables: vec![table],
        notes: vec![
            format!(
                "classic T-slot batching adds Ω(T) delay; the sliding window inverts the \
                 sign — mean delay falls (or holds) as T grows from {} to {}",
                WINDOWS[0],
                WINDOWS[WINDOWS.len() - 1]
            ),
            format!(
                "λc at the loads charted: {:.2} and {:.2} — the envelope row is a theorem \
                 only at the first",
                conflict_load(0.5),
                conflict_load(0.75)
            ),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }

    #[test]
    fn wide_window_never_loses_to_narrow() {
        let p = measure(0.75, 4);
        assert_eq!(p.undelivered, 0);
        let widest = p.sw.last().unwrap();
        assert!(
            widest.mean <= p.sw[0].mean * 1.05 + 0.05,
            "T=8 mean {} vs T=1 mean {}",
            widest.mean,
            p.sw[0].mean
        );
    }
}
