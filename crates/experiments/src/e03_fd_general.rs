//! E3 — Theorem 8: *every* fully-distributed demultiplexing algorithm on a
//! bufferless PPS has relative queuing delay and jitter at least
//! `(R/r − 1)·N/S`, because the input constraint forces each demultiplexor
//! to use at least `r'` planes, so some plane serves `≥ r'·N/K = N/S`
//! inputs.
//!
//! Victim: the *minimal* static partition (each input restricted to
//! exactly `r'` planes) — the algorithm that concentrates least among
//! legal fully-distributed ones. Sweep: the speedup `S` via `K`.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_bufferless, Table};
use pps_core::prelude::*;
use pps_switch::demux::StaticPartitionDemux;
use pps_traffic::adversary::concentration_attack;
use pps_traffic::min_burstiness;

/// One sweep point; returns `(S, N/S, d aligned, paper bound, exact bound,
/// measured delay, measured jitter, burstiness)`.
pub fn point(n: usize, k: usize, r_prime: usize) -> (f64, u64, usize, u64, u64, i64, i64, u64) {
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    cfg.validate().expect("valid sweep point");
    let demux = StaticPartitionDemux::minimal(n, k, r_prime);
    let all: Vec<u32> = (0..n as u32).collect();
    let atk = concentration_attack(&demux, &cfg, &all, 4 * k);
    let b = min_burstiness(&atk.trace, n).overall();
    let n_over_s = cfg.n_over_s();
    // The theorem's statement: (R/r - 1) * N/S.
    let theorem_bound = (r_prime as u64 - 1) * n_over_s;
    let cmp = compare_bufferless(cfg, demux, &atk.trace).expect("run");
    let rd = cmp.relative_delay();
    assert_eq!(rd.pps_undelivered, 0);
    (
        cfg.speedup().to_f64(),
        n_over_s,
        atk.d,
        theorem_bound,
        atk.model_exact_bound,
        rd.max,
        cmp.relative_jitter(),
        b,
    )
}

/// Run the default sweep.
pub fn run() -> ExperimentOutput {
    let (n, r_prime) = (64, 4);
    let mut table = Table::new(
        format!("Theorem 8 sweep: N={n}, r'={r_prime} (bound = (R/r-1)*N/S)"),
        &[
            "K",
            "S",
            "N/S",
            "d aligned",
            "bound (paper)",
            "bound (exact)",
            "measured delay",
            "measured jitter",
            "traffic B",
        ],
    );
    let mut pass = true;
    let plan = SweepPlan::new("e3", vec![4usize, 8, 16, 32, 64]);
    let results = plan.run(|pt| point(n, *pt.params, r_prime));
    for (&k, (s, n_over_s, d, paper, exact, delay, jitter, b)) in plan.points().iter().zip(results)
    {
        // The minimal partition concentrates at least N/S inputs on some
        // plane; the adversary should find (at least) that many.
        pass &= d as u64 >= n_over_s && delay as u64 >= exact && jitter as u64 >= exact && b == 0;
        table.row_display(&[
            k.to_string(),
            format!("{s}"),
            n_over_s.to_string(),
            d.to_string(),
            paper.to_string(),
            exact.to_string(),
            delay.to_string(),
            jitter.to_string(),
            b.to_string(),
        ]);
    }
    ExperimentOutput {
        id: "e3",
        title: "Theorem 8 — every fully-distributed algorithm: lower bound (R/r-1)*N/S".into(),
        tables: vec![table],
        notes: vec![
            "d aligned = measured concentration of the minimal legal partition; \
             Theorem 8's pigeonhole says it cannot drop below N/S"
                .into(),
            "measured delay exceeds the theorem bound because the attack concentrates \
             a whole sharing group, which is ceil(N/(K/r')) >= N/S inputs"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concentration_at_least_n_over_s() {
        let (_s, n_over_s, d, _paper, _exact, delay, _jitter, b) = point(16, 8, 4);
        assert!(d as u64 >= n_over_s, "d {d} < N/S {n_over_s}");
        assert_eq!(b, 0);
        assert!(delay > 0);
    }

    #[test]
    fn higher_speedup_weakens_the_bound() {
        let low_s = point(32, 8, 4).5; // S = 2
        let high_s = point(32, 32, 4).5; // S = 8
        assert!(
            low_s > high_s,
            "more parallel capacity should reduce the forced delay: {low_s} !> {high_s}"
        );
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
