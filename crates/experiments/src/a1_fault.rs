//! A1 — fault-tolerance ablation (the paper's §3 motivation for
//! unpartitioned algorithms): *"if a demultiplexor sends cells only
//! through d < K planes, a damage in one plane causes more cell dropping
//! than if all K planes are utilized"* (and footnote 4: with exactly `r'`
//! planes per input, one plane failure immediately drops cells).
//!
//! We fail plane 0 and offer the same admissible load to the unpartitioned
//! round robin, the minimal static partition, and FTD. All three lose
//! roughly `1/K` of the aggregate (none re-routes without global
//! knowledge), but the *distribution* differs: the partitioned switch
//! concentrates the loss on the inputs whose subset contained the dead
//! plane, destroying half of everything they send, while the unpartitioned
//! algorithms spread the loss thinly over every flow.
//!
//! The second half is the *fail→recover* ablation: plane 0 goes down
//! mid-run and comes back 1000 slots later (a scripted [`FaultPlan`]), the
//! resequencer watchdog unblocks flows that lost a cell, and we measure
//! loss and recovery per information class. A fully-distributed round
//! robin never learns and feeds the dead plane for the whole outage; a
//! `u`-RT fault-aware round robin keeps feeding it for `u` more slots; a
//! centralized one reroutes in the failure slot. Loss ordering
//! `centralized < u-RT < fully-distributed` is the information hierarchy
//! of the paper made visible through faults instead of delay.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_bufferless_faulted, fault_impact, FaultImpact, Table};
use pps_core::prelude::*;
use pps_switch::demux::{
    FaultAwareRoundRobinDemux, FtdDemux, RoundRobinDemux, StaticPartitionDemux,
};
use pps_switch::engine::BufferlessPps;
use pps_traffic::gen::BernoulliGen;

/// Per-algorithm outcome: `(dropped fraction overall, worst per-input
/// dropped fraction)`.
pub fn point<D: Demultiplexor>(cfg: PpsConfig, demux: D, trace: &Trace) -> (f64, f64) {
    let mut pps = BufferlessPps::new(cfg, demux).expect("engine");
    pps.fail_plane(0).expect("plane 0 exists");
    let run = pps.run(trace).expect("model-legal run");
    let total = run.log.len() as f64;
    let mut sent = vec![0u64; cfg.n];
    let mut lost = vec![0u64; cfg.n];
    for rec in run.log.records() {
        sent[rec.input.idx()] += 1;
        // A cell is *lost* when it was dispatched onto the failed plane.
        // (Later same-flow cells are then also stuck behind it in the
        // resequencer — collateral the loss metric does not double-count.)
        if rec.plane == Some(PlaneId(0)) && rec.departure.is_none() {
            lost[rec.input.idx()] += 1;
        }
    }
    let dropped: u64 = lost.iter().sum();
    let worst = sent
        .iter()
        .zip(&lost)
        .filter(|&(&s, _)| s > 0)
        .map(|(&s, &l)| l as f64 / s as f64)
        .fold(0.0f64, f64::max);
    (dropped as f64 / total, worst)
}

/// Fail→recover outcome for one demultiplexor: run the scripted `plan`
/// against a fault-free shadow switch and condense the degradation.
pub fn recovery_point<D: Demultiplexor>(
    cfg: PpsConfig,
    demux: D,
    trace: &Trace,
    plan: &FaultPlan,
    window: (Slot, Slot),
) -> FaultImpact {
    let cmp = compare_bufferless_faulted(cfg, demux, trace, plan).expect("model-legal run");
    fault_impact(&cmp.pps.log, &cmp.oq, cfg.n, window)
}

/// Run the ablation.
pub fn run() -> ExperimentOutput {
    let (n, k, r_prime) = (16, 8, 2);
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    let trace = BernoulliGen::uniform(0.7, 77).trace(n, 3_000);
    let mut table = Table::new(
        format!("Plane-0 failure at N={n}, K={k}, r'={r_prime}, Bernoulli load 0.7"),
        &["algorithm", "aggregate loss", "worst per-input loss"],
    );
    let static_plan = SweepPlan::new("a1-static", vec![0usize, 1, 2]);
    let static_results = static_plan.run(|pt| match pt.params {
        0 => point(cfg, RoundRobinDemux::new(n, k), &trace),
        1 => point(cfg, StaticPartitionDemux::minimal(n, k, r_prime), &trace),
        _ => point(cfg, FtdDemux::new(n, k, r_prime, 2), &trace),
    });
    let (rr, sp, ftd) = (static_results[0], static_results[1], static_results[2]);
    for (name, (agg, worst)) in [("round-robin", rr), ("static-partition", sp), ("ftd", ftd)] {
        table.row_display(&[
            name.to_string(),
            format!("{:.1}%", agg * 100.0),
            format!("{:.1}%", worst * 100.0),
        ]);
    }
    // The partitioned switch must hurt its victims far more than the
    // unpartitioned ones hurt anyone.
    let static_pass = sp.1 > 2.0 * rr.1 && sp.1 > 2.0 * ftd.1 && rr.0 > 0.0;

    // Fail→recover ablation across the information classes: plane 0 down
    // at slot 500, back at slot 1500, watchdog unblocking the resequencer.
    let window = (500, 1500);
    let plan = FaultPlan::new()
        .plane_down(0, window.0)
        .plane_up(0, window.1);
    let fcfg = cfg.with_watchdog(32);
    let u = 32;
    let recovery_plan = SweepPlan::new("a1-recover", vec![0usize, 1, 2]);
    let recovery_results = recovery_plan.run(|pt| match pt.params {
        0 => recovery_point(fcfg, RoundRobinDemux::new(n, k), &trace, &plan, window),
        1 => recovery_point(
            fcfg,
            FaultAwareRoundRobinDemux::urt(n, k, u),
            &trace,
            &plan,
            window,
        ),
        _ => recovery_point(
            fcfg,
            FaultAwareRoundRobinDemux::centralized(n, k),
            &trace,
            &plan,
            window,
        ),
    });
    let [fd, urt, cent]: [FaultImpact; 3] = recovery_results.try_into().expect("three classes");
    let mut recovery_table = Table::new(
        format!(
            "Fail→recover (plane 0 down @{}, up @{}, watchdog 32, u = {u})",
            window.0, window.1
        ),
        &["class", "lost cells", "loss", "recovery (slots)"],
    );
    for (name, fi) in [
        ("fully distributed RR", &fd),
        ("u-RT fault-aware RR", &urt),
        ("centralized fault-aware RR", &cent),
    ] {
        recovery_table.row_display(&[
            name.to_string(),
            fi.lost.to_string(),
            format!("{:.2}%", fi.loss_fraction * 100.0),
            fi.recovery_time().map_or("never".into(), |t| t.to_string()),
        ]);
    }
    // The information hierarchy must show as a loss hierarchy, and every
    // class must settle back to its pre-fault delay level after PlaneUp.
    let recover_pass = cent.lost < urt.lost
        && urt.lost < fd.lost
        && fd.recovery_time().is_some()
        && urt.recovery_time().is_some()
        && cent.recovery_time().is_some();

    ExperimentOutput {
        id: "a1",
        title: "Fault-tolerance ablation — why the paper insists on unpartitioned algorithms"
            .into(),
        tables: vec![table, recovery_table],
        notes: vec![
            "worst per-input loss ~50% under the minimal partition (its r'=2 subset \
             lost one of two planes) vs ~1/K under unpartitioned spreading"
                .into(),
            "fail→recover: loss shrinks with information quality (centralized < u-RT \
             < fully distributed); all classes return to pre-fault relative delay \
             after the plane comes back"
                .into(),
        ],
        pass: static_pass && recover_pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_loss_is_concentrated() {
        let (n, k, r) = (8, 4, 2);
        let cfg = PpsConfig::bufferless(n, k, r);
        let trace = BernoulliGen::uniform(0.6, 5).trace(n, 1_000);
        let (agg_sp, worst_sp) = point(cfg, StaticPartitionDemux::minimal(n, k, r), &trace);
        let (agg_rr, worst_rr) = point(cfg, RoundRobinDemux::new(n, k), &trace);
        assert!(agg_sp > 0.0 && agg_rr > 0.0);
        assert!(
            worst_sp > worst_rr,
            "partitioned worst {worst_sp} should exceed unpartitioned {worst_rr}"
        );
        assert!(worst_sp > 0.3, "a group lost half its planes: {worst_sp}");
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }

    #[test]
    fn information_hierarchy_shows_in_loss() {
        let (n, k, r) = (8, 4, 2);
        let cfg = PpsConfig::bufferless(n, k, r).with_watchdog(16);
        let trace = BernoulliGen::uniform(0.6, 11).trace(n, 1_200);
        let window = (200, 800);
        let plan = FaultPlan::new()
            .plane_down(0, window.0)
            .plane_up(0, window.1);
        let fd = recovery_point(cfg, RoundRobinDemux::new(n, k), &trace, &plan, window);
        let urt = recovery_point(
            cfg,
            FaultAwareRoundRobinDemux::urt(n, k, 16),
            &trace,
            &plan,
            window,
        );
        let cent = recovery_point(
            cfg,
            FaultAwareRoundRobinDemux::centralized(n, k),
            &trace,
            &plan,
            window,
        );
        assert!(
            cent.lost <= urt.lost && urt.lost < fd.lost,
            "loss must shrink with information: cent {} / urt {} / fd {}",
            cent.lost,
            urt.lost,
            fd.lost
        );
        assert!(fd.recovery_time().is_some(), "FD must settle after PlaneUp");
        assert!(cent.recovery_time().is_some());
    }
}
