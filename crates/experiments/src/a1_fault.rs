//! A1 — fault-tolerance ablation (the paper's §3 motivation for
//! unpartitioned algorithms): *"if a demultiplexor sends cells only
//! through d < K planes, a damage in one plane causes more cell dropping
//! than if all K planes are utilized"* (and footnote 4: with exactly `r'`
//! planes per input, one plane failure immediately drops cells).
//!
//! We fail plane 0 and offer the same admissible load to the unpartitioned
//! round robin, the minimal static partition, and FTD. All three lose
//! roughly `1/K` of the aggregate (none re-routes without global
//! knowledge), but the *distribution* differs: the partitioned switch
//! concentrates the loss on the inputs whose subset contained the dead
//! plane, destroying half of everything they send, while the unpartitioned
//! algorithms spread the loss thinly over every flow.

use crate::ExperimentOutput;
use pps_analysis::Table;
use pps_core::prelude::*;
use pps_switch::demux::{FtdDemux, RoundRobinDemux, StaticPartitionDemux};
use pps_switch::engine::BufferlessPps;
use pps_traffic::gen::BernoulliGen;

/// Per-algorithm outcome: `(dropped fraction overall, worst per-input
/// dropped fraction)`.
pub fn point<D: Demultiplexor>(
    cfg: PpsConfig,
    demux: D,
    trace: &Trace,
) -> (f64, f64) {
    let mut pps = BufferlessPps::new(cfg, demux).expect("engine");
    pps.fail_plane(0);
    let run = pps.run(trace).expect("model-legal run");
    let total = run.log.len() as f64;
    let mut sent = vec![0u64; cfg.n];
    let mut lost = vec![0u64; cfg.n];
    for rec in run.log.records() {
        sent[rec.input.idx()] += 1;
        // A cell is *lost* when it was dispatched onto the failed plane.
        // (Later same-flow cells are then also stuck behind it in the
        // resequencer — collateral the loss metric does not double-count.)
        if rec.plane == Some(PlaneId(0)) && rec.departure.is_none() {
            lost[rec.input.idx()] += 1;
        }
    }
    let dropped: u64 = lost.iter().sum();
    let worst = sent
        .iter()
        .zip(&lost)
        .filter(|&(&s, _)| s > 0)
        .map(|(&s, &l)| l as f64 / s as f64)
        .fold(0.0f64, f64::max);
    (dropped as f64 / total, worst)
}

/// Run the ablation.
pub fn run() -> ExperimentOutput {
    let (n, k, r_prime) = (16, 8, 2);
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    let trace = BernoulliGen::uniform(0.7, 77).trace(n, 3_000);
    let mut table = Table::new(
        format!("Plane-0 failure at N={n}, K={k}, r'={r_prime}, Bernoulli load 0.7"),
        &["algorithm", "aggregate loss", "worst per-input loss"],
    );
    let rr = point(cfg, RoundRobinDemux::new(n, k), &trace);
    let sp = point(cfg, StaticPartitionDemux::minimal(n, k, r_prime), &trace);
    let ftd = point(cfg, FtdDemux::new(n, k, r_prime, 2), &trace);
    for (name, (agg, worst)) in [("round-robin", rr), ("static-partition", sp), ("ftd", ftd)] {
        table.row_display(&[
            name.to_string(),
            format!("{:.1}%", agg * 100.0),
            format!("{:.1}%", worst * 100.0),
        ]);
    }
    // The partitioned switch must hurt its victims far more than the
    // unpartitioned ones hurt anyone.
    let pass = sp.1 > 2.0 * rr.1 && sp.1 > 2.0 * ftd.1 && rr.0 > 0.0;
    ExperimentOutput {
        id: "a1",
        title: "Fault-tolerance ablation — why the paper insists on unpartitioned algorithms"
            .into(),
        tables: vec![table],
        notes: vec![
            "worst per-input loss ~50% under the minimal partition (its r'=2 subset \
             lost one of two planes) vs ~1/K under unpartitioned spreading"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_loss_is_concentrated() {
        let (n, k, r) = (8, 4, 2);
        let cfg = PpsConfig::bufferless(n, k, r);
        let trace = BernoulliGen::uniform(0.6, 5).trace(n, 1_000);
        let (agg_sp, worst_sp) = point(cfg, StaticPartitionDemux::minimal(n, k, r), &trace);
        let (agg_rr, worst_rr) = point(cfg, RoundRobinDemux::new(n, k), &trace);
        assert!(agg_sp > 0.0 && agg_rr > 0.0);
        assert!(
            worst_sp > worst_rr,
            "partitioned worst {worst_sp} should exceed unpartitioned {worst_rr}"
        );
        assert!(worst_sp > 0.3, "a group lost half its planes: {worst_sp}");
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
