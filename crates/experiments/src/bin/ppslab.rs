//! `ppslab` — run the reproduction experiments and print their tables.
//!
//! ```text
//! ppslab             # run everything, in paper order
//! ppslab e2 e10      # run a subset
//! ppslab --list      # list experiment ids
//! ppslab --csv e12   # also dump each table as CSV after the text table
//! ppslab --markdown  # emit GitHub-flavoured markdown instead of text
//! ppslab --out results/   # also write every table as CSV into results/
//! ppslab perf        # quick simulator-throughput summary
//! ppslab --parallel  # run the (independent) experiments concurrently
//! ppslab custom --n 32 --k 8 --rprime 4 --algo rr --workload attack
//! ```

use pps_experiments::registry;

/// Quick simulator performance summary (no criterion; for the README's
/// throughput claims use `cargo bench -p pps-bench`).
fn perf() {
    use pps_core::prelude::*;
    use pps_switch::demux::RoundRobinDemux;
    use pps_switch::engine::run_bufferless;
    use pps_traffic::gen::BernoulliGen;
    println!("simulator throughput (full-load Bernoulli, round robin, release build):");
    for (n, k, r_prime, slots) in [
        (16usize, 8usize, 4usize, 20_000u64),
        (64, 16, 4, 10_000),
        (256, 32, 4, 4_000),
        (1024, 64, 8, 1_000),
    ] {
        let trace = BernoulliGen::uniform(1.0, 1).trace(n, slots);
        let cells = trace.len();
        let start = std::time::Instant::now();
        let run = run_bufferless(
            PpsConfig::bufferless(n, k, r_prime),
            RoundRobinDemux::new(n, k),
            &trace,
        )
        .expect("run");
        let dt = start.elapsed();
        assert_eq!(run.log.undelivered(), 0);
        println!(
            "  N={n:<5} K={k:<3} r'={r_prime:<2} {cells:>8} cells in {:>8.1?}  ({:>6.1} Mcells/s)",
            dt,
            cells as f64 / dt.as_secs_f64() / 1e6
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("perf") {
        perf();
        return;
    }
    if args.first().map(String::as_str) == Some("custom") {
        match pps_experiments::custom::run_custom(&args[1..]) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    let csv = args.iter().any(|a| a == "--csv");
    let markdown = args.iter().any(|a| a == "--markdown");
    let out_dir: Option<String> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create --out directory");
    }
    let wanted: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || args[*i - 1] != "--out"))
        .map(|(_, a)| a)
        .collect();
    let reg = registry();
    if args.iter().any(|a| a == "--list") {
        for (id, _) in &reg {
            println!("{id}");
        }
        return;
    }
    let parallel = args.iter().any(|a| a == "--parallel");
    let selected: Vec<_> = reg
        .iter()
        .filter(|(id, _)| wanted.is_empty() || wanted.iter().any(|w| w.as_str() == *id))
        .collect();
    // Run (optionally in parallel — experiments are independent), then
    // print in paper order.
    let outputs: Vec<pps_experiments::ExperimentOutput> = if parallel {
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = selected
                .iter()
                .map(|(_, runner)| scope.spawn(move |_| runner()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("experiment"))
                .collect()
        })
        .expect("scope")
    } else {
        selected.iter().map(|(_, runner)| runner()).collect()
    };
    let mut failures = 0usize;
    for out in outputs {
        if markdown {
            print!("{}", out.render_markdown());
        } else {
            print!("{}", out.render());
        }
        if csv {
            for t in &out.tables {
                println!("--- csv ---");
                print!("{}", t.to_csv());
            }
        }
        if let Some(dir) = &out_dir {
            for (i, t) in out.tables.iter().enumerate() {
                let path = std::path::Path::new(dir).join(format!("{}_{i}.csv", out.id));
                std::fs::write(&path, t.to_csv()).expect("write table CSV");
            }
        }
        println!();
        if !out.pass {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) FAILED");
        std::process::exit(1);
    }
}
