//! `ppslab` — run the reproduction experiments and print their tables.
//!
//! ```text
//! ppslab             # run everything, in paper order
//! ppslab e2 e10      # run a subset
//! ppslab --list      # list experiment ids
//! ppslab --csv e12   # also dump each table as CSV after the text table
//! ppslab --markdown  # emit GitHub-flavoured markdown instead of text
//! ppslab --out results/   # also write every table as CSV into results/
//! ppslab perf        # quick simulator-throughput summary
//! ppslab --jobs 4    # worker budget (default: available parallelism; 1 = serial)
//! ppslab --intra-jobs 4     # shard each run's planes/outputs (default: 1 = serial fabric)
//! ppslab --stepping dense   # force the dense slot loop (default: skip-ahead)
//! ppslab --parallel  # deprecated no-op (the default is already parallel; use --jobs)
//! ppslab --bench-json BENCH_experiments.json   # record wall-clock + slots/sec
//! ppslab --telemetry counters          # event counters to stderr after the run
//! ppslab --telemetry full --trace-out trace.json e3   # Perfetto-loadable trace
//! ppslab custom --n 32 --k 8 --rprime 4 --algo rr --workload attack
//! ppslab chaos --seed 42 --cases 256 --budget-slots 256   # fuzz with oracles
//! ppslab --workload "zipf:n=16,load=0.85,s=1.1,seed=7"   # stochastic tail report
//! ppslab --workload "mmpp:n=8" --workload-k 8 --workload-rprime 4
//! ```
//!
//! Whatever `--jobs` says, the printed tables are byte-identical: the sweep
//! executor merges results in declared order (see `pps_experiments::sweep`).
//! `--bench-json` times experiments one at a time (their inner sweeps still
//! use the worker budget) so the per-experiment numbers are attributable,
//! and writes them as JSON.
//!
//! Telemetry rides the same determinism contract: at `--telemetry full`
//! every sweep point records into its own scope and the event bundle is
//! absorbed in declared order, so `--trace-out` files are identical at any
//! `--jobs`. The sink is picked from the `--trace-out` extension: `.json`
//! is a Chrome trace-event file (open in Perfetto), `.csv` a flat table,
//! anything else JSONL.

use pps_experiments::sweep::SweepPlan;
use pps_experiments::{registry, ExperimentOutput};

/// Quick simulator performance summary (no criterion; for the README's
/// throughput claims use `cargo bench -p pps-bench`).
fn perf() {
    use pps_core::prelude::*;
    use pps_switch::demux::RoundRobinDemux;
    use pps_switch::engine::run_bufferless;
    use pps_traffic::gen::BernoulliGen;
    println!("simulator throughput (full-load Bernoulli, round robin, release build):");
    for (n, k, r_prime, slots) in [
        (16usize, 8usize, 4usize, 20_000u64),
        (64, 16, 4, 10_000),
        (256, 32, 4, 4_000),
        (1024, 64, 8, 1_000),
    ] {
        let trace = BernoulliGen::uniform(1.0, 1).trace(n, slots);
        let cells = trace.len();
        let start = std::time::Instant::now();
        let run = run_bufferless(
            PpsConfig::bufferless(n, k, r_prime),
            RoundRobinDemux::new(n, k),
            &trace,
        )
        .expect("run");
        let dt = start.elapsed();
        assert_eq!(run.log.undelivered(), 0);
        println!(
            "  N={n:<5} K={k:<3} r'={r_prime:<2} {cells:>8} cells in {:>8.1?}  ({:>6.1} Mcells/s)",
            dt,
            cells as f64 / dt.as_secs_f64() / 1e6
        );
    }
}

/// Per-experiment benchmark record:
/// `(id, wall seconds, simulated slots, skipped slots, intra merge nanos)`.
type BenchEntry = (&'static str, f64, u64, u64, u64);

/// Serialize the benchmark records by hand (two levels of objects — not
/// worth a JSON dependency).
fn bench_json(jobs: usize, total_seconds: f64, entries: &[BenchEntry]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"ppslab\",\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!(
        "  \"intra_jobs\": {},\n",
        pps_core::workers::intra_jobs()
    ));
    out.push_str(&format!(
        "  \"stepping\": \"{}\",\n",
        pps_core::stepping::process_default().name()
    ));
    out.push_str(&format!("  \"total_wall_seconds\": {total_seconds:.3},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, (id, secs, slots, skipped, merge_nanos)) in entries.iter().enumerate() {
        let rate = if *secs > 0.0 {
            *slots as f64 / secs
        } else {
            0.0
        };
        out.push_str(&format!(
            "    {{\"id\": \"{id}\", \"wall_seconds\": {secs:.3}, \"slots\": {slots}, \
             \"slots_skipped\": {skipped}, \"slots_per_sec\": {rate:.0}, \
             \"intra_merge_nanos\": {merge_nanos}}}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1).unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            std::process::exit(2);
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("perf") {
        perf();
        return;
    }
    if args.first().map(String::as_str) == Some("custom") {
        match pps_experiments::custom::run_custom(&args[1..]) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    if args.first().map(String::as_str) == Some("chaos") {
        match pps_chaos::run_chaos(&args[1..]) {
            Ok(report) => {
                print!("{}", report.text);
                if report.failed > 0 {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    let csv = args.iter().any(|a| a == "--csv");
    let markdown = args.iter().any(|a| a == "--markdown");
    let out_dir = flag_value(&args, "--out").cloned();
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("error: --out {dir}: {e}");
            std::process::exit(2);
        });
    }
    let bench_path = flag_value(&args, "--bench-json").cloned();
    // Slot-loop mode for every engine constructed from here on. Tables
    // and traces are byte-identical either way (tested); `dense` exists
    // to demonstrate that and as the escape hatch.
    if let Some(v) = flag_value(&args, "--stepping") {
        match pps_core::Stepping::parse(v) {
            Some(mode) => pps_core::stepping::set_process_default(mode),
            None => {
                eprintln!("error: --stepping must be dense or skip (got {v:?})");
                std::process::exit(2);
            }
        }
    }
    let telemetry_level = match flag_value(&args, "--telemetry") {
        Some(v) => pps_core::telemetry::Level::parse(v).unwrap_or_else(|| {
            eprintln!("error: --telemetry must be off, counters, or full (got {v:?})");
            std::process::exit(2);
        }),
        None => pps_core::telemetry::Level::Off,
    };
    pps_core::telemetry::set_level(telemetry_level);
    let trace_out = flag_value(&args, "--trace-out").cloned();
    if trace_out.is_some() && telemetry_level != pps_core::telemetry::Level::Full {
        eprintln!("warning: --trace-out needs --telemetry full to have events to write");
    }
    if args.iter().any(|a| a == "--parallel") {
        eprintln!(
            "warning: --parallel is deprecated and has no effect \
             (parallel is the default); use --jobs N to set the worker budget"
        );
    }
    // Worker budget: explicit --jobs wins; otherwise use every core
    // (--parallel is the legacy spelling of that default). Tables come out
    // byte-identical either way — see the sweep executor's contract.
    let jobs: usize = match flag_value(&args, "--jobs") {
        Some(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("error: --jobs: {e}");
            std::process::exit(2);
        }),
        None => std::thread::available_parallelism().map_or(1, usize::from),
    };
    pps_experiments::sweep::set_jobs(jobs);
    // Intra-run sharding: split each engine's planes and output
    // resequencers across the same worker budget. Tables and traces are
    // byte-identical at any value (DESIGN.md §16); the default of 1 keeps
    // single-fabric runs serial.
    if let Some(v) = flag_value(&args, "--intra-jobs") {
        let n: usize = v.parse().unwrap_or_else(|e| {
            eprintln!("error: --intra-jobs: {e}");
            std::process::exit(2);
        });
        if n == 0 {
            eprintln!("error: --intra-jobs must be at least 1");
            std::process::exit(2);
        }
        pps_core::workers::set_intra_jobs(n);
    }
    // Standalone workload report: materialize the spec and print its
    // tail-delay table across the information classes. Parsed after the
    // stepping/jobs knobs so `--stepping dense --workload ...` exercises
    // the dense path (the report is byte-identical either way).
    if let Some(spec) = flag_value(&args, "--workload") {
        let parse_dim = |flag: &str, default: usize| -> usize {
            flag_value(&args, flag).map_or(default, |v| {
                v.parse().unwrap_or_else(|e| {
                    eprintln!("error: {flag}: {e}");
                    std::process::exit(2);
                })
            })
        };
        let k = parse_dim("--workload-k", 8);
        let r_prime = parse_dim("--workload-rprime", 4);
        match pps_experiments::workload_cli::run_workload(spec, k, r_prime) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    // Positional args select experiments; skip the values of value-taking
    // flags.
    let value_flags = [
        "--out",
        "--jobs",
        "--intra-jobs",
        "--bench-json",
        "--telemetry",
        "--trace-out",
        "--stepping",
        "--workload",
        "--workload-k",
        "--workload-rprime",
    ];
    let wanted: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--") && (*i == 0 || !value_flags.contains(&args[*i - 1].as_str()))
        })
        .map(|(_, a)| a)
        .collect();
    let reg = registry();
    if args.iter().any(|a| a == "--list") {
        for (id, _) in &reg {
            println!("{id}");
        }
        return;
    }
    let selected: Vec<_> = reg
        .iter()
        .filter(|(id, _)| wanted.is_empty() || wanted.iter().any(|w| w.as_str() == *id))
        .collect();
    // Run, then print in paper order. The registry-level sweep shares the
    // one worker budget with every experiment's inner sweeps, so --jobs
    // bounds total threads whatever the nesting. Benchmarking instead
    // times experiments one at a time so wall-clock and simulated-slot
    // deltas attribute to a single experiment (inner sweeps still use the
    // budget).
    let suite_start = std::time::Instant::now();
    let mut bench: Vec<BenchEntry> = Vec::new();
    let tracing = telemetry_level == pps_core::telemetry::Level::Full;
    let outputs: Vec<ExperimentOutput> = if bench_path.is_some() {
        selected
            .iter()
            .map(|(id, runner)| {
                let slots0 = pps_switch::perf::slots_simulated();
                let skipped0 = pps_switch::perf::slots_skipped();
                let merge0 = pps_core::perf::intra_merge_nanos();
                let start = std::time::Instant::now();
                let out = if tracing {
                    let (out, log) = pps_core::telemetry::collect(*id, runner);
                    pps_core::telemetry::absorb(log);
                    out
                } else {
                    runner()
                };
                let secs = start.elapsed().as_secs_f64();
                bench.push((
                    id,
                    secs,
                    pps_switch::perf::slots_simulated() - slots0,
                    pps_switch::perf::slots_skipped() - skipped0,
                    pps_core::perf::intra_merge_nanos() - merge0,
                ));
                out
            })
            .collect()
    } else {
        let plan = SweepPlan::new("registry", (0..selected.len()).collect());
        plan.run(|pt| (selected[*pt.params].1)())
    };
    if let Some(path) = &bench_path {
        let json = bench_json(jobs, suite_start.elapsed().as_secs_f64(), &bench);
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("error: --bench-json {path}: {e}");
            std::process::exit(2);
        });
    }
    let mut failures = 0usize;
    for out in outputs {
        if markdown {
            print!("{}", out.render_markdown());
        } else {
            print!("{}", out.render());
        }
        if csv {
            for t in &out.tables {
                println!("--- csv ---");
                print!("{}", t.to_csv());
            }
        }
        if let Some(dir) = &out_dir {
            for (i, t) in out.tables.iter().enumerate() {
                let path = std::path::Path::new(dir).join(format!("{}_{i}.csv", out.id));
                std::fs::write(&path, t.to_csv()).unwrap_or_else(|e| {
                    eprintln!("error: --out {}: {e}", path.display());
                    std::process::exit(2);
                });
            }
        }
        println!();
        if !out.pass {
            failures += 1;
        }
    }
    if tracing {
        let root = pps_core::telemetry::EventLog {
            label: "ppslab".into(),
            events: Vec::new(),
            overflowed: 0,
            children: pps_core::telemetry::take_absorbed(),
        };
        eprint!("{}", pps_telemetry::summarize(&root));
        if let Some(path) = &trace_out {
            pps_telemetry::dump(&root, std::path::Path::new(path)).unwrap_or_else(|e| {
                eprintln!("error: --trace-out {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("telemetry: {} events -> {path}", root.total_events());
        }
    }
    if telemetry_level != pps_core::telemetry::Level::Off {
        eprintln!("telemetry counters:");
        for (name, value) in pps_core::telemetry::counters() {
            eprintln!("  {name:<24} {value}");
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) FAILED");
        std::process::exit(1);
    }
}
