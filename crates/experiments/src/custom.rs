//! `ppslab custom` — run an arbitrary (geometry, algorithm, workload)
//! combination and print the comparison, without writing code.
//!
//! ```text
//! ppslab custom --n 32 --k 8 --rprime 4 --algo rr --workload attack
//! ppslab custom --n 16 --k 8 --rprime 4 --algo cpa --workload bernoulli:0.95
//! ppslab custom --n 64 --k 8 --rprime 8 --algo stale:2 --workload urt
//! ppslab custom ... --save-trace /tmp/t.csv
//! ```
//!
//! Algorithms: `rr`, `pfr` (per-flow RR), `random[:seed]`, `partition`
//! (minimal static), `ftd[:h]`, `stale:u`, `lll` (local least-loaded),
//! `hash`, `cpa`. Workloads: `attack` (the concentration attack against
//! the chosen algorithm), `urt` (the Theorem 10 burst), `bernoulli:LOAD`,
//! `onoff:LOAD`, `cbr:PERIOD`, `congestion:SENDERS`, plus the seeded
//! stochastic families of `pps_workload::WorkloadSpec` — `zipf:…`,
//! `mmpp:…`, `uniform:…`, `shaped:…`, `replay:…` (key=value syntax; `n`
//! and `horizon` are taken from `--n`/`--slots`, any `n=`/`horizon=`
//! keys in the spec are rejected here to keep the geometry single-source).

use pps_analysis::{compare_bufferless, Comparison};
use pps_core::prelude::*;
use pps_switch::demux::*;
use pps_traffic::adversary::{concentration_attack, congestion_traffic, urt_burst_attack};
use pps_traffic::gen::{BernoulliGen, CbrGen, OnOffGen};
use pps_traffic::{min_burstiness, TraceStats};

/// Parsed custom-run request.
#[derive(Clone, Debug)]
pub struct CustomArgs {
    n: usize,
    k: usize,
    r_prime: usize,
    algo: String,
    workload: String,
    slots: Slot,
    save_trace: Option<String>,
}

impl Default for CustomArgs {
    fn default() -> Self {
        CustomArgs {
            n: 16,
            k: 8,
            r_prime: 4,
            algo: "rr".into(),
            workload: "bernoulli:0.9".into(),
            slots: 2_000,
            save_trace: None,
        }
    }
}

/// Parse `--key value` pairs following `custom`.
pub fn parse_args(args: &[String]) -> Result<CustomArgs, String> {
    let mut out = CustomArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--n" => out.n = val()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--k" => out.k = val()?.parse().map_err(|e| format!("--k: {e}"))?,
            "--rprime" => out.r_prime = val()?.parse().map_err(|e| format!("--rprime: {e}"))?,
            "--algo" => out.algo = val()?,
            "--workload" => out.workload = val()?,
            "--slots" => out.slots = val()?.parse().map_err(|e| format!("--slots: {e}"))?,
            "--save-trace" => out.save_trace = Some(val()?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(out)
}

fn split_param(s: &str) -> (&str, Option<&str>) {
    match s.split_once(':') {
        Some((a, b)) => (a, Some(b)),
        None => (s, None),
    }
}

enum Algo {
    Rr(RoundRobinDemux),
    Pfr(PerFlowRoundRobinDemux),
    Random(RandomDemux),
    Partition(StaticPartitionDemux),
    Ftd(FtdDemux),
    Stale(StaleLeastLoadedDemux),
    Lll(LeastLoadedLocalDemux),
    Hash(HashFlowDemux),
    Cpa(CpaDemux),
}

fn build_algo(spec: &str, n: usize, k: usize, r_prime: usize) -> Result<Algo, String> {
    let (name, param) = split_param(spec);
    Ok(match name {
        "rr" => Algo::Rr(RoundRobinDemux::new(n, k)),
        "pfr" => Algo::Pfr(PerFlowRoundRobinDemux::new(n, k)),
        "random" => Algo::Random(RandomDemux::new(
            n,
            param
                .map_or(Ok(0), str::parse)
                .map_err(|e| format!("random seed: {e}"))?,
        )),
        "partition" => Algo::Partition(StaticPartitionDemux::minimal(n, k, r_prime)),
        "ftd" => Algo::Ftd(FtdDemux::new(
            n,
            k,
            r_prime,
            param
                .map_or(Ok(2), str::parse)
                .map_err(|e| format!("ftd h: {e}"))?,
        )),
        "stale" => Algo::Stale(StaleLeastLoadedDemux::new(
            n,
            k,
            param
                .ok_or("stale needs :u")?
                .parse()
                .map_err(|e| format!("stale u: {e}"))?,
        )),
        "lll" => Algo::Lll(LeastLoadedLocalDemux::new(n, k, r_prime)),
        "hash" => Algo::Hash(HashFlowDemux::new(n, k)),
        "cpa" => Algo::Cpa(CpaDemux::new(n, k, r_prime)),
        other => return Err(format!("unknown algorithm {other}")),
    })
}

fn build_workload(
    spec: &str,
    args: &CustomArgs,
    algo: &Algo,
    cfg: &PpsConfig,
) -> Result<Trace, String> {
    let (name, param) = split_param(spec);
    let n = args.n;
    let inputs: Vec<u32> = (0..n as u32).collect();
    Ok(match name {
        "attack" => {
            let max = 8 * args.k;
            match algo {
                Algo::Rr(d) => concentration_attack(d, cfg, &inputs, max).trace,
                Algo::Pfr(d) => concentration_attack(d, cfg, &inputs, max).trace,
                Algo::Random(d) => concentration_attack(d, cfg, &inputs, 4 * max).trace,
                Algo::Partition(d) => concentration_attack(d, cfg, &inputs, max).trace,
                Algo::Ftd(d) => concentration_attack(d, cfg, &inputs, max).trace,
                Algo::Lll(d) => concentration_attack(d, cfg, &inputs, max).trace,
                Algo::Hash(d) => concentration_attack(d, cfg, &inputs, max).trace,
                Algo::Stale(_) | Algo::Cpa(_) => {
                    return Err(
                        "attack targets fully-distributed algorithms; use urt for stale".into(),
                    )
                }
            }
        }
        "urt" => {
            urt_burst_attack(
                cfg,
                param
                    .map_or(Ok(1), str::parse)
                    .map_err(|e| format!("urt u: {e}"))?,
            )
            .trace
        }
        "bernoulli" => BernoulliGen::uniform(
            param
                .map_or(Ok(0.9), str::parse)
                .map_err(|e| format!("bernoulli load: {e}"))?,
            42,
        )
        .trace(n, args.slots),
        "onoff" => OnOffGen::uniform(
            12.0,
            param
                .map_or(Ok(0.7), str::parse)
                .map_err(|e| format!("onoff load: {e}"))?,
            42,
        )
        .trace(n, args.slots),
        "cbr" => CbrGen::diagonal(
            param
                .map_or(Ok(2), str::parse)
                .map_err(|e| format!("cbr period: {e}"))?,
        )
        .trace(n, args.slots),
        // Seeded stochastic families from pps-workload. Geometry comes
        // from --n/--slots: they are prepended as spec keys, so a
        // conflicting n=/horizon= inside the spec body shows up as a
        // duplicate key and is rejected by the parser.
        "zipf" | "mmpp" | "uniform" | "shaped" | "replay" => {
            let body = param.unwrap_or("");
            let mut full = format!("{name}:n={n}");
            if name != "replay" {
                full.push_str(&format!(",horizon={}", args.slots));
            }
            if !body.is_empty() {
                full.push(',');
                full.push_str(body);
            }
            pps_workload::WorkloadSpec::parse(&full)?.trace()?
        }
        "congestion" => {
            congestion_traffic(
                n,
                0,
                param
                    .map_or(Ok(2), str::parse)
                    .map_err(|e| format!("congestion senders: {e}"))?,
                args.slots,
            )
            .trace
        }
        other => return Err(format!("unknown workload {other}")),
    })
}

fn compare(cfg: PpsConfig, algo: Algo, trace: &Trace) -> Result<Comparison, String> {
    let run = |c: Result<Comparison, ModelError>| c.map_err(|e| e.to_string());
    match algo {
        Algo::Rr(d) => run(compare_bufferless(cfg, d, trace)),
        Algo::Pfr(d) => run(compare_bufferless(cfg, d, trace)),
        Algo::Random(d) => run(compare_bufferless(cfg, d, trace)),
        Algo::Partition(d) => run(compare_bufferless(cfg, d, trace)),
        Algo::Ftd(d) => run(compare_bufferless(cfg, d, trace)),
        Algo::Stale(d) => run(compare_bufferless(cfg, d, trace)),
        Algo::Lll(d) => run(compare_bufferless(cfg, d, trace)),
        Algo::Hash(d) => run(compare_bufferless(cfg, d, trace)),
        Algo::Cpa(d) => run(compare_bufferless(
            cfg.with_discipline(OutputDiscipline::GlobalFcfs),
            d,
            trace,
        )),
    }
}

/// Execute a custom run; returns the printable report.
pub fn run_custom(raw_args: &[String]) -> Result<String, String> {
    let args = parse_args(raw_args)?;
    let cfg = PpsConfig::bufferless(args.n, args.k, args.r_prime);
    cfg.validate().map_err(|e| e.to_string())?;
    let algo = build_algo(&args.algo, args.n, args.k, args.r_prime)?;
    let trace = build_workload(&args.workload, &args, &algo, &cfg)?;
    if let Some(path) = &args.save_trace {
        pps_core::trace_io::save(&trace, std::path::Path::new(path))
            .map_err(|e| format!("saving trace: {e}"))?;
    }
    let b = min_burstiness(&trace, args.n).overall();
    let cmp = compare(
        cfg,
        build_algo(&args.algo, args.n, args.k, args.r_prime)?,
        &trace,
    )?;
    let _ = algo;
    let rd = cmp.relative_delay();
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "{}", pps_core::topology::describe(&cfg));
    let _ = writeln!(out, "algorithm            : {}", args.algo);
    let _ = writeln!(
        out,
        "workload             : {} ({} cells, B_min = {b})",
        args.workload,
        trace.len()
    );
    let _ = writeln!(
        out,
        "traffic              : {}",
        TraceStats::of(&trace, args.n).summary()
    );
    let _ = writeln!(out, "relative delay (max) : {}", rd.max);
    let _ = writeln!(out, "relative delay (mean): {:.3}", rd.mean);
    let _ = writeln!(out, "relative jitter      : {}", cmp.relative_jitter());
    let _ = writeln!(out, "undelivered          : {}", rd.pps_undelivered);
    let _ = writeln!(out, "max concentration    : {}", cmp.max_concentration());
    let _ = writeln!(
        out,
        "plane buffer HWM     : {}",
        cmp.pps_stats().max_plane_queue
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_custom_run_works() {
        let out = run_custom(&strs(&["--slots", "300"])).unwrap();
        assert!(out.contains("relative delay (max)"), "{out}");
    }

    #[test]
    fn attack_workload_matches_library_numbers() {
        let out = run_custom(&strs(&[
            "--n",
            "16",
            "--k",
            "8",
            "--rprime",
            "4",
            "--algo",
            "rr",
            "--workload",
            "attack",
        ]))
        .unwrap();
        // (r'-1)(N-1) = 45.
        assert!(out.contains("relative delay (max) : 45"), "{out}");
        assert!(out.contains("B_min = 0"), "{out}");
    }

    #[test]
    fn every_algorithm_spec_parses_and_runs() {
        for algo in [
            "rr",
            "pfr",
            "random:7",
            "partition",
            "ftd:2",
            "stale:2",
            "lll",
            "hash",
            "cpa",
        ] {
            let out = run_custom(&strs(&[
                "--n",
                "8",
                "--k",
                "8",
                "--rprime",
                "2",
                "--algo",
                algo,
                "--workload",
                "bernoulli:0.8",
                "--slots",
                "200",
            ]))
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert!(out.contains("undelivered          : 0"), "{algo}: {out}");
        }
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(run_custom(&strs(&["--bogus", "1"])).is_err());
        assert!(run_custom(&strs(&["--algo", "quantum"])).is_err());
        assert!(run_custom(&strs(&["--algo", "cpa", "--workload", "attack"])).is_err());
    }

    #[test]
    fn stochastic_workload_families_run() {
        for wl in [
            "zipf:load=0.7,seed=3",
            "mmpp:calm=0.1,burst=0.8",
            "uniform:load=0.6",
            "shaped:load=0.9,num=1,den=2,burst=4",
        ] {
            let out = run_custom(&strs(&[
                "--n",
                "8",
                "--k",
                "8",
                "--rprime",
                "2",
                "--workload",
                wl,
                "--slots",
                "500",
            ]))
            .unwrap_or_else(|e| panic!("{wl}: {e}"));
            assert!(out.contains("relative delay (max)"), "{wl}: {out}");
        }
    }

    #[test]
    fn stochastic_spec_geometry_is_single_source() {
        // n/horizon come from --n/--slots; a conflicting key in the spec
        // body is a duplicate and must be rejected, not silently ignored.
        assert!(run_custom(&strs(&["--workload", "zipf:n=4"])).is_err());
        assert!(run_custom(&strs(&["--workload", "uniform:horizon=99"])).is_err());
    }

    #[test]
    fn save_trace_round_trips() {
        let dir = std::env::temp_dir().join("ppslab_custom_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        run_custom(&strs(&[
            "--n",
            "8",
            "--k",
            "8",
            "--rprime",
            "2",
            "--workload",
            "cbr:2",
            "--slots",
            "50",
            "--save-trace",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let loaded = pps_core::trace_io::load(&path, 8).unwrap();
        assert!(!loaded.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
