//! A2 — the CPA speedup threshold: Iyer et al.'s zero-delay guarantee is
//! conditioned on `S ≥ 2`, and the paper leans on that premise throughout.
//! Sweeping `S` across the threshold shows the crossover: deadline misses
//! and relative delay appear exactly when `S < 2`.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{lockstep::Comparison, Table};
use pps_core::prelude::*;
use pps_switch::demux::CpaDemux;
use pps_switch::engine::BufferlessPps;
use pps_traffic::gen::{BernoulliGen, TrafficPattern};

/// One speedup point: `(S, max rel delay, deadline misses)`.
pub fn point(n: usize, k: usize, r_prime: usize, trace: &Trace) -> (f64, i64, u64) {
    let cfg = PpsConfig::bufferless(n, k, r_prime).with_discipline(OutputDiscipline::GlobalFcfs);
    cfg.validate().expect("valid point");
    let mut pps = BufferlessPps::new(cfg, CpaDemux::new(n, k, r_prime)).expect("engine");
    let run = pps.run(trace).expect("model-legal run");
    let misses = pps.demux().deadline_misses();
    let oq = pps_reference::oq::run_oq(trace, n);
    let cmp = Comparison { pps: run, oq, n };
    (cfg.speedup().to_f64(), cmp.relative_delay().max, misses)
}

/// Run the sweep.
pub fn run() -> ExperimentOutput {
    let (n, r_prime) = (16, 4);
    // A hot, bursty load that stresses the deadline calendar.
    let trace = BernoulliGen {
        load: 0.9,
        pattern: TrafficPattern::Hotspot {
            target: 0,
            hot: 0.4,
        },
        seed: 91,
    }
    .trace(n, 2_000);
    let mut table = Table::new(
        format!("CPA speedup sweep at N={n}, r'={r_prime} (threshold S = 2)"),
        &["K", "S", "max rel delay", "deadline misses"],
    );
    let mut pass = true;
    let mut at_or_above_ok = true;
    let mut below_degrades = false;
    let plan = SweepPlan::new("a2", vec![4usize, 6, 8, 12, 16]);
    let results = plan.run(|pt| point(n, *pt.params, r_prime, &trace));
    for (&k, (s, max_rd, misses)) in plan.points().iter().zip(results) {
        if s >= 2.0 {
            at_or_above_ok &= max_rd <= 0 && misses == 0;
        } else {
            below_degrades |= misses > 0 || max_rd > 0;
        }
        table.row_display(&[
            k.to_string(),
            format!("{s}"),
            max_rd.to_string(),
            misses.to_string(),
        ]);
    }
    pass &= at_or_above_ok && below_degrades;
    ExperimentOutput {
        id: "a2",
        title: "Ablation — CPA's S >= 2 threshold: crossover of deadline feasibility".into(),
        tables: vec![table],
        notes: vec![
            "with K >= 2r' the input constraint excludes <= r'-1 planes and the \
             reservation calendar <= r'-1 more, so a feasible plane always exists; \
             below the threshold the pigeonhole fails and delay reappears"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_crossover() {
        let trace = BernoulliGen {
            load: 0.95,
            pattern: TrafficPattern::Hotspot {
                target: 0,
                hot: 0.5,
            },
            seed: 3,
        }
        .trace(8, 1_200);
        let (_s, rd_hi, miss_hi) = point(8, 8, 4, &trace); // S = 2
        assert_eq!((rd_hi <= 0, miss_hi), (true, 0));
        let (_s, rd_lo, miss_lo) = point(8, 4, 4, &trace); // S = 1
        assert!(
            miss_lo > 0 || rd_lo > 0,
            "S = 1 should degrade: rd {rd_lo}, misses {miss_lo}"
        );
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
