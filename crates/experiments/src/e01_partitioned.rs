//! E1 — Theorem 6: a bufferless PPS with a *d-partitioned*
//! fully-distributed demultiplexing algorithm has relative queuing delay
//! and relative delay jitter at least `(R/r − 1)·d`, under burst-free
//! leaky-bucket traffic.
//!
//! Sweep: the concentration `d`, realized by partitioning the inputs into
//! groups of size `d` that share an `r'`-plane subset. The adversary then
//! aligns one group and fires the Figure 2 burst.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_bufferless, Table};
use pps_core::prelude::*;
use pps_switch::demux::StaticPartitionDemux;
use pps_traffic::adversary::concentration_attack;
use pps_traffic::min_burstiness;

/// Parameters of one E1 sweep point.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Ports.
    pub n: usize,
    /// Planes.
    pub k: usize,
    /// Internal slowdown `r' = R/r`.
    pub r_prime: usize,
    /// Target concentration `d` (group size).
    pub d: usize,
}

/// Build the d-grouped partition: inputs `g·d .. (g+1)·d` share planes
/// `g·r' .. (g+1)·r'` (wrapping over `K`).
fn grouped_partition(p: Params) -> StaticPartitionDemux {
    let groups = p.n.div_ceil(p.d);
    let partition = (0..p.n)
        .map(|i| {
            let g = i / p.d;
            (0..p.r_prime)
                .map(|m| ((g % groups) * p.r_prime + m) as u32 % p.k as u32)
                .collect()
        })
        .collect();
    StaticPartitionDemux::new(partition)
}

/// One sweep point: returns `(d_aligned, paper bound, model-exact bound,
/// measured delay, measured jitter, burstiness)`.
pub fn point(p: Params) -> (usize, u64, u64, i64, i64, u64) {
    let cfg = PpsConfig::bufferless(p.n, p.k, p.r_prime);
    cfg.validate().expect("valid sweep point");
    let demux = grouped_partition(p);
    // Attack the first group only — that is what d-partitioned means.
    let group: Vec<u32> = (0..p.d as u32).collect();
    let atk = concentration_attack(&demux, &cfg, &group, 4 * p.k);
    let b = min_burstiness(&atk.trace, p.n).overall();
    let cmp = compare_bufferless(cfg, demux, &atk.trace).expect("run");
    let rd = cmp.relative_delay();
    assert_eq!(rd.pps_undelivered, 0, "attack must not wedge the switch");
    (
        atk.d,
        atk.predicted_bound,
        atk.model_exact_bound,
        rd.max,
        cmp.relative_jitter(),
        b,
    )
}

/// Run the default sweep.
pub fn run() -> ExperimentOutput {
    let (n, k, r_prime) = (32, 32, 4);
    let mut table = Table::new(
        format!("Theorem 6 sweep: N={n}, K={k}, r'={r_prime} (bound = (R/r-1)*d)"),
        &[
            "d",
            "aligned",
            "bound (paper)",
            "bound (exact)",
            "measured delay",
            "measured jitter",
            "traffic B",
        ],
    );
    let mut pass = true;
    let plan = SweepPlan::new(
        "e1",
        [2usize, 4, 8, 16, 32]
            .into_iter()
            .map(|d| Params { n, k, r_prime, d })
            .collect(),
    );
    let results = plan.run(|pt| point(*pt.params));
    for (p, (aligned, paper, exact, delay, jitter, b)) in plan.points().iter().zip(results) {
        pass &= delay as u64 >= exact && jitter as u64 >= exact && b == 0;
        table.row_display(&[
            p.d.to_string(),
            aligned.to_string(),
            paper.to_string(),
            exact.to_string(),
            delay.to_string(),
            jitter.to_string(),
            b.to_string(),
        ]);
    }
    ExperimentOutput {
        id: "e1",
        title: "Theorem 6 — d-partitioned fully-distributed lower bound (R/r-1)*d".into(),
        tables: vec![table],
        notes: vec![
            "bound (exact) = (R/r-1)*(d-1): the model lets a plane's first delivery \
             complete in its starting slot, shaving one r' term; asymptotics unchanged"
                .into(),
            "traffic B = 0 certifies the burst-free leaky-bucket premise".into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_point_beats_the_exact_bound() {
        let (aligned, _paper, exact, delay, jitter, b) = point(Params {
            n: 8,
            k: 8,
            r_prime: 2,
            d: 4,
        });
        assert_eq!(aligned, 4);
        assert_eq!(b, 0, "premise: burst-free");
        assert!(delay as u64 >= exact, "delay {delay} < exact bound {exact}");
        assert!(jitter as u64 >= exact);
    }

    #[test]
    fn bound_scales_with_d() {
        let f = |d| {
            point(Params {
                n: 16,
                k: 16,
                r_prime: 2,
                d,
            })
            .3
        };
        let d4 = f(4);
        let d8 = f(8);
        assert!(d8 > d4, "larger groups concentrate more: {d4} !< {d8}");
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
