//! # pps-experiments — the per-theorem reproduction suite
//!
//! One experiment per result in the paper (see DESIGN.md §4 for the full
//! index). Each experiment builds its traffic, runs the PPS and the shadow
//! output-queued switch on it, and emits a table of *paper-predicted bound*
//! vs *measured value* across a parameter sweep. `ppslab` (the CLI binary)
//! runs any subset and prints the tables; EXPERIMENTS.md records the
//! committed outputs.
//!
//! | id | paper result | module |
//! |----|--------------|--------|
//! | e1 | Theorem 6 — d-partitioned fully-distributed ≥ (R/r−1)·d | [`e01_partitioned`] |
//! | e2 | Corollary 7 — unpartitioned fully-distributed ≥ (R/r−1)·N | [`e02_unpartitioned`] |
//! | e3 | Theorem 8 — any fully-distributed ≥ (R/r−1)·N/S | [`e03_fd_general`] |
//! | e4 | Theorem 10 — bufferless u-RT ≥ (1−u'r/R)·u'N/S | [`e04_urt`] |
//! | e5 | Corollary 11 — real-time distributed ≥ (1−r/R)·N/S | [`e05_rt`] |
//! | e6 | Theorem 12 — buffered u-RT, S ≥ 2: ≤ u (upper bound) | [`e06_buffered_cpa`] |
//! | e7 | Theorem 13 — buffered fully-distributed ≥ (1−r/R)·N/S, any buffer | [`e07_buffered_fd`] |
//! | e8 | Theorem 14 — extended FTD: zero relative delay in congestion | [`e08_ftd_congestion`] |
//! | e9 | Proposition 15 — congestion traffic is not leaky-bucket | [`e09_lb_violation`] |
//! | e10 | CPA (cited \[14\]) — zero relative delay at S ≥ 2 | [`e10_cpa`] |
//! | e11 | Iyer–McKeown (cited \[15\]) — Θ((R/r)·N) tightness | [`e11_tightness`] |
//! | e12 | §1.2 — "the PPS does not scale": delay linear in N to 1024 | [`e12_scaling`] |
//! | e13 | baseline: PPS vs ideal OQ vs iSLIP input-queued crossbar | [`e13_crossbar_baseline`] |
//! | e14 | §6 open question — randomized demux delay distribution | [`e14_random_distribution`] |
//! | e15 | §1.2/§6 — buffers implied by the delay bounds (planes, resequencer, jitter regulator) | [`e15_buffer_implications`] |
//! | e16 | §4 small-buffer regime — holding without coordination keeps the u-RT bound | [`e16_small_buffers`] |
//! | e17 | related work — CIOQ crossbar speedup-2 mimicking threshold | [`e17_cioq_speedup`] |
//! | e18 | §6 — the delay bound as a jitter-regulator buffer bound | [`e18_regulator_tradeoff`] |
//! | e19 | stochastic heavy traffic — tail relative delay across information classes | [`e19_stochastic_tails`] |
//! | e20 | heavy-traffic regime — absolute delay diverges, relative delay stays geometric | [`e20_heavy_traffic`] |
//! | e21 | egress priority queueing — per-class tails, strict priority vs FCFS | [`e21_priority_classes`] |
//! | e22 | scheduler zoo — QPS-r vs the maximal-matching conflict envelope | [`e22_qps_crossbar`] |
//! | e23 | scheduler zoo — SW-QPS sliding window: batch quality, zero batch delay | [`e23_sw_qps`] |
//! | e24 | scheduler zoo — maximal matching with speedup (Cogill–Lall envelope) | [`e24_cioq_maximal`] |
//! | a1 | §3 fault-tolerance motivation — plane failure ablation | [`a1_fault`] |
//! | a2 | CPA speedup threshold ablation (S sweep across 2) | [`a2_speedup`] |
//! | a3 | output-discipline ablation | [`a3_discipline`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod a1_fault;
pub mod a2_speedup;
pub mod a3_discipline;
pub mod custom;
pub mod e01_partitioned;
pub mod e02_unpartitioned;
pub mod e03_fd_general;
pub mod e04_urt;
pub mod e05_rt;
pub mod e06_buffered_cpa;
pub mod e07_buffered_fd;
pub mod e08_ftd_congestion;
pub mod e09_lb_violation;
pub mod e10_cpa;
pub mod e11_tightness;
pub mod e12_scaling;
pub mod e13_crossbar_baseline;
pub mod e14_random_distribution;
pub mod e15_buffer_implications;
pub mod e16_small_buffers;
pub mod e17_cioq_speedup;
pub mod e18_regulator_tradeoff;
pub mod e19_stochastic_tails;
pub mod e20_heavy_traffic;
pub mod e21_priority_classes;
pub mod e22_qps_crossbar;
pub mod e23_sw_qps;
pub mod e24_cioq_maximal;
pub mod sweep;
pub mod workload_cli;

use pps_analysis::Table;

/// The printable outcome of one experiment.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// Short id (`e1` … `e12`, `a1` …).
    pub id: &'static str,
    /// One-line description referencing the paper result.
    pub title: String,
    /// Result tables (bound vs measured, per sweep point).
    pub tables: Vec<Table>,
    /// Free-form observations (phase logs, caveats).
    pub notes: Vec<String>,
    /// Did the measured values land on the correct side of every bound?
    pub pass: bool,
}

impl ExperimentOutput {
    /// Render the experiment as GitHub-flavoured markdown (tables become
    /// pipe tables; notes become a bullet list).
    pub fn render_markdown(&self) -> String {
        let mut out = format!("### {}: {}\n\n", self.id, self.title);
        for t in &self.tables {
            let csv = t.to_csv();
            let mut lines = csv.lines();
            if let Some(header) = lines.next() {
                let cols = header.split(',').count();
                out.push_str(&format!("| {} |\n", header.replace(',', " | ")));
                out.push_str(&format!("|{}\n", "---|".repeat(cols)));
                for line in lines {
                    out.push_str(&format!("| {} |\n", line.replace(',', " | ")));
                }
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("- {n}\n"));
        }
        out.push_str(if self.pass {
            "\n**Verdict: PASS**\n"
        } else {
            "\n**Verdict: FAIL**\n"
        });
        out
    }

    /// Render the experiment as text (tables + notes + verdict).
    pub fn render(&self) -> String {
        let mut out = format!("== {}: {} ==\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str("  note: ");
            out.push_str(n);
            out.push('\n');
        }
        out.push_str(if self.pass {
            "  verdict: PASS (measured on the predicted side of every bound)\n"
        } else {
            "  verdict: FAIL\n"
        });
        out
    }
}

/// An experiment entry point.
pub type Runner = fn() -> ExperimentOutput;

/// All experiments, in paper order: `(id, runner)`.
pub fn registry() -> Vec<(&'static str, Runner)> {
    vec![
        ("e1", e01_partitioned::run as Runner),
        ("e2", e02_unpartitioned::run),
        ("e3", e03_fd_general::run),
        ("e4", e04_urt::run),
        ("e5", e05_rt::run),
        ("e6", e06_buffered_cpa::run),
        ("e7", e07_buffered_fd::run),
        ("e8", e08_ftd_congestion::run),
        ("e9", e09_lb_violation::run),
        ("e10", e10_cpa::run),
        ("e11", e11_tightness::run),
        ("e12", e12_scaling::run),
        ("e13", e13_crossbar_baseline::run),
        ("e14", e14_random_distribution::run),
        ("e15", e15_buffer_implications::run),
        ("e16", e16_small_buffers::run),
        ("e17", e17_cioq_speedup::run),
        ("e18", e18_regulator_tradeoff::run),
        ("e19", e19_stochastic_tails::run),
        ("e20", e20_heavy_traffic::run),
        ("e21", e21_priority_classes::run),
        ("e22", e22_qps_crossbar::run),
        ("e23", e23_sw_qps::run),
        ("e24", e24_cioq_maximal::run),
        ("a1", a1_fault::run),
        ("a2", a2_speedup::run),
        ("a3", a3_discipline::run),
    ]
}
