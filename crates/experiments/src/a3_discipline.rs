//! A3 — output-discipline ablation. The paper's lower bounds hold for any
//! no-drop output policy (Lemma 4 is discipline-independent), while its
//! upper bounds target a globally-FCFS reference. We run one algorithm
//! under all three output disciplines and measure what each trades:
//!
//! * `FlowFifo` — per-flow order, work-conserving among eligible flows;
//! * `GlobalFcfs` — exact FCFS mimicking, may idle waiting for stragglers;
//! * `Greedy` — maximal output utilization, may reorder flows (model
//!   violation; quantified via the order checker).

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_bufferless, Table};
use pps_core::prelude::*;
use pps_reference::checker::check_flow_order;
use pps_switch::demux::RoundRobinDemux;
use pps_traffic::gen::OnOffGen;

/// One discipline point: `(max rel delay, mean rel delay, reorder count)`.
pub fn point(
    n: usize,
    k: usize,
    r_prime: usize,
    d: OutputDiscipline,
    trace: &Trace,
) -> (i64, f64, usize) {
    let cfg = PpsConfig::bufferless(n, k, r_prime).with_discipline(d);
    let cmp = compare_bufferless(cfg, RoundRobinDemux::new(n, k), trace).expect("run");
    let rd = cmp.relative_delay();
    assert_eq!(rd.pps_undelivered, 0);
    let reorders = check_flow_order(&cmp.pps.log)
        .iter()
        .filter(|v| matches!(v, pps_reference::checker::Violation::FlowReorder { .. }))
        .count();
    (rd.max, rd.mean, reorders)
}

/// Run the ablation.
pub fn run() -> ExperimentOutput {
    let (n, k, r_prime) = (16, 8, 4);
    let trace = OnOffGen::uniform(12.0, 0.75, 55).trace(n, 3_000);
    let mut table = Table::new(
        format!("Output disciplines at N={n}, K={k}, r'={r_prime}, bursty on/off load 0.75"),
        &[
            "discipline",
            "max rel delay",
            "mean rel delay",
            "flow reorders",
        ],
    );
    let plan = SweepPlan::new(
        "a3",
        vec![
            OutputDiscipline::FlowFifo,
            OutputDiscipline::GlobalFcfs,
            OutputDiscipline::Greedy,
        ],
    );
    let results = plan.run(|pt| point(n, k, r_prime, *pt.params, &trace));
    let (ff, gf, gr) = (results[0], results[1], results[2]);
    for (name, (max, mean, reorders)) in [("flow-fifo", ff), ("global-fcfs", gf), ("greedy", gr)] {
        table.row_display(&[
            name.to_string(),
            max.to_string(),
            format!("{mean:.2}"),
            reorders.to_string(),
        ]);
    }
    // Order-preserving disciplines must not reorder; global FCFS pays (or
    // matches) delay relative to greedy.
    let pass = ff.2 == 0 && gf.2 == 0 && gr.0 <= gf.0;
    ExperimentOutput {
        id: "a3",
        title: "Ablation — output disciplines: order preservation vs work conservation".into(),
        tables: vec![table],
        notes: vec![
            "greedy's reorder count shows why it is an ablation, not a legal mode: \
             the model requires per-flow order"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_preserving_disciplines_do_not_reorder() {
        let trace = OnOffGen::uniform(8.0, 0.7, 2).trace(8, 800);
        let (_, _, r_ff) = point(8, 8, 4, OutputDiscipline::FlowFifo, &trace);
        let (_, _, r_gf) = point(8, 8, 4, OutputDiscipline::GlobalFcfs, &trace);
        assert_eq!((r_ff, r_gf), (0, 0));
    }

    #[test]
    fn global_fcfs_never_beats_greedy_on_delay() {
        let trace = OnOffGen::uniform(8.0, 0.7, 2).trace(8, 800);
        let (d_gf, ..) = point(8, 8, 4, OutputDiscipline::GlobalFcfs, &trace);
        let (d_gr, ..) = point(8, 8, 4, OutputDiscipline::Greedy, &trace);
        assert!(d_gr <= d_gf, "greedy {d_gr} vs global-fcfs {d_gf}");
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
