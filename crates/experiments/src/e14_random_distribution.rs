//! E14 — the paper's closing open question (§6): *"Our lower bounds
//! present worst-case traffics also for randomized demultiplexing
//! algorithms, but it would be interesting to study the distribution of
//! the relative queuing delay when randomization is employed."*
//!
//! Two adversary models against the seeded randomized demultiplexor:
//!
//! * **seed-aware** (the paper's deterministic reading): the adversary
//!   probes the automaton — RNG state and all — and achieves the full
//!   concentration, exactly like against round robin;
//! * **oblivious**: the adversary knows the algorithm but not the seed and
//!   simply fires the N-cell burst at a quiet switch. The concentration is
//!   then the maximum bin of N balls thrown (near-)uniformly into K bins —
//!   `N/K + Θ(√(N/K·ln K))` — so the *typical* relative delay is
//!   `Θ((R/r−1)·N/K)` with the measured distribution tightly above it.
//!
//! We run 200 seeds of the oblivious attack and report
//! min/mean/p95/max, next to the balls-in-bins mean prediction and the
//! seed-aware (= deterministic) ceiling.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_bufferless, Table};
use pps_core::prelude::*;
use pps_switch::demux::RandomDemux;
use pps_traffic::adversary::concentration_attack;

/// The oblivious burst: after an idle prefix, one cell per slot for the
/// hot output from each of the `n` inputs (no alignment phase — nothing to
/// align without knowing the seed).
pub fn oblivious_burst(n: usize) -> Trace {
    let arrivals = (0..n as u64)
        .map(|i| Arrival::new(i, i as u32, 0))
        .collect();
    Trace::build(arrivals, n).expect("one cell per (slot, input)")
}

/// Run the oblivious attack against seed `seed`; returns
/// `(max relative delay, concentration)`.
pub fn oblivious_point(n: usize, k: usize, r_prime: usize, seed: u64) -> (i64, usize) {
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    let cmp = compare_bufferless(cfg, RandomDemux::new(n, seed), &oblivious_burst(n)).expect("run");
    let rd = cmp.relative_delay();
    assert_eq!(rd.pps_undelivered, 0);
    (rd.max, cmp.max_concentration())
}

/// Distribution summary over seeds.
#[derive(Clone, Debug)]
pub struct DelayDistribution {
    /// Minimum over seeds.
    pub min: i64,
    /// Mean over seeds.
    pub mean: f64,
    /// 95th percentile.
    pub p95: i64,
    /// Maximum over seeds.
    pub max: i64,
    /// Mean measured concentration.
    pub mean_concentration: f64,
}

/// Sample the oblivious-attack delay distribution over `seeds` seeds.
pub fn distribution(n: usize, k: usize, r_prime: usize, seeds: u64) -> DelayDistribution {
    // The seeds are the literal parameters of the study (0..seeds), so the
    // distribution is unchanged by how the points are scheduled.
    let plan = SweepPlan::new("e14-dist", (0..seeds).collect());
    let samples = plan.run(|pt| oblivious_point(n, k, r_prime, *pt.params));
    let mut delays: Vec<i64> = samples.iter().map(|&(d, _)| d).collect();
    let conc_sum: usize = samples.iter().map(|&(_, c)| c).sum();
    delays.sort_unstable();
    let mean = delays.iter().sum::<i64>() as f64 / delays.len() as f64;
    DelayDistribution {
        min: delays[0],
        mean,
        p95: delays[(delays.len() * 95) / 100],
        max: *delays.last().unwrap(),
        mean_concentration: conc_sum as f64 / seeds as f64,
    }
}

/// Run the default study.
pub fn run() -> ExperimentOutput {
    let (k, r_prime, seeds) = (8usize, 4usize, 200u64);
    let mut table = Table::new(
        format!("Relative delay of the randomized demux, oblivious N-cell burst, {seeds} seeds (K={k}, r'={r_prime})"),
        &[
            "N",
            "E[max bin] approx",
            "mean conc.",
            "delay min",
            "delay mean",
            "delay p95",
            "delay max",
            "seed-aware ceiling",
        ],
    );
    let mut pass = true;
    let plan = SweepPlan::new("e14", vec![16usize, 32, 64]);
    let results = plan.run(|pt| {
        let n = *pt.params;
        let dist = distribution(n, k, r_prime, seeds);
        // Seed-aware adversary reaches the deterministic ceiling.
        let demux = RandomDemux::new(n, 424_242);
        let cfg = PpsConfig::bufferless(n, k, r_prime);
        let aware = concentration_attack(&demux, &cfg, &(0..n as u32).collect::<Vec<_>>(), 32 * k);
        let aware_cmp = compare_bufferless(cfg, demux, &aware.trace).expect("run");
        (
            dist,
            aware.model_exact_bound,
            aware_cmp.relative_delay().max,
        )
    });
    for (&n, (dist, aware_exact_bound, ceiling)) in plan.points().iter().zip(results) {
        // Balls-in-bins mean prediction for the max bin.
        let lam = n as f64 / k as f64;
        let predict = lam + (2.0 * lam * (k as f64).ln()).sqrt();
        // Shape checks: (a) the oblivious distribution never exceeds the
        // seed-aware ceiling and is strictly positive in the mean; (b) the
        // measured concentration tracks the balls-in-bins prediction; (c)
        // the seed-aware adversary reaches the deterministic bound.
        pass &= dist.min >= 0 && dist.mean > 0.0;
        pass &= dist.max <= ceiling;
        pass &= (dist.mean_concentration - predict).abs() < predict * 0.5;
        pass &= ceiling as u64 >= aware_exact_bound.saturating_sub((r_prime as u64 - 1) * 2);
        table.row_display(&[
            n.to_string(),
            format!("{predict:.1}"),
            format!("{:.1}", dist.mean_concentration),
            dist.min.to_string(),
            format!("{:.1}", dist.mean),
            dist.p95.to_string(),
            dist.max.to_string(),
            ceiling.to_string(),
        ]);
    }
    ExperimentOutput {
        id: "e14",
        title: "Open question (§6) — the randomized demux's relative-delay distribution".into(),
        tables: vec![table],
        notes: vec![
            "randomization does not escape the lower bound (a seed-aware adversary \
             reaches the deterministic ceiling); against oblivious rate-R bursts the \
             typical delay stays small because each plane's share of the burst \
             arrives spread over N slots — the worst case needs coordination, which \
             is the paper's point"
                .into(),
            "mean concentration tracks the balls-in-bins prediction N/K + \
             sqrt(2(N/K)lnK)"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oblivious_distribution_sits_below_the_deterministic_ceiling() {
        let dist = distribution(16, 8, 4, 40);
        let deterministic = 3 * 15; // (r'-1)(N-1)
        assert!(dist.max <= deterministic);
        assert!(dist.min >= 0);
        assert!(dist.mean > 0.0, "some concentration always happens");
        assert!(dist.p95 >= dist.min && dist.max >= dist.p95);
    }

    #[test]
    fn concentration_tracks_balls_in_bins() {
        let dist = distribution(64, 8, 4, 40);
        let lam = 8.0;
        assert!(
            dist.mean_concentration > lam && dist.mean_concentration < 3.0 * lam,
            "mean concentration {} out of band",
            dist.mean_concentration
        );
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
