//! E6 — Theorem 12: an input-buffered PPS with buffers of size `u` and
//! speedup `S ≥ 2` supports a `u`-RT demultiplexing algorithm (delayed
//! CPA) whose relative queuing delay is at most `u` — the constructive
//! counterpart showing the `Ω(N/S)` lower bounds evaporate once buffers
//! reach the information delay.
//!
//! Victim-turned-hero: [`DelayedCpaDemux`] under a battery of workloads,
//! including the very attack traffics that defeat the distributed
//! algorithms. Sweep: `u` (buffer = `u`).

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_buffered, Table};
use pps_core::prelude::*;
use pps_switch::demux::{DelayedCpaDemux, RoundRobinDemux};
use pps_traffic::adversary::concentration_attack;
use pps_traffic::gen::{BernoulliGen, OnOffGen, TrafficPattern};

fn workloads(n: usize, k: usize, r_prime: usize) -> Vec<(&'static str, Trace)> {
    let cfg = PpsConfig::bufferless(n, k, r_prime);
    let attack = concentration_attack(
        &RoundRobinDemux::new(n, k),
        &cfg,
        &(0..n as u32).collect::<Vec<_>>(),
        4 * k,
    )
    .trace;
    vec![
        (
            "bernoulli-0.85",
            BernoulliGen::uniform(0.85, 42).trace(n, 2_000),
        ),
        (
            "onoff-bursty",
            OnOffGen::uniform(12.0, 0.7, 43).trace(n, 2_000),
        ),
        (
            "hotspot-0.5",
            BernoulliGen {
                load: 0.6,
                pattern: TrafficPattern::Hotspot {
                    target: 0,
                    hot: 0.5,
                },
                seed: 44,
            }
            .trace(n, 1_500),
        ),
        ("rr-attack-trace", attack),
    ]
}

/// One sweep point: max relative delay of delayed CPA at information delay
/// `u` over the given trace.
pub fn point(n: usize, k: usize, r_prime: usize, u: Slot, trace: &Trace) -> (i64, usize, u64) {
    let cfg = PpsConfig::buffered(n, k, r_prime, u as usize)
        .with_discipline(OutputDiscipline::GlobalFcfs);
    cfg.validate().expect("valid sweep point");
    let demux = DelayedCpaDemux::new(n, k, r_prime, u);
    let cmp = compare_buffered(cfg, demux, trace).expect("run");
    let rd = cmp.relative_delay();
    (rd.max, rd.pps_undelivered, cmp.pps_stats().dropped)
}

/// Run the default sweep.
pub fn run() -> ExperimentOutput {
    let (n, k, r_prime) = (16, 8, 4); // S = 2, the theorem's premise
    let mut table = Table::new(
        format!("Theorem 12 sweep: N={n}, K={k}, r'={r_prime}, S=2, buffer=u (claim: delay <= u)"),
        &["u", "workload", "measured max rel delay", "claim"],
    );
    let mut pass = true;
    let loads = workloads(n, k, r_prime);
    let plan = SweepPlan::new(
        "e6",
        [1u64, 2, 4, 8]
            .into_iter()
            .flat_map(|u| (0..loads.len()).map(move |w| (u, w)))
            .collect(),
    );
    let results = plan.run(|pt| {
        let (u, w) = *pt.params;
        point(n, k, r_prime, u, &loads[w].1)
    });
    for (&(u, w), (max_rd, undelivered, dropped)) in plan.points().iter().zip(results) {
        let ok = max_rd <= u as i64 && undelivered == 0 && dropped == 0;
        pass &= ok;
        table.row_display(&[
            u.to_string(),
            loads[w].0.to_string(),
            max_rd.to_string(),
            format!("<= {u}: {}", if ok { "holds" } else { "VIOLATED" }),
        ]);
    }
    ExperimentOutput {
        id: "e6",
        title: "Theorem 12 — buffered u-RT upper bound: relative delay <= u at S >= 2".into(),
        tables: vec![table],
        notes: vec![
            "delayed CPA holds each cell exactly u slots, by which time the global \
             information a u-RT algorithm may use covers the cell's arrival; it then \
             emulates CPA with deadlines shifted by u (paper's reduction)"
                .into(),
            "the Omega(N/S) bufferless bounds do not apply: buffers >= u break them".into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_bounded_by_u_under_attack_traffic() {
        let (n, k, r) = (8, 8, 4);
        let cfg = PpsConfig::bufferless(n, k, r);
        let attack = concentration_attack(
            &RoundRobinDemux::new(n, k),
            &cfg,
            &(0..n as u32).collect::<Vec<_>>(),
            32,
        )
        .trace;
        for u in [1u64, 3] {
            let (max_rd, undelivered, _) = point(n, k, r, u, &attack);
            assert_eq!(undelivered, 0);
            assert!(max_rd <= u as i64, "u={u}: {max_rd}");
        }
    }

    #[test]
    fn delay_bounded_under_stochastic_load() {
        let t = BernoulliGen::uniform(0.9, 7).trace(8, 800);
        let (max_rd, undelivered, _) = point(8, 8, 4, 2, &t);
        assert_eq!(undelivered, 0);
        assert!(max_rd <= 2, "{max_rd}");
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
