//! E21 — multi-class cells through a priority-aware output mux.
//!
//! Egress priority queueing (Kogan et al., arXiv:1207.5959) bounds how
//! much a strict-priority scheduler can shelter high classes at the
//! expense of low ones. Here the `pps-workload` multi-class path tags a
//! Zipf-heavy trace with per-flow service classes and plays it through
//! two output-queued muxes over the same arrivals:
//!
//! * plain FCFS — the classless shadow reference
//!   (`pps_reference::fcfs_departure_times`);
//! * strict priority — `pps_workload::classes::priority_oq_delays`,
//!   always serving the lowest-numbered class with backlog.
//!
//! Work conservation fixes the *multiset* of departure slots per output —
//! the schedulers only redistribute who takes each slot — so the table is
//! a zero-sum ledger: class 0's tail collapses toward zero, the bottom
//! class absorbs exactly the delay the top sheds, and the aggregate mean
//! is identical under both schedulers.

use crate::ExperimentOutput;
use pps_analysis::{Table, TailQuantiles};
use pps_reference::fcfs_departure_times;
use pps_workload::{priority_oq_delays, ClassedTrace, WorkloadSpec};

/// Ports (also the trace's geometry; this experiment is OQ-only).
pub const N: usize = 16;
/// Service classes.
pub const CLASSES: u8 = 3;

/// Build the classed workload: Zipf flows near saturation, so hot
/// outputs have real queues for the schedulers to disagree over.
pub fn classed_workload(seed: u64) -> ClassedTrace {
    let spec = WorkloadSpec::parse(&format!(
        "zipf:n={N},load=0.95,s=1.1,flows=65536,seed={seed},horizon=20000"
    ))
    .expect("spec");
    ClassedTrace::per_flow(spec.trace().expect("materialize"), CLASSES, seed)
}

/// Per-class tails under both schedulers: `(fcfs, priority)` per class.
pub fn per_class_tails(classed: &ClassedTrace) -> Vec<(TailQuantiles, TailQuantiles)> {
    let prio = priority_oq_delays(classed, N);
    let fcfs_departs = fcfs_departure_times(&classed.trace, N);
    let mut fcfs: Vec<Vec<i64>> = vec![Vec::new(); CLASSES as usize];
    for (i, a) in classed.trace.arrivals().iter().enumerate() {
        fcfs[classed.classes[i] as usize].push((fcfs_departs[i] - a.slot) as i64);
    }
    fcfs.iter()
        .zip(prio.iter())
        .map(|(f, p)| {
            let p_i64: Vec<i64> = p.iter().map(|&d| d as i64).collect();
            (
                TailQuantiles::from(f).expect("class has cells"),
                TailQuantiles::from(&p_i64).expect("class has cells"),
            )
        })
        .collect()
}

/// Run the study.
pub fn run() -> ExperimentOutput {
    let classed = classed_workload(31);
    let tails = per_class_tails(&classed);
    let mut table = Table::new(
        format!(
            "Per-class OQ delay, FCFS vs strict priority (N={N}, {CLASSES} classes, \
             Zipf load 0.95, {} cells)",
            classed.trace.len()
        ),
        &[
            "class",
            "cells",
            "fcfs mean",
            "fcfs p99",
            "prio mean",
            "prio p99",
            "prio p999",
            "prio max",
        ],
    );
    let mut pass = true;
    for (c, (f, p)) in tails.iter().enumerate() {
        pass &= f.count == p.count && f.count > 0;
        table.row_display(&[
            c.to_string(),
            p.count.to_string(),
            format!("{:.2}", f.mean),
            f.p99.to_string(),
            format!("{:.2}", p.mean),
            p.p99.to_string(),
            p.p999.to_string(),
            p.max.to_string(),
        ]);
    }
    // Priority must shelter the top class relative to FCFS and order the
    // classes among themselves; work conservation must hold exactly
    // (same total delay under both schedulers — the ledger balances).
    let top = &tails[0];
    let bottom = &tails[CLASSES as usize - 1];
    pass &= top.1.mean <= top.0.mean;
    pass &= top.1.mean <= bottom.1.mean;
    pass &= bottom.1.mean >= bottom.0.mean;
    let total_fcfs: f64 = tails.iter().map(|(f, _)| f.mean * f.count as f64).sum();
    let total_prio: f64 = tails.iter().map(|(_, p)| p.mean * p.count as f64).sum();
    pass &= (total_fcfs - total_prio).abs() < 1e-6;
    ExperimentOutput {
        id: "e21",
        title: "Egress priority queueing — per-class tails under strict priority vs FCFS".into(),
        tables: vec![table],
        notes: vec![
            format!(
                "work conservation is exact: total queueing delay {total_fcfs:.0} slots under \
                 both schedulers — priority only redistributes it across classes"
            ),
            "class 0's mean and p99 drop below FCFS, the bottom class absorbs the \
             difference; the redistribution pattern is the qualitative content of the \
             egress priority-queueing bounds (Kogan et al.)"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }

    #[test]
    fn work_conservation_is_exact() {
        let classed = classed_workload(5);
        let tails = per_class_tails(&classed);
        let f: f64 = tails.iter().map(|(f, _)| f.mean * f.count as f64).sum();
        let p: f64 = tails.iter().map(|(_, p)| p.mean * p.count as f64).sum();
        assert!((f - p).abs() < 1e-6, "fcfs {f} vs priority {p}");
    }

    #[test]
    fn top_class_never_loses_from_priority() {
        let classed = classed_workload(6);
        let tails = per_class_tails(&classed);
        assert!(tails[0].1.mean <= tails[0].0.mean);
        assert!(tails[0].1.p99 <= tails[0].0.p99);
    }
}
