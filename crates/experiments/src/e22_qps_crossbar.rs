//! E22 — QPS-r crossbar scheduling vs the maximal-matching envelope.
//!
//! Gong et al. (arXiv:1905.05392) propose QPS-r: each input samples ONE
//! output queue-proportionally and the outputs accept longest-VOQ-first,
//! for `r` rounds — `O(1)` work per port, no pointer state. Their theorem
//! is that QPS-r (any `r ≥ 1`) attains *exactly the delay guarantee of
//! maximal matchings*: under admissible i.i.d. traffic the expected extra
//! waiting over the ideal OQ switch obeys the Cogill–Lall conflict
//! envelope `λc / (1 − λc)` with `λc = 2ρ(N−1)/N` (arXiv cs/0605030) —
//! despite QPS-r *not* being maximal.
//!
//! This experiment measures mean/p99 delay of QPS-r at `r ∈ {1, 2, 3}`
//! under uniform Bernoulli load, side by side with iSLIP (2 iterations)
//! and the ideal OQ shadow, and charts the measured extra waiting against
//! the envelope. The envelope is only a theorem for `λc < 1` (here
//! `ρ < N / (2(N−1)) ≈ 0.53`); the high-load rows chart the unprovable
//! region — QPS-r keeps draining, the bound column just goes blank.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{Table, TailQuantiles};
use pps_core::prelude::*;
use pps_crossbar::{run_crossbar_with, QpsRScheduler};
use pps_reference::oq::run_oq;
use pps_traffic::gen::BernoulliGen;

/// Ports.
pub const N: usize = 16;
/// Slots per load point.
pub const HORIZON: u64 = 10_000;

/// The Cogill–Lall conflict load `λc = 2ρ(N−1)/N` for uniform traffic.
pub fn conflict_load(load: f64) -> f64 {
    2.0 * load * (N as f64 - 1.0) / N as f64
}

/// The conflict envelope `λc / (1 − λc)`, or `None` where it is not a
/// theorem (`λc ≥ 1`).
pub fn envelope(load: f64) -> Option<f64> {
    let lc = conflict_load(load);
    (lc < 1.0).then(|| lc / (1.0 - lc))
}

/// Delay tails of one scheduler run.
fn tails(log: &RunLog) -> TailQuantiles {
    let delays: Vec<i64> = log
        .records()
        .iter()
        .filter_map(|r| r.delay().map(|d| d as i64))
        .collect();
    TailQuantiles::from(&delays).expect("non-empty run")
}

/// One load point's measurements.
#[derive(Clone, Debug)]
pub struct LoadPoint {
    /// Offered per-input load.
    pub load: f64,
    /// Ideal OQ mean delay.
    pub oq_mean: f64,
    /// iSLIP (2 iterations) delay tails.
    pub islip: TailQuantiles,
    /// QPS-r delay tails, indexed by `r - 1`.
    pub qps: [TailQuantiles; 3],
    /// Undelivered cells across all crossbar runs.
    pub undelivered: usize,
}

/// Measure one load level.
pub fn measure(load: f64, seed: u64) -> LoadPoint {
    let trace = BernoulliGen::uniform(load, seed).trace(N, HORIZON);
    let mode = pps_core::stepping::process_default();
    let oq = run_oq(&trace, N);
    let (islip_log, _) = run_crossbar_with(&trace, pps_crossbar::IslipArbiter::new(N, 2), mode);
    let qps: Vec<(RunLog, TailQuantiles)> = (1..=3)
        .map(|r| {
            let (log, _) =
                run_crossbar_with(&trace, QpsRScheduler::new(N, r, seed ^ r as u64), mode);
            let t = tails(&log);
            (log, t)
        })
        .collect();
    LoadPoint {
        load,
        oq_mean: oq.mean_delay().unwrap_or(0.0),
        islip: tails(&islip_log),
        qps: [qps[0].1.clone(), qps[1].1.clone(), qps[2].1.clone()],
        undelivered: islip_log.undelivered()
            + qps.iter().map(|(l, _)| l.undelivered()).sum::<usize>(),
    }
}

/// Format a tail quantile, flagging unresolved small samples with `~`
/// (see `TailQuantiles` — for `count < den` the order statistic is the
/// max by definition).
pub fn fmt_p99(q: &TailQuantiles) -> String {
    if q.resolvable(100) {
        q.p99.to_string()
    } else {
        format!("~{}", q.p99)
    }
}

/// Run the sweep.
pub fn run() -> ExperimentOutput {
    let loads = [0.2, 0.35, 0.5, 0.7];
    let mut table = Table::new(
        format!(
            "QPS-r vs iSLIP vs ideal OQ, uniform Bernoulli (N={N}, {HORIZON} slots); \
             envelope = Cogill–Lall λc/(1−λc), blank where λc ≥ 1"
        ),
        &[
            "load",
            "λc",
            "envelope",
            "OQ mean",
            "iSLIP mean/p99",
            "qps-1 mean/p99",
            "qps-2 mean/p99",
            "qps-3 mean/p99",
        ],
    );
    let plan = SweepPlan::new("e22", loads.to_vec());
    let points = plan.run(|pt| measure(*pt.params, 2200 + pt.index as u64));
    let mut pass = true;
    for p in &points {
        pass &= p.undelivered == 0;
        if let Some(env) = envelope(p.load) {
            // The paper's guarantee: expected extra waiting over the ideal
            // OQ stays inside the conflict envelope, for every r.
            for q in &p.qps {
                pass &= q.mean - p.oq_mean <= env;
            }
        }
        let fmt = |q: &TailQuantiles| format!("{:.2}/{}", q.mean, fmt_p99(q));
        table.row_display(&[
            format!("{:.2}", p.load),
            format!("{:.2}", conflict_load(p.load)),
            envelope(p.load).map_or("—".into(), |e| format!("{e:.2}")),
            format!("{:.2}", p.oq_mean),
            fmt(&p.islip),
            fmt(&p.qps[0]),
            fmt(&p.qps[1]),
            fmt(&p.qps[2]),
        ]);
    }
    ExperimentOutput {
        id: "e22",
        title: "QPS-r — queue-proportional sampling meets the maximal-matching envelope".into(),
        tables: vec![table],
        notes: vec![
            "QPS-r's distinguishing claim is a maximal-matching delay guarantee at O(1) \
             per-port work: measured extra waiting over OQ sits far inside λc/(1−λc) \
             wherever that envelope is a theorem (λc < 1)"
                .into(),
            "more rounds help the constant, not the guarantee — r = 1 already carries \
             the full envelope"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }

    #[test]
    fn qps_extra_wait_sits_inside_the_envelope() {
        let p = measure(0.35, 9);
        let env = envelope(0.35).unwrap();
        for q in &p.qps {
            assert!(
                q.mean - p.oq_mean <= env,
                "extra wait {} vs envelope {env}",
                q.mean - p.oq_mean
            );
        }
        assert_eq!(p.undelivered, 0);
    }

    #[test]
    fn envelope_vanishes_past_the_provable_region() {
        assert!(envelope(0.5).is_some());
        assert!(envelope(0.54).is_none());
    }
}
