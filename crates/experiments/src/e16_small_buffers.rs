//! E16 — Section 4's small-buffer regime: *"it can be shown that a
//! globally FCFS input-buffered PPS [with buffers smaller than u] has
//! relative queuing delay of (1 − r/R)·N/S time-slots"*, i.e. buffers
//! below the information delay do not rescue a `u`-RT algorithm.
//!
//! The sweep makes the mechanism visible: a buffered stale-least-loaded
//! demultiplexor holds every cell `hold ≤ u` slots before dispatching.
//! Holding delays the *decision* as much as the *information*, so the
//! blind spot never closes — the Theorem 10 burst concentrates identically
//! at every `hold`, and the relative delay even *grows* by the holding
//! time itself. What actually dissolves the bound at buffer `u` is not
//! waiting but *coordination*: Theorem 12's delayed CPA uses the wait to
//! acquire the exact global arrival order (legally, since by then it is
//! `u` slots old) and assigns conflict-free deadlines — final row of the
//! table.

use crate::sweep::SweepPlan;
use crate::ExperimentOutput;
use pps_analysis::{compare_buffered, compare_bufferless, Table};
use pps_core::prelude::*;
use pps_switch::demux::buffered::BufferedStaleDemux;
use pps_switch::demux::{DelayedCpaDemux, StaleLeastLoadedDemux};
use pps_traffic::adversary::urt_burst_attack;

/// One sweep point: max relative delay of the buffered stale demux at
/// `hold` against the Theorem 10 burst.
pub fn stale_point(n: usize, k: usize, r_prime: usize, u: Slot, hold: Slot) -> i64 {
    let atk = urt_burst_attack(&PpsConfig::bufferless(n, k, r_prime), u);
    if hold == 0 {
        // Degenerate: the bufferless dispatcher.
        let cfg = PpsConfig::bufferless(n, k, r_prime);
        let cmp =
            compare_bufferless(cfg, StaleLeastLoadedDemux::new(n, k, u), &atk.trace).expect("run");
        assert_eq!(cmp.relative_delay().pps_undelivered, 0);
        cmp.relative_delay().max
    } else {
        let cfg = PpsConfig::buffered(n, k, r_prime, (hold as usize) + 1);
        let cmp =
            compare_buffered(cfg, BufferedStaleDemux::new(n, k, u, hold), &atk.trace).expect("run");
        assert_eq!(cmp.relative_delay().pps_undelivered, 0);
        cmp.relative_delay().max
    }
}

/// The Theorem 12 endpoint: delayed CPA with buffer = u on the same burst.
pub fn cpa_point(n: usize, k: usize, r_prime: usize, u: Slot) -> i64 {
    let atk = urt_burst_attack(&PpsConfig::bufferless(n, k, r_prime), u);
    let cfg = PpsConfig::buffered(n, k, r_prime, u as usize)
        .with_discipline(OutputDiscipline::GlobalFcfs);
    let cmp =
        compare_buffered(cfg, DelayedCpaDemux::new(n, k, r_prime, u), &atk.trace).expect("run");
    assert_eq!(cmp.relative_delay().pps_undelivered, 0);
    cmp.relative_delay().max
}

/// Run the default sweep.
pub fn run() -> ExperimentOutput {
    let (n, k, r_prime, u) = (32, 8, 8, 4u64); // S = 1 for the stale family
    let atk = urt_burst_attack(&PpsConfig::bufferless(n, k, r_prime), u);
    let mut table = Table::new(
        format!(
            "Small buffers vs the Theorem 10 burst at N={n}, K={k}, r'={r_prime}, u={u} \
             (u-RT bound: {} slots)",
            atk.model_exact_bound
        ),
        &[
            "algorithm",
            "hold/buffer",
            "measured rel delay",
            "bound status",
        ],
    );
    let mut pass = true;
    let plan = SweepPlan::new("e16", (0..=u).collect());
    let stale_delays = plan.run(|pt| stale_point(n, k, r_prime, u, *pt.params));
    for (&hold, &d) in plan.points().iter().zip(stale_delays.iter()) {
        let holds = d as u64 >= atk.model_exact_bound;
        pass &= holds;
        table.row_display(&[
            "buffered-stale-LL".into(),
            hold.to_string(),
            d.to_string(),
            if holds { "bound persists" } else { "BROKEN" }.to_string(),
        ]);
    }
    // Holding cannot shrink the concentration delay (it adds its own).
    pass &= stale_delays.windows(2).all(|w| w[1] >= w[0]);
    // The CPA endpoint needs S >= 2: use K = 2r' for it.
    let k_cpa = 2 * r_prime;
    let d_cpa = cpa_point(n, k_cpa, r_prime, u);
    let ok = d_cpa <= u as i64;
    pass &= ok;
    table.row_display(&[
        format!("delayed-CPA (K={k_cpa}, S=2)"),
        format!("{u}"),
        d_cpa.to_string(),
        if ok {
            "<= u (Thm 12)".into()
        } else {
            "VIOLATED".to_string()
        },
    ]);
    ExperimentOutput {
        id: "e16",
        title: "Section 4 — buffers below the information delay do not help; coordination does"
            .into(),
        tables: vec![table],
        notes: vec![
            "holding cells delays the decisions exactly as much as the information, \
             so the blind spot never closes for a least-loaded dispatcher — the \
             measured delay is flat-to-growing in the hold time"
                .into(),
            "Theorem 12's delayed CPA turns the same buffer into exact (u-old) \
             knowledge of the global arrival order and collapses the delay to <= u"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holding_does_not_break_the_bound() {
        let (n, k, r_prime, u) = (32, 8, 8, 2u64);
        let atk = urt_burst_attack(&PpsConfig::bufferless(n, k, r_prime), u);
        for hold in [0u64, 1, 2] {
            let d = stale_point(n, k, r_prime, u, hold);
            assert!(
                d as u64 >= atk.model_exact_bound,
                "hold={hold}: {d} < {}",
                atk.model_exact_bound
            );
        }
    }

    #[test]
    fn coordination_at_buffer_u_collapses_the_delay() {
        let d = cpa_point(16, 8, 4, 3);
        assert!(d <= 3, "delayed CPA must stay within u: {d}");
    }

    #[test]
    fn full_run_passes() {
        assert!(run().pass);
    }
}
